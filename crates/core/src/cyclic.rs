//! Cyclic executives: real-time behavior by static construction (§8).
//!
//! The paper closes with: "We are also exploring compiling parallel
//! programs directly into cyclic executives, providing real-time behavior
//! by static construction." This module implements that direction: an
//! offline compiler from a periodic task set to a classic frame-based
//! cyclic executive table, plus an executor that runs the table on a node
//! under a single periodic constraint per CPU.
//!
//! The construction is the textbook one (Baker & Shaw): pick a frame
//! length `f` that (1) divides the hyperperiod, (2) fits the largest job,
//! and (3) satisfies `2f − gcd(f, Tᵢ) ≤ Dᵢ` so every job sees a full frame
//! between release and deadline; then place job slices into frames with an
//! earliest-deadline-first packer. Preemptible slices may split across
//! frames (our jobs are slices of guaranteed CPU, not atomic actions).
//!
//! The payoff over the online EDF scheduler: the schedule is a *table* —
//! verifiable offline, and at run time there is nothing left to decide.

use nautix_des::Nanos;

/// One periodic task for the offline compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicTask {
    /// Period Tᵢ (= implicit deadline), ns.
    pub period: Nanos,
    /// Worst-case execution per period Cᵢ, ns.
    pub wcet: Nanos,
}

/// A slice of a job placed in a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the task in the input set.
    pub task: usize,
    /// Which job instance of that task within the hyperperiod.
    pub instance: u32,
    /// Execution allotted in this frame, ns.
    pub duration: Nanos,
}

/// One minor frame of the table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    /// Job slices executed in this frame, in order.
    pub placements: Vec<Placement>,
}

impl Frame {
    /// Total execution placed in this frame.
    pub fn load(&self) -> Nanos {
        self.placements.iter().map(|p| p.duration).sum()
    }
}

/// A compiled cyclic executive schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicSchedule {
    /// The input tasks.
    pub tasks: Vec<CyclicTask>,
    /// Minor frame length, ns.
    pub frame: Nanos,
    /// Hyperperiod (major cycle), ns.
    pub hyperperiod: Nanos,
    /// `hyperperiod / frame` frames.
    pub frames: Vec<Frame>,
}

/// Why compilation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CyclicError {
    /// Empty task set or a zero period/wcet.
    Degenerate,
    /// Total utilization exceeds 100%.
    Overutilized,
    /// No frame length satisfies the three frame conditions.
    NoValidFrame,
    /// The packer could not place every job slice by its deadline.
    Unschedulable,
    /// The hyperperiod overflows the supported range.
    HyperperiodOverflow,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> Option<u64> {
    (a / gcd(a, b)).checked_mul(b)
}

/// Compile a task set into a cyclic executive table.
pub fn compile(tasks: &[CyclicTask]) -> Result<CyclicSchedule, CyclicError> {
    if tasks.is_empty() || tasks.iter().any(|t| t.period == 0 || t.wcet == 0) {
        return Err(CyclicError::Degenerate);
    }
    let util_ppm: u128 = tasks
        .iter()
        .map(|t| t.wcet as u128 * 1_000_000 / t.period as u128)
        .sum();
    if util_ppm > 1_000_000 {
        return Err(CyclicError::Overutilized);
    }
    let mut hyper: u64 = 1;
    for t in tasks {
        hyper = lcm(hyper, t.period).ok_or(CyclicError::HyperperiodOverflow)?;
        if hyper > 60_000_000_000 {
            // Beyond a minute of table the executive is impractical.
            return Err(CyclicError::HyperperiodOverflow);
        }
    }
    let max_wcet = tasks.iter().map(|t| t.wcet).max().unwrap();
    // Candidate frame lengths: divisors of the hyperperiod, largest first
    // (fewer frames = fewer frame interrupts), subject to the conditions.
    let mut candidates: Vec<u64> = divisors(hyper)
        .into_iter()
        .filter(|&f| f >= max_wcet && tasks.iter().all(|t| 2 * f <= t.period + gcd(f, t.period)))
        .collect();
    candidates.sort_unstable_by(|a, b| b.cmp(a));
    for f in candidates {
        // Prefer balanced packing (lower peak frame load); fall back to
        // earliest-first, which can squeeze in sets near 100% utilization
        // that balancing strands.
        let packed = pack(tasks, f, hyper, PackOrder::Balanced)
            .or_else(|| pack(tasks, f, hyper, PackOrder::Earliest));
        if let Some(frames) = packed {
            return Ok(CyclicSchedule {
                tasks: tasks.to_vec(),
                frame: f,
                hyperperiod: hyper,
                frames,
            });
        }
    }
    // Distinguish "no frame length" from "packing failed at every f".
    let any_frame = divisors(hyper)
        .into_iter()
        .any(|f| f >= max_wcet && tasks.iter().all(|t| 2 * f <= t.period + gcd(f, t.period)));
    if any_frame {
        Err(CyclicError::Unschedulable)
    } else {
        Err(CyclicError::NoValidFrame)
    }
}

fn divisors(n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            out.push(i);
            if i != n / i {
                out.push(n / i);
            }
        }
        i += 1;
    }
    out
}

/// How a job's eligible frames are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PackOrder {
    /// Emptiest frame first: minimizes the peak frame load.
    Balanced,
    /// Earliest frame first: maximizes schedulability near 100% (later
    /// frames stay free for later deadlines).
    Earliest,
}

/// EDF packing of job slices into frames of length `f`; slices may split.
fn pack(tasks: &[CyclicTask], f: Nanos, hyper: Nanos, order: PackOrder) -> Option<Vec<Frame>> {
    let n_frames = (hyper / f) as usize;
    let mut frames: Vec<Frame> = vec![Frame::default(); n_frames];
    let mut budget: Vec<Nanos> = vec![f; n_frames];
    // All job instances in the hyperperiod: (deadline, release, task, inst).
    let mut jobs: Vec<(Nanos, Nanos, usize, u32)> = Vec::new();
    for (ti, t) in tasks.iter().enumerate() {
        let count = hyper / t.period;
        for k in 0..count {
            let release = k * t.period;
            jobs.push((release + t.period, release, ti, k as u32));
        }
    }
    jobs.sort_unstable();
    for (deadline, release, task, instance) in jobs {
        // Usable frames: fully inside [release, deadline]. Fill the
        // emptiest eligible frame first — balancing frame loads keeps the
        // peak (and thus the executive's hosting slice) low.
        let first = release.div_ceil(f) as usize;
        let last = (deadline / f) as usize; // frame index one past the end
        let mut remaining = tasks[task].wcet;
        let mut eligible: Vec<usize> = (first..last.min(n_frames)).collect();
        if order == PackOrder::Balanced {
            eligible.sort_by_key(|&fi| (f - budget[fi], fi));
        }
        for fi in eligible {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(budget[fi]);
            if take > 0 {
                budget[fi] -= take;
                remaining -= take;
                frames[fi].placements.push(Placement {
                    task,
                    instance,
                    duration: take,
                });
            }
        }
        if remaining > 0 {
            return None;
        }
    }
    Some(frames)
}

impl CyclicSchedule {
    /// Verify the table: every job instance receives exactly its WCET
    /// within its release/deadline window, and no frame is overfull.
    /// This is the offline guarantee that replaces run-time decisions.
    pub fn verify(&self) -> Result<(), String> {
        for (fi, frame) in self.frames.iter().enumerate() {
            if frame.load() > self.frame {
                return Err(format!("frame {fi} overfull: {}", frame.load()));
            }
        }
        for (ti, t) in self.tasks.iter().enumerate() {
            let count = self.hyperperiod / t.period;
            for k in 0..count {
                let release = k * t.period;
                let deadline = release + t.period;
                let mut got = 0;
                for (fi, frame) in self.frames.iter().enumerate() {
                    let fs = fi as u64 * self.frame;
                    let fe = fs + self.frame;
                    for p in &frame.placements {
                        if p.task == ti && p.instance == k as u32 {
                            if fs < release || fe > deadline {
                                return Err(format!(
                                    "task {ti} instance {k} placed outside its window"
                                ));
                            }
                            got += p.duration;
                        }
                    }
                }
                if got != t.wcet {
                    return Err(format!(
                        "task {ti} instance {k}: got {got} of {} ns",
                        t.wcet
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total utilization of the table, ppm.
    pub fn utilization_ppm(&self) -> u64 {
        (self
            .tasks
            .iter()
            .map(|t| t.wcet as u128 * 1_000_000 / t.period as u128)
            .sum::<u128>()) as u64
    }

    /// The busiest frame's load, ns — what the executive's per-frame
    /// periodic constraint must reserve.
    pub fn peak_frame_load(&self) -> Nanos {
        self.frames.iter().map(|f| f.load()).max().unwrap_or(0)
    }

    /// Render the table as ASCII, one line per frame:
    /// `frame 0 [  0..100µs]: T0#0(20µs) T1#0(30µs)  (load 50/100µs)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cyclic executive: hyperperiod {}µs, frame {}µs, U={}%\n",
            self.hyperperiod / 1000,
            self.frame / 1000,
            self.utilization_ppm() / 10_000
        ));
        for (i, f) in self.frames.iter().enumerate() {
            let start = i as u64 * self.frame;
            let jobs: Vec<String> = f
                .placements
                .iter()
                .map(|p| format!("T{}#{}({}µs)", p.task, p.instance, p.duration / 1000))
                .collect();
            out.push_str(&format!(
                "frame {i} [{:>5}..{:<5}µs]: {:<40} (load {}/{}µs)\n",
                start / 1000,
                (start + self.frame) / 1000,
                jobs.join(" "),
                f.load() / 1000,
                self.frame / 1000
            ));
        }
        out
    }

    /// The periodic constraint under which a node can host this executive:
    /// period = the minor frame, slice = the peak frame load (plus any
    /// margin the caller wants for the dispatch loop itself).
    pub fn hosting_constraints(&self, margin_ns: Nanos) -> nautix_kernel::Constraints {
        nautix_kernel::Constraints::periodic(
            self.frame,
            (self.peak_frame_load() + margin_ns).min(self.frame),
        )
        .build()
    }
}

/// A thread program that runs a compiled table: each arrival of its
/// hosting periodic constraint is one minor frame; the program executes
/// that frame's placements and sleeps to the next frame boundary
/// implicitly via its constraint. No scheduling decisions remain at run
/// time — the table is the schedule.
pub struct CyclicExecutive {
    schedule: CyclicSchedule,
    cycles_per_ns_num: u64,
    cycles_per_ns_den: u64,
    frame_idx: usize,
    placement_idx: usize,
    /// Completed placements (for verification in tests).
    pub executed: Vec<Placement>,
    frames_to_run: usize,
}

impl CyclicExecutive {
    /// An executive that runs `major_cycles` full passes over the table on
    /// a machine running at `freq`.
    pub fn new(schedule: CyclicSchedule, freq: nautix_des::Freq, major_cycles: usize) -> Self {
        let frames_to_run = schedule.frames.len() * major_cycles;
        CyclicExecutive {
            schedule,
            cycles_per_ns_num: freq.khz(),
            cycles_per_ns_den: 1_000_000,
            frame_idx: 0,
            placement_idx: 0,
            executed: Vec::new(),
            frames_to_run,
        }
    }

    fn ns_to_cycles(&self, ns: Nanos) -> u64 {
        (ns as u128 * self.cycles_per_ns_num as u128 / self.cycles_per_ns_den as u128) as u64
    }
}

impl nautix_kernel::Program for CyclicExecutive {
    fn resume(&mut self, _cx: &mut nautix_kernel::ResumeCx) -> nautix_kernel::Action {
        use nautix_kernel::Action;
        loop {
            if self.frame_idx >= self.frames_to_run {
                return Action::Exit;
            }
            let fi = self.frame_idx % self.schedule.frames.len();
            let frame = &self.schedule.frames[fi];
            if self.placement_idx < frame.placements.len() {
                let p = frame.placements[self.placement_idx];
                self.placement_idx += 1;
                self.executed.push(p);
                return Action::Compute(self.ns_to_cycles(p.duration).max(1));
            }
            // Frame complete: park until the next arrival of the hosting
            // constraint, which is the next frame boundary.
            self.frame_idx += 1;
            self.placement_idx = 0;
            if self.frame_idx < self.frames_to_run {
                return Action::Call(nautix_kernel::SysCall::WaitNextPeriod);
            }
        }
    }

    fn name(&self) -> &str {
        "cyclic-executive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(period: Nanos, wcet: Nanos) -> CyclicTask {
        CyclicTask { period, wcet }
    }

    #[test]
    fn textbook_set_compiles_and_verifies() {
        // The classic example shape: harmonic-ish periods.
        let set = [t(100_000, 20_000), t(200_000, 30_000), t(400_000, 50_000)];
        let s = compile(&set).unwrap();
        assert_eq!(s.hyperperiod, 400_000);
        assert_eq!(s.hyperperiod % s.frame, 0);
        s.verify().unwrap();
        // Utilization: 20% + 15% + 12.5%.
        assert_eq!(s.utilization_ppm(), 475_000);
    }

    #[test]
    fn frame_conditions_hold() {
        let set = [t(100_000, 20_000), t(150_000, 30_000)];
        let s = compile(&set).unwrap();
        assert!(s.frame >= 30_000, "largest job must fit");
        for task in &s.tasks {
            assert!(
                2 * s.frame <= task.period + super::gcd(s.frame, task.period),
                "frame condition violated for period {}",
                task.period
            );
        }
        s.verify().unwrap();
    }

    #[test]
    fn overutilized_sets_are_rejected() {
        let set = [t(100_000, 60_000), t(100_000, 50_000)];
        assert_eq!(compile(&set), Err(CyclicError::Overutilized));
    }

    #[test]
    fn degenerate_sets_are_rejected() {
        assert_eq!(compile(&[]), Err(CyclicError::Degenerate));
        assert_eq!(compile(&[t(0, 1)]), Err(CyclicError::Degenerate));
        assert_eq!(compile(&[t(100, 0)]), Err(CyclicError::Degenerate));
    }

    #[test]
    fn hyperperiod_overflow_is_caught() {
        // Large mutually prime periods blow up the LCM.
        let set = [t(999_999_937, 10), t(999_999_893, 10), t(999_999_797, 10)];
        assert_eq!(compile(&set), Err(CyclicError::HyperperiodOverflow));
    }

    #[test]
    fn splitting_lets_full_utilization_schedules_compile() {
        // 100%: only schedulable because slices split across frames.
        let set = [t(100_000, 50_000), t(200_000, 100_000)];
        let s = compile(&set).unwrap();
        assert_eq!(s.utilization_ppm(), 1_000_000);
        s.verify().unwrap();
    }

    #[test]
    fn verify_catches_tampering() {
        let set = [t(100_000, 20_000), t(200_000, 30_000)];
        let mut s = compile(&set).unwrap();
        // Steal time from a placement: verification must notice.
        s.frames
            .iter_mut()
            .flat_map(|f| f.placements.iter_mut())
            .next()
            .unwrap()
            .duration -= 1;
        assert!(s.verify().is_err());
    }

    #[test]
    fn render_lists_every_frame_and_placement() {
        let set = [t(100_000, 20_000), t(200_000, 30_000)];
        let s = compile(&set).unwrap();
        let r = s.render();
        assert!(r.contains("cyclic executive"));
        for i in 0..s.frames.len() {
            assert!(
                r.contains(&format!("frame {i} ")),
                "missing frame {i} in:\n{r}"
            );
        }
        let placements: usize = s.frames.iter().map(|f| f.placements.len()).sum();
        assert_eq!(
            r.matches("µs)").count(),
            placements + s.frames.len(),
            "every placement and every frame load should be printed"
        );
    }

    #[test]
    fn hosting_constraints_cover_the_peak_frame() {
        let set = [t(100_000, 20_000), t(400_000, 80_000)];
        let s = compile(&set).unwrap();
        let c = s.hosting_constraints(5_000);
        match c {
            nautix_kernel::Constraints::Periodic { period, slice, .. } => {
                assert_eq!(period, s.frame);
                assert!(slice >= s.peak_frame_load());
                assert!(slice <= s.frame);
            }
            _ => panic!("periodic expected"),
        }
    }
}
