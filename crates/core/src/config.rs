//! Typed harness configuration.
//!
//! Experiment binaries, the parallel trial harness, and node construction
//! used to read `NAUTIX_THREADS` / `NAUTIX_ORACLES` directly from the
//! environment at scattered points. [`HarnessConfig`] replaces those with
//! one typed value: construct it explicitly in tests (so behavior is a
//! function of arguments, not ambient process state), or call
//! [`HarnessConfig::from_env`] exactly once at a binary's entry point —
//! the environment variables survive only as the compat shim inside that
//! constructor.

use crate::admission::AdmissionEngine;
use nautix_hw::FaultPlan;

/// The `NAUTIX_ADMISSION` escape hatch: `fresh` forces every node built
/// afterwards onto the fresh-recompute admission engine (the reference the
/// incremental engine is differentially tested against); `incremental`
/// forces the default explicitly. Any other value — including unset — means
/// "no override". Like [`HarnessConfig::from_env`], this reads the
/// environment on every call so test-scoped overrides are observed.
pub fn env_admission_engine() -> Option<AdmissionEngine> {
    match std::env::var("NAUTIX_ADMISSION") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "fresh" => Some(AdmissionEngine::Fresh),
            "incremental" => Some(AdmissionEngine::Incremental),
            _ => None,
        },
        Err(_) => None,
    }
}

/// Fault-injection intensity, the scalar knob of
/// [`FaultPlan::noisy`]. `0.0` means no injection; the conversion to a
/// concrete [`FaultPlan`] is deferred until a platform frequency is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultIntensity(pub f64);

impl FaultIntensity {
    /// No fault injection.
    pub const OFF: FaultIntensity = FaultIntensity(0.0);

    /// Whether any injection is requested.
    pub fn enabled(self) -> bool {
        self.0 > 0.0
    }

    /// The concrete plan for a machine running at `freq`.
    pub fn plan(self, freq: nautix_des::Freq) -> FaultPlan {
        FaultPlan::noisy(freq, self.0)
    }
}

/// How a harness run is configured: worker threads for parallel trials,
/// whether every constructed node arms the online invariant oracles, and
/// the fault-injection intensity for experiments that opt in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessConfig {
    /// Host worker threads for the parallel trial harness.
    pub threads: usize,
    /// Arm the online invariant oracles on every node (panic on the first
    /// invariant violation).
    pub oracles: bool,
    /// Fault-injection intensity for experiments that opt in. The paper
    /// reproduction never applies this implicitly — an enabled intensity
    /// changes results only where a harness passes it into a machine.
    pub faults: FaultIntensity,
}

impl HarnessConfig {
    /// Serial, oracle-free, fault-free: the explicit-configuration
    /// baseline for tests.
    pub fn serial() -> Self {
        HarnessConfig {
            threads: 1,
            oracles: false,
            faults: FaultIntensity::OFF,
        }
    }

    /// A config with `threads` workers and everything else off.
    pub fn with_threads(threads: usize) -> Self {
        HarnessConfig {
            threads: threads.max(1),
            ..HarnessConfig::serial()
        }
    }

    /// The single environment entry point:
    ///
    /// * `NAUTIX_THREADS` — worker count (≥ 1); defaults to the host's
    ///   available parallelism,
    /// * `NAUTIX_ORACLES` — `1`/`true`/`yes`/`on` arms the oracles,
    /// * `NAUTIX_FAULTS` — fault intensity as a float (`0` disables).
    ///
    /// Reads the environment on every call (no caching), so tests that
    /// scope an override around a run observe it; everything downstream of
    /// a binary's entry point should take the constructed value instead of
    /// calling this again.
    pub fn from_env() -> Self {
        let threads = std::env::var("NAUTIX_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let oracles = std::env::var("NAUTIX_ORACLES")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                matches!(v.as_str(), "1" | "true" | "yes" | "on")
            })
            .unwrap_or(false);
        let faults = std::env::var("NAUTIX_FAULTS")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|x| x.is_finite() && *x > 0.0)
            .map(FaultIntensity)
            .unwrap_or(FaultIntensity::OFF);
        HarnessConfig {
            threads,
            oracles,
            faults,
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_des::Freq;

    #[test]
    fn serial_baseline_is_inert() {
        let c = HarnessConfig::serial();
        assert_eq!(c.threads, 1);
        assert!(!c.oracles);
        assert!(!c.faults.enabled());
        assert_eq!(c.faults.plan(Freq::phi()), FaultPlan::disabled());
        assert_eq!(HarnessConfig::default(), c);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(HarnessConfig::with_threads(0).threads, 1);
        assert_eq!(HarnessConfig::with_threads(7).threads, 7);
    }

    #[test]
    fn admission_engine_override_parses_known_values_only() {
        // Scoped override: from_env-style helpers re-read on every call.
        std::env::set_var("NAUTIX_ADMISSION", "fresh");
        assert_eq!(env_admission_engine(), Some(AdmissionEngine::Fresh));
        std::env::set_var("NAUTIX_ADMISSION", "Incremental");
        assert_eq!(env_admission_engine(), Some(AdmissionEngine::Incremental));
        std::env::set_var("NAUTIX_ADMISSION", "bogus");
        assert_eq!(env_admission_engine(), None);
        std::env::remove_var("NAUTIX_ADMISSION");
        assert_eq!(env_admission_engine(), None);
    }

    #[test]
    fn intensity_converts_to_noisy_plan() {
        let i = FaultIntensity(0.5);
        assert!(i.enabled());
        assert_eq!(i.plan(Freq::phi()), FaultPlan::noisy(Freq::phi(), 0.5));
    }
}
