//! Figure 13: resource control with commensurate performance (coarse).

use nautix_bench::throttle::{self, Granularity};
use nautix_bench::{banner, f, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 13: throttling, coarse granularity (255/63-CPU BSP gang)");
    let pts = throttle::run(Granularity::Coarse, scale, 3);
    let (mean, cv) = throttle::control_quality(&pts);
    println!("period_ns,slice_ns,utilization,time_ns,admitted");
    for p in &pts {
        println!(
            "{},{},{},{},{}",
            p.period_ns,
            p.slice_ns,
            f(p.utilization),
            p.time_ns,
            p.admitted
        );
    }
    println!(
        "control quality: time x utilization = {} ns (cv {}); a small cv means clean throttling",
        f(mean),
        f(cv)
    );
    write_csv(
        &out_dir().join("fig13_throttle_coarse.csv"),
        &[
            "period_ns",
            "slice_ns",
            "utilization",
            "time_ns",
            "admitted",
        ],
        pts.iter().map(|p| {
            vec![
                p.period_ns.to_string(),
                p.slice_ns.to_string(),
                f(p.utilization),
                p.time_ns.to_string(),
                p.admitted.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig13_throttle_coarse.csv"));
}
