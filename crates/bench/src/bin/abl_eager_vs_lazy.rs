//! Ablation: eager vs. lazy EDF under SMI "missing time" (§3.6).

use nautix_bench::{ablations, banner, f, out_dir, write_csv};

fn main() {
    banner("Ablation: eager vs lazy EDF under SMI injection");
    let rows = ablations::eager_vs_lazy(31);
    println!("smi_mean_interval_us,eager_miss_rate,lazy_miss_rate");
    for (smi, e, l) in &rows {
        println!(
            "{},{},{}",
            smi.map(|x| x.to_string()).unwrap_or_else(|| "none".into()),
            f(*e),
            f(*l)
        );
    }
    write_csv(
        &out_dir().join("abl_eager_vs_lazy.csv"),
        &["smi_mean_interval_us", "eager_miss_rate", "lazy_miss_rate"],
        rows.iter().map(|(smi, e, l)| {
            vec![
                smi.map(|x| x.to_string()).unwrap_or_else(|| "none".into()),
                f(*e),
                f(*l),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("abl_eager_vs_lazy.csv"));
}
