//! `nautix-stats`: the live statistics layer.
//!
//! Three pieces, bottom up:
//!
//! * [`snapshot`] — [`StatsSnapshot`], one flat additive bundle of every
//!   counter the evaluation cares about, with a strict versioned text
//!   codec. Deltas merge by component-wise sum, so totals are independent
//!   of worker scheduling.
//! * [`hub`] — [`StatsHub`], a channel collector that merges per-trial
//!   delta snapshots and per-shard progress beats from harness workers
//!   into a process-level series, and atomically publishes [`Frame`]s to
//!   a stream file for live viewers.
//! * `nautix-top` (binary) — a one-screen terminal view over the stream
//!   file: per-shard throughput, miss rates, fault lanes, steal locality.
//!
//! The whole layer is observation-only: streaming on or off, a run's
//! simulated history is byte-identical.

pub mod hub;
pub mod snapshot;

pub use hub::{Frame, HubOptions, HubReport, Sampler, ShardStat, StatsHub, StatsTx};
pub use snapshot::{StatsSnapshot, SNAPSHOT_HEADER, SNAPSHOT_VERSION};
