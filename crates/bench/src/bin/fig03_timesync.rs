//! Figure 3: cross-CPU cycle counter synchronization histogram.

use nautix_bench::{banner, fig03, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 3: TSC synchronization across CPUs (Phi)");
    let r = fig03::run(scale, 42);
    println!("CPUs calibrated: {}", r.cpus);
    println!("residual: {}", r.summary);
    println!("CPUs beyond 1000 cycles: {}", r.over_1000);
    println!("offset_cycles,count");
    for b in r.bins.iter().filter(|b| b.count > 0) {
        println!("{},{}", b.edge, b.count);
    }
    write_csv(
        &out_dir().join("fig03_timesync.csv"),
        &["offset_cycles", "count"],
        r.bins.iter().map(|b| vec![b.edge, b.count]),
    );
    println!("wrote {:?}", out_dir().join("fig03_timesync.csv"));
}
