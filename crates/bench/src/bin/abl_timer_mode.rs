//! Ablation: APIC tick quantization vs TSC-deadline timing (§3.3).

use nautix_bench::{ablations, banner, f, out_dir, write_csv};
use nautix_hw::TimerMode;

fn main() {
    banner("Ablation: timer mode vs dispatch precision (50 µs period)");
    let modes = [
        ("tsc_deadline", TimerMode::TscDeadline),
        ("oneshot_26c", TimerMode::OneShot { tick_cycles: 26 }),
        ("oneshot_260c", TimerMode::OneShot { tick_cycles: 260 }),
        ("oneshot_2600c", TimerMode::OneShot { tick_cycles: 2600 }),
    ];
    let mut rows = Vec::new();
    println!("mode,mean_abs_period_error_cycles");
    for (name, mode) in modes {
        let err = ablations::timer_mode_precision(mode, 13);
        println!("{},{}", name, f(err));
        rows.push(vec![name.to_string(), f(err)]);
    }
    write_csv(
        &out_dir().join("abl_timer_mode.csv"),
        &["mode", "mean_abs_period_error_cycles"],
        rows,
    );
    println!("wrote {:?}", out_dir().join("abl_timer_mode.csv"));
}
