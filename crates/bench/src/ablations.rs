//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation isolates one mechanism the paper argues for and measures
//! the system with it toggled:
//!
//! * eager vs. lazy EDF under SMI injection (§3.6),
//! * the utilization-limit knob under SMI injection (§3.6),
//! * phase correction on/off (§4.4 — see also `groupsync`),
//! * interrupt steering in/out of the RT partition (§3.5),
//! * APIC tick quantization vs. TSC-deadline timing (§3.3),
//! * admission policies: EDF bound vs. RM bound vs. hyperperiod
//!   simulation (§3.2).

use crate::harness::{run_trials, HarnessStats};
use nautix_des::Nanos;
use nautix_hw::{Cost, MachineConfig, SmiConfig, SmiPattern, TimerMode};
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{
    AdmissionPolicy, CpuLoad, HarnessConfig, Node, NodeConfig, SchedConfig, SchedMode,
};

/// Miss rate of a periodic thread under the given scheduler mode and SMI
/// injection intensity.
pub fn miss_rate_under_smi(
    mode: SchedMode,
    smi_mean_interval_us: Option<u64>,
    util_limit_ppm: u64,
    seed: u64,
) -> f64 {
    miss_rate_under_smi_instrumented(mode, smi_mean_interval_us, util_limit_ppm, seed).0
}

/// [`miss_rate_under_smi`] plus the trial's simulated-event count.
pub fn miss_rate_under_smi_instrumented(
    mode: SchedMode,
    smi_mean_interval_us: Option<u64>,
    util_limit_ppm: u64,
    seed: u64,
) -> (f64, u64) {
    let freq = nautix_des::Freq::phi();
    let mut machine = MachineConfig::phi().with_cpus(2).with_seed(seed);
    if let Some(us) = smi_mean_interval_us {
        machine = machine.with_smi(SmiConfig {
            pattern: SmiPattern::Poisson {
                mean_interval: freq.us_to_cycles(us),
            },
            duration: Cost::new(freq.us_to_cycles(100), freq.us_to_cycles(20)),
        });
    }
    let mut cfg = NodeConfig::for_machine(machine);
    cfg.sched.mode = mode;
    cfg.sched.util_limit_ppm = util_limit_ppm;
    cfg.sched.sporadic_reserve_ppm = 0;
    cfg.sched.aperiodic_reserve_ppm = 0;
    let mut node = Node::new(cfg);
    // The thread requests a slice sized to the admissible limit minus a
    // small margin: the tighter the limit, the less slack absorbs SMIs.
    let period: Nanos = 1_000_000;
    let slice = period * (util_limit_ppm.saturating_sub(40_000)) / 1_000_000;
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(period, slice).build(),
            ))
        } else {
            Action::Compute(200_000)
        }
    });
    let tid = node.spawn_on(1, "probe", Box::new(prog)).unwrap();
    node.run_for_ns(300_000_000);
    let rate = node.thread_state(tid).stats.miss_rate();
    (rate, node.machine.events_processed())
}

/// Eager-vs-lazy rows: (smi interval µs or None, eager rate, lazy rate).
/// The eight underlying simulations are independent trials fanned across
/// worker threads.
pub fn eager_vs_lazy_with_stats(
    hc: &HarnessConfig,
    seed: u64,
) -> (Vec<(Option<u64>, f64, f64)>, HarnessStats) {
    let intervals = [None, Some(50_000u64), Some(10_000), Some(3_000)];
    let trials: Vec<(Option<u64>, SchedMode)> = intervals
        .iter()
        .flat_map(|&smi| [(smi, SchedMode::Eager), (smi, SchedMode::Lazy)])
        .collect();
    let set = run_trials(hc, trials, |&(smi, mode)| {
        miss_rate_under_smi_instrumented(mode, smi, 900_000, seed)
    });
    let rows = intervals
        .iter()
        .enumerate()
        .map(|(i, &smi)| (smi, set.results[2 * i], set.results[2 * i + 1]))
        .collect();
    (rows, set.stats)
}

/// [`eager_vs_lazy_with_stats`] without the instrumentation, configured
/// from the environment.
pub fn eager_vs_lazy(seed: u64) -> Vec<(Option<u64>, f64, f64)> {
    eager_vs_lazy_with_stats(&HarnessConfig::from_env(), seed).0
}

/// Utilization-limit knob rows: (limit %, miss rate) under fixed SMI noise,
/// one independent trial per limit.
pub fn util_limit_knob_with_stats(
    hc: &HarnessConfig,
    seed: u64,
) -> (Vec<(u64, f64)>, HarnessStats) {
    let limits = vec![990_000u64, 950_000, 900_000, 800_000, 700_000];
    let set = run_trials(hc, limits.clone(), |&limit| {
        miss_rate_under_smi_instrumented(SchedMode::Eager, Some(5_000), limit, seed)
    });
    let rows = limits
        .iter()
        .zip(&set.results)
        .map(|(&limit, &rate)| (limit / 10_000, rate))
        .collect();
    (rows, set.stats)
}

/// [`util_limit_knob_with_stats`] without the instrumentation, configured
/// from the environment.
pub fn util_limit_knob(seed: u64) -> Vec<(u64, f64)> {
    util_limit_knob_with_stats(&HarnessConfig::from_env(), seed).0
}

/// Interrupt steering: jitter of an RT thread's dispatches with device
/// interrupts steered away (default partition) vs. onto its CPU.
pub fn steering_effect(steer_to_rt_cpu: bool, seed: u64) -> f64 {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(3).with_seed(seed);
    cfg.dispatch_log_cap = 4096;
    let mut node = Node::new(cfg);
    if steer_to_rt_cpu {
        node.steer_irq(1, 1);
    } else {
        node.steer_irq(1, 0);
    }
    let prog = FnProgram::new(|_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(100_000, 30_000).build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    let tid = node.spawn_on(1, "rt", Box::new(prog)).unwrap();
    // A chatty device: one interrupt every ~20 µs.
    for _ in 0..2000 {
        node.raise_device_irq(1);
        node.run_for_ns(20_000);
    }
    // Dispatch interval jitter (cycles) of the RT thread.
    let times = node.thread_state(tid).dispatch_log.times();
    let freq = node.freq();
    let intervals: Vec<u64> = times
        .windows(2)
        .map(|w| freq.ns_to_cycles(w[1] - w[0]))
        .collect();
    nautix_des::Summary::of(&intervals).std_dev
}

/// Timer-mode wakeup precision: mean absolute error (cycles) between
/// consecutive dispatch intervals and the programmed period.
pub fn timer_mode_precision(mode: TimerMode, seed: u64) -> f64 {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi()
        .with_cpus(2)
        .with_seed(seed)
        .with_timer_mode(mode);
    cfg.dispatch_log_cap = 4096;
    let mut node = Node::new(cfg);
    let period: Nanos = 50_000;
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(period, 10_000).build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    let tid = node.spawn_on(1, "rt", Box::new(prog)).unwrap();
    node.run_for_ns(100_000_000);
    let times = node.thread_state(tid).dispatch_log.times();
    let freq = node.freq();
    let period_cycles = freq.ns_to_cycles(period) as f64;
    let errs: Vec<f64> = times
        .windows(2)
        .map(|w| (freq.ns_to_cycles(w[1] - w[0]) as f64 - period_cycles).abs())
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

/// Hard vs. soft real-time under overload (§7 contrasts this work with
/// the authors' earlier soft model): two threads each want 60% of one CPU.
/// Hard admission rejects one of them and the admitted one never misses;
/// the soft configuration admits both and each misses a large fraction.
/// Returns `(hard_admitted_missrate, hard_admitted_count, soft_missrates)`.
pub fn hard_vs_soft_overload(seed: u64) -> (f64, usize, Vec<f64>) {
    use nautix_hw::MachineConfig as MC;
    let run = |admission: bool| {
        let mut cfg = NodeConfig::for_machine(MC::phi().with_cpus(2).with_seed(seed));
        cfg.sched.admission_enabled = admission;
        cfg.sched.sporadic_reserve_ppm = 0;
        cfg.sched.aperiodic_reserve_ppm = 0;
        let mut node = Node::new(cfg);
        let admitted = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut tids = Vec::new();
        for t in 0..2usize {
            let admitted2 = admitted.clone();
            let prog = FnProgram::new(move |cx, n| {
                if n == 0 {
                    Action::Call(SysCall::ChangeConstraints(
                        Constraints::periodic(1_000_000, 600_000).build(),
                    ))
                } else {
                    if n == 1 {
                        admitted2
                            .borrow_mut()
                            .push((t, cx.result == nautix_kernel::SysResult::Admission(Ok(()))));
                    }
                    Action::Compute(200_000)
                }
            });
            tids.push(node.spawn_on(1, &format!("t{t}"), Box::new(prog)).unwrap());
        }
        node.run_for_ns(200_000_000);
        let rates: Vec<f64> = tids
            .iter()
            .map(|&t| node.thread_state(t).stats.miss_rate())
            .collect();
        let flags = admitted.borrow().clone();
        drop(node);
        (rates, flags)
    };
    let (hard_rates, hard_flags) = run(true);
    let (soft_rates, _) = run(false);
    let admitted_count = hard_flags.iter().filter(|&&(_, ok)| ok).count();
    let admitted_rate = hard_flags
        .iter()
        .find(|&&(_, ok)| ok)
        .map(|&(t, _)| hard_rates[t])
        .unwrap_or(f64::NAN);
    (admitted_rate, admitted_count, soft_rates)
}

/// Admission-policy comparison on a fixed constraint menu. Returns rows of
/// `(label, edf, rm, hyperperiod)` acceptance.
pub fn admission_policy_matrix() -> Vec<(&'static str, bool, bool, bool)> {
    let menu: Vec<(&'static str, Vec<Constraints>)> = vec![
        (
            "two_large_tasks_77pct",
            vec![
                Constraints::periodic(100_000, 47_000).build(),
                Constraints::periodic(100_000, 30_000).build(),
            ],
        ),
        (
            "three_tasks_78pct",
            vec![
                Constraints::periodic(100_000, 30_000).build(),
                Constraints::periodic(100_000, 30_000).build(),
                Constraints::periodic(100_000, 18_000).build(),
            ],
        ),
        (
            "fine_grain_50pct_at_10us",
            vec![Constraints::periodic(10_000, 5_000).build()],
        ),
        (
            "coarse_50pct_at_1ms",
            vec![Constraints::periodic(1_000_000, 500_000).build()],
        ),
    ];
    let policies = [
        AdmissionPolicy::EdfBound,
        AdmissionPolicy::RmBound,
        AdmissionPolicy::HyperperiodSim {
            overhead_ns: 9_200, // two Phi interrupts
            window_cap_ns: 1_000_000_000,
        },
    ];
    menu.into_iter()
        .map(|(label, set)| {
            let mut accepted = [true; 3];
            for (i, policy) in policies.iter().enumerate() {
                let cfg = SchedConfig {
                    policy: *policy,
                    ..SchedConfig::default()
                };
                let mut load = CpuLoad::new();
                for c in &set {
                    if load.admit(&cfg, c).is_err() {
                        accepted[i] = false;
                        break;
                    }
                }
            }
            (label, accepted[0], accepted[1], accepted[2])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_beats_lazy_under_smi() {
        let rows = eager_vs_lazy(31);
        // Without SMIs both modes meet everything.
        let (none, eager0, lazy0) = rows[0];
        assert_eq!(none, None);
        assert!(eager0 < 0.02, "eager clean rate {eager0}");
        assert!(lazy0 < 0.05, "lazy clean rate {lazy0}");
        // With aggressive SMIs, lazy misses much more.
        let (_, eager_hot, lazy_hot) = rows[3];
        assert!(
            lazy_hot > eager_hot + 0.05,
            "lazy {lazy_hot} must miss more than eager {eager_hot}"
        );
    }

    #[test]
    fn lower_utilization_limit_absorbs_more_smi_noise() {
        let rows = util_limit_knob(31);
        let at99 = rows[0].1;
        let at70 = rows.last().unwrap().1;
        assert!(
            at70 < at99,
            "a 70% limit ({at70}) should miss less than 99% ({at99})"
        );
    }

    #[test]
    fn steering_interrupts_at_the_rt_cpu_adds_jitter() {
        let away = steering_effect(false, 13);
        let onto = steering_effect(true, 13);
        assert!(
            onto > away,
            "device interrupts on the RT CPU must add jitter ({onto} vs {away})"
        );
    }

    #[test]
    fn tsc_deadline_is_more_precise_than_coarse_ticks() {
        let coarse = timer_mode_precision(TimerMode::OneShot { tick_cycles: 2600 }, 13);
        let exact = timer_mode_precision(TimerMode::TscDeadline, 13);
        assert!(
            exact < coarse,
            "TSC deadline ({exact}) should beat a 2 µs tick ({coarse})"
        );
    }

    #[test]
    fn hard_admission_protects_but_soft_overload_degrades_everyone() {
        let (admitted_rate, admitted_count, soft_rates) = hard_vs_soft_overload(47);
        assert_eq!(admitted_count, 1, "hard admission accepts exactly one");
        assert_eq!(
            admitted_rate, 0.0,
            "the admitted hard-RT thread never misses"
        );
        assert!(
            soft_rates.iter().any(|&r| r > 0.25),
            "soft overload must show heavy misses: {soft_rates:?}"
        );
    }

    #[test]
    fn policies_disagree_exactly_where_expected() {
        let rows = admission_policy_matrix();
        let get = |label: &str| rows.iter().find(|r| r.0 == label).copied().unwrap();
        // 77%: under both EDF budget (79%) and 2-task RM bound (82.8%).
        assert_eq!(
            get("two_large_tasks_77pct"),
            ("two_large_tasks_77pct", true, true, true)
        );
        // 78% with 3 tasks: over the 3-task RM bound (~78.0%), under EDF.
        let r = get("three_tasks_78pct");
        assert!(r.1, "EDF accepts 78%");
        assert!(!r.2, "RM rejects 78% with 3 tasks");
        // 50% at 10 µs: bounds accept, the overhead-aware simulation must
        // reject (overhead eats the period).
        let r = get("fine_grain_50pct_at_10us");
        assert!(r.1 && r.2);
        assert!(!r.3, "hyperperiod simulation must reject 10 µs / 50%");
        // The same 50% at 1 ms is fine for everyone.
        assert_eq!(
            get("coarse_50pct_at_1ms"),
            ("coarse_50pct_at_1ms", true, true, true)
        );
    }
}
