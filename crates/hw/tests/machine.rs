//! Behavioral tests of the machine model: timers, interrupts, operations,
//! busy windows, TPR filtering, IPIs, SMI missing time, and determinism.

use nautix_hw::{
    Cost, Machine, MachineConfig, MachineEvent, SmiConfig, SmiPattern, TimerMode, VEC_KICK,
};

fn small_machine() -> Machine {
    let cfg = MachineConfig::phi().with_cpus(4).with_seed(99);
    Machine::new(cfg)
}

#[test]
fn quiescent_machine_returns_none() {
    let mut m = small_machine();
    assert!(m.advance().is_none());
}

#[test]
fn one_shot_timer_fires_once() {
    let mut m = small_machine();
    m.set_timer_ns(0, 10_000); // 10 us
    let (t, ev) = m.advance().expect("timer should fire");
    assert_eq!(ev, MachineEvent::TimerInterrupt { cpu: 0 });
    // 10 us at 1.3 GHz is 13_000 cycles; quantization only rounds down and
    // the raise latency is small.
    assert!((12_900..=13_500).contains(&t), "fired at {t}");
    assert!(m.advance().is_none(), "one-shot must not re-fire");
}

#[test]
fn reprogramming_timer_cancels_previous() {
    let mut m = small_machine();
    m.set_timer_ns(0, 10_000);
    m.set_timer_ns(0, 50_000); // reprogram before it fires
    let (t, ev) = m.advance().unwrap();
    assert_eq!(ev, MachineEvent::TimerInterrupt { cpu: 0 });
    assert!(
        t >= m.freq().ns_to_cycles(50_000),
        "old programming fired at {t}"
    );
    assert!(m.advance().is_none());
}

#[test]
fn rearm_storm_allocates_nothing_and_only_latest_fires() {
    let mut m = small_machine();
    let backlog0 = m.event_backlog();
    // A pathological re-arm storm on one CPU: tens of thousands of
    // programmings before anything fires. Each one overwrites the per-CPU
    // slot in place, so pending event state must not grow at all.
    let mut expect = 0;
    for i in 0..50_000u64 {
        // `set_timer_cycles` returns the quantized hardware delay; with
        // the machine at t=0 that is also the armed deadline.
        expect = m.set_timer_cycles(0, 5_000 + (i % 7) * 1_000);
    }
    assert_eq!(
        m.event_backlog(),
        backlog0,
        "re-arming must not grow the event heap"
    );
    assert_eq!(m.timer_programmings(), 50_000);
    // Only the LAST programming exists.
    assert_eq!(m.timer_deadline(0), Some(expect));
    let (t, ev) = m.advance().expect("latest programming must fire");
    assert_eq!(ev, MachineEvent::TimerInterrupt { cpu: 0 });
    assert!(t >= expect, "fired at {t}, armed for {expect}");
    assert!(m.advance().is_none(), "exactly one firing for the storm");
}

#[test]
fn rearm_storm_on_one_cpu_leaves_other_timers_intact() {
    let mut m = small_machine();
    m.set_timer_cycles(1, 3_000);
    for _ in 0..10_000 {
        m.set_timer_cycles(0, 100_000);
    }
    let (_, ev) = m.advance().unwrap();
    assert_eq!(
        ev,
        MachineEvent::TimerInterrupt { cpu: 1 },
        "cpu 1's earlier deadline must win despite cpu 0's storm"
    );
    let (_, ev) = m.advance().unwrap();
    assert_eq!(ev, MachineEvent::TimerInterrupt { cpu: 0 });
}

#[test]
fn cancel_timer_suppresses_firing() {
    let mut m = small_machine();
    m.set_timer_ns(1, 10_000);
    m.cancel_timer(1);
    assert!(m.advance().is_none());
}

#[test]
fn timer_quantization_is_conservative() {
    let cfg = MachineConfig::phi()
        .with_cpus(1)
        .with_timer_mode(TimerMode::OneShot { tick_cycles: 1000 })
        .with_seed(1);
    let mut m = Machine::new(cfg);
    // 1.5 ticks requested -> 1 tick actual.
    let actual = m.set_timer_cycles(0, 1500);
    assert_eq!(actual, 1000);
}

#[test]
fn ops_complete_after_their_cycles() {
    let mut m = small_machine();
    m.begin_op(0, 5000, 77);
    let (t, ev) = m.advance().unwrap();
    assert_eq!(t, 5000);
    assert_eq!(ev, MachineEvent::OpComplete { cpu: 0, token: 77 });
}

#[test]
fn cancel_op_reports_remaining_cycles() {
    let mut m = small_machine();
    m.set_timer_ns(0, 2_000); // interrupts the op below
    m.begin_op(0, 100_000, 5);
    let (t, ev) = m.advance().unwrap();
    assert!(matches!(ev, MachineEvent::TimerInterrupt { cpu: 0 }));
    let (token, remaining) = m.cancel_op(0).expect("op was in flight");
    assert_eq!(token, 5);
    assert_eq!(remaining, 100_000 - t);
    assert!(m.advance().is_none(), "cancelled op must not complete");
}

#[test]
fn charge_defers_interrupt_delivery() {
    let mut m = small_machine();
    m.charge_raw(0, 50_000); // kernel busy for 50k cycles
    m.set_timer_cycles(0, 1_000); // would fire mid-busy
    let (t, ev) = m.advance().unwrap();
    assert!(matches!(ev, MachineEvent::TimerInterrupt { cpu: 0 }));
    assert!(t >= 50_000, "delivered during the busy window at {t}");
}

#[test]
fn tpr_blocks_device_interrupts_until_lowered() {
    let mut m = small_machine();
    m.set_tpr(2, 13); // hard-RT thread running: only priority >13 delivered
    m.raise_irq(2, 4);
    assert!(m.advance().is_none(), "blocked vector must stay pending");
    m.set_tpr(2, 0);
    let (_, ev) = m.advance().unwrap();
    assert_eq!(ev, MachineEvent::DeviceInterrupt { cpu: 2, irq: 4 });
}

#[test]
fn tpr_does_not_block_scheduling_vectors() {
    let mut m = small_machine();
    m.set_tpr(1, 13);
    m.set_timer_ns(1, 1_000);
    m.send_kick(0, 1);
    let mut got_timer = false;
    let mut got_kick = false;
    while let Some((_, ev)) = m.advance() {
        match ev {
            MachineEvent::TimerInterrupt { cpu: 1 } => got_timer = true,
            MachineEvent::Ipi { cpu: 1, vector } if vector == VEC_KICK => got_kick = true,
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(got_timer && got_kick);
}

#[test]
fn ipi_has_latency() {
    let mut m = small_machine();
    m.send_kick(0, 3);
    let (t, ev) = m.advance().unwrap();
    assert!(matches!(ev, MachineEvent::Ipi { cpu: 3, .. }));
    let lat = m.cost_model().ipi_latency;
    assert!(t >= lat.base && t <= lat.worst());
}

#[test]
fn boot_skew_gives_cpu0_zero_offset_and_others_positive() {
    let m = Machine::new(MachineConfig::phi().with_cpus(8).with_seed(3));
    assert_eq!(m.tsc_true_offset(0), 0);
    let mut nonzero = 0;
    for c in 1..8 {
        let off = m.tsc_true_offset(c);
        assert!(off >= 0);
        if off != 0 {
            nonzero += 1;
        }
    }
    assert!(nonzero >= 6, "boot skew should almost surely be nonzero");
}

#[test]
fn tsc_reads_reflect_offset_and_time() {
    let mut m = small_machine();
    let off1 = m.tsc_true_offset(1);
    assert_eq!(m.read_tsc(1) as i64, off1);
    m.begin_op(0, 1000, 0);
    m.advance();
    assert_eq!(m.read_tsc(1) as i64, 1000 + off1);
}

#[test]
fn adjust_tsc_moves_phase_with_bounded_slop() {
    let mut m = small_machine();
    let before = m.tsc_true_offset(2);
    assert!(m.adjust_tsc(2, -before));
    let resid = m.tsc_true_offset(2);
    let slop = m.cost_model().tsc_write_granularity.worst() as i64;
    assert!(
        resid >= 0 && resid <= slop,
        "residual {resid} slop bound {slop}"
    );
}

#[test]
fn smi_stretches_inflight_ops() {
    // One periodic SMI at t=10_000 stalling ~13_000 cycles.
    let smi = SmiConfig {
        pattern: SmiPattern::Periodic {
            interval: 10_000_000,
        },
        duration: Cost::fixed(13_000),
    };
    // First SMI enters at t=interval... use a small interval variant:
    let smi_soon = SmiConfig {
        pattern: SmiPattern::Periodic { interval: 10_000 },
        duration: smi.duration,
    };
    let cfg = MachineConfig::phi()
        .with_cpus(2)
        .with_seed(7)
        .with_smi(smi_soon);
    let mut m = Machine::new(cfg);
    m.begin_op(0, 50_000, 1);
    let (t, ev) = m.advance().unwrap();
    assert_eq!(ev, MachineEvent::OpComplete { cpu: 0, token: 1 });
    // SMIs enter 10_000 cycles after each stall ends: at 10k, 33k, 56k and
    // 79k, each stretching the op by 13_000. The op needs 50_000 cycles of
    // actual execution, so it completes at 50_000 + 4 x 13_000 = 102_000.
    assert_eq!(t, 102_000);
    assert_eq!(m.smi_stats().count, 4);
    assert_eq!(m.smi_stats().stalled_cycles, 52_000);
}

#[test]
fn smi_defers_interrupt_delivery_but_not_tsc() {
    let smi = SmiConfig {
        pattern: SmiPattern::Periodic { interval: 5_000 },
        duration: Cost::fixed(20_000),
    };
    let cfg = MachineConfig::phi().with_cpus(1).with_seed(7).with_smi(smi);
    let mut m = Machine::new(cfg);
    m.set_timer_cycles(0, 6_000); // fires inside the SMI window [5k, 25k)
    let (t, ev) = m.advance().unwrap();
    assert!(matches!(ev, MachineEvent::TimerInterrupt { cpu: 0 }));
    assert!(t >= 25_000, "handler ran during SMI at {t}");
    // Missing time: the TSC shows the full elapsed time, stall included.
    assert_eq!(m.read_tsc(0), t);
}

#[test]
fn wakeups_fire_in_order_with_tokens() {
    let mut m = small_machine();
    m.schedule_wakeup(300, 3, None);
    m.schedule_wakeup(100, 1, None);
    m.schedule_wakeup(200, 2, None);
    let mut tokens = Vec::new();
    while let Some((_, ev)) = m.advance() {
        if let MachineEvent::Wakeup { token } = ev {
            tokens.push(token);
        }
    }
    assert_eq!(tokens, vec![1, 2, 3]);
}

#[test]
fn cancelled_wakeup_does_not_fire() {
    let mut m = small_machine();
    let ev = m.schedule_wakeup(100, 1, None);
    m.schedule_wakeup(200, 2, None);
    m.cancel_wakeup(ev);
    let (_, got) = m.advance().unwrap();
    assert_eq!(got, MachineEvent::Wakeup { token: 2 });
}

#[test]
fn cpu_bound_wakeup_defers_on_busy_window() {
    let mut m = small_machine();
    m.charge_raw(1, 10_000);
    m.schedule_wakeup(100, 9, Some(1));
    let (t, _) = m.advance().unwrap();
    assert!(t >= 10_000);
}

#[test]
fn identical_seeds_produce_identical_traces() {
    let run = |seed: u64| {
        let cfg = MachineConfig::phi()
            .with_cpus(4)
            .with_seed(seed)
            .with_smi(SmiConfig {
                pattern: SmiPattern::Poisson {
                    mean_interval: 100_000,
                },
                duration: Cost::new(5_000, 2_000),
            });
        let mut m = Machine::new(cfg);
        for c in 0..4 {
            m.set_timer_ns(c, 10_000 + c as u64 * 100);
        }
        let mut log = Vec::new();
        for _ in 0..32 {
            match m.advance() {
                Some((t, ev)) => {
                    log.push((t, format!("{ev:?}")));
                    if let MachineEvent::TimerInterrupt { cpu } = ev {
                        m.set_timer_ns(cpu, 10_000);
                    }
                }
                None => break,
            }
        }
        log
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}

#[test]
fn gpio_writes_are_captured_at_true_time() {
    let mut m = small_machine();
    m.gpio().start_capture();
    m.begin_op(0, 500, 0);
    m.advance();
    m.gpio_write(0b1, 0b1);
    let trace = m.gpio().take_trace();
    assert_eq!(trace.len(), 1);
    assert_eq!(trace[0].time, 500);
    assert_eq!(trace[0].pins, 1);
}

#[test]
#[should_panic]
fn double_begin_op_panics() {
    let mut m = small_machine();
    m.begin_op(0, 100, 1);
    m.begin_op(0, 100, 2);
}

#[test]
fn pending_device_irq_survives_an_smi() {
    // Masked by TPR, then an SMI passes; lowering the TPR afterwards must
    // still deliver the interrupt exactly once.
    let smi = SmiConfig {
        pattern: SmiPattern::Periodic { interval: 5_000 },
        duration: Cost::fixed(2_000),
    };
    let cfg = MachineConfig::phi()
        .with_cpus(1)
        .with_seed(13)
        .with_smi(smi);
    let mut m = Machine::new(cfg);
    m.set_tpr(0, 13);
    m.raise_irq(0, 9);
    // Nothing deliverable yet; run past a few SMIs via a far timer.
    m.set_timer_cycles(0, 20_000);
    let (_, ev) = m.advance().unwrap();
    assert!(matches!(ev, MachineEvent::TimerInterrupt { cpu: 0 }));
    m.set_tpr(0, 0);
    let (_, ev) = m.advance().unwrap();
    assert_eq!(ev, MachineEvent::DeviceInterrupt { cpu: 0, irq: 9 });
}

#[test]
fn self_kick_is_delivered() {
    let mut m = small_machine();
    m.send_kick(2, 2);
    let (_, ev) = m.advance().unwrap();
    assert!(matches!(ev, MachineEvent::Ipi { cpu: 2, .. }));
}

#[test]
fn interrupts_queue_behind_a_long_busy_window_in_order() {
    let mut m = small_machine();
    m.charge_raw(0, 100_000);
    m.set_timer_cycles(0, 1_000);
    m.send_kick(1, 0);
    m.raise_irq(0, 3);
    let mut order = Vec::new();
    while let Some((t, ev)) = m.advance() {
        assert!(t >= 100_000, "delivered inside the busy window at {t}");
        order.push(format!("{ev:?}"));
    }
    assert_eq!(order.len(), 3, "all three deferred interrupts must arrive");
}

#[test]
fn zero_cycle_op_completes_immediately() {
    let mut m = small_machine();
    m.begin_op(1, 0, 42);
    let (t, ev) = m.advance().unwrap();
    assert_eq!(t, 0);
    assert_eq!(ev, MachineEvent::OpComplete { cpu: 1, token: 42 });
}

#[test]
fn cancel_without_op_returns_none() {
    let mut m = small_machine();
    assert!(m.cancel_op(0).is_none());
    assert!(!m.op_in_flight(0));
}
