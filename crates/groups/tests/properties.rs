//! Property-based tests of the group coordination primitives.

use nautix_des::DetRng;
use nautix_groups::{Collective, CollectiveOutcome, Decision, GroupRegistry};
use nautix_hw::Cost;
use proptest::prelude::*;

proptest! {
    /// A completed collective delivers the correct decision to every
    /// member, and the release schedule covers exactly the participants
    /// with strictly increasing delays after order 0.
    #[test]
    fn collective_decisions_are_correct(
        values in prop::collection::vec(0u64..1_000_000, 1..64),
        which in 0usize..3,
    ) {
        let n = values.len();
        let mut c = Collective::new(n);
        let mut rng = DetRng::seed_from(9);
        let leader = 0usize;
        let decision = match which {
            0 => Decision::Min,
            1 => Decision::Max,
            _ => Decision::Of(leader),
        };
        let mut outcome = None;
        for (tid, &v) in values.iter().enumerate() {
            match c.arrive(tid, v, decision, &mut rng, Cost::new(100, 50)) {
                CollectiveOutcome::Wait => prop_assert!(tid + 1 < n),
                CollectiveOutcome::Complete(rs) => {
                    prop_assert_eq!(tid + 1, n, "only the last arrival completes");
                    outcome = Some(rs);
                }
            }
        }
        let rs = outcome.expect("collective completed");
        let expect = match which {
            0 => *values.iter().min().unwrap(),
            1 => *values.iter().max().unwrap(),
            _ => values[leader],
        };
        prop_assert!(rs.iter().all(|r| r.result == expect));
        // Exactly the participants, each once.
        let mut tids: Vec<usize> = rs.iter().map(|r| r.tid).collect();
        tids.sort_unstable();
        prop_assert_eq!(tids, (0..n).collect::<Vec<_>>());
        // Orders 0..n with monotone delays.
        let mut by_order = rs.clone();
        by_order.sort_by_key(|r| r.order);
        prop_assert!(by_order.windows(2).all(|w| w[0].delay <= w[1].delay));
        prop_assert_eq!(by_order[0].delay, 0);
    }

    /// Join/leave sequences keep the registry's membership equal to a
    /// reference set model, and collective parties track it.
    #[test]
    fn membership_matches_model(
        ops in prop::collection::vec((0usize..24, prop::bool::ANY), 1..100),
    ) {
        let mut reg = GroupRegistry::new();
        let gid = reg.create("model").unwrap();
        let mut model: Vec<usize> = Vec::new();
        for &(tid, join) in &ops {
            if join {
                reg.join(gid, tid).unwrap();
                if !model.contains(&tid) {
                    model.push(tid);
                }
            } else {
                let res = reg.leave(gid, tid);
                if model.contains(&tid) {
                    prop_assert!(res.is_ok());
                    model.retain(|&m| m != tid);
                } else {
                    prop_assert!(res.is_err());
                }
            }
            let g = reg.get(gid).unwrap();
            prop_assert_eq!(g.members(), &model[..]);
            prop_assert_eq!(g.barrier.parties(), model.len().max(1));
            prop_assert_eq!(g.election.parties(), model.len().max(1));
        }
    }

    /// Phase-corrected schedules are invariant under permutations of who
    /// departs in which order: the aligned arrival instant depends only on
    /// (n, delta, phase).
    #[test]
    fn phase_correction_is_order_invariant(
        n in 2usize..64,
        delta in 1u64..5_000,
        phase in 0u64..100_000,
    ) {
        let arrival_of = |order: usize| {
            order as u64 * delta + nautix_groups::corrected_phase(phase, order, n, delta)
        };
        let first = arrival_of(0);
        for order in 1..n {
            prop_assert_eq!(arrival_of(order), first);
        }
        prop_assert_eq!(first, phase + n as u64 * delta);
    }
}
