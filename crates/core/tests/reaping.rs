//! Thread-pool maintenance: exited threads are reaped by the idle path
//! and their slots (and stacks) recycled, so churn far beyond the table
//! capacity works.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Script};
use nautix_rt::{Node, NodeConfig};

#[test]
fn thread_churn_beyond_table_capacity() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(81);
    cfg.max_threads = 16; // 2 idle threads + 14 slots
    let mut node = Node::new(cfg);
    // Spawn-and-run far more threads than the table can hold at once;
    // reaping must recycle slots between waves.
    let mut total = 0;
    for wave in 0..20 {
        for i in 0..10 {
            node.spawn_on(
                1,
                &format!("w{wave}_{i}"),
                Box::new(Script::new(vec![Action::Compute(5_000)])),
            )
            .expect("slot must be available after reaping");
            total += 1;
        }
        node.run_until_quiescent();
    }
    assert_eq!(total, 200);
    assert_eq!(node.live_programs(), 0);
}

#[test]
fn stacks_are_returned_to_the_allocator() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(82);
    let mut node = Node::new(cfg);
    // Each 16 KiB stack comes from the scaled 16 MiB HBM zone: ~1000 fit.
    // 3000 sequential threads only work if stacks are freed on exit.
    for wave in 0..300 {
        for i in 0..10 {
            node.spawn_on(
                1,
                &format!("s{wave}_{i}"),
                Box::new(Script::new(vec![Action::Compute(100)])),
            )
            .expect("spawn");
        }
        node.run_until_quiescent();
    }
    assert_eq!(node.live_programs(), 0);
}
