//! Synchronization primitives as discrete-event state machines.
//!
//! The barrier here models the centralized sense-reversing spin barrier
//! Nautilus provides: arrivals serialize on a contended counter (the caller
//! charges that cost), the last arriver flips the sense flag, and the
//! invalidation of the flag's cache line reaches spinners one transfer at
//! a time — so departures are *staggered*. That stagger is precisely the
//! per-thread barrier-departure delay δ that group admission's phase
//! correction measures and cancels (§4.4).

use crate::program::ThreadId;
use nautix_des::{Cycles, DetRng};
use nautix_hw::Cost;

/// One thread's release from a barrier episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// The released thread.
    pub tid: ThreadId,
    /// Release order `i` within this episode: 0 leaves first.
    pub order: usize,
    /// Delay after the episode's release instant before this thread
    /// actually departs (cache-line propagation).
    pub delay: Cycles,
}

/// Result of an arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Not everyone is here; the caller blocks (spins).
    Wait,
    /// The caller completed the episode; everyone departs per the
    /// schedule. Entries are ordered by release order.
    Release(Vec<Release>),
}

/// A reusable sense-reversing barrier over `parties` threads.
#[derive(Debug)]
pub struct SimBarrier {
    parties: usize,
    waiting: Vec<ThreadId>,
    episodes: u64,
}

impl SimBarrier {
    /// A barrier for `parties` threads.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1);
        SimBarrier {
            parties,
            waiting: Vec::with_capacity(parties),
            episodes: 0,
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Change the party count (group membership changed). Only legal while
    /// no one waits.
    pub fn set_parties(&mut self, parties: usize) {
        assert!(parties >= 1);
        assert!(
            self.waiting.is_empty(),
            "cannot resize a barrier with waiters"
        );
        self.parties = parties;
    }

    /// How many threads are currently waiting.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Completed episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Thread `tid` arrives. The *last* arriver gets the release schedule:
    /// itself at order 0 (it flipped the flag and proceeds immediately),
    /// then earlier arrivals in arrival order, each a cache-line transfer
    /// (`stagger`) after the previous.
    pub fn arrive(&mut self, tid: ThreadId, rng: &mut DetRng, stagger: Cost) -> BarrierOutcome {
        debug_assert!(
            !self.waiting.contains(&tid),
            "thread {tid} arrived twice in one episode"
        );
        if self.waiting.len() + 1 < self.parties {
            self.waiting.push(tid);
            return BarrierOutcome::Wait;
        }
        // Episode complete.
        self.episodes += 1;
        let mut releases = Vec::with_capacity(self.parties);
        releases.push(Release {
            tid,
            order: 0,
            delay: 0,
        });
        let mut delay = 0;
        for (i, &w) in self.waiting.iter().enumerate() {
            delay += stagger.draw(rng);
            releases.push(Release {
                tid: w,
                order: i + 1,
                delay,
            });
        }
        self.waiting.clear();
        BarrierOutcome::Release(releases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from(17)
    }

    #[test]
    fn single_party_releases_immediately() {
        let mut b = SimBarrier::new(1);
        let out = b.arrive(5, &mut rng(), Cost::fixed(10));
        match out {
            BarrierOutcome::Release(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].tid, 5);
                assert_eq!(rs[0].delay, 0);
            }
            _ => panic!("expected release"),
        }
    }

    #[test]
    fn waits_until_all_arrive() {
        let mut b = SimBarrier::new(3);
        let mut r = rng();
        assert_eq!(b.arrive(0, &mut r, Cost::fixed(10)), BarrierOutcome::Wait);
        assert_eq!(b.arrive(1, &mut r, Cost::fixed(10)), BarrierOutcome::Wait);
        let out = b.arrive(2, &mut r, Cost::fixed(10));
        let BarrierOutcome::Release(rs) = out else {
            panic!("expected release");
        };
        assert_eq!(rs.len(), 3);
        // Last arriver departs first; earlier arrivals are staggered.
        assert_eq!(
            rs[0],
            Release {
                tid: 2,
                order: 0,
                delay: 0
            }
        );
        assert_eq!(
            rs[1],
            Release {
                tid: 0,
                order: 1,
                delay: 10
            }
        );
        assert_eq!(
            rs[2],
            Release {
                tid: 1,
                order: 2,
                delay: 20
            }
        );
    }

    #[test]
    fn barrier_is_reusable_across_episodes() {
        let mut b = SimBarrier::new(2);
        let mut r = rng();
        for ep in 1..=5u64 {
            assert_eq!(b.arrive(0, &mut r, Cost::fixed(1)), BarrierOutcome::Wait);
            assert!(matches!(
                b.arrive(1, &mut r, Cost::fixed(1)),
                BarrierOutcome::Release(_)
            ));
            assert_eq!(b.episodes(), ep);
            assert_eq!(b.waiting(), 0);
        }
    }

    #[test]
    fn stagger_accumulates_monotonically() {
        let mut b = SimBarrier::new(8);
        let mut r = rng();
        for t in 0..7 {
            b.arrive(t, &mut r, Cost::new(100, 50));
        }
        let BarrierOutcome::Release(rs) = b.arrive(7, &mut r, Cost::new(100, 50)) else {
            panic!();
        };
        for w in rs.windows(2) {
            assert!(w[1].delay > w[0].delay);
            assert_eq!(w[1].order, w[0].order + 1);
        }
    }

    #[test]
    #[should_panic]
    fn resize_with_waiters_panics() {
        let mut b = SimBarrier::new(3);
        b.arrive(0, &mut rng(), Cost::fixed(1));
        b.set_parties(2);
    }

    #[test]
    fn resize_when_empty_works() {
        let mut b = SimBarrier::new(3);
        b.set_parties(2);
        let mut r = rng();
        b.arrive(0, &mut r, Cost::fixed(1));
        assert!(matches!(
            b.arrive(1, &mut r, Cost::fixed(1)),
            BarrierOutcome::Release(_)
        ));
    }
}
