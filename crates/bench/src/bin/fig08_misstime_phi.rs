//! Figure 8: average and deviation of deadline miss times on the Phi.

use nautix_bench::{banner, f, missrate, out_dir, write_csv, BenchReport, Scale};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 8: miss times vs period/slice (Phi, µs)");
    let (pts, stats) =
        missrate::sweep_with_stats(&HarnessConfig::from_env(), Platform::Phi, scale, 5);
    println!("period_us,slice_pct,miss_mean_us,miss_std_us");
    for p in &pts {
        println!(
            "{},{},{},{}",
            p.period_us,
            p.slice_pct,
            f(p.miss_mean_ns / 1000.0),
            f(p.miss_std_ns / 1000.0)
        );
    }
    write_csv(
        &out_dir().join("fig08_misstime_phi.csv"),
        &["period_us", "slice_pct", "miss_mean_us", "miss_std_us"],
        pts.iter().map(|p| {
            vec![
                p.period_us.to_string(),
                p.slice_pct.to_string(),
                f(p.miss_mean_ns / 1000.0),
                f(p.miss_std_ns / 1000.0),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig08_misstime_phi.csv"));
    println!(
        "{} trials on {} threads: {:.2}s wall, {:.2}s cpu, {:.0} events/s",
        stats.trials,
        stats.threads,
        stats.wall_secs,
        stats.cpu_secs,
        stats.events_per_sec()
    );
    let mut report = BenchReport::new();
    report.add("fig08_misstime_phi", stats);
    report.write(&out_dir().join("BENCH_fig08_misstime_phi.json"));
}
