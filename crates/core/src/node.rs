//! The global scheduler: a full node running the hard real-time stack.
//!
//! "The global scheduler is the distributed system comprising the local
//! schedulers and their interactions" (§3). [`Node`] owns the machine
//! model, the kernel substrate (thread table, buddy allocator, task
//! queues, interrupt steering), the group registry, and one
//! [`LocalScheduler`] per CPU, and drives them from the machine's event
//! stream:
//!
//! * timer interrupts and kick IPIs invoke the local scheduler,
//! * operation completions resume thread programs,
//! * device interrupts run bounded handlers on the interrupt-laden
//!   partition,
//! * wakeups deliver sleeps, barrier releases, and collective departures.
//!
//! It also implements the two pieces of the paper that tie CPUs together:
//! boot-time time synchronization (§3.4, via [`crate::timesync`]) and
//! **group admission control** — Algorithm 1 of §4.3 with the phase
//! correction of §4.4 — as an explicit per-thread continuation machine, so
//! the blocking collectives inside the call behave exactly like the
//! paper's: every coordination cost is paid at admission time, and zero
//! communication happens afterwards.
//!
//! ## Modeling notes (documented substitutions)
//!
//! * Threads blocked in barriers/collectives yield the CPU rather than
//!   spin. Every experiment in the paper binds one thread per CPU, where
//!   the two are indistinguishable from the measurement's point of view.
//! * Unsized lightweight tasks are executed from the idle loop (the
//!   "task-exec helper thread" folded into the idle thread); size-tagged
//!   tasks run inline in the scheduler when the gap to the next real-time
//!   arrival allows, exactly as in §3.1.
//! * The idle-loop work stealer arms a retry poll only while stealable
//!   work exists somewhere, keeping the simulation event-driven; the steal
//!   itself uses power-of-two-random-choices victim selection (§3.4).

use crate::admission::{SchedConfig, SimCache, StealPolicy};
use crate::local::{InvokeReason, LocalScheduler, SchedThread};
#[cfg(feature = "trace")]
use crate::oracle::{OracleConfig, OracleSuite};
use crate::request::{AdmissionOutcome, AdmissionRequest, AdmissionTarget};
use crate::stats::DispatchLog;
use crate::timesync::{self, TimeSync};
use nautix_des::{Cycles, Freq, Nanos};
use nautix_groups::{
    estimate_delta, CollectiveOutcome, CollectiveRelease, Decision as GDecision, GroupRegistry,
    MAX_GROUPS,
};
use nautix_hw::{shifted_victim, CostModel, CpuId, Machine, MachineConfig, MachineEvent, TopoMap};
use nautix_kernel::{
    Action, AdmissionError, BarrierOutcome, Constraints, GroupError, GroupId, Program, ResumeCx,
    Steering, SysCall, SysResult, TaskQueues, Thread, ThreadId, ThreadState, ThreadTable, WaitKind,
    Zone, ZoneAllocator,
};
#[cfg(feature = "trace")]
use nautix_trace::{Record, Sink, TraceHandle};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Node-wide configuration.
pub struct NodeConfig {
    /// The machine to model.
    pub machine: MachineConfig,
    /// Boot-time local-scheduler configuration (identical on every CPU —
    /// a prerequisite of communication-free gang scheduling, §4.1).
    pub sched: SchedConfig,
    /// CPUs receiving external device interrupts (§3.5).
    pub laden: Vec<CpuId>,
    /// Rounds of the boot-time TSC calibration (0 skips calibration and
    /// leaves the raw boot skew in place).
    pub calib_rounds: u32,
    /// Per-thread dispatch-log capacity (0 disables logging).
    pub dispatch_log_cap: usize,
    /// Record per-invocation overhead samples (Figure 5).
    pub record_overheads: bool,
    /// Record group-admission step timings (Figure 10).
    pub record_ga_timing: bool,
    /// System-wide thread bound.
    pub max_threads: usize,
    /// Idle work-steal poll interval.
    pub steal_poll_ns: Nanos,
    /// Apply the §4.4 phase correction during group admission. Figures 11
    /// and 12 are measured with it disabled to expose the release-order
    /// bias it exists to remove.
    pub phase_correction: bool,
}

impl NodeConfig {
    /// The paper's primary testbed configuration.
    ///
    /// Deprecated-in-spirit: prefer `Node::builder(MachineConfig::phi())`,
    /// which converges configuration and the post-hoc arming calls into
    /// one construction path. Kept as a thin wrapper for one PR.
    pub fn phi() -> Self {
        Self::for_machine(MachineConfig::phi())
    }

    /// The secondary testbed. Prefer `Node::builder(MachineConfig::r415())`.
    pub fn r415() -> Self {
        Self::for_machine(MachineConfig::r415())
    }

    /// Defaults around a machine config. Prefer [`Node::builder`].
    pub fn for_machine(machine: MachineConfig) -> Self {
        NodeConfig {
            machine,
            sched: SchedConfig::default(),
            laden: vec![0],
            calib_rounds: 16,
            dispatch_log_cap: 0,
            record_overheads: false,
            record_ga_timing: false,
            max_threads: nautix_kernel::MAX_THREADS,
            steal_poll_ns: 1_000_000,
            phase_correction: true,
        }
    }
}

/// One converged construction path for [`Node`].
///
/// Historically a node was configured through [`NodeConfig`]'s public
/// fields and then mutated post-hoc (`enable_oracles`, `record_timeline`,
/// `set_sabotage_fifo`), leaving a window where the node ran unobserved
/// and scattering setup across call sites. The builder folds both halves
/// into one expression:
///
/// ```
/// use nautix_rt::Node;
/// use nautix_hw::{FaultPlan, MachineConfig};
///
/// let mc = MachineConfig::phi();
/// let node = Node::builder(MachineConfig::phi())
///     .fault_plan(FaultPlan::noisy(mc.platform.freq(), 0.5))
///     .timeline(4096)
///     .build();
/// # let _ = node;
/// ```
///
/// Every knob of [`NodeConfig`] has a builder method; unset knobs keep
/// [`NodeConfig::for_machine`]'s defaults.
pub struct NodeBuilder {
    cfg: NodeConfig,
    timeline_cap: usize,
    #[cfg(feature = "trace")]
    oracle_cfg: Option<OracleConfig>,
    #[cfg(feature = "trace")]
    oracles_default: bool,
    #[cfg(feature = "trace")]
    sabotage_fifo: Vec<CpuId>,
    #[cfg(feature = "trace")]
    sabotage_layer: Vec<CpuId>,
}

impl NodeBuilder {
    /// A builder with [`NodeConfig::for_machine`] defaults.
    pub fn new(machine: MachineConfig) -> Self {
        NodeBuilder {
            cfg: NodeConfig::for_machine(machine),
            timeline_cap: 0,
            #[cfg(feature = "trace")]
            oracle_cfg: None,
            #[cfg(feature = "trace")]
            oracles_default: false,
            #[cfg(feature = "trace")]
            sabotage_fifo: Vec::new(),
            #[cfg(feature = "trace")]
            sabotage_layer: Vec::new(),
        }
    }

    /// Replace the boot-time local-scheduler configuration.
    pub fn sched(mut self, sched: SchedConfig) -> Self {
        self.cfg.sched = sched;
        self
    }

    /// CPUs receiving external device interrupts (§3.5).
    pub fn laden(mut self, laden: Vec<CpuId>) -> Self {
        self.cfg.laden = laden;
        self
    }

    /// Rounds of boot-time TSC calibration (0 skips it).
    pub fn calib_rounds(mut self, rounds: u32) -> Self {
        self.cfg.calib_rounds = rounds;
        self
    }

    /// Per-thread dispatch-log capacity (0 disables logging).
    pub fn dispatch_log_cap(mut self, cap: usize) -> Self {
        self.cfg.dispatch_log_cap = cap;
        self
    }

    /// Record per-invocation overhead samples (Figure 5).
    pub fn record_overheads(mut self, on: bool) -> Self {
        self.cfg.record_overheads = on;
        self
    }

    /// Record group-admission step timings (Figure 10).
    pub fn record_ga_timing(mut self, on: bool) -> Self {
        self.cfg.record_ga_timing = on;
        self
    }

    /// System-wide thread bound.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.cfg.max_threads = n;
        self
    }

    /// Idle work-steal poll interval.
    pub fn steal_poll_ns(mut self, ns: Nanos) -> Self {
        self.cfg.steal_poll_ns = ns;
        self
    }

    /// Apply the §4.4 phase correction during group admission.
    pub fn phase_correction(mut self, on: bool) -> Self {
        self.cfg.phase_correction = on;
        self
    }

    /// Inject the composed fault lanes into the machine.
    pub fn fault_plan(mut self, plan: nautix_hw::FaultPlan) -> Self {
        self.cfg.machine.faults = plan;
        self
    }

    /// Enable graceful degradation under sustained interference.
    pub fn degrade(mut self, policy: crate::admission::DegradePolicy) -> Self {
        self.cfg.sched.degrade = policy;
        self
    }

    /// Record an execution timeline with the given span capacity.
    pub fn timeline(mut self, cap: usize) -> Self {
        self.timeline_cap = cap;
        self
    }

    /// Arm the online invariant oracles with an explicit configuration.
    #[cfg(feature = "trace")]
    pub fn oracles(mut self, cfg: OracleConfig) -> Self {
        self.oracle_cfg = Some(cfg);
        self
    }

    /// Arm the oracles with the configuration derived from the node
    /// (the `NAUTIX_ORACLES=1` behavior, made explicit).
    #[cfg(feature = "trace")]
    pub fn oracles_default(mut self) -> Self {
        self.oracles_default = true;
        self
    }

    /// Enable the deliberately broken FIFO dispatch on `cpu`
    /// (EDF-oracle regression tests only).
    #[cfg(feature = "trace")]
    pub fn sabotage_fifo(mut self, cpu: CpuId) -> Self {
        self.sabotage_fifo.push(cpu);
        self
    }

    /// Enable the deliberately over-generous layer-bucket refill on `cpu`
    /// (layer-isolation-oracle regression tests only).
    #[cfg(feature = "trace")]
    pub fn sabotage_layer(mut self, cpu: CpuId) -> Self {
        self.sabotage_layer.push(cpu);
        self
    }

    /// The accumulated [`NodeConfig`] (for harnesses that reset pooled
    /// nodes with the same configuration).
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Consume the builder and return the assembled [`NodeConfig`], for
    /// callers that construct nodes through another path (for example a
    /// trial harness `NodePool`).
    pub fn into_config(self) -> NodeConfig {
        self.cfg
    }

    /// Boot the node and apply every post-construction arming step.
    pub fn build(self) -> Node {
        let mut node = Node::new(self.cfg);
        #[cfg(feature = "trace")]
        {
            if let Some(cfg) = self.oracle_cfg {
                node.enable_oracles_with(cfg);
            } else if self.oracles_default {
                node.enable_oracles();
            }
            for cpu in self.sabotage_fifo {
                node.set_sabotage_fifo(cpu, true);
            }
            for cpu in self.sabotage_layer {
                node.set_sabotage_layer(cpu, true);
            }
        }
        if self.timeline_cap > 0 {
            node.record_timeline(self.timeline_cap);
        }
        node
    }
}

/// Timing record of one thread's pass through group admission control,
/// with the step boundaries Figure 10 reports. All wall-clock nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct GaTiming {
    /// The thread.
    pub tid: ThreadId,
    /// Group size at admission.
    pub n: usize,
    /// Call entry.
    pub t_call: Nanos,
    /// Leader election completed.
    pub t_elect: Nanos,
    /// Local admission control duration (the constant "Local Change
    /// Constraints" line of Figure 10c).
    pub local_admit_ns: Nanos,
    /// Error reduction completed (end of distributed admission control).
    pub t_reduce: Nanos,
    /// Final barrier + phase correction completed.
    pub t_done: Nanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GaPhase {
    /// Arrive at the election (blocking state: no side effects on re-entry).
    Start,
    /// Election done: leader locks/attaches (once), then move to Barrier1.
    AfterElect,
    /// Arrive at the pre-admission barrier (blocking state).
    Barrier1,
    /// Barrier passed: run local admission exactly once, move to Reducing.
    AfterBarrier1,
    /// Arrive at the error reduction (blocking state).
    Reducing,
    /// Reduction done: commit or roll back exactly once.
    AfterReduce,
    /// Arrive at the failure-path barrier (blocking state).
    FallbackBarrier,
    /// Arrive at the final barrier (blocking state).
    FinalBarrier,
    AfterFallbackBarrier,
    AfterFinalBarrier,
}

#[derive(Debug, Clone)]
struct GaCtx {
    group: GroupId,
    constraints: Constraints,
    phase: GaPhase,
    leader: ThreadId,
    my_error: u64,
    group_error: u64,
    admitted_here: bool,
    order: usize,
    n: usize,
    delta_ns: Nanos,
    t_call: Nanos,
    t_elect: Nanos,
    local_admit_ns: Nanos,
    t_reduce: Nanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Sleep,
    Barrier,
    Collective,
    GaCollective,
    /// Waiting for a device interrupt (interrupt-thread steering, §3.5).
    Irq,
}

/// A pending one-shot request produced by a scheduling pass.
#[derive(Debug, Clone, Copy)]
struct TimerReq {
    exec_cycles: Option<Cycles>,
    wall_ns: Option<Nanos>,
}

const TK_SLEEP: u64 = 1;
const TK_RELEASE: u64 = 2;
const TK_POKE: u64 = 3;
const TK_STEAL_POLL: u64 = 4;

/// Device-interrupt vector space (the machine asserts `irq < 0x40`).
const IRQ_LINES: usize = 64;

/// Serialization classes for the contended shared lines the event path
/// models. Each class owns one row of [`MAX_GROUPS`] slots in the flat
/// `serial_until` table, replacing the old `HashMap` keyed on synthetic
/// `0x10_0000 + gid`-style integers: the hot path indexes instead of
/// hashing. Collective classes span one row per operation kind.
const SER_JOIN: usize = 0;
const SER_BARRIER: usize = 1;
const SER_COLL: usize = 2; // + CollKind in 0..3
const SER_GA_COLL: usize = 5; // + GaColl in 0..2
const SER_GA_BARRIER: usize = 7;
const SER_CLASSES: usize = 8;

/// Flat index of a (class, group) serialization line. `MAX_GROUPS` is a
/// power of two, so masking keeps any `GroupId` in range (an out-of-range
/// id can only alias another line's timing, never index out of bounds).
fn serial_slot(class: usize, gid: GroupId) -> usize {
    debug_assert!(class < SER_CLASSES);
    class * MAX_GROUPS + (gid.0 as usize & (MAX_GROUPS - 1))
}

fn tok(kind: u64, payload: u64) -> u64 {
    (kind << 56) | payload
}
fn tok_kind(t: u64) -> u64 {
    t >> 56
}
fn tok_payload(t: u64) -> u64 {
    t & ((1u64 << 56) - 1)
}

fn admission_error_code(e: AdmissionError) -> u64 {
    match e {
        AdmissionError::Invalid(_) => 1,
        AdmissionError::UtilizationExceeded => 2,
        AdmissionError::TooFine => 3,
        AdmissionError::SporadicReservationExceeded => 4,
        AdmissionError::CapacityExceeded => 5,
        AdmissionError::GroupMemberRejected => 6,
        AdmissionError::LayerOvercommit => 7,
    }
}

/// What one widening stage of a steal attempt concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageOutcome {
    /// A thread was migrated to the thief.
    Stole,
    /// Neither probed victim had a stealable backlog; the thief may widen
    /// to the next topology domain.
    NoBacklog,
    /// A backlogged victim was locked but held only unmigratable (bound)
    /// threads; the attempt ends without widening.
    LockedEmpty,
}

/// The assembled node.
pub struct Node {
    /// The machine model (public for harness-side ground-truth access).
    pub machine: Machine,
    cfg_sched: SchedConfig,
    dispatch_log_cap: usize,
    record_overheads: bool,
    record_ga_timing: bool,
    steal_poll_ns: Nanos,
    phase_correction: bool,
    /// GPIO trace hooks: pin assignments are
    /// pin 0 = the watched thread's activity, pin 1 = scheduler pass,
    /// pin 2 = interrupt handler (the three traces of Figure 4).
    gpio_watch: Option<ThreadId>,
    /// Optional execution-timeline recorder.
    timeline: Option<crate::timeline::Timeline>,
    freq: Freq,
    /// The machine's cost model, cached by value at boot (`CostModel` is
    /// `Copy`). The event path reads costs on every interrupt; caching
    /// avoids re-reading through the machine — and the per-event clone the
    /// hot paths used to pay — while keeping disjoint-field borrows with
    /// `&mut self.machine`. The model is fixed per machine; `reset`
    /// refreshes the cache along with everything else.
    cm: CostModel,
    /// The machine's resolved topology map, cached by value like `cm`
    /// (`TopoMap` is `Copy`): the steal path classifies thief→victim
    /// distance on every probe. Refreshed by `reset`.
    topo: TopoMap,
    threads: ThreadTable,
    ts: Vec<SchedThread>,
    sched: Vec<LocalScheduler>,
    sync: TimeSync,
    groups: GroupRegistry,
    steering: Steering,
    alloc: ZoneAllocator,
    tasks: Vec<TaskQueues>,
    ga: Vec<Option<GaCtx>>,
    blocked: Vec<Option<BlockKind>>,
    pending_result: Vec<SysResult>,
    cur_op: Vec<Option<(ThreadId, Cycles)>>,
    /// Per-line serialization horizons modeling contended shared lines
    /// (group join, collective arrival). Flat `SER_CLASSES × MAX_GROUPS`
    /// table indexed by [`serial_slot`] — no hashing on the event path.
    serial_until: Vec<Cycles>,
    ga_timings: Vec<GaTiming>,
    join_timings: Vec<(ThreadId, Nanos)>,
    /// The node's shared hyperperiod-simulation memo, installed into every
    /// CPU's ledger. Owned here so `Node::reset` can re-install it: the
    /// cache is a pure memo keyed on the full simulation input, so entries
    /// learned in earlier pooled trials stay valid across resets.
    sim_cache: Rc<RefCell<SimCache>>,
    steal_poll_armed: Vec<bool>,
    /// Threads blocked in WaitIrq, per irq line (FIFO), indexed by vector.
    irq_waiters: Vec<VecDeque<ThreadId>>,
    /// Exited threads awaiting reaping, per CPU (thread-pool maintenance,
    /// §3.4: performed by the idle path under the local scheduler's lock
    /// for a bounded time).
    zombies: Vec<Vec<ThreadId>>,
    live_programs: usize,
    /// Device interrupts handled, per CPU.
    pub device_irqs_handled: Vec<u64>,
    #[cfg(feature = "trace")]
    trace: Option<TraceHandle>,
    #[cfg(feature = "trace")]
    oracles: Option<Rc<RefCell<OracleSuite>>>,
}

impl Node {
    /// Start a [`NodeBuilder`] around a machine configuration — the
    /// converged construction path (configuration plus post-hoc arming in
    /// one expression).
    pub fn builder(machine: MachineConfig) -> NodeBuilder {
        NodeBuilder::new(machine)
    }

    /// Boot a node: build the machine, calibrate time, start the per-CPU
    /// schedulers and idle threads.
    pub fn new(mut cfg: NodeConfig) -> Self {
        // The `NAUTIX_ADMISSION` escape hatch outranks the configured
        // engine, so a whole run can be forced onto the fresh-recompute
        // reference (or back) without touching call sites.
        let env = crate::config::HarnessConfig::from_env();
        if let Some(engine) = env.admission {
            cfg.sched.engine = engine;
        }
        // `NAUTIX_LAYERS` likewise replaces the boot-time layer table for
        // the whole run (quick-start bandwidth experiments need no code).
        if let Some(layers) = env.layers {
            cfg.sched.layers = layers;
        }
        let mut machine = Machine::new(cfg.machine);
        let n = machine.n_cpus();
        let freq = machine.freq();
        let sync = if cfg.calib_rounds > 0 {
            timesync::calibrate(&mut machine, cfg.calib_rounds)
        } else {
            TimeSync::perfect(n)
        };
        let mut threads = ThreadTable::new(cfg.max_threads);
        let mut ts: Vec<SchedThread> = (0..cfg.max_threads)
            .map(|_| SchedThread::new_aperiodic())
            .collect();
        let mut sched = Vec::with_capacity(n);
        let per_cpu_cap = cfg.max_threads;
        let sim_cache = Rc::new(RefCell::new(SimCache::new()));
        for cpu in 0..n {
            // The idle thread: a real table entry, never queued.
            let idle_tid = threads
                .spawn(Thread {
                    name: format!("idle{cpu}"),
                    cpu,
                    bound: true,
                    state: ThreadState::Running,
                    program: Box::new(nautix_kernel::IdleLoop::new(1)),
                    cycles_used: 0,
                    is_idle: true,
                    stack: None,
                })
                .unwrap_or_else(|_| panic!("thread table too small for idle threads"));
            ts[idle_tid] = SchedThread::new_aperiodic();
            let mut ls = LocalScheduler::new(cpu, idle_tid, cfg.sched, freq, per_cpu_cap);
            ls.load.install_sim_cache(Rc::clone(&sim_cache));
            sched.push(ls);
        }
        let cm = *machine.cost_model();
        let topo = machine.topology();
        let mut node = Node {
            machine,
            cfg_sched: cfg.sched,
            dispatch_log_cap: cfg.dispatch_log_cap,
            record_overheads: cfg.record_overheads,
            record_ga_timing: cfg.record_ga_timing,
            steal_poll_ns: cfg.steal_poll_ns,
            phase_correction: cfg.phase_correction,
            gpio_watch: None,
            timeline: None,
            freq,
            cm,
            topo,
            threads,
            ts,
            sched,
            sync,
            groups: GroupRegistry::new(),
            steering: Steering::with_topology(cfg.laden, topo),
            alloc: ZoneAllocator::knl_scaled(),
            tasks: (0..n).map(|_| TaskQueues::new(256)).collect(),
            ga: (0..cfg.max_threads).map(|_| None).collect(),
            blocked: (0..cfg.max_threads).map(|_| None).collect(),
            pending_result: (0..cfg.max_threads).map(|_| SysResult::None).collect(),
            cur_op: (0..n).map(|_| None).collect(),
            serial_until: vec![0; SER_CLASSES * MAX_GROUPS],
            ga_timings: Vec::new(),
            join_timings: Vec::new(),
            sim_cache,
            steal_poll_armed: vec![false; n],
            irq_waiters: (0..IRQ_LINES).map(|_| VecDeque::new()).collect(),
            zombies: (0..n).map(|_| Vec::new()).collect(),
            live_programs: 0,
            device_irqs_handled: vec![0; n],
            #[cfg(feature = "trace")]
            trace: None,
            #[cfg(feature = "trace")]
            oracles: None,
        };
        #[cfg(feature = "trace")]
        if env.oracles {
            node.enable_oracles();
        }
        // Kick every CPU once at boot so each local scheduler runs its
        // first pass (and each idle loop gets a chance to start stealing).
        for cpu in 0..n {
            let at = node.machine.now();
            node.machine
                .schedule_wakeup(at, tok(TK_POKE, cpu as u64), Some(cpu));
        }
        node
    }

    /// Reboot this node in place for a new trial, reusing every large
    /// allocation: the thread table's slot vector, the per-thread sched
    /// states, the per-CPU scheduler queues, and the event heap keep their
    /// capacity instead of being freed and re-grown. A reset node must be
    /// observationally identical to `Node::new(cfg)`: the machine replays
    /// the exact boot draw order (per-CPU skews, then the SMI gap),
    /// calibration reruns against the reseeded RNG, and idle threads and
    /// boot pokes are re-spawned in the same order, so idle `ThreadId`s
    /// and every subsequent event land exactly as on a fresh node. The
    /// pooled determinism test asserts this byte-for-byte.
    pub fn reset(&mut self, mut cfg: NodeConfig) {
        let env = crate::config::HarnessConfig::from_env();
        if let Some(engine) = env.admission {
            cfg.sched.engine = engine;
        }
        if let Some(layers) = env.layers {
            cfg.sched.layers = layers;
        }
        self.machine.reset(cfg.machine);
        let n = self.machine.n_cpus();
        self.freq = self.machine.freq();
        self.cm = *self.machine.cost_model();
        self.topo = self.machine.topology();
        self.sync = if cfg.calib_rounds > 0 {
            timesync::calibrate(&mut self.machine, cfg.calib_rounds)
        } else {
            TimeSync::perfect(n)
        };
        self.cfg_sched = cfg.sched;
        self.dispatch_log_cap = cfg.dispatch_log_cap;
        self.record_overheads = cfg.record_overheads;
        self.record_ga_timing = cfg.record_ga_timing;
        self.steal_poll_ns = cfg.steal_poll_ns;
        self.phase_correction = cfg.phase_correction;
        self.gpio_watch = None;
        self.timeline = None;
        self.threads.reset(cfg.max_threads);
        self.ts.clear();
        self.ts
            .resize_with(cfg.max_threads, SchedThread::new_aperiodic);
        self.sched.truncate(n);
        let per_cpu_cap = cfg.max_threads;
        for cpu in 0..n {
            let idle_tid = self
                .threads
                .spawn(Thread {
                    name: format!("idle{cpu}"),
                    cpu,
                    bound: true,
                    state: ThreadState::Running,
                    program: Box::new(nautix_kernel::IdleLoop::new(1)),
                    cycles_used: 0,
                    is_idle: true,
                    stack: None,
                })
                .unwrap_or_else(|_| panic!("thread table too small for idle threads"));
            if cpu < self.sched.len() {
                self.sched[cpu].reset(cpu, idle_tid, cfg.sched, self.freq, per_cpu_cap);
            } else {
                self.sched.push(LocalScheduler::new(
                    cpu,
                    idle_tid,
                    cfg.sched,
                    self.freq,
                    per_cpu_cap,
                ));
            }
        }
        // The per-CPU reset rebuilt each ledger from scratch; re-install
        // the node's memo so pooled trials keep reusing cached verdicts.
        for s in &mut self.sched {
            s.load.install_sim_cache(Rc::clone(&self.sim_cache));
        }
        self.groups = GroupRegistry::new();
        self.steering = Steering::with_topology(cfg.laden, self.topo);
        self.alloc = ZoneAllocator::knl_scaled();
        self.tasks.clear();
        self.tasks.extend((0..n).map(|_| TaskQueues::new(256)));
        self.ga.clear();
        self.ga.resize_with(cfg.max_threads, || None);
        self.blocked.clear();
        self.blocked.resize_with(cfg.max_threads, || None);
        self.pending_result.clear();
        self.pending_result
            .resize_with(cfg.max_threads, || SysResult::None);
        self.cur_op.clear();
        self.cur_op.resize(n, None);
        self.serial_until.fill(0);
        self.ga_timings.clear();
        self.join_timings.clear();
        self.steal_poll_armed.clear();
        self.steal_poll_armed.resize(n, false);
        for q in &mut self.irq_waiters {
            q.clear();
        }
        self.zombies.truncate(n);
        for z in &mut self.zombies {
            z.clear();
        }
        while self.zombies.len() < n {
            self.zombies.push(Vec::new());
        }
        self.live_programs = 0;
        self.device_irqs_handled.clear();
        self.device_irqs_handled.resize(n, 0);
        #[cfg(feature = "trace")]
        {
            // Machine/scheduler/task-queue resets dropped their handles;
            // start every trial with a fresh sink and fresh oracle state.
            self.trace = None;
            self.oracles = None;
            if env.oracles {
                self.enable_oracles();
            }
        }
        for cpu in 0..n {
            let at = self.machine.now();
            self.machine
                .schedule_wakeup(at, tok(TK_POKE, cpu as u64), Some(cpu));
        }
    }

    /// Attach a trace sink with the online invariant oracles as its
    /// observer (panicking on the first violation). Returns a handle to
    /// the suite for inspection; tests use [`Node::enable_oracles_with`]
    /// to collect violations instead. Tracing never perturbs the
    /// simulation — the event stream is byte-identical with or without it.
    /// Prefer `NodeBuilder::oracles_default()` at construction time.
    #[cfg(feature = "trace")]
    pub fn enable_oracles(&mut self) -> Rc<RefCell<OracleSuite>> {
        self.enable_oracles_with(OracleConfig::for_node(
            self.freq,
            &self.cfg_sched,
            &self.cm,
            self.machine.config(),
        ))
    }

    /// Attach the oracles with an explicit configuration.
    #[cfg(feature = "trace")]
    pub fn enable_oracles_with(&mut self, cfg: OracleConfig) -> Rc<RefCell<OracleSuite>> {
        let suite = Rc::new(RefCell::new(OracleSuite::new(cfg)));
        let handle = TraceHandle::new(Sink::with_observer(
            nautix_trace::DEFAULT_RING_CAPACITY,
            Box::new(Rc::clone(&suite)),
        ));
        self.install_trace(handle);
        self.oracles = Some(Rc::clone(&suite));
        suite
    }

    /// The attached oracle suite, if any.
    #[cfg(feature = "trace")]
    pub fn oracles(&self) -> Option<&Rc<RefCell<OracleSuite>>> {
        self.oracles.as_ref()
    }

    /// Degradation activations across this node's CPUs (all zero unless
    /// [`crate::admission::DegradePolicy`] is enabled and interference
    /// actually forced a response).
    pub fn degrade_stats(&self) -> crate::stats::DegradeStats {
        let mut d = crate::stats::DegradeStats::default();
        for s in &self.sched {
            d.merge(&s.stats.degrade);
        }
        d
    }

    /// Admission-engine counters across this node's CPUs: hyperperiod-
    /// simulation memo hits/misses and ledger rollbacks. All zero under
    /// closed-form admission policies (no simulation ever runs).
    pub fn admission_stats(&self) -> crate::stats::AdmissionStats {
        let mut a = crate::stats::AdmissionStats::default();
        for s in &self.sched {
            a.merge(&s.load.admission_stats());
        }
        a
    }

    /// Entries currently held by the node's shared simulation memo.
    pub fn sim_cache_len(&self) -> usize {
        self.sim_cache.borrow().len()
    }

    /// Empty the shared simulation memo. [`Node::reset`] deliberately
    /// preserves the memo so pooled trials keep reusing verdicts; callers
    /// whose runs must be pure functions of their configuration (the
    /// cluster engine boots shards from a pool, then mutates them) clear
    /// it explicitly instead.
    pub fn clear_sim_cache(&mut self) {
        self.sim_cache.borrow_mut().clear();
    }

    /// Everything the evaluation counts about this node, flattened into
    /// one additive [`nautix_stats::StatsSnapshot`] (`trials = 1`).
    /// Per-node counters reset with the node, so per-trial snapshots are
    /// true deltas: harness workers stream them to a
    /// [`nautix_stats::StatsHub`] and the merged totals are independent of
    /// worker scheduling. The `oracle_*` fields stay zero here — oracle
    /// tallies are process-global (they survive `reset`), so the hub
    /// overlays them via its sampler instead of summing them per trial.
    pub fn stats_snapshot(&self) -> nautix_stats::StatsSnapshot {
        let mut s = nautix_stats::StatsSnapshot {
            trials: 1,
            events: self.machine.events_processed(),
            ..nautix_stats::StatsSnapshot::default()
        };
        for t in &self.ts {
            s.arrivals += t.stats.arrivals;
            s.met += t.stats.met;
            s.missed += t.stats.missed;
            s.dispatches += t.stats.dispatches;
        }
        for c in &self.sched {
            s.invocations += c.stats.invocations;
            s.timer_invocations += c.stats.timer_invocations;
            s.kick_invocations += c.stats.kick_invocations;
            s.switches += c.stats.switches;
            s.steals += c.stats.steals;
            s.steals_llc += c.stats.steals_by_distance[0];
            s.steals_pkg += c.stats.steals_by_distance[1];
            s.steals_xpkg += c.stats.steals_by_distance[2];
            s.inline_tasks += c.stats.inline_tasks;
            s.layer_throttles += c.stats.layer_throttles;
            s.layer_replenishes += c.stats.layer_replenishes;
        }
        let d = self.degrade_stats();
        s.sporadic_demotions = d.sporadic_demotions;
        s.periodic_widenings = d.periodic_widenings;
        s.periodic_demotions = d.periodic_demotions;
        let a = self.admission_stats();
        s.sim_hits = a.sim_hits;
        s.sim_misses = a.sim_misses;
        s.rollbacks = a.rollbacks;
        s.ipis = self.machine.ipis_sent();
        let ipis = self.machine.ipis_by_distance();
        s.ipis_llc = ipis[0];
        s.ipis_pkg = ipis[1];
        s.ipis_xpkg = ipis[2];
        s.device_irqs = self.machine.device_irqs();
        s.timer_programmings = self.machine.timer_programmings();
        s.smis = self.machine.smi_stats().count;
        let f = self.machine.fault_stats();
        s.kicks_dropped = f.kicks_dropped;
        s.kicks_delayed = f.kicks_delayed;
        s.timer_overshoots = f.timer_overshoots;
        s.freq_dips = f.freq_dips;
        s.spurious_irqs = f.spurious_irqs;
        s.cpu_stalls = f.cpu_stalls;
        s
    }

    /// Thread a trace handle through every emitting layer of this node.
    #[cfg(feature = "trace")]
    fn install_trace(&mut self, handle: TraceHandle) {
        self.machine.set_trace(Some(handle.clone()));
        for s in &mut self.sched {
            s.set_trace(Some(handle.clone()));
        }
        for (cpu, q) in self.tasks.iter_mut().enumerate() {
            q.set_trace(Some((handle.clone(), cpu as u32)));
        }
        self.trace = Some(handle);
    }

    /// Enable the deliberately broken FIFO dispatch on `cpu` (EDF-oracle
    /// regression tests only). Prefer `NodeBuilder::sabotage_fifo(cpu)`
    /// at construction time.
    #[cfg(feature = "trace")]
    pub fn set_sabotage_fifo(&mut self, cpu: CpuId, on: bool) {
        self.sched[cpu].set_sabotage_fifo(on);
    }

    /// Enable the deliberately over-generous layer-bucket refill on `cpu`
    /// (layer-isolation-oracle regression tests only). Prefer
    /// `NodeBuilder::sabotage_layer(cpu)` at construction time.
    #[cfg(feature = "trace")]
    pub fn set_sabotage_layer(&mut self, cpu: CpuId, on: bool) {
        self.sched[cpu].set_sabotage_layer(on);
    }

    // ------------------------------------------------------------------
    // Public surface
    // ------------------------------------------------------------------

    /// Core frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The boot-time calibration result.
    pub fn time_sync(&self) -> &TimeSync {
        &self.sync
    }

    /// `cpu`'s wall-clock estimate in nanoseconds.
    pub fn wall_ns(&self, cpu: CpuId) -> Nanos {
        self.freq
            .cycles_to_ns(timesync::wall_cycles(&self.machine, &self.sync, cpu))
    }

    /// `cpu`'s wall-clock estimate at the end of its current kernel-path
    /// busy window: the instant code running *after* already-charged work
    /// actually executes and would read its TSC.
    fn wall_ns_busy(&self, cpu: CpuId) -> Nanos {
        let backlog = self
            .machine
            .busy_until(cpu)
            .saturating_sub(self.machine.now());
        self.wall_ns(cpu) + self.freq.cycles_to_ns(backlog)
    }

    /// Spawn a thread **bound** to `cpu` with the default aperiodic
    /// constraints (all threads begin life aperiodic, §3.1). Bound threads
    /// are never migrated by the work stealer. The thread's stack comes
    /// from the buddy allocator's preferred zone (§2).
    pub fn spawn_on(
        &mut self,
        cpu: CpuId,
        name: &str,
        program: Box<dyn Program>,
    ) -> Result<ThreadId, AdmissionError> {
        self.spawn_inner(cpu, name, program, true)
    }

    /// Spawn an **unbound** thread starting on `cpu`: while aperiodic it
    /// may be migrated by the idle-thread work stealer (§3.4).
    pub fn spawn_unbound(
        &mut self,
        cpu: CpuId,
        name: &str,
        program: Box<dyn Program>,
    ) -> Result<ThreadId, AdmissionError> {
        self.spawn_inner(cpu, name, program, false)
    }

    fn spawn_inner(
        &mut self,
        cpu: CpuId,
        name: &str,
        program: Box<dyn Program>,
        bound: bool,
    ) -> Result<ThreadId, AdmissionError> {
        assert!(cpu < self.sched.len(), "no such cpu {cpu}");
        // Under table pressure, reap exited threads first (reanimation:
        // thread creation reuses pooled slots, §3.4).
        if self.threads.live() >= self.threads.capacity() {
            for c in 0..self.sched.len() {
                while self.reap(c) > 0 {}
            }
        }
        let stack = self
            .alloc
            .alloc(16 * 1024, Zone::HighBandwidth)
            .map(|(a, _)| a);
        let tid = self
            .threads
            .spawn(Thread {
                name: name.to_string(),
                cpu,
                bound,
                state: ThreadState::Ready,
                program,
                cycles_used: 0,
                is_idle: false,
                stack,
            })
            .map_err(|_| AdmissionError::CapacityExceeded)?;
        self.ts[tid] = SchedThread::new_aperiodic();
        self.ts[tid].dispatch_log = DispatchLog::with_capacity(self.dispatch_log_cap);
        self.ga[tid] = None;
        self.blocked[tid] = None;
        self.pending_result[tid] = SysResult::None;
        self.live_programs += 1;
        let now = self.wall_ns(cpu);
        {
            let st = &mut self.ts[tid];
            self.sched[cpu].enqueue(tid, st, now);
        }
        // Nudge the target CPU to schedule (a kick in spirit; at boot the
        // machine is idle and this is the first event).
        self.machine
            .schedule_wakeup(self.machine.now(), tok(TK_POKE, cpu as u64), Some(cpu));
        Ok(tid)
    }

    /// Number of spawned, unfinished (non-idle) programs.
    pub fn live_programs(&self) -> usize {
        self.live_programs
    }

    /// A thread's scheduling state (stats, dispatch log, constraints).
    pub fn thread_state(&self, tid: ThreadId) -> &SchedThread {
        &self.ts[tid]
    }

    /// A CPU's local scheduler (stats, queues).
    pub fn scheduler(&self, cpu: CpuId) -> &LocalScheduler {
        &self.sched[cpu]
    }

    /// The group-admission timing records (Figure 10).
    pub fn ga_timings(&self) -> &[GaTiming] {
        &self.ga_timings
    }

    /// Group-join durations (Figure 10a).
    pub fn join_timings(&self) -> &[(ThreadId, Nanos)] {
        &self.join_timings
    }

    /// The group registry (inspection).
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Create a named group from host context (boot-time setup). Threads
    /// can also create groups themselves via [`SysCall::GroupCreate`];
    /// pre-creating avoids creation-order races when several gangs boot
    /// concurrently.
    pub fn create_group(&mut self, name: &'static str) -> GroupId {
        self.groups.create(name).expect("group registry full")
    }

    /// Per-CPU task queues (inspection).
    pub fn tasks(&self, cpu: CpuId) -> &TaskQueues {
        &self.tasks[cpu]
    }

    /// Pin a device interrupt to a CPU (§3.5).
    pub fn steer_irq(&mut self, irq: u8, cpu: CpuId) {
        self.steering.steer(irq, cpu);
    }

    /// Pin a device interrupt to the laden CPU topologically nearest its
    /// consumer, returning the chosen CPU. Under a flat topology every
    /// laden CPU is equidistant and the lowest-id one is chosen.
    pub fn steer_irq_near(&mut self, irq: u8, consumer: CpuId) -> CpuId {
        self.steering.steer_near(irq, consumer)
    }

    /// Start recording an execution timeline (at most `cap` spans).
    /// Prefer `NodeBuilder::timeline(cap)` at construction time.
    pub fn record_timeline(&mut self, cap: usize) {
        self.timeline = Some(crate::timeline::Timeline::new(self.machine.n_cpus(), cap));
    }

    /// Take the recorded timeline, closing open spans at the current
    /// true-time instant.
    pub fn take_timeline(&mut self) -> Option<crate::timeline::Timeline> {
        let mut t = self.timeline.take()?;
        t.finish(self.freq.cycles_to_ns(self.machine.now()));
        Some(t)
    }

    /// Instrument the scheduler with GPIO writes around `tid`'s activity
    /// (pin 0), the scheduling pass (pin 1), and interrupt handling
    /// (pin 2), reproducing the paper's parallel-port scope setup (§5.2).
    /// Also starts the GPIO capture.
    pub fn gpio_watch(&mut self, tid: ThreadId) {
        self.gpio_watch = Some(tid);
        self.machine.gpio().start_capture();
    }

    /// Raise device interrupt `irq` now, routed by the steering table.
    pub fn raise_device_irq(&mut self, irq: u8) {
        let cpu = self.steering.cpu_for_irq(irq);
        self.machine.raise_irq(cpu, irq);
    }

    /// Event-queue backend driving this node's machine (diagnostics; set
    /// via `MachineConfig::with_queue` or the `NAUTIX_QUEUE` hatch).
    pub fn queue_kind(&self) -> nautix_hw::QueueKind {
        self.machine.config().queue
    }

    /// Process one machine event. Returns false when the machine is
    /// quiescent (no events left).
    ///
    /// One call still surfaces exactly one kernel-visible event: the
    /// machine's batched same-timestamp drain is invisible here apart from
    /// its speed — interleaving a `step` with any node API between two
    /// same-instant events behaves as it did when the machine popped one
    /// event at a time.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.machine.advance() else {
            return false;
        };
        match ev {
            MachineEvent::TimerInterrupt { cpu } => self.interrupt_path(cpu, InvokeReason::Timer),
            MachineEvent::Ipi { cpu, .. } => self.interrupt_path(cpu, InvokeReason::Kick),
            MachineEvent::DeviceInterrupt { cpu, irq } => self.device_interrupt(cpu, irq),
            MachineEvent::OpComplete { cpu, token } => self.op_complete(cpu, token),
            MachineEvent::Wakeup { token } => self.wakeup(token),
        }
        true
    }

    /// Run until the node is quiescent: every spawned program has exited
    /// and no operations or queued tasks remain. (The machine itself may
    /// still carry environmental events — an SMI generator never stops —
    /// so "no events left" alone is not a usable criterion.)
    pub fn run_until_quiescent(&mut self) {
        loop {
            if self.live_programs == 0
                && self.cur_op.iter().all(|o| o.is_none())
                && self.tasks.iter().all(|t| t.is_empty())
            {
                break;
            }
            if !self.step() {
                break;
            }
        }
    }

    /// Run until true machine time reaches `horizon` cycles (or quiescence).
    pub fn run_until_cycles(&mut self, horizon: Cycles) {
        while self.machine.now() < horizon && self.step() {}
    }

    /// Run until true machine time reaches `ns` nanoseconds.
    pub fn run_for_ns(&mut self, ns: Nanos) {
        let horizon = self.machine.now() + self.freq.ns_to_cycles(ns);
        self.run_until_cycles(horizon);
    }

    // ------------------------------------------------------------------
    // Interrupt and event paths
    // ------------------------------------------------------------------

    /// Preempt the in-flight operation on `cpu` (if any) and account it.
    fn preempt(&mut self, cpu: CpuId) {
        if let Some((token, remaining)) = self.machine.cancel_op(cpu) {
            let tid = token as usize;
            let (_, total) = self.cur_op[cpu].take().expect("op bookkeeping lost");
            let executed = total - remaining;
            self.sched[cpu].account(&mut self.ts[tid], executed);
            self.threads.expect_mut(tid).cycles_used += executed;
            if !self.threads.expect(tid).is_idle {
                self.ts[tid].pending_compute = Some(remaining);
            }
        } else {
            self.cur_op[cpu] = None;
        }
    }

    /// The timer/kick interrupt path: preempt, charge, invoke, dispatch.
    fn interrupt_path(&mut self, cpu: CpuId, reason: InvokeReason) {
        self.preempt(cpu);
        let trace = self.gpio_watch.is_some();
        let t_irq_start = self.machine.now();
        if trace {
            self.machine.gpio_write_at(t_irq_start, 0b100, 0b100);
        }
        let c_entry = self.machine.charge(cpu, self.cm.irq_entry);
        let c_other = self.machine.charge(cpu, self.cm.sched_other);
        let t_pass_start = self.machine.busy_until(cpu);
        if trace {
            self.machine.gpio_write_at(t_pass_start, 0b010, 0b010);
        }
        let mut c_pass = self.machine.charge(cpu, self.cm.sched_pass);
        let resident = self.sched[cpu].resident() as u64;
        let per = self.machine.draw(self.cm.sched_pass_per_thread) * resident;
        self.machine.charge_raw(cpu, per);
        c_pass += per;
        if trace {
            let t = self.machine.busy_until(cpu);
            self.machine.gpio_write_at(t, 0b010, 0);
        }
        let (c_switch, timer) = self.local_invoke_raw(cpu, reason, true);
        let c_exit = self.machine.charge(cpu, self.cm.irq_exit);
        self.program_timer(cpu, timer);
        if trace {
            let t = self.machine.busy_until(cpu);
            self.machine.gpio_write_at(t, 0b100, 0);
        }
        if self.record_overheads {
            self.sched[cpu]
                .stats
                .overheads
                .push(crate::stats::OverheadSample {
                    irq: c_entry + c_exit,
                    other: c_other,
                    resched: c_pass,
                    switch: c_switch,
                });
        }
        self.dispatch(cpu);
    }

    /// A device interrupt. Two processing modes (§3.5):
    ///
    /// * with a registered **interrupt thread** waiting on the line, the
    ///   handler only acknowledges the device and wakes the thread, which
    ///   does the real work in schedulable thread context;
    /// * otherwise a bounded in-handler path runs to completion
    ///   ("the allowed starting time of an interrupt is controlled,
    ///   however the ending time is not").
    fn device_interrupt(&mut self, cpu: CpuId, irq: u8) {
        self.preempt(cpu);
        self.machine.charge(cpu, self.cm.irq_entry);
        let waiter = self.irq_waiters[irq as usize].pop_front();
        if let Some(tid) = waiter {
            // Acknowledge only; the interrupt thread does the processing.
            self.machine.charge(cpu, self.cm.atomic_rmw);
            self.machine.charge(cpu, self.cm.irq_exit);
            self.device_irqs_handled[cpu] += 1;
            let target_cpu = self.threads.expect(tid).cpu;
            self.make_ready(tid);
            if target_cpu == cpu {
                self.local_invoke(cpu, InvokeReason::Wake, true);
            } else {
                self.machine.send_kick(cpu, target_cpu);
            }
        } else {
            self.machine.charge(cpu, self.cm.device_handler);
            self.machine.charge(cpu, self.cm.irq_exit);
            self.device_irqs_handled[cpu] += 1;
        }
        self.dispatch(cpu);
    }

    /// A thread operation ran to completion.
    fn op_complete(&mut self, cpu: CpuId, token: u64) {
        let tid = token as usize;
        let (op_tid, total) = self.cur_op[cpu].take().expect("op bookkeeping lost");
        debug_assert_eq!(op_tid, tid);
        self.sched[cpu].account(&mut self.ts[tid], total);
        self.threads.expect_mut(tid).cycles_used += total;
        self.dispatch(cpu);
    }

    /// Node-level wakeups: sleep expiries, collective releases, pokes.
    fn wakeup(&mut self, token: u64) {
        match tok_kind(token) {
            TK_POKE => {
                let cpu = tok_payload(token) as usize;
                self.interrupt_path(cpu, InvokeReason::Kick);
            }
            TK_STEAL_POLL => {
                let cpu = tok_payload(token) as usize;
                self.steal_poll_armed[cpu] = false;
                self.interrupt_path(cpu, InvokeReason::Kick);
            }
            TK_SLEEP | TK_RELEASE => {
                let tid = tok_payload(token) as usize;
                let cpu = self.threads.expect(tid).cpu;
                self.preempt(cpu);
                // Ready the thread before the scheduling pass.
                self.make_ready(tid);
                self.machine.charge(cpu, self.cm.irq_entry);
                self.machine.charge(cpu, self.cm.sched_pass);
                let (_, timer) = self.local_invoke_raw(cpu, InvokeReason::Wake, true);
                self.machine.charge(cpu, self.cm.irq_exit);
                self.program_timer(cpu, timer);
                self.dispatch(cpu);
            }
            other => panic!("unknown wakeup kind {other}"),
        }
    }

    /// Transition a blocked thread to ready and queue it.
    fn make_ready(&mut self, tid: ThreadId) {
        let cpu = self.threads.expect(tid).cpu;
        let kind = self.blocked[tid].take();
        self.threads.expect_mut(tid).state = ThreadState::Ready;
        let now = self.wall_ns(cpu);
        match kind {
            Some(BlockKind::GaCollective) => {
                // Group-admission continuations run as aperiodic work.
                self.sched[cpu].enqueue_nonrt(tid, 0);
            }
            _ => {
                let st = &mut self.ts[tid];
                self.sched[cpu].enqueue(tid, st, now);
            }
        }
    }

    /// Invoke the local scheduler and program its timer in one go (for
    /// thread-context invocations with no trailing kernel-path charges).
    fn local_invoke(&mut self, cpu: CpuId, reason: InvokeReason, runnable: bool) -> Cycles {
        let (c_switch, timer) = self.local_invoke_raw(cpu, reason, runnable);
        self.program_timer(cpu, timer);
        c_switch
    }

    /// Invoke the local scheduler. Returns the drawn context-switch cost
    /// (0 when not switching) and the timer request, which the caller
    /// programs via [`Node::program_timer`] *after* its final charges.
    fn local_invoke_raw(
        &mut self,
        cpu: CpuId,
        reason: InvokeReason,
        runnable: bool,
    ) -> (Cycles, TimerReq) {
        let now = self.wall_ns(cpu);
        let prev = self.sched[cpu].current;
        let d = self.sched[cpu].invoke(now, &mut self.ts, reason, runnable);
        let mut c_switch = 0;
        if d.switched {
            c_switch = self.machine.charge(cpu, self.cm.ctx_switch);
            self.machine
                .set_tpr(cpu, self.steering.tpr_for(d.next_is_rt));
            let prev_running = self.threads.expect(d.next).state;
            if prev_running != ThreadState::Running {
                self.threads.expect_mut(d.next).state = ThreadState::Running;
            }
            // Stamp the dispatch where the paper does: when the switch
            // actually happens, path costs (and their jitter) included.
            if d.next != self.sched[cpu].idle {
                let t = self.wall_ns_busy(cpu);
                self.ts[d.next].dispatch_log.record(t);
            }
            if let Some(tl) = self.timeline.as_mut() {
                let backlog = self
                    .machine
                    .busy_until(cpu)
                    .saturating_sub(self.machine.now());
                let t = self.freq.cycles_to_ns(self.machine.now() + backlog);
                let to = if d.next == self.sched[cpu].idle {
                    None
                } else {
                    Some(d.next)
                };
                tl.switch(cpu, to, t);
            }
            if let Some(watch) = self.gpio_watch {
                // "The test thread is marked as active/inactive at the end
                // of the scheduler pass" (§5.2): stamp at the switch point.
                let t = self.machine.busy_until(cpu);
                if watch == prev {
                    self.machine.gpio_write_at(t, 0b001, 0);
                }
                if watch == d.next {
                    self.machine.gpio_write_at(t, 0b001, 0b001);
                }
            }
        }
        // Inline size-tagged tasks (§3.1): only when no RT job is runnable.
        let budget = self.sched[cpu].inline_task_budget(now, &self.ts);
        if budget > 0 && !self.tasks[cpu].is_empty() {
            let mut spent = 0;
            while let Some(task) = self.tasks[cpu].pop_sized_fitting(budget - spent) {
                self.machine.charge_raw(cpu, task.work);
                #[cfg(feature = "trace")]
                if let Some(t) = &self.trace {
                    t.emit(Record::TaskExec {
                        cpu: cpu as u32,
                        now_ns: now,
                        size_cycles: task.size.unwrap_or(task.work),
                        budget_cycles: budget,
                    });
                }
                spent += task.size.unwrap_or(task.work);
                self.tasks[cpu].inline_completed += 1;
                self.sched[cpu].stats.inline_tasks += 1;
                if spent >= budget {
                    break;
                }
            }
        }
        (
            c_switch,
            TimerReq {
                exec_cycles: d.timer_exec_cycles,
                wall_ns: d.timer_wall_ns,
            },
        )
    }

    /// Program (or disarm) the one-shot timer from a scheduler request.
    ///
    /// Execution-relative requests (slice budgets, quanta) start counting
    /// when the dispatched thread actually resumes — after the CPU's
    /// current kernel-path busy window — so the backlog is added, exactly
    /// as a real kernel programs the countdown on its way out of the
    /// handler. Wall-clock requests (arrivals, latest-start points) are
    /// absolute and get no such adjustment. Callers invoke this *after*
    /// their final charges.
    fn program_timer(&mut self, cpu: CpuId, req: TimerReq) {
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            t.emit(Record::TimerReq {
                cpu: cpu as u32,
                now_ns: self.wall_ns(cpu),
                wall_ns: req.wall_ns.unwrap_or(Nanos::MAX),
                exec_cycles: req.exec_cycles.unwrap_or(Cycles::MAX),
                armed: req.exec_cycles.is_some() || req.wall_ns.is_some(),
            });
        }
        if req.exec_cycles.is_none() && req.wall_ns.is_none() {
            self.machine.cancel_timer(cpu);
            return;
        }
        self.machine.charge(cpu, self.cm.timer_program);
        let backlog = self
            .machine
            .busy_until(cpu)
            .saturating_sub(self.machine.now());
        let mut delay: Option<Cycles> = req.exec_cycles.map(|c| c + backlog);
        if let Some(at) = req.wall_ns {
            let d = self
                .freq
                .ns_to_cycles(at.saturating_sub(self.wall_ns(cpu)))
                .max(1);
            delay = Some(delay.map_or(d, |b| b.min(d)));
        }
        self.machine.set_timer_cycles(cpu, delay.unwrap());
    }

    // ------------------------------------------------------------------
    // Dispatch: run the current thread until it computes, blocks, or exits
    // ------------------------------------------------------------------

    fn dispatch(&mut self, cpu: CpuId) {
        loop {
            let tid = self.sched[cpu].current;
            if tid == self.sched[cpu].idle {
                self.idle_behavior(cpu);
                return;
            }
            // Group-admission continuation takes precedence over the
            // program: the thread is still inside the call.
            if self.ga[tid].is_some() {
                if self.ga_step(cpu, tid) {
                    // Blocked inside the algorithm (or left the CPU).
                    self.local_invoke(cpu, InvokeReason::Block, false);
                    continue;
                }
                // Finished: fall through. The thread may now be RT-pending
                // (not runnable); let the scheduler decide.
                if self.sched[cpu].current != tid {
                    continue;
                }
                let st = &self.ts[tid];
                if st.is_rt() {
                    // Anchored periodic/sporadic: wait for the arrival.
                    let st = &mut self.ts[tid];
                    self.sched[cpu].enqueue(tid, st, 0);
                    // enqueue used pending queue keyed on next_arrival.
                    self.threads.expect_mut(tid).state = ThreadState::Ready;
                    self.local_invoke(cpu, InvokeReason::ConstraintChange, false);
                    continue;
                }
            }
            if let Some(rem) = self.ts[tid].pending_compute.take() {
                self.begin_op(cpu, tid, rem);
                return;
            }
            // Resume the program.
            let result = std::mem::replace(&mut self.pending_result[tid], SysResult::None);
            let mut cx = ResumeCx {
                tid,
                cpu,
                now_ns: self.wall_ns(cpu),
                result,
            };
            let action = self.threads.expect_mut(tid).program.resume(&mut cx);
            match action {
                Action::Compute(c) => {
                    self.begin_op(cpu, tid, c);
                    return;
                }
                Action::Exit => {
                    self.thread_exit(tid);
                    self.local_invoke(cpu, InvokeReason::Exit, false);
                    continue;
                }
                Action::Call(sys) => {
                    if self.handle_syscall(cpu, tid, sys) {
                        // Blocked.
                        self.local_invoke(cpu, InvokeReason::Block, false);
                        continue;
                    }
                    // Not blocked; the scheduler may still have moved the
                    // thread (yield / constraint change). Loop re-reads
                    // `current`.
                    continue;
                }
            }
        }
    }

    fn begin_op(&mut self, cpu: CpuId, tid: ThreadId, cycles: Cycles) {
        debug_assert!(self.cur_op[cpu].is_none());
        self.cur_op[cpu] = Some((tid, cycles));
        self.machine.begin_op(cpu, cycles, tid as u64);
    }

    fn idle_behavior(&mut self, cpu: CpuId) {
        // 0. Thread-pool maintenance: reap this CPU's exited threads.
        self.reap(cpu);
        // 1. Work stealing (power-of-two-choices, aperiodic threads only).
        if self.cfg_sched.work_stealing && self.try_steal(cpu) {
            self.local_invoke(cpu, InvokeReason::Kick, false);
            self.dispatch(cpu);
            return;
        }
        // 2. Unsized lightweight tasks (the task-exec role).
        if let Some(task) = self.tasks[cpu].pop_unsized() {
            self.tasks[cpu].helper_completed += 1;
            let idle = self.sched[cpu].idle;
            self.begin_op(cpu, idle, task.work);
            return;
        }
        // 3. Arm a steal retry poll if stealable work exists elsewhere.
        if self.cfg_sched.work_stealing && !self.steal_poll_armed[cpu] {
            let work_somewhere = (0..self.sched.len()).any(|c| {
                c != cpu
                    && self.sched[c].nonrt_len() > 1
                    && self.sched[c]
                        .nonrt_iter()
                        .any(|t| !self.threads.expect(t).bound)
            });
            if work_somewhere {
                self.steal_poll_armed[cpu] = true;
                let at = self.machine.now() + self.freq.ns_to_cycles(self.steal_poll_ns);
                self.machine
                    .schedule_wakeup(at, tok(TK_STEAL_POLL, cpu as u64), Some(cpu));
            }
        }
        // 4. Halt until the next interrupt.
    }

    /// Pick a work-steal victim in the CPU domain `[lo, hi)`: uniform over
    /// the other CPUs there, never the stealer itself. Drawing from a span
    /// of `hi - lo - 1` and shifting the stealer's own index out of the
    /// image gives every other CPU equal probability without rejection
    /// sampling (one RNG draw per probe). Over the whole machine this is
    /// the original flat picker, draw for draw.
    fn pick_victim_in(&mut self, cpu: CpuId, lo: usize, hi: usize) -> CpuId {
        let r = self.machine.rand_uniform(0, (hi - lo - 2) as u64);
        shifted_victim(lo, hi, cpu, |_| r)
    }

    /// One steal attempt (§3.4). The `LlcFirst` policy probes the thief's
    /// own LLC domain first and widens to the package and then the whole
    /// machine only when the narrower domain shows no stealable backlog;
    /// `Uniform` probes machine-wide directly. Under a flat topology both
    /// collapse to one machine-wide stage — today's baseline exactly.
    fn try_steal(&mut self, cpu: CpuId) -> bool {
        if self.sched.len() < 2 {
            return false;
        }
        match self.cfg_sched.steal {
            StealPolicy::LlcFirst => {
                for (lo, hi) in self.topo.steal_stages(cpu) {
                    // A domain containing only the thief has no victims.
                    if hi - lo < 2 {
                        continue;
                    }
                    match self.steal_stage(cpu, lo, hi) {
                        StageOutcome::Stole => return true,
                        // The probed victim had backlog but nothing
                        // migratable; widening now would double-charge the
                        // lock path — retry on the next idle pass instead.
                        StageOutcome::LockedEmpty => return false,
                        StageOutcome::NoBacklog => {}
                    }
                }
                false
            }
            StealPolicy::Uniform => {
                self.steal_stage(cpu, 0, self.sched.len()) == StageOutcome::Stole
            }
        }
    }

    /// Probe two victims in `[lo, hi)` and steal from the longer non-RT
    /// queue. "Only aperiodic threads can be stolen" (§3.4). Probe and
    /// lock/migration charges depend on the thief→victim hop distance
    /// (same-LLC probes are the flat model's shared-line reads).
    fn steal_stage(&mut self, cpu: CpuId, lo: usize, hi: usize) -> StageOutcome {
        let v1 = self.pick_victim_in(cpu, lo, hi);
        let v2 = self.pick_victim_in(cpu, lo, hi);
        // Probing the victims' queue lengths costs shared-line reads.
        let p1 = self.cm.steal_probe_for(self.topo.distance(cpu, v1));
        let p2 = self.cm.steal_probe_for(self.topo.distance(cpu, v2));
        self.machine.charge(cpu, p1);
        self.machine.charge(cpu, p2);
        let victim = if self.sched[v1].nonrt_len() >= self.sched[v2].nonrt_len() {
            v1
        } else {
            v2
        };
        // Steal only from backlogged victims: a single queued thread is
        // about to run right there; migrating it would hurt, not help.
        if self.sched[victim].nonrt_len() < 2 {
            return StageOutcome::NoBacklog;
        }
        // Lock the victim's scheduler only once work was ascertained, and
        // take the first *unbound* queued thread (bound threads never
        // migrate) straight off the victim's ring — no snapshot `Vec`.
        let dist = self.topo.distance(cpu, victim);
        self.machine.charge(cpu, self.cm.steal_lock_for(dist));
        let candidate = self.sched[victim]
            .nonrt_iter()
            .find(|&t| !self.threads.expect(t).bound);
        let Some(tid) = candidate else {
            return StageOutcome::LockedEmpty;
        };
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            t.emit(Record::Steal {
                thief: cpu as u32,
                victim: victim as u32,
                tid: tid as u32,
            });
        }
        self.sched[victim].dequeue(tid);
        self.threads.expect_mut(tid).cpu = cpu;
        let now = self.wall_ns(cpu);
        let st = &mut self.ts[tid];
        self.sched[cpu].enqueue(tid, st, now);
        self.sched[cpu].stats.steals += 1;
        self.sched[cpu].stats.steals_by_distance[dist.index()] += 1;
        StageOutcome::Stole
    }

    fn thread_exit(&mut self, tid: ThreadId) {
        let cpu = self.threads.expect(tid).cpu;
        // A job that completed in the thread's final instants still counts.
        let now = self.wall_ns(cpu);
        {
            let st = &mut self.ts[tid];
            self.sched[cpu].finalize_exit(tid, st, now);
        }
        // Release any admitted constraints.
        #[cfg(feature = "trace")]
        if self.ts[tid].constraints.is_realtime() {
            if let Some(t) = &self.trace {
                t.emit(Record::ConstraintsReleased {
                    cpu: cpu as u32,
                    tid: tid as u32,
                });
            }
        }
        self.sched[cpu].load.release(&self.ts[tid].constraints);
        self.sched[cpu].dequeue(tid);
        self.threads.expect_mut(tid).state = ThreadState::Exited;
        if let Some(stack) = self.threads.expect(tid).stack {
            self.alloc.free(stack);
            self.threads.expect_mut(tid).stack = None;
        }
        self.zombies[cpu].push(tid);
        self.live_programs -= 1;
    }

    /// Reap exited threads bound to `cpu`: return their table slots to the
    /// pool. Bounded batch per idle pass, so the time under the scheduler
    /// lock stays bounded (§3.4).
    fn reap(&mut self, cpu: CpuId) -> usize {
        let mut reaped = 0;
        while reaped < 8 {
            let Some(tid) = self.zombies[cpu].pop() else {
                break;
            };
            self.machine.charge(cpu, self.cm.atomic_rmw);
            self.threads.reap(tid);
            reaped += 1;
        }
        reaped
    }

    // ------------------------------------------------------------------
    // Syscalls
    // ------------------------------------------------------------------

    /// Model a serialized contended operation (a lock or contended RMW on
    /// a shared line): the caller queues behind earlier holders. `slot` is
    /// a [`serial_slot`] index. Returns the total time charged.
    fn serialize_on(&mut self, slot: usize, hold: Cycles) -> Cycles {
        let now = self.machine.now();
        let until = &mut self.serial_until[slot];
        let start = (*until).max(now);
        let wait = start - now;
        *until = start + hold;
        wait + hold
    }

    /// Handle a syscall; returns true if the thread blocked.
    fn handle_syscall(&mut self, cpu: CpuId, tid: ThreadId, sys: SysCall) -> bool {
        match sys {
            SysCall::Yield => {
                self.pending_result[tid] = SysResult::None;
                self.local_invoke(cpu, InvokeReason::Yield, true);
                false
            }
            SysCall::WaitNextPeriod => {
                self.pending_result[tid] = SysResult::None;
                {
                    let st = &mut self.ts[tid];
                    if st.is_rt() && st.job_active {
                        // The job is done for this period; the scheduling
                        // pass below records it complete and re-pends the
                        // thread at its next arrival.
                        st.remaining_cycles = 0;
                    }
                }
                self.local_invoke(cpu, InvokeReason::Yield, true);
                false
            }
            SysCall::SleepNs(ns) => {
                self.block(tid, BlockKind::Sleep, WaitKind::Sleep);
                let at = self.machine.now() + self.freq.ns_to_cycles(ns);
                self.machine
                    .schedule_wakeup(at, tok(TK_SLEEP, tid as u64), Some(cpu));
                true
            }
            SysCall::ReadClock => {
                self.machine.charge(cpu, self.cm.spin_check);
                self.pending_result[tid] = SysResult::Clock(self.wall_ns(cpu));
                false
            }
            SysCall::ChangeConstraints(c) => {
                self.machine.charge(cpu, self.cm.admission_local);
                let now = self.wall_ns(cpu);
                let res = self.change_constraints_now(tid, c, now);
                self.pending_result[tid] = SysResult::Admission(res);
                self.local_invoke(cpu, InvokeReason::ConstraintChange, true);
                false
            }
            SysCall::GroupCreate { name } => {
                self.machine.charge(cpu, self.cm.atomic_rmw);
                let res = self.groups.create(name);
                self.pending_result[tid] = SysResult::Group(res);
                false
            }
            SysCall::GroupJoin(gid) => {
                let t0 = self.wall_ns(cpu);
                let hold = self.machine.draw(self.cm.atomic_rmw_contended);
                let dur = self.serialize_on(serial_slot(SER_JOIN, gid), hold);
                self.machine.charge_raw(cpu, dur);
                let res = self.groups.join(gid, tid).map(|_| gid);
                let t1 = self.wall_ns(cpu) + self.freq.cycles_to_ns(dur);
                self.join_timings.push((tid, t1 - t0));
                self.pending_result[tid] = SysResult::Group(res);
                false
            }
            SysCall::GroupLeave(gid) => {
                let hold = self.machine.draw(self.cm.atomic_rmw_contended);
                let dur = self.serialize_on(serial_slot(SER_JOIN, gid), hold);
                self.machine.charge_raw(cpu, dur);
                let res = self.groups.leave(gid, tid).map(|_| gid);
                self.pending_result[tid] = SysResult::Group(res);
                false
            }
            SysCall::GroupSize(gid) => {
                self.machine.charge(cpu, self.cm.atomic_rmw);
                let len = self.groups.get(gid).map(|g| g.len() as u64).unwrap_or(0);
                self.pending_result[tid] = SysResult::Value(len);
                false
            }
            SysCall::GroupBarrier(gid) => self.group_barrier(cpu, tid, gid, BlockKind::Barrier),
            SysCall::GroupElect(gid) => {
                self.group_collective(cpu, tid, gid, CollKind::Elect, tid as u64)
            }
            SysCall::GroupReduceMax { group, value } => {
                self.group_collective(cpu, tid, group, CollKind::Reduce, value)
            }
            SysCall::GroupBroadcast { group, value } => {
                self.group_collective(cpu, tid, group, CollKind::Broadcast, value)
            }
            SysCall::GroupChangeConstraints { group, constraints } => {
                let now = self.wall_ns_busy(cpu);
                self.ga[tid] = Some(GaCtx {
                    group,
                    constraints,
                    phase: GaPhase::Start,
                    leader: usize::MAX,
                    my_error: 0,
                    group_error: 0,
                    admitted_here: false,
                    order: 0,
                    n: 0,
                    delta_ns: 0,
                    t_call: now,
                    t_elect: 0,
                    local_admit_ns: 0,
                    t_reduce: 0,
                });
                if self.ga_step(cpu, tid) {
                    self.local_invoke(cpu, InvokeReason::Block, false);
                }
                false
            }
            SysCall::GroupAdmitTeam { group, constraints } => {
                if self.group_admit_team(cpu, tid, group, constraints) {
                    true
                } else {
                    // The completer ran the whole transaction inline; its
                    // own schedule may have changed class. Re-invoke
                    // exactly as ChangeConstraints does.
                    self.local_invoke(cpu, InvokeReason::ConstraintChange, true);
                    false
                }
            }
            SysCall::WaitIrq(irq) => {
                assert!((irq as usize) < IRQ_LINES, "irq vector out of range");
                self.machine.charge(cpu, self.cm.atomic_rmw);
                self.block(tid, BlockKind::Irq, WaitKind::Idle);
                self.irq_waiters[irq as usize].push_back(tid);
                true
            }
            SysCall::TaskSpawn { size, work } => {
                self.machine.charge(cpu, self.cm.atomic_rmw);
                let id = self.tasks[cpu]
                    .spawn(size, work)
                    .map(|t| t.0)
                    .unwrap_or(u64::MAX);
                self.pending_result[tid] = SysResult::Value(id);
                false
            }
            SysCall::GpioSet { pin, high } => {
                self.machine
                    .gpio_write(1 << pin, if high { 1 << pin } else { 0 });
                false
            }
        }
    }

    fn block(&mut self, tid: ThreadId, kind: BlockKind, wait: WaitKind) {
        self.blocked[tid] = Some(kind);
        self.threads.expect_mut(tid).state = ThreadState::Waiting(wait);
    }

    /// Plain group barrier syscall: arrive; completer proceeds, the rest
    /// wake at their staggered departures.
    fn group_barrier(&mut self, cpu: CpuId, tid: ThreadId, gid: GroupId, kind: BlockKind) -> bool {
        let hold = self.machine.draw(self.cm.atomic_rmw_contended);
        let dur = self.serialize_on(serial_slot(SER_BARRIER, gid), hold);
        self.machine.charge_raw(cpu, dur);
        let Ok(group) = self.groups.get_mut(gid) else {
            self.pending_result[tid] = SysResult::Group(Err(GroupError::NotFound));
            return false;
        };
        let mut rng =
            nautix_des::DetRng::seed_from(0x5EED ^ self.machine.now() ^ (gid.0 as u64) << 32);
        match group
            .barrier
            .arrive(tid, &mut rng, self.cm.barrier_release_stagger)
        {
            BarrierOutcome::Wait => {
                self.block(tid, kind, WaitKind::Barrier);
                true
            }
            BarrierOutcome::Release(rs) => {
                self.schedule_barrier_releases(tid, &rs);
                self.pending_result[tid] = SysResult::None;
                false
            }
        }
    }

    /// Releases depart from the *end* of the completer's (serialized)
    /// arrival — the instant its RMW actually lands on the shared line —
    /// not from the event timestamp at which the charge was issued.
    fn release_base(&self, completer_cpu: CpuId) -> Cycles {
        self.machine
            .busy_until(completer_cpu)
            .max(self.machine.now())
    }

    fn schedule_barrier_releases(&mut self, completer: ThreadId, rs: &[nautix_kernel::Release]) {
        let base = self.release_base(self.threads.expect(completer).cpu);
        for r in rs {
            if r.tid == completer {
                continue;
            }
            let cpu = self.threads.expect(r.tid).cpu;
            self.pending_result[r.tid] = SysResult::None;
            self.machine
                .schedule_wakeup(base + r.delay, tok(TK_RELEASE, r.tid as u64), Some(cpu));
        }
    }

    fn group_collective(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        gid: GroupId,
        kind: CollKind,
        value: u64,
    ) -> bool {
        let hold = self.machine.draw(self.cm.atomic_rmw_contended);
        let dur = self.serialize_on(serial_slot(SER_COLL + kind as usize, gid), hold);
        self.machine.charge_raw(cpu, dur);
        let leader = self
            .groups
            .get(gid)
            .ok()
            .and_then(|g| g.members().first().copied())
            .unwrap_or(tid);
        let Ok(group) = self.groups.get_mut(gid) else {
            self.pending_result[tid] = SysResult::Group(Err(GroupError::NotFound));
            return false;
        };
        let coll = match kind {
            CollKind::Elect => &mut group.election,
            CollKind::Reduce => &mut group.reduction,
            CollKind::Broadcast => &mut group.broadcast,
        };
        let decision = match kind {
            CollKind::Elect => GDecision::Min,
            CollKind::Reduce => GDecision::Max,
            CollKind::Broadcast => GDecision::Of(leader),
        };
        let mut rng =
            nautix_des::DetRng::seed_from(0xC0_11EC ^ self.machine.now() ^ (gid.0 as u64) << 32);
        match coll.arrive(
            tid,
            value,
            decision,
            &mut rng,
            self.cm.barrier_release_stagger,
        ) {
            CollectiveOutcome::Wait => {
                self.block(tid, BlockKind::Collective, WaitKind::Group);
                true
            }
            CollectiveOutcome::Complete(rs) => {
                self.schedule_collective_releases(tid, &rs, BlockKind::Collective);
                self.pending_result[tid] = SysResult::Value(rs[0].result);
                false
            }
        }
    }

    fn schedule_collective_releases(
        &mut self,
        completer: ThreadId,
        rs: &[CollectiveRelease],
        _kind: BlockKind,
    ) {
        let base = self.release_base(self.threads.expect(completer).cpu);
        for r in rs {
            if r.tid == completer {
                continue;
            }
            let cpu = self.threads.expect(r.tid).cpu;
            self.pending_result[r.tid] = SysResult::Value(r.result);
            self.machine
                .schedule_wakeup(base + r.delay, tok(TK_RELEASE, r.tid as u64), Some(cpu));
        }
    }

    // ------------------------------------------------------------------
    // Group admission control: Algorithm 1 (§4.3) + phase correction (§4.4)
    // ------------------------------------------------------------------

    /// Advance `tid`'s group-admission continuation. Returns true if the
    /// thread blocked.
    fn ga_step(&mut self, cpu: CpuId, tid: ThreadId) -> bool {
        loop {
            let phase = self.ga[tid].as_ref().expect("ga context").phase;
            match phase {
                GaPhase::Start => {
                    // conduct leader election
                    match self.ga_collective(cpu, tid, GaColl::Elect, tid as u64) {
                        None => return true,
                        Some(leader) => {
                            let now = self.wall_ns_busy(cpu);
                            let ctx = self.ga[tid].as_mut().unwrap();
                            ctx.leader = leader as usize;
                            ctx.t_elect = now;
                            ctx.phase = GaPhase::AfterElect;
                        }
                    }
                }
                GaPhase::AfterElect => {
                    // One-shot side effects: the leader locks the group and
                    // attaches the constraints; then everyone proceeds to
                    // the (re-entrant) barrier state.
                    let ctx = self.ga[tid].as_ref().unwrap().clone();
                    if ctx.leader == tid {
                        // lock group; attach constraints to group
                        self.machine.charge(cpu, self.cm.atomic_rmw);
                        self.machine.charge(cpu, self.cm.atomic_rmw);
                        let g = self.groups.get_mut(ctx.group).expect("group vanished");
                        g.lock(tid).expect("leader lock contention");
                        g.attached = Some(ctx.constraints);
                    }
                    self.ga[tid].as_mut().unwrap().phase = GaPhase::Barrier1;
                }
                GaPhase::Barrier1 => {
                    // execute group barrier
                    match self.ga_barrier(cpu, tid) {
                        None => return true,
                        Some(_) => {
                            self.ga[tid].as_mut().unwrap().phase = GaPhase::AfterBarrier1;
                        }
                    }
                }
                GaPhase::AfterBarrier1 => {
                    // One-shot: conduct local admission control (in thread
                    // context, with the leader-attached constraints). The
                    // ledger is touched exactly once per call — re-entry
                    // happens only in the Reducing state below.
                    let t0 = self.machine.now();
                    self.machine.charge(cpu, self.cm.admission_local);
                    let dur = self.machine.busy_until(cpu).saturating_sub(t0);
                    let gid = self.ga[tid].as_ref().unwrap().group;
                    let attached = self
                        .groups
                        .get(gid)
                        .ok()
                        .and_then(|g| g.attached)
                        .expect("leader attached constraints");
                    let old = self.ts[tid].constraints;
                    let cfg = *self.sched[cpu].config();
                    self.sched[cpu].load.release(&old);
                    let candidate = self.sched[cpu].load.admit(&cfg, &attached);
                    // The probe (when the policy simulated) belongs to the
                    // candidate's verdict; take it before a rollback
                    // re-admission can overwrite it.
                    let _probe = self.sched[cpu].load.take_probe();
                    let err = match candidate {
                        Ok(()) => {
                            let ctx = self.ga[tid].as_mut().unwrap();
                            ctx.admitted_here = true;
                            ctx.constraints = attached;
                            0
                        }
                        Err(e) => {
                            if std::env::var_os("NAUTIX_GA_DEBUG").is_some() {
                                eprintln!("GA: tid {tid} cpu {cpu} admission failed: {e:?} (attached {attached:?})");
                            }
                            self.sched[cpu]
                                .load
                                .admit(&cfg, &old)
                                .expect("re-admit old constraints");
                            // The rollback's own probe pairs with no
                            // emitted verdict: drop it.
                            let _ = self.sched[cpu].load.take_probe();
                            if old.is_realtime() {
                                self.sched[cpu].load.note_rollback();
                            }
                            admission_error_code(e)
                        }
                    };
                    #[cfg(feature = "trace")]
                    {
                        if err == 0 && old.is_realtime() {
                            if let Some(t) = &self.trace {
                                t.emit(Record::ConstraintsReleased {
                                    cpu: cpu as u32,
                                    tid: tid as u32,
                                });
                            }
                        }
                        self.sched[cpu].emit_probe(_probe);
                        self.sched[cpu].emit_verdict(tid, &attached, err == 0);
                        if err != 0 && old.is_realtime() {
                            self.sched[cpu].emit_rollback(tid, &old);
                        }
                    }
                    {
                        let ctx = self.ga[tid].as_mut().unwrap();
                        ctx.my_error = err;
                        ctx.local_admit_ns = self.freq.cycles_to_ns(dur);
                        ctx.phase = GaPhase::Reducing;
                    }
                }
                GaPhase::Reducing => {
                    // execute group reduction over errors
                    let err = self.ga[tid].as_ref().unwrap().my_error;
                    match self.ga_collective(cpu, tid, GaColl::Reduce, err) {
                        None => return true,
                        Some(group_err) => {
                            let now = self.wall_ns_busy(cpu);
                            let ctx = self.ga[tid].as_mut().unwrap();
                            ctx.group_error = group_err;
                            ctx.t_reduce = now;
                            ctx.phase = GaPhase::AfterReduce;
                        }
                    }
                }
                GaPhase::AfterReduce => {
                    // One-shot: commit to the final barrier, or roll the
                    // ledger back and fall back to aperiodic constraints.
                    let ctx = self.ga[tid].as_ref().unwrap().clone();
                    if ctx.group_error != 0 {
                        // if any local admission control failed then
                        // readmit myself using default constraints
                        self.machine.charge(cpu, self.cm.admission_local);
                        if ctx.admitted_here {
                            self.sched[cpu].load.release(&ctx.constraints);
                            #[cfg(feature = "trace")]
                            if let Some(t) = &self.trace {
                                t.emit(Record::ConstraintsReleased {
                                    cpu: cpu as u32,
                                    tid: tid as u32,
                                });
                            }
                        } else {
                            let prev = self.ts[tid].constraints;
                            self.sched[cpu].load.release(&prev);
                            // Keep the oracle's admitted-set mirror in step:
                            // the rolled-back reservation (restored after
                            // this member's own rejection) is released too.
                            #[cfg(feature = "trace")]
                            if prev.is_realtime() {
                                if let Some(t) = &self.trace {
                                    t.emit(Record::ConstraintsReleased {
                                        cpu: cpu as u32,
                                        tid: tid as u32,
                                    });
                                }
                            }
                        }
                        let fallback = Constraints::default_aperiodic();
                        let cfg = *self.sched[cpu].config();
                        self.sched[cpu]
                            .load
                            .admit(&cfg, &fallback)
                            .expect("aperiodic admission cannot fail");
                        self.ts[tid].constraints = fallback;
                        self.ts[tid].job_active = false;
                        self.ga[tid].as_mut().unwrap().phase = GaPhase::FallbackBarrier;
                    } else {
                        self.ga[tid].as_mut().unwrap().phase = GaPhase::FinalBarrier;
                    }
                }
                GaPhase::FallbackBarrier => {
                    // execute group barrier
                    match self.ga_barrier(cpu, tid) {
                        None => return true,
                        Some(_) => {
                            self.ga[tid].as_mut().unwrap().phase = GaPhase::AfterFallbackBarrier;
                        }
                    }
                }
                GaPhase::FinalBarrier => {
                    // execute group barrier and get my release order
                    match self.ga_barrier(cpu, tid) {
                        None => return true,
                        Some(_) => {
                            self.ga[tid].as_mut().unwrap().phase = GaPhase::AfterFinalBarrier;
                        }
                    }
                }
                GaPhase::AfterFallbackBarrier => {
                    let ctx = self.ga[tid].as_ref().unwrap().clone();
                    if ctx.leader == tid {
                        let g = self.groups.get_mut(ctx.group).expect("group vanished");
                        g.attached = None;
                        g.unlock(tid).expect("leader unlock");
                    }
                    self.pending_result[tid] =
                        SysResult::Admission(Err(AdmissionError::GroupMemberRejected));
                    self.finish_ga(tid, false);
                    return false;
                }
                GaPhase::AfterFinalBarrier => {
                    // phase correct my schedule based on my release order
                    let ctx = self.ga[tid].as_ref().unwrap().clone();
                    let now = self.wall_ns_busy(cpu);
                    let corrected = nautix_groups::correct_constraints(
                        ctx.constraints,
                        ctx.order,
                        ctx.n.max(1),
                        ctx.delta_ns,
                    );
                    {
                        let st = &mut self.ts[tid];
                        st.constraints = corrected;
                        st.job_active = false;
                        st.job_started = false;
                        st.job_blocked = false;
                        self.sched[cpu].anchor(st, now);
                    }
                    if ctx.leader == tid {
                        let g = self.groups.get_mut(ctx.group).expect("group vanished");
                        g.unlock(tid).expect("leader unlock");
                    }
                    self.pending_result[tid] = SysResult::Admission(Ok(()));
                    if self.record_ga_timing {
                        let c = self.ga[tid].as_ref().unwrap();
                        self.ga_timings.push(GaTiming {
                            tid,
                            n: c.n,
                            t_call: c.t_call,
                            t_elect: c.t_elect,
                            local_admit_ns: c.local_admit_ns,
                            t_reduce: c.t_reduce,
                            t_done: now,
                        });
                    }
                    self.finish_ga(tid, true);
                    return false;
                }
            }
        }
    }

    fn finish_ga(&mut self, tid: ThreadId, success: bool) {
        if !success && self.record_ga_timing {
            let c = self.ga[tid].as_ref().unwrap();
            let cpu = self.threads.expect(tid).cpu;
            let now = self.wall_ns_busy(cpu);
            self.ga_timings.push(GaTiming {
                tid,
                n: c.n,
                t_call: c.t_call,
                t_elect: c.t_elect,
                local_admit_ns: c.local_admit_ns,
                t_reduce: c.t_reduce,
                t_done: now,
            });
        }
        self.ga[tid] = None;
    }

    /// A collective arrival inside group admission. Returns the result if
    /// the thread proceeded, or None if it blocked.
    fn ga_collective(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        which: GaColl,
        value: u64,
    ) -> Option<u64> {
        // If a previous release delivered the result, consume it.
        if let SysResult::Value(v) =
            std::mem::replace(&mut self.pending_result[tid], SysResult::None)
        {
            return Some(v);
        }
        let gid = self.ga[tid].as_ref().unwrap().group;
        let hold = self.machine.draw(self.cm.atomic_rmw_contended);
        let dur = self.serialize_on(serial_slot(SER_GA_COLL + which as usize, gid), hold);
        self.machine.charge_raw(cpu, dur);
        let group = self.groups.get_mut(gid).expect("group vanished");
        let coll = match which {
            GaColl::Elect => &mut group.election,
            GaColl::Reduce => &mut group.reduction,
        };
        let decision = match which {
            GaColl::Elect => GDecision::Min,
            GaColl::Reduce => GDecision::Max,
        };
        let mut rng =
            nautix_des::DetRng::seed_from(0x6A ^ self.machine.now() ^ (gid.0 as u64) << 32);
        match coll.arrive(
            tid,
            value,
            decision,
            &mut rng,
            self.cm.barrier_release_stagger,
        ) {
            CollectiveOutcome::Wait => {
                self.block(tid, BlockKind::GaCollective, WaitKind::Group);
                None
            }
            CollectiveOutcome::Complete(rs) => {
                self.schedule_collective_releases(tid, &rs, BlockKind::GaCollective);
                Some(rs[0].result)
            }
        }
    }

    /// A barrier arrival inside group admission. Returns Some(()) when the
    /// thread proceeded (release order and δ recorded in its context).
    fn ga_barrier(&mut self, cpu: CpuId, tid: ThreadId) -> Option<()> {
        if let SysResult::Value(_) =
            std::mem::replace(&mut self.pending_result[tid], SysResult::None)
        {
            return Some(());
        }
        let gid = self.ga[tid].as_ref().unwrap().group;
        let hold = self.machine.draw(self.cm.atomic_rmw_contended);
        let dur = self.serialize_on(serial_slot(SER_GA_BARRIER, gid), hold);
        self.machine.charge_raw(cpu, dur);
        let group = self.groups.get_mut(gid).expect("group vanished");
        let mut rng =
            nautix_des::DetRng::seed_from(0xBA44 ^ self.machine.now() ^ (gid.0 as u64) << 32);
        match group
            .barrier
            .arrive(tid, &mut rng, self.cm.barrier_release_stagger)
        {
            BarrierOutcome::Wait => {
                self.block(tid, BlockKind::GaCollective, WaitKind::Barrier);
                None
            }
            BarrierOutcome::Release(rs) => {
                // Record release order and measured δ for every member.
                let delays_ns: Vec<Nanos> =
                    rs.iter().map(|r| self.freq.cycles_to_ns(r.delay)).collect();
                let delta = if self.phase_correction {
                    estimate_delta(&delays_ns)
                } else {
                    0
                };
                let n = rs.len();
                let base = self.release_base(cpu);
                for r in &rs {
                    if let Some(ctx) = self.ga[r.tid].as_mut() {
                        ctx.order = r.order;
                        ctx.n = n;
                        ctx.delta_ns = delta;
                    }
                    if r.tid != tid {
                        let cpu_r = self.threads.expect(r.tid).cpu;
                        self.pending_result[r.tid] = SysResult::Value(1);
                        self.machine.schedule_wakeup(
                            base + r.delay,
                            tok(TK_RELEASE, r.tid as u64),
                            Some(cpu_r),
                        );
                    }
                }
                Some(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Batched group admission: one ledger transaction per team
    // ------------------------------------------------------------------

    /// The `GroupAdmitTeam` rendezvous: members arrive at the group
    /// barrier; the completer admits or rejects the whole team in one
    /// ledger transaction ([`Node::admit`]'s team engine) and wakes the
    /// others with the shared verdict at their staggered departures.
    /// Algorithm 1's election, per-member local admission, and error
    /// reduction collapse into the barrier plus the transaction. Returns
    /// true if the calling thread blocked.
    fn group_admit_team(
        &mut self,
        cpu: CpuId,
        tid: ThreadId,
        gid: GroupId,
        constraints: Constraints,
    ) -> bool {
        let hold = self.machine.draw(self.cm.atomic_rmw_contended);
        let dur = self.serialize_on(serial_slot(SER_GA_BARRIER, gid), hold);
        self.machine.charge_raw(cpu, dur);
        let Ok(group) = self.groups.get_mut(gid) else {
            self.pending_result[tid] = SysResult::Group(Err(GroupError::NotFound));
            return false;
        };
        let mut rng =
            nautix_des::DetRng::seed_from(0x7EA0 ^ self.machine.now() ^ (gid.0 as u64) << 32);
        match group
            .barrier
            .arrive(tid, &mut rng, self.cm.barrier_release_stagger)
        {
            BarrierOutcome::Wait => {
                self.block(tid, BlockKind::Barrier, WaitKind::Barrier);
                true
            }
            BarrierOutcome::Release(rs) => {
                // Completer context: the release order is the team's phase
                // order; the measured departure stagger is δ (§4.4).
                let mut members = vec![0usize; rs.len()];
                for r in &rs {
                    members[r.order] = r.tid;
                }
                let delays_ns: Vec<Nanos> =
                    rs.iter().map(|r| self.freq.cycles_to_ns(r.delay)).collect();
                let delta = if self.phase_correction {
                    estimate_delta(&delays_ns)
                } else {
                    0
                };
                // The transaction runs serially in completer context: one
                // local-admission charge per member on this CPU.
                for _ in 0..members.len() {
                    self.machine.charge(cpu, self.cm.admission_local);
                }
                let anchor = self.wall_ns_busy(cpu);
                let res = self.admit_team_txn(&members, constraints, anchor, delta);
                #[cfg(feature = "trace")]
                if let Some(t) = &self.trace {
                    t.emit(Record::TeamAdmit {
                        cpu: cpu as u32,
                        group: gid.0,
                        members: members.len() as u32,
                        accepted: res.is_ok(),
                    });
                }
                // Members share one group-level verdict, like Algorithm 1.
                let verdict = res.map_err(|_| AdmissionError::GroupMemberRejected);
                let base = self.release_base(cpu);
                for r in &rs {
                    if r.tid == tid {
                        continue;
                    }
                    let cpu_r = self.threads.expect(r.tid).cpu;
                    self.pending_result[r.tid] = SysResult::Admission(verdict);
                    self.machine.schedule_wakeup(
                        base + r.delay,
                        tok(TK_RELEASE, r.tid as u64),
                        Some(cpu_r),
                    );
                }
                self.pending_result[tid] = SysResult::Admission(verdict);
                false
            }
        }
    }

    /// The unified typed admission entry point: submit an
    /// [`AdmissionRequest`] (built in the `ConstraintsBuilder` style) and
    /// get an [`AdmissionOutcome`] back.
    ///
    /// * A [`AdmissionTarget::Thread`] target is the host-context face of
    ///   the `ChangeConstraints` syscall: release the old reservation,
    ///   admit the new one, roll back on rejection.
    /// * A [`AdmissionTarget::Team`] target is one all-or-nothing ledger
    ///   transaction over every member (the `GroupAdmitTeam` engine): on
    ///   success each member holds the constraints phase-corrected by its
    ///   slot and anchored at one common instant; on failure every ledger
    ///   is back exactly as it was and the outcome carries the first
    ///   rejection. A partially admitted team is never observable.
    ///
    /// The schedule anchors at the target CPU's current wall clock unless
    /// the request pins an explicit [`AdmissionRequest::anchor_at`].
    pub fn admit(&mut self, req: AdmissionRequest) -> AdmissionOutcome {
        let members = req.members();
        let constraints = req.requested();
        let res = match req.target() {
            AdmissionTarget::Thread(tid) => {
                let tid = *tid;
                let now = req
                    .anchor()
                    .unwrap_or_else(|| self.wall_ns(self.threads.expect(tid).cpu));
                self.change_constraints_now(tid, constraints, now)
            }
            AdmissionTarget::Team(team) => {
                if team.is_empty() {
                    Ok(())
                } else {
                    let anchor = req
                        .anchor()
                        .unwrap_or_else(|| self.wall_ns(self.threads.expect(team[0]).cpu));
                    self.admit_team_txn(team, constraints, anchor, req.delta_ns())
                }
            }
        };
        match res {
            Ok(()) => AdmissionOutcome::Admitted { members },
            Err(error) => AdmissionOutcome::Rejected { members, error },
        }
    }

    /// Single-thread admission against the thread's current CPU ledger,
    /// shared by [`Node::admit`] and the `ChangeConstraints` syscall.
    fn change_constraints_now(
        &mut self,
        tid: ThreadId,
        constraints: Constraints,
        now: Nanos,
    ) -> Result<(), AdmissionError> {
        let cpu = self.threads.expect(tid).cpu;
        let st = &mut self.ts[tid];
        self.sched[cpu].change_constraints(tid, st, constraints, now, true)
    }

    /// Admit (or reject) an entire team in one ledger transaction — the
    /// host-context face of the `GroupAdmitTeam` syscall. On success every
    /// member holds `constraints` phase-corrected by its slot in
    /// `members`; on failure every ledger is back exactly as it was and
    /// the first rejection's error is returned. All-or-nothing: a
    /// partially admitted team is never observable.
    #[deprecated(note = "use `Node::admit` with `AdmissionRequest::team`")]
    pub fn admit_team(
        &mut self,
        members: &[ThreadId],
        constraints: Constraints,
    ) -> Result<(), AdmissionError> {
        self.admit(AdmissionRequest::team(members.to_vec()).constraints(constraints))
            .into_result()
            .map(|_| ())
    }

    /// The all-or-nothing team transaction shared by [`Node::admit`]
    /// (team targets) and the `GroupAdmitTeam` syscall. Admits
    /// `constraints` for each
    /// member in slot order on that member's CPU ledger; the first
    /// rejection restores every already-processed member (and the rejected
    /// member itself) to its previous reservation. On success each
    /// member's constraints are phase-corrected by slot, its job state
    /// cleared, and its schedule anchored at the common instant
    /// `anchor_ns`.
    fn admit_team_txn(
        &mut self,
        members: &[ThreadId],
        constraints: Constraints,
        anchor_ns: Nanos,
        delta_ns: Nanos,
    ) -> Result<(), AdmissionError> {
        let n = members.len().max(1);
        let mut done: Vec<(ThreadId, Constraints)> = Vec::with_capacity(members.len());
        let mut failed = None;
        for &m in members {
            let mcpu = self.threads.expect(m).cpu;
            let cfg = *self.sched[mcpu].config();
            let old = self.ts[m].constraints;
            self.sched[mcpu].load.release(&old);
            let candidate = self.sched[mcpu].load.admit(&cfg, &constraints);
            // The probe belongs to this member's verdict; take it before
            // any rollback re-admission can overwrite it.
            let _probe = self.sched[mcpu].load.take_probe();
            match candidate {
                Ok(()) => {
                    #[cfg(feature = "trace")]
                    {
                        if old.is_realtime() {
                            if let Some(t) = &self.trace {
                                t.emit(Record::ConstraintsReleased {
                                    cpu: mcpu as u32,
                                    tid: m as u32,
                                });
                            }
                        }
                        self.sched[mcpu].emit_probe(_probe);
                        self.sched[mcpu].emit_verdict(m, &constraints, true);
                    }
                    done.push((m, old));
                }
                Err(e) => {
                    self.sched[mcpu]
                        .load
                        .admit(&cfg, &old)
                        .expect("re-admit old constraints");
                    // The rollback's own probe pairs with no verdict.
                    let _ = self.sched[mcpu].load.take_probe();
                    if old.is_realtime() {
                        self.sched[mcpu].load.note_rollback();
                    }
                    #[cfg(feature = "trace")]
                    {
                        self.sched[mcpu].emit_probe(_probe);
                        self.sched[mcpu].emit_verdict(m, &constraints, false);
                        if old.is_realtime() {
                            self.sched[mcpu].emit_rollback(m, &old);
                        }
                    }
                    failed = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failed {
            // Unwind: restore every processed member's previous
            // reservation, newest first.
            for &(m, old) in done.iter().rev() {
                let mcpu = self.threads.expect(m).cpu;
                let cfg = *self.sched[mcpu].config();
                self.sched[mcpu].load.release(&constraints);
                self.sched[mcpu]
                    .load
                    .admit(&cfg, &old)
                    .expect("re-admit old constraints");
                let _ = self.sched[mcpu].load.take_probe();
                self.sched[mcpu].load.note_rollback();
                #[cfg(feature = "trace")]
                if constraints.is_realtime() || old.is_realtime() {
                    self.sched[mcpu].emit_rollback(m, &old);
                }
            }
            return Err(e);
        }
        // Commit: phase-correct by slot, clear job state, anchor at the
        // common instant. The ledger keys on (period, slice), which the
        // correction leaves untouched — only phases move.
        for (i, &(m, _)) in done.iter().enumerate() {
            let mcpu = self.threads.expect(m).cpu;
            let corrected = nautix_groups::correct_constraints(constraints, i, n, delta_ns);
            let st = &mut self.ts[m];
            st.constraints = corrected;
            st.job_active = false;
            st.job_started = false;
            st.job_blocked = false;
            self.sched[mcpu].anchor(st, anchor_ns);
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollKind {
    Elect = 0,
    Reduce = 1,
    Broadcast = 2,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GaColl {
    Elect = 0,
    Reduce = 1,
}

#[cfg(test)]
mod steal_tests {
    use super::*;
    use nautix_kernel::IdleLoop;

    fn small_node(cpus: usize) -> Node {
        let mut cfg = NodeConfig::for_machine(MachineConfig::phi().with_cpus(cpus));
        cfg.calib_rounds = 0;
        Node::new(cfg)
    }

    #[test]
    fn pick_victim_never_self_and_covers_all_others() {
        let mut node = small_node(4);
        for cpu in 0..4 {
            let mut seen = [false; 4];
            for _ in 0..256 {
                let v = node.pick_victim_in(cpu, 0, 4);
                assert_ne!(v, cpu, "stealer probed itself");
                seen[v] = true;
            }
            for (other, hit) in seen.iter().enumerate() {
                assert!(
                    other == cpu || *hit,
                    "victim {other} never drawn for stealer {cpu}"
                );
            }
        }
    }

    #[test]
    fn steal_takes_from_longer_probed_queue() {
        let mut node = small_node(3);
        for _ in 0..6 {
            node.spawn_unbound(1, "w", Box::new(IdleLoop::new(1)))
                .unwrap();
        }
        assert_eq!(node.scheduler(1).nonrt_len(), 6);
        assert_eq!(node.scheduler(2).nonrt_len(), 0);
        let mut attempts = 0;
        while node.scheduler(1).nonrt_len() >= 2 && attempts < 200 {
            node.try_steal(0);
            attempts += 1;
        }
        // Power-of-two-choices from CPU 0 probes {1,2}: any pair touching
        // CPU 1 (3 of the 4 equally likely pairs) must pick it as the
        // longer queue; only the {2,2} pair finds nothing. Draining 5
        // threads therefore takes about 5/0.75 attempts — needing anywhere
        // near the 200 cap would mean the picker ignores queue lengths.
        assert!(node.scheduler(1).nonrt_len() < 2, "queue never drained");
        assert_eq!(node.scheduler(0).stats.steals, 5);
        assert!(attempts <= 60, "attempts {attempts} out of band");
    }

    #[test]
    fn bound_threads_are_never_stolen() {
        let mut node = small_node(3);
        for _ in 0..4 {
            node.spawn_on(1, "b", Box::new(IdleLoop::new(1))).unwrap();
        }
        for _ in 0..64 {
            assert!(!node.try_steal(0), "stole a bound thread");
        }
        assert_eq!(node.scheduler(1).nonrt_len(), 4);
    }
}
