//! Regression test: the parallel trial harness is bit-for-bit identical to
//! a serial run. Every trial is a pure function of its grid point and
//! seed, and results are collected in input order, so the thread count
//! must never leak into experiment output.

use nautix_bench::throttle::Granularity;
use nautix_bench::{missrate, throttle, Scale};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

#[test]
fn serial_and_parallel_sweeps_are_identical() {
    // Miss-rate sweep (Figures 6/8): full grid, exact equality.
    let (serial, s1) = missrate::sweep_with_stats(
        &HarnessConfig::with_threads(1),
        Platform::Phi,
        Scale::Quick,
        5,
    );
    let (parallel, s4) = missrate::sweep_with_stats(
        &HarnessConfig::with_threads(4),
        Platform::Phi,
        Scale::Quick,
        5,
    );
    assert_eq!(s1.threads, 1);
    assert_eq!(s4.threads, 4);
    assert_eq!(serial, parallel, "thread count changed miss-rate results");
    assert_eq!(s1.events, s4.events, "simulated event counts must match");

    // Throttle sweep (Figure 13): compare the fields that feed the CSV.
    let (t1, _) = throttle::run_with_stats(
        &HarnessConfig::with_threads(1),
        Granularity::Coarse,
        Scale::Quick,
        3,
    );
    let (t3, _) = throttle::run_with_stats(
        &HarnessConfig::with_threads(3),
        Granularity::Coarse,
        Scale::Quick,
        3,
    );
    let key = |p: &throttle::ThrottlePoint| (p.period_ns, p.slice_ns, p.time_ns, p.admitted);
    assert_eq!(
        t1.iter().map(key).collect::<Vec<_>>(),
        t3.iter().map(key).collect::<Vec<_>>(),
        "thread count changed throttle results"
    );
}
