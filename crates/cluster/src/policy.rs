//! Pluggable gang-placement policies.
//!
//! A policy answers one question: *in what order should the cluster try
//! its shards for this tenant?* The engine owns the mechanism — it walks
//! the candidate list, submits one all-or-nothing team admission per shard
//! via the typed [`AdmissionRequest`](nautix_rt::AdmissionRequest) API,
//! and stops at the first shard whose ledgers accept. Policies therefore
//! *cannot* place infeasibly: a shard only ever joins the cluster state
//! through its own admission control. That split is what makes policies
//! differential-testable — every policy sees the identical tenant stream
//! and identical per-shard views, and any accepted placement is
//! ledger-feasible by construction (the property tests re-check both).
//!
//! Shipped strategies:
//!
//! * [`PlacementStrategy::FirstFit`] — shards in id order; the baseline.
//! * [`PlacementStrategy::BestFit`] — most-loaded feasible shard first
//!   (by summed ledger utilization), packing tenants tight.
//! * [`PlacementStrategy::PowerOfTwo`] — two deterministic random shard
//!   draws, least-loaded first, nothing else: the classic
//!   power-of-two-choices trade of global knowledge for two probes.
//! * [`PlacementStrategy::RtGang`] — at most one resident gang per shard
//!   (RT-Gang's one-gang-at-a-time discipline lifted to cluster scope),
//!   the comparison baseline from the paper's related work.

use crate::tenant::TenantRequest;
use nautix_des::DetRng;

/// One shard as a policy sees it: cached ledger load and occupancy. Views
/// are rebuilt from the shard ledgers before every decision, so a policy
/// never acts on stale state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// Shard id.
    pub shard: usize,
    /// Summed admitted periodic utilization over the shard's CPUs, ppm.
    pub util_ppm: u64,
    /// Summed periodic budget over the shard's CPUs, ppm.
    pub capacity_ppm: u64,
    /// Unoccupied slot threads.
    pub free_slots: usize,
    /// Resident (admitted, not yet departed) gangs.
    pub resident_gangs: usize,
}

/// The cluster as a policy sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// One view per shard, in shard-id order.
    pub shards: Vec<ShardView>,
}

/// A shard-ordering strategy. Implementations push candidate shard ids
/// into `out` (cleared by the engine beforehand) in the order they should
/// be tried; the engine performs the admissions.
pub trait PlacementPolicy {
    /// Stable name for reports and differential-test labels.
    fn name(&self) -> &'static str;

    /// Candidate shards for `req`, best first. An empty list rejects the
    /// tenant without touching any ledger.
    fn candidates(&mut self, req: &TenantRequest, view: &ClusterView, out: &mut Vec<usize>);
}

/// The shipped strategy set — the codec-stable names the scenario replay
/// layer and `cluster_bench` sweep over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Shards in id order.
    FirstFit,
    /// Most-loaded feasible shard first.
    BestFit,
    /// Two random draws, least-loaded first.
    PowerOfTwo,
    /// One resident gang per shard, id order.
    RtGang,
}

impl PlacementStrategy {
    /// Every shipped strategy, in report order.
    pub const ALL: [PlacementStrategy; 4] = [
        PlacementStrategy::FirstFit,
        PlacementStrategy::BestFit,
        PlacementStrategy::PowerOfTwo,
        PlacementStrategy::RtGang,
    ];

    /// The codec-stable name.
    pub fn name(self) -> &'static str {
        match self {
            PlacementStrategy::FirstFit => "first_fit",
            PlacementStrategy::BestFit => "best_fit",
            PlacementStrategy::PowerOfTwo => "po2",
            PlacementStrategy::RtGang => "rt_gang",
        }
    }

    /// Strict inverse of [`PlacementStrategy::name`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "first_fit" => Ok(PlacementStrategy::FirstFit),
            "best_fit" => Ok(PlacementStrategy::BestFit),
            "po2" => Ok(PlacementStrategy::PowerOfTwo),
            "rt_gang" => Ok(PlacementStrategy::RtGang),
            other => Err(format!(
                "unknown placement strategy `{other}` (expected first_fit/best_fit/po2/rt_gang)"
            )),
        }
    }

    /// Instantiate the policy. `seed` feeds the power-of-two sampler; the
    /// deterministic strategies ignore it.
    pub fn build(self, seed: u64) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementStrategy::FirstFit => Box::new(FirstFit),
            PlacementStrategy::BestFit => Box::new(BestFit),
            PlacementStrategy::PowerOfTwo => Box::new(PowerOfTwo {
                rng: DetRng::seed_from(seed),
            }),
            PlacementStrategy::RtGang => Box::new(RtGang),
        }
    }
}

struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first_fit"
    }

    fn candidates(&mut self, _req: &TenantRequest, view: &ClusterView, out: &mut Vec<usize>) {
        out.extend(view.shards.iter().map(|s| s.shard));
    }
}

struct BestFit;

impl PlacementPolicy for BestFit {
    fn name(&self) -> &'static str {
        "best_fit"
    }

    fn candidates(&mut self, req: &TenantRequest, view: &ClusterView, out: &mut Vec<usize>) {
        // Most-loaded first packs new tenants into already-busy shards,
        // keeping whole shards free for the heavy tail of big gangs. Skip
        // shards that cannot fit the demand even fluidly — the ledger
        // would reject them anyway.
        out.extend(
            view.shards
                .iter()
                .filter(|s| s.util_ppm + req.util_ppm() <= s.capacity_ppm)
                .map(|s| s.shard),
        );
        let by_load = |&shard: &usize| {
            let s = &view.shards[shard];
            (u64::MAX - s.util_ppm, shard)
        };
        out.sort_by_key(by_load);
    }
}

struct PowerOfTwo {
    rng: DetRng,
}

impl PlacementPolicy for PowerOfTwo {
    fn name(&self) -> &'static str {
        "po2"
    }

    fn candidates(&mut self, _req: &TenantRequest, view: &ClusterView, out: &mut Vec<usize>) {
        let n = view.shards.len() as u64;
        let a = self.rng.uniform(0, n - 1) as usize;
        let mut b = self.rng.uniform(0, n - 1) as usize;
        if n > 1 && b == a {
            // Re-draw once for distinctness; fall back to the neighbor so
            // the draw count per tenant stays fixed (determinism under
            // any future stream reordering).
            b = (a + 1) % n as usize;
        }
        let (first, second) = if view.shards[b].util_ppm < view.shards[a].util_ppm {
            (b, a)
        } else {
            (a, b)
        };
        out.push(first);
        if second != first {
            out.push(second);
        }
    }
}

struct RtGang;

impl PlacementPolicy for RtGang {
    fn name(&self) -> &'static str {
        "rt_gang"
    }

    fn candidates(&mut self, _req: &TenantRequest, view: &ClusterView, out: &mut Vec<usize>) {
        out.extend(
            view.shards
                .iter()
                .filter(|s| s.resident_gangs == 0)
                .map(|s| s.shard),
        );
    }
}

/// Replays a recorded placement sequence: tenant `id` goes to
/// `script[id]`'s shard (or is rejected on `None`), ignoring the view.
/// The differential property tests use this to prove that cluster state
/// equals the serial re-application of the accepted sequence.
pub struct ScriptedPolicy {
    script: Vec<Option<usize>>,
}

impl ScriptedPolicy {
    /// A policy that replays `script` (indexed by tenant id).
    pub fn new(script: Vec<Option<usize>>) -> Self {
        ScriptedPolicy { script }
    }
}

impl PlacementPolicy for ScriptedPolicy {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn candidates(&mut self, req: &TenantRequest, _view: &ClusterView, out: &mut Vec<usize>) {
        if let Some(Some(shard)) = self.script.get(req.id as usize) {
            out.push(*shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(utils: &[u64]) -> ClusterView {
        ClusterView {
            shards: utils
                .iter()
                .enumerate()
                .map(|(i, &u)| ShardView {
                    shard: i,
                    util_ppm: u,
                    capacity_ppm: 1_000_000,
                    free_slots: 8,
                    resident_gangs: usize::from(u > 0),
                })
                .collect(),
        }
    }

    fn req() -> TenantRequest {
        TenantRequest::gang(2)
    }

    #[test]
    fn names_round_trip() {
        for s in PlacementStrategy::ALL {
            assert_eq!(PlacementStrategy::parse(s.name()), Ok(s));
            assert_eq!(s.build(0).name(), s.name());
        }
        assert!(PlacementStrategy::parse("worst_fit").is_err());
    }

    #[test]
    fn first_fit_is_id_order() {
        let mut out = Vec::new();
        FirstFit.candidates(&req(), &view(&[500_000, 0, 100_000]), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn best_fit_prefers_loaded_feasible_shards() {
        let mut out = Vec::new();
        // Shard 0 is fluidly full for this request; 2 is busiest feasible.
        BestFit.candidates(&req(), &view(&[999_999, 100_000, 400_000]), &mut out);
        assert_eq!(out, vec![2, 1]);
    }

    #[test]
    fn po2_probes_two_distinct_shards_less_loaded_first() {
        let mut p = PowerOfTwo {
            rng: DetRng::seed_from(11),
        };
        let v = view(&[300_000, 100_000, 200_000, 0]);
        for _ in 0..100 {
            let mut out = Vec::new();
            p.candidates(&req(), &v, &mut out);
            assert_eq!(out.len(), 2);
            assert_ne!(out[0], out[1]);
            assert!(v.shards[out[0]].util_ppm <= v.shards[out[1]].util_ppm);
        }
    }

    #[test]
    fn rt_gang_only_offers_empty_shards() {
        let mut out = Vec::new();
        RtGang.candidates(&req(), &view(&[500_000, 0, 100_000, 0]), &mut out);
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn scripted_replays_and_rejects() {
        let mut p = ScriptedPolicy::new(vec![Some(2), None]);
        let mut out = Vec::new();
        p.candidates(&TenantRequest::gang(1).id(0), &view(&[0, 0, 0]), &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        p.candidates(&TenantRequest::gang(1).id(1), &view(&[0, 0, 0]), &mut out);
        assert!(out.is_empty());
        out.clear();
        p.candidates(&TenantRequest::gang(1).id(9), &view(&[0, 0, 0]), &mut out);
        assert!(out.is_empty(), "off-script tenants are rejected");
    }
}
