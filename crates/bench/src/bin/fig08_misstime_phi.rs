//! Figure 8: average and deviation of deadline miss times on the Phi.

use nautix_bench::{banner, f, missrate, out_dir, write_csv, Scale};
use nautix_hw::Platform;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 8: miss times vs period/slice (Phi, µs)");
    let pts = missrate::sweep(Platform::Phi, scale, 5);
    println!("period_us,slice_pct,miss_mean_us,miss_std_us");
    for p in &pts {
        println!(
            "{},{},{},{}",
            p.period_us,
            p.slice_pct,
            f(p.miss_mean_ns / 1000.0),
            f(p.miss_std_ns / 1000.0)
        );
    }
    write_csv(
        &out_dir().join("fig08_misstime_phi.csv"),
        &["period_us", "slice_pct", "miss_mean_us", "miss_std_us"],
        pts.iter().map(|p| {
            vec![
                p.period_us.to_string(),
                p.slice_pct.to_string(),
                f(p.miss_mean_ns / 1000.0),
                f(p.miss_std_ns / 1000.0),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig08_misstime_phi.csv"));
}
