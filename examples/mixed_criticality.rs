//! Mixed-criticality node: a hard real-time gang shares the machine with
//! best-effort background work and lightweight tasks, while device
//! interrupts stay penned in the interrupt-laden partition (§3.1, §3.5).
//!
//! Demonstrates: the RT gang is *isolated* (zero misses) no matter how
//! much background load and interrupt traffic the node carries, and the
//! background work still gets the leftover CPU (including via work
//! stealing).
//!
//! ```sh
//! cargo run --release --example mixed_criticality
//! ```

use nautix::kernel::{FnProgram, GroupId, Script, SysResult};
use nautix::prelude::*;

fn main() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(8).with_seed(23);
    cfg.record_ga_timing = true;
    let mut node = Node::new(cfg);
    let gid = GroupId(0);

    // A 4-thread hard real-time gang on CPUs 1-4: 500 µs period, 40% CPU.
    let mut gang = Vec::new();
    for i in 0..4usize {
        let prog = FnProgram::new(move |cx, step| {
            let k = if i == 0 { step } else { step + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate {
                    name: "control-loop",
                }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(2_000_000)),
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::periodic(500_000, 200_000).build(),
                }),
                4 => {
                    assert_eq!(cx.result, SysResult::Admission(Ok(())));
                    Action::Compute(150_000)
                }
                _ => Action::Compute(150_000),
            }
        });
        gang.push(
            node.spawn_on(i + 1, &format!("gang{i}"), Box::new(prog))
                .unwrap(),
        );
    }

    // Six best-effort batch jobs dumped on CPU 5; the idle CPUs 6 and 7
    // will steal some of them.
    let mut batch = Vec::new();
    for j in 0..6 {
        batch.push(
            node.spawn_unbound(
                5,
                &format!("batch{j}"),
                Box::new(Script::new(vec![Action::Compute(40_000_000)])),
            )
            .unwrap(),
        );
    }

    // A spawner thread that feeds lightweight tasks (§3.1): size-tagged
    // ones run inline in scheduler slack, unsized ones via the idle loop.
    let spawner = FnProgram::new(|_cx, n| {
        if n < 40 {
            Action::Call(SysCall::TaskSpawn {
                size: if n % 2 == 0 { Some(20_000) } else { None },
                work: 20_000,
            })
        } else {
            Action::Exit
        }
    });
    node.spawn_on(6, "task-source", Box::new(spawner)).unwrap();

    // Meanwhile, a chatty NIC hammers the interrupt-laden partition.
    for _ in 0..300 {
        node.raise_device_irq(3);
        node.run_for_ns(100_000);
    }
    node.run_for_ns(70_000_000);

    // Report.
    let mut total_met = 0;
    let mut total_missed = 0;
    for &t in &gang {
        let st = node.thread_state(t);
        total_met += st.stats.met;
        total_missed += st.stats.missed;
    }
    println!("hard real-time gang: {total_met} deadlines met, {total_missed} missed");
    assert_eq!(total_missed, 0, "the gang must be isolated from the noise");

    let steals: u64 = (0..8).map(|c| node.scheduler(c).stats.steals).sum();
    let batch_cycles: u64 = batch
        .iter()
        .map(|&t| node.thread_state(t).stats.executed_cycles)
        .sum();
    println!("batch work executed {batch_cycles} cycles; {steals} threads were stolen");
    assert!(steals > 0, "idle CPUs should have helped with batch work");

    let tasks = node.tasks(6);
    println!(
        "tasks: {} inline (size-tagged), {} via the idle loop",
        tasks.inline_completed, tasks.helper_completed
    );
    println!(
        "device interrupts: {} handled, all on CPU 0: {}",
        node.device_irqs_handled[0],
        (1..8).all(|c| node.device_irqs_handled[c] == 0)
    );
}
