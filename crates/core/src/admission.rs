//! Admission control (§3.2).
//!
//! "Periodic and sporadic threads are admitted based on the classic single
//! CPU schemes for rate monotonic (RM) and earliest deadline first (EDF)
//! models. ... At boot time each local scheduler is configured with a
//! utilization limit as well as reservations for sporadic and aperiodic
//! threads, all expressed as percentages."
//!
//! Three policies are provided:
//!
//! * [`AdmissionPolicy::EdfBound`] — the Liu & Layland EDF test
//!   (ΣUᵢ ≤ limit − reservations); the default, matching the paper's
//!   default configuration (99% limit, 10% sporadic, 10% aperiodic).
//! * [`AdmissionPolicy::RmBound`] — the RM bound n(2^{1/n} − 1).
//! * [`AdmissionPolicy::HyperperiodSim`] — the paper's prototype that
//!   "did admission for a periodic thread-only model by simulating the
//!   local scheduler for a hyperperiod", here with per-job scheduler
//!   overhead included, so it catches constraint sets whose utilization
//!   passes the closed-form test but whose granularity cannot absorb the
//!   per-interrupt overhead.
//!
//! Admission runs in the context of the requesting thread (its cost is
//! charged to the caller by the node), so "the cost of admission control
//! need not be separately accounted for in its effects on the already
//! admitted threads."
//!
//! Since period-widening degradation (PR 4) put re-admission on a hot
//! path, the ledger is *incremental*: the periodic utilization sum is
//! maintained on every admit/release instead of rescanned, and
//! hyperperiod-simulation verdicts are memoized in a per-node [`SimCache`]
//! keyed by [`nautix_kernel::task_set_signature`]. The
//! [`AdmissionEngine::Fresh`] escape hatch (env: `NAUTIX_ADMISSION=fresh`)
//! recomputes everything from scratch; the differential test suite pins
//! the two engines verdict- and sum-identical.

use crate::stats::AdmissionStats;
use nautix_des::Nanos;
use nautix_kernel::{task_set_signature, AdmissionError, Constraints};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parts-per-million fixed point for utilizations.
pub const PPM: u64 = 1_000_000;

/// Maximum number of scheduling layers a node can be configured with.
/// Small and fixed so per-CPU token-bucket state lives in flat arrays on
/// the dispatch hot path (zero-alloc) and [`SchedConfig`] stays `Copy`.
pub const MAX_LAYERS: usize = 4;

/// One layer's bandwidth contract, in ppm of one CPU per replenish window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSpec {
    /// Utilization guaranteed to this layer. Admission rejects RT requests
    /// that would push the layer's admitted sum past this, and dispatch
    /// refills the layer's token bucket from it every window.
    pub guarantee_ppm: u32,
    /// Extra bucket headroom above the guarantee: spendable within a
    /// window (soaking up transient overruns) but never admitted against.
    pub burst_ppm: u32,
}

impl LayerSpec {
    /// Guarantee plus burst, ppm.
    pub fn total_ppm(&self) -> u64 {
        self.guarantee_ppm as u64 + self.burst_ppm as u64
    }

    /// Whether the layer may consume a whole CPU per window. An exempt
    /// layer is never throttled and arms no bucket timers — this is what
    /// keeps the default single-layer table byte-identical to the
    /// unlayered scheduler.
    pub fn exempt(&self) -> bool {
        self.total_ppm() >= PPM
    }
}

/// Unused [`LayerTable`] spec slots hold this fixed filler so tables built
/// through any constructor compare equal field-for-field.
const LAYER_FILLER: LayerSpec = LayerSpec {
    guarantee_ppm: 0,
    burst_ppm: 0,
};

/// A rejected layer-table construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerConfigError {
    /// Zero layers, or more than [`MAX_LAYERS`].
    BadCount,
    /// The guarantees sum past one full CPU (1_000_000 ppm).
    GuaranteeOvercommit,
    /// A class maps to a layer index at or beyond the spec count.
    BadMapping,
    /// A zero-length replenish window.
    BadReplenish,
}

impl std::fmt::Display for LayerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerConfigError::BadCount => {
                write!(f, "layer count must be 1..={MAX_LAYERS}")
            }
            LayerConfigError::GuaranteeOvercommit => {
                write!(f, "layer guarantees sum past {PPM} ppm")
            }
            LayerConfigError::BadMapping => write!(f, "class maps to a nonexistent layer"),
            LayerConfigError::BadReplenish => write!(f, "replenish window must be > 0 ns"),
        }
    }
}

/// The boot-time layer table: up to [`MAX_LAYERS`] bandwidth contracts
/// plus a thread-class→layer mapping (a layer's id is its index). Part of
/// [`SchedConfig`], so fixed-size and `Copy`. Only buildable through the
/// validating constructors; the default is a single exempt layer holding
/// the whole machine, which the scheduler special-cases to the exact
/// unlayered dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTable {
    specs: [LayerSpec; MAX_LAYERS],
    count: u8,
    /// Token buckets refill at multiples of this machine-time boundary
    /// (wall ns), making replenish deterministic at any host thread count.
    pub replenish_ns: Nanos,
    map_periodic: u8,
    map_sporadic: u8,
    map_aperiodic: u8,
}

impl Default for LayerTable {
    fn default() -> Self {
        LayerTable::single(PPM as u32, 0, 10_000_000).expect("default layer table is valid")
    }
}

impl LayerTable {
    /// Validate and build a table. `map` assigns the periodic, sporadic,
    /// and aperiodic classes (in that order) to layer indices.
    pub fn build(
        specs: &[LayerSpec],
        replenish_ns: Nanos,
        map: [u8; 3],
    ) -> Result<Self, LayerConfigError> {
        if specs.is_empty() || specs.len() > MAX_LAYERS {
            return Err(LayerConfigError::BadCount);
        }
        let sum: u64 = specs.iter().map(|s| s.guarantee_ppm as u64).sum();
        if sum > PPM {
            return Err(LayerConfigError::GuaranteeOvercommit);
        }
        if map.iter().any(|&m| m as usize >= specs.len()) {
            return Err(LayerConfigError::BadMapping);
        }
        if replenish_ns == 0 {
            return Err(LayerConfigError::BadReplenish);
        }
        let mut table = [LAYER_FILLER; MAX_LAYERS];
        table[..specs.len()].copy_from_slice(specs);
        Ok(LayerTable {
            specs: table,
            count: specs.len() as u8,
            replenish_ns,
            map_periodic: map[0],
            map_sporadic: map[1],
            map_aperiodic: map[2],
        })
    }

    /// A one-layer table holding every class.
    pub fn single(
        guarantee_ppm: u32,
        burst_ppm: u32,
        replenish_ns: Nanos,
    ) -> Result<Self, LayerConfigError> {
        LayerTable::build(
            &[LayerSpec {
                guarantee_ppm,
                burst_ppm,
            }],
            replenish_ns,
            [0, 0, 0],
        )
    }

    /// The canonical three-layer shape: periodic → `rt` (layer 0),
    /// sporadic → `batch` (layer 1), aperiodic → `bg` (layer 2).
    pub fn three_way(
        rt: LayerSpec,
        batch: LayerSpec,
        bg: LayerSpec,
        replenish_ns: Nanos,
    ) -> Result<Self, LayerConfigError> {
        LayerTable::build(&[rt, batch, bg], replenish_ns, [0, 1, 2])
    }

    /// Number of configured layers.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// The spec of layer `layer` (must be `< count()`).
    pub fn spec(&self, layer: usize) -> LayerSpec {
        debug_assert!(layer < self.count());
        self.specs[layer]
    }

    /// Layer the periodic class maps to.
    pub fn map_periodic(&self) -> usize {
        self.map_periodic as usize
    }

    /// Layer the sporadic class maps to.
    pub fn map_sporadic(&self) -> usize {
        self.map_sporadic as usize
    }

    /// Layer the aperiodic class maps to.
    pub fn map_aperiodic(&self) -> usize {
        self.map_aperiodic as usize
    }

    /// Layer a constraint's class maps to.
    pub fn layer_of(&self, c: &Constraints) -> usize {
        match c {
            Constraints::Periodic { .. } => self.map_periodic(),
            Constraints::Sporadic { .. } => self.map_sporadic(),
            Constraints::Aperiodic { .. } => self.map_aperiodic(),
        }
    }

    /// Per-window, per-CPU bucket capacity of `layer` in wall ns
    /// (guarantee + burst share of the replenish window).
    pub fn cap_ns(&self, layer: usize) -> Nanos {
        (self.replenish_ns as u128 * self.spec(layer).total_ppm() as u128 / PPM as u128) as Nanos
    }

    /// Canonical text form,
    /// `<g0>:<b0>[,<g1>:<b1>...];<replenish_ns>;<mp>,<ms>,<ma>` — shared
    /// by the replay codec (`sched.layers`) and the `NAUTIX_LAYERS`
    /// harness variable. [`LayerTable::decode`] round-trips it exactly.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for l in 0..self.count() {
            if l > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{}",
                self.specs[l].guarantee_ppm, self.specs[l].burst_ppm
            ));
        }
        out.push_str(&format!(
            ";{};{},{},{}",
            self.replenish_ns, self.map_periodic, self.map_sporadic, self.map_aperiodic
        ));
        out
    }

    /// Strict parse of the canonical text form; every structural or
    /// validation failure is an error (no defaults, no salvage).
    pub fn decode(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(';').collect();
        if parts.len() != 3 {
            return Err(format!(
                "layer table `{text}`: want `<g:b>[,...];<replenish_ns>;<mp>,<ms>,<ma>`"
            ));
        }
        let mut specs = Vec::new();
        for spec in parts[0].split(',') {
            let (g, b) = spec.split_once(':').ok_or_else(|| {
                format!("layer spec `{spec}`: want `<guarantee_ppm>:<burst_ppm>`")
            })?;
            specs.push(LayerSpec {
                guarantee_ppm: g
                    .parse()
                    .map_err(|e| format!("layer guarantee `{g}`: {e}"))?,
                burst_ppm: b.parse().map_err(|e| format!("layer burst `{b}`: {e}"))?,
            });
        }
        let replenish_ns: Nanos = parts[1]
            .parse()
            .map_err(|e| format!("layer replenish `{}`: {e}", parts[1]))?;
        let map: Vec<&str> = parts[2].split(',').collect();
        if map.len() != 3 {
            return Err(format!("layer map `{}`: want `<mp>,<ms>,<ma>`", parts[2]));
        }
        let mut idx = [0u8; 3];
        for (slot, m) in idx.iter_mut().zip(&map) {
            *slot = m
                .parse()
                .map_err(|e| format!("layer map index `{m}`: {e}"))?;
        }
        LayerTable::build(&specs, replenish_ns, idx)
            .map_err(|e| format!("layer table `{text}`: {e}"))
    }
}

/// How the ledger computes its verdicts. Both engines are defined to be
/// verdict- and sum-identical on every request stream (the differential
/// suite enforces it); `Fresh` exists as an escape hatch and reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionEngine {
    /// Maintained utilization sums + memoized hyperperiod simulation.
    Incremental,
    /// Rescan the ledger and re-simulate on every request.
    Fresh,
}

/// Process-wide admission-engine tallies, accumulated live from every
/// ledger (unlike per-[`CpuLoad`] stats, these survive `Node::reset`).
static G_SIM_HITS: AtomicU64 = AtomicU64::new(0);
static G_SIM_MISSES: AtomicU64 = AtomicU64::new(0);
static G_ROLLBACKS: AtomicU64 = AtomicU64::new(0);

/// Cumulative engine counters across every ledger in the process.
pub fn admission_global_stats() -> AdmissionStats {
    AdmissionStats {
        sim_hits: G_SIM_HITS.load(Ordering::Relaxed),
        sim_misses: G_SIM_MISSES.load(Ordering::Relaxed),
        rollbacks: G_ROLLBACKS.load(Ordering::Relaxed),
    }
}

/// What the most recent hyperperiod-simulation probe on a ledger
/// concluded, and how: consumed by the trace layer so an armed
/// `OracleSuite` (trace feature) can re-check cached verdicts against a
/// fresh simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimProbe {
    /// Whether the verdict came from the memo cache.
    pub hit: bool,
    /// The feasibility verdict itself.
    pub feasible: bool,
    /// Canonical signature of the probed set + overhead model.
    pub sig: u64,
    /// Overhead model the verdict was computed under.
    pub overhead_ns: Nanos,
    /// Window cap the verdict was computed under.
    pub window_cap_ns: Nanos,
}

/// Memoized hyperperiod-simulation verdicts, shared by every CPU ledger of
/// one node (single-threaded interior mutability: a `Node` never crosses
/// threads). Entries are keyed by canonical signature *and* the canonical
/// set itself — signature equality alone never decides, so colliding sets
/// cannot share a verdict. A small move-to-front LRU suffices: re-admission
/// churn (widening, group re-throttling) cycles among a handful of sets.
#[derive(Debug, Default)]
pub struct SimCache {
    entries: Vec<SimEntry>,
}

#[derive(Debug)]
struct SimEntry {
    sig: u64,
    set: Vec<(Nanos, Nanos)>,
    overhead_ns: Nanos,
    window_cap_ns: Nanos,
    feasible: bool,
}

/// Entries kept per node; beyond this the least recently used is evicted.
const SIM_CACHE_CAP: usize = 64;

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a verdict for the canonical `set` under the given overhead
    /// model; a hit moves the entry to the front.
    pub fn lookup(
        &mut self,
        sig: u64,
        set: &[(Nanos, Nanos)],
        overhead_ns: Nanos,
        window_cap_ns: Nanos,
    ) -> Option<bool> {
        let idx = self.entries.iter().position(|e| {
            e.sig == sig
                && e.overhead_ns == overhead_ns
                && e.window_cap_ns == window_cap_ns
                && e.set == set
        })?;
        let entry = self.entries.remove(idx);
        let feasible = entry.feasible;
        self.entries.insert(0, entry);
        Some(feasible)
    }

    /// Insert a freshly simulated verdict at the front, evicting the LRU
    /// entry past capacity.
    pub fn insert(
        &mut self,
        sig: u64,
        set: Vec<(Nanos, Nanos)>,
        overhead_ns: Nanos,
        window_cap_ns: Nanos,
        feasible: bool,
    ) {
        self.entries.insert(
            0,
            SimEntry {
                sig,
                set,
                overhead_ns,
                window_cap_ns,
                feasible,
            },
        );
        self.entries.truncate(SIM_CACHE_CAP);
    }

    /// Drop every cached verdict (hit/miss counters live in the per-CPU
    /// ledgers, not here, and are untouched). Owners that need a run to
    /// be a pure function of its configuration — the cluster engine's
    /// shard boot — clear the memo instead of relying on reset, which
    /// deliberately preserves it for cross-trial reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Which feasibility test admits real-time threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// EDF utilization bound.
    EdfBound,
    /// Rate-monotonic bound n(2^{1/n} − 1).
    RmBound,
    /// Event-driven EDF simulation over (a bounded prefix of) the
    /// hyperperiod, charging `overhead_ns` per job.
    HyperperiodSim {
        /// Modeled scheduler overhead charged per job (two interrupts).
        overhead_ns: Nanos,
        /// Simulation window cap; hyperperiods beyond this are truncated.
        window_cap_ns: Nanos,
    },
}

/// Eager vs. lazy dispatch (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Work-conserving: "we never delay switching to a thread", so SMI
    /// missing time lands in slack instead of past the deadline.
    Eager,
    /// Classic non-work-conserving EDF that delays a newly arrived job
    /// until its latest feasible start. Ideal on SMI-free hardware;
    /// catastrophic with missing time. Kept for the ablation.
    Lazy,
}

/// Graceful-degradation policy: what the local scheduler does when
/// environmental interference (SMIs, fault lanes) pushes an admitted
/// reservation past its envelope. Disabled by default — the paper's
/// scheduler never alters an admitted constraint on its own, and the
/// deterministic reproduction depends on that.
///
/// When enabled:
///
/// * a **sporadic** job still holding unfinished work past its deadline is
///   demoted to the aperiodic class at once, so a blown burst stops
///   outranking every periodic thread in EDF order;
/// * a **periodic** thread that misses `miss_threshold` consecutive
///   deadlines has its admission revoked and is resubmitted with its
///   period widened by `widen_pct` percent (same slice, lower
///   utilization, more slack per job). After `max_widen` rounds — or if
///   the widened set is somehow rejected — the thread falls back to the
///   aperiodic class instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Consecutive misses before a periodic reservation is widened.
    pub miss_threshold: u32,
    /// Percent added to the period on each resubmission.
    pub widen_pct: u32,
    /// Widening rounds per thread before demotion to aperiodic.
    pub max_widen: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            enabled: false,
            miss_threshold: 3,
            widen_pct: 25,
            max_widen: 3,
        }
    }
}

impl DegradePolicy {
    /// The default thresholds with the master switch on.
    pub fn enabled() -> Self {
        DegradePolicy {
            enabled: true,
            ..DegradePolicy::default()
        }
    }
}

/// Victim-selection policy for the idle-thread work stealer (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealPolicy {
    /// Power-of-two-choices biased by topology: probe two victims inside
    /// the thief's LLC first, widening to the package and then the whole
    /// machine only when the narrower domain has no stealable backlog.
    /// Under a flat topology there is exactly one domain (the machine),
    /// making this identical — draw for draw — to the original uniform
    /// picker. The default.
    LlcFirst,
    /// Machine-wide uniform power-of-two-choices regardless of topology
    /// (the A/B baseline for the locality study; probes and migrations
    /// still pay their distance-dependent costs).
    Uniform,
}

/// Boot-time local-scheduler configuration (§3.2, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Total admissible utilization, ppm. Default 99%: the remainder
    /// absorbs scheduler invocations and SMIs (the "knob" of §3.6).
    pub util_limit_ppm: u64,
    /// Reservation for spontaneously arriving sporadic threads, ppm.
    pub sporadic_reserve_ppm: u64,
    /// Reservation for aperiodic threads and admission processing, ppm.
    pub aperiodic_reserve_ppm: u64,
    /// Round-robin quantum for aperiodic threads. The evaluation uses a
    /// 10 Hz timer: 100 ms.
    pub aperiodic_quantum_ns: Nanos,
    /// Granularity bound on periods and slices (§3.3 limits the possible
    /// scheduler invocation rate).
    pub granularity_ns: Nanos,
    /// Minimum admissible period.
    pub min_period_ns: Nanos,
    /// Minimum admissible slice.
    pub min_slice_ns: Nanos,
    /// Feasibility test.
    pub policy: AdmissionPolicy,
    /// Eager or lazy dispatch.
    pub mode: SchedMode,
    /// Lazy mode only: safety margin subtracted from a job's latest
    /// feasible start so the *known* kernel-path overheads don't push it
    /// past its deadline. (What lazy mode cannot budget for is precisely
    /// the unknown missing time of SMIs — the paper's point.)
    pub lazy_margin_ns: Nanos,
    /// When false, real-time requests bypass the feasibility test (used by
    /// Figures 6–9 to map the infeasible region). Structural validation
    /// still applies.
    pub admission_enabled: bool,
    /// Enable the idle-thread work stealer (§3.4).
    pub work_stealing: bool,
    /// Victim-selection policy for the stealer (inert when
    /// `work_stealing` is false).
    pub steal: StealPolicy,
    /// Graceful degradation under sustained interference (off by default).
    pub degrade: DegradePolicy,
    /// Incremental (default) or fresh-recompute admission engine.
    pub engine: AdmissionEngine,
    /// Per-layer bandwidth contracts and class mapping. The default is a
    /// single exempt layer — byte-identical to the unlayered scheduler.
    pub layers: LayerTable,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            util_limit_ppm: 990_000,
            sporadic_reserve_ppm: 100_000,
            aperiodic_reserve_ppm: 100_000,
            aperiodic_quantum_ns: 100_000_000,
            granularity_ns: 100,
            min_period_ns: 1_000,
            min_slice_ns: 500,
            policy: AdmissionPolicy::EdfBound,
            mode: SchedMode::Eager,
            lazy_margin_ns: 15_000,
            admission_enabled: true,
            work_stealing: true,
            steal: StealPolicy::LlcFirst,
            degrade: DegradePolicy::default(),
            engine: AdmissionEngine::Incremental,
            layers: LayerTable::default(),
        }
    }
}

impl SchedConfig {
    /// A throughput-study configuration: the full 99% limit is available
    /// to periodic threads (no sporadic/aperiodic reservations). The BSP
    /// evaluation of §6 sweeps slice/period up to ~90%, which requires
    /// this shape; the default reservations would cap periodic admission
    /// at 79%.
    pub fn throughput() -> Self {
        SchedConfig {
            sporadic_reserve_ppm: 0,
            aperiodic_reserve_ppm: 0,
            ..SchedConfig::default()
        }
    }

    /// Utilization available to periodic threads, ppm.
    pub fn periodic_budget_ppm(&self) -> u64 {
        self.util_limit_ppm
            .saturating_sub(self.sporadic_reserve_ppm)
            .saturating_sub(self.aperiodic_reserve_ppm)
    }
}

/// The per-CPU admitted-load ledger.
#[derive(Debug, Clone, Default)]
pub struct CpuLoad {
    /// Admitted periodic threads' `(period, slice)` in ns.
    periodic: Vec<(Nanos, Nanos)>,
    /// Maintained sum of the admitted periodic utilizations, ppm: the sum
    /// of each task's individually floored `slice·PPM/period` term, updated
    /// on every push/remove. Exact (not approximate): `release` removes a
    /// tuple equal to one that was pushed, whose term recomputes
    /// identically, so this always equals the from-scratch rescan.
    periodic_ppm: u64,
    /// Active sporadic utilization, ppm.
    sporadic_ppm: u64,
    /// Memo cache for hyperperiod-simulation verdicts, installed by the
    /// owning node (absent on standalone ledgers, which then simulate
    /// per request like the `Fresh` engine but still count misses).
    sim_cache: Option<Rc<RefCell<SimCache>>>,
    /// Engine counters for this ledger's lifetime (reset with the ledger).
    stats: AdmissionStats,
    /// The most recent hyperperiod-simulation probe, left for the verdict
    /// emission site to [`CpuLoad::take_probe`] — and for rollback
    /// re-admissions to discard, so probes pair with emitted verdicts.
    last_probe: Option<SimProbe>,
}

impl CpuLoad {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the node's shared simulation memo cache. Re-installed after
    /// every `Node::reset`: the cache is a pure memo keyed on the full
    /// simulation input, so entries learned in earlier trials stay valid.
    pub fn install_sim_cache(&mut self, cache: Rc<RefCell<SimCache>>) {
        self.sim_cache = Some(cache);
    }

    /// Engine counters accumulated by this ledger.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Take the probe left by the most recent hyperperiod-simulation
    /// verdict (None under closed-form policies).
    pub fn take_probe(&mut self) -> Option<SimProbe> {
        self.last_probe.take()
    }

    /// Count a ledger rollback: a failed re-admission or failed team
    /// transaction restored previously held reservations.
    pub fn note_rollback(&mut self) {
        self.stats.rollbacks += 1;
        G_ROLLBACKS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total admitted periodic utilization, ppm — O(1) from the maintained
    /// sum (identical to [`CpuLoad::periodic_util_ppm_rescan`] by
    /// construction; the differential suite asserts it at every step).
    pub fn periodic_util_ppm(&self) -> u64 {
        self.periodic_ppm
    }

    /// Total admitted periodic utilization recomputed from scratch: the
    /// reference the `Fresh` engine tests against and differential tests
    /// compare with the maintained sum.
    pub fn periodic_util_ppm_rescan(&self) -> u64 {
        self.periodic.iter().map(|&(p, s)| util_term(p, s)).sum()
    }

    /// Active sporadic utilization, ppm.
    pub fn sporadic_util_ppm(&self) -> u64 {
        self.sporadic_ppm
    }

    /// Admitted RT utilization charged to `layer`, ppm: the per-layer view
    /// of the ledger. Derived from the maintained class sums through the
    /// boot-time class→layer map rather than stored per layer, so it can
    /// never drift from the class ledger and `release` (which has no
    /// config in scope) stays exact. Aperiodic threads carry no admitted
    /// utilization; their layer is charged only at dispatch time.
    pub fn layer_util_ppm(&self, layers: &LayerTable, layer: usize) -> u64 {
        let mut sum = 0;
        if layers.map_periodic() == layer {
            sum += self.periodic_ppm;
        }
        if layers.map_sporadic() == layer {
            sum += self.sporadic_ppm;
        }
        sum
    }

    /// The layer-guarantee admission gate: would adding `u_new` ppm of
    /// class `c` overcommit the guarantee of the layer `c` maps to?
    /// Checked against the *guarantee* alone — burst is transient window
    /// headroom, never admitted against.
    fn test_layer(
        &self,
        cfg: &SchedConfig,
        c: &Constraints,
        u_new: u64,
    ) -> Result<(), AdmissionError> {
        let layer = cfg.layers.layer_of(c);
        let guarantee = cfg.layers.spec(layer).guarantee_ppm as u64;
        if self.layer_util_ppm(&cfg.layers, layer) + u_new > guarantee {
            return Err(AdmissionError::LayerOvercommit);
        }
        Ok(())
    }

    /// Number of admitted periodic threads.
    pub fn periodic_count(&self) -> usize {
        self.periodic.len()
    }

    /// Run the admission test; on success the ledger is updated.
    pub fn admit(&mut self, cfg: &SchedConfig, c: &Constraints) -> Result<(), AdmissionError> {
        c.validate().map_err(AdmissionError::Invalid)?;
        match *c {
            Constraints::Aperiodic { .. } => Ok(()),
            Constraints::Periodic { period, slice, .. } => {
                if period < cfg.min_period_ns
                    || slice < cfg.min_slice_ns
                    || period % cfg.granularity_ns != 0 && cfg.granularity_ns > 1
                {
                    return Err(AdmissionError::TooFine);
                }
                if cfg.admission_enabled {
                    self.test_periodic(cfg, period, slice)?;
                    self.test_layer(cfg, c, util_term(period, slice))?;
                }
                self.periodic.push((period, slice));
                self.periodic_ppm += util_term(period, slice);
                Ok(())
            }
            Constraints::Sporadic {
                phase,
                size,
                deadline,
                ..
            } => {
                let window = deadline - phase;
                if size < cfg.min_slice_ns || window < cfg.min_period_ns {
                    return Err(AdmissionError::TooFine);
                }
                let u = (size as u128 * PPM as u128 / window as u128) as u64;
                if cfg.admission_enabled {
                    if self.sporadic_ppm + u > cfg.sporadic_reserve_ppm {
                        return Err(AdmissionError::SporadicReservationExceeded);
                    }
                    self.test_layer(cfg, c, u)?;
                }
                self.sporadic_ppm += u;
                Ok(())
            }
        }
    }

    fn test_periodic(
        &mut self,
        cfg: &SchedConfig,
        period: Nanos,
        slice: Nanos,
    ) -> Result<(), AdmissionError> {
        let budget = cfg.periodic_budget_ppm();
        let u_new = util_term(period, slice);
        let u_total = match cfg.engine {
            AdmissionEngine::Incremental => self.periodic_ppm + u_new,
            AdmissionEngine::Fresh => self.periodic_util_ppm_rescan() + u_new,
        };
        match cfg.policy {
            AdmissionPolicy::EdfBound => {
                if u_total <= budget {
                    Ok(())
                } else {
                    Err(AdmissionError::UtilizationExceeded)
                }
            }
            AdmissionPolicy::RmBound => {
                let n = (self.periodic.len() + 1) as f64;
                let rm = n * (2f64.powf(1.0 / n) - 1.0);
                let rm_ppm = (rm * PPM as f64) as u64;
                if u_total <= rm_ppm.min(budget) {
                    Ok(())
                } else {
                    Err(AdmissionError::UtilizationExceeded)
                }
            }
            AdmissionPolicy::HyperperiodSim {
                overhead_ns,
                window_cap_ns,
            } => {
                let mut set: Vec<(Nanos, Nanos)> = self.periodic.clone();
                set.push((period, slice));
                // The closed-form bound still gates the reservations.
                if u_total > budget {
                    return Err(AdmissionError::UtilizationExceeded);
                }
                if self.sim_feasible(cfg.engine, &set, overhead_ns, window_cap_ns) {
                    Ok(())
                } else {
                    Err(AdmissionError::UtilizationExceeded)
                }
            }
        }
    }

    /// Hyperperiod-simulation feasibility of `set`, memoized under the
    /// incremental engine. The simulation input stays in ledger order (the
    /// verdict is permutation-invariant, so the unsorted set and the
    /// sorted canonical key yield the same answer); the canonical sorted
    /// copy exists only as the cache key.
    fn sim_feasible(
        &mut self,
        engine: AdmissionEngine,
        set: &[(Nanos, Nanos)],
        overhead_ns: Nanos,
        window_cap_ns: Nanos,
    ) -> bool {
        let mut key: Vec<(Nanos, Nanos)> = set.to_vec();
        key.sort_unstable();
        let sig = task_set_signature(&key, overhead_ns, window_cap_ns);
        let cache = match engine {
            AdmissionEngine::Incremental => self.sim_cache.clone(),
            AdmissionEngine::Fresh => None,
        };
        if let Some(cache) = &cache {
            if let Some(feasible) = cache
                .borrow_mut()
                .lookup(sig, &key, overhead_ns, window_cap_ns)
            {
                self.stats.sim_hits += 1;
                G_SIM_HITS.fetch_add(1, Ordering::Relaxed);
                self.last_probe = Some(SimProbe {
                    hit: true,
                    feasible,
                    sig,
                    overhead_ns,
                    window_cap_ns,
                });
                return feasible;
            }
        }
        let feasible = simulate_edf_feasible(set, overhead_ns, window_cap_ns);
        if let Some(cache) = &cache {
            cache
                .borrow_mut()
                .insert(sig, key, overhead_ns, window_cap_ns, feasible);
        }
        self.stats.sim_misses += 1;
        G_SIM_MISSES.fetch_add(1, Ordering::Relaxed);
        self.last_probe = Some(SimProbe {
            hit: false,
            feasible,
            sig,
            overhead_ns,
            window_cap_ns,
        });
        feasible
    }

    /// Release a previously admitted constraint (thread exited or is
    /// changing constraints).
    pub fn release(&mut self, c: &Constraints) {
        match *c {
            Constraints::Aperiodic { .. } => {}
            Constraints::Periodic { period, slice, .. } => {
                if let Some(i) = self
                    .periodic
                    .iter()
                    .position(|&(p, s)| p == period && s == slice)
                {
                    self.periodic.remove(i);
                    // Exact: the removed tuple's term recomputes to the
                    // value added when it was pushed.
                    self.periodic_ppm -= util_term(period, slice);
                }
            }
            Constraints::Sporadic {
                phase,
                size,
                deadline,
                ..
            } => {
                let window = deadline - phase;
                let u = (size as u128 * PPM as u128 / window as u128) as u64;
                self.sporadic_ppm = self.sporadic_ppm.saturating_sub(u);
            }
        }
    }
}

/// One periodic task's floored utilization term, ppm.
fn util_term(period: Nanos, slice: Nanos) -> u64 {
    (slice as u128 * PPM as u128 / period as u128) as u64
}

/// Event-driven EDF feasibility simulation over a window: all jobs are
/// released synchronously (the critical instant for synchronous periodic
/// sets under EDF); each job costs `slice + overhead`. Returns whether no
/// deadline is missed within the window.
pub fn simulate_edf_feasible(
    set: &[(Nanos, Nanos)],
    overhead_ns: Nanos,
    window_cap_ns: Nanos,
) -> bool {
    if set.is_empty() {
        return true;
    }
    let window = hyperperiod(set.iter().map(|&(p, _)| p)).min(window_cap_ns);
    // (next_deadline, remaining, index) jobs; process in EDF order.
    #[derive(Clone, Copy)]
    struct Job {
        deadline: Nanos,
        remaining: Nanos,
        next_arrival: Nanos,
    }
    let mut jobs: Vec<Job> = set
        .iter()
        .map(|&(p, s)| Job {
            deadline: p,
            remaining: s + overhead_ns,
            next_arrival: p,
        })
        .collect();
    let mut now: Nanos = 0;
    loop {
        // Earliest-deadline active job.
        let Some(idx) = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.remaining > 0)
            .min_by_key(|(_, j)| j.deadline)
            .map(|(i, _)| i)
        else {
            // Idle until the next arrival.
            let Some(next) = jobs.iter().map(|j| j.next_arrival).min() else {
                return true;
            };
            if next >= window {
                return true;
            }
            now = now.max(next);
            for (i, j) in jobs.iter_mut().enumerate() {
                if j.next_arrival <= now {
                    j.remaining = set[i].1 + overhead_ns;
                    j.deadline = j.next_arrival + set[i].0;
                    j.next_arrival += set[i].0;
                }
            }
            continue;
        };
        // Run it until completion or the next arrival.
        let next_arrival = jobs.iter().map(|j| j.next_arrival).min().unwrap();
        let j = jobs[idx];
        let run = j.remaining.min(next_arrival.saturating_sub(now).max(1));
        now += run;
        jobs[idx].remaining -= run;
        if jobs[idx].remaining == 0 && now > jobs[idx].deadline {
            return false;
        }
        if now > window {
            return true;
        }
        // Release arrivals at `now`.
        for (i, j) in jobs.iter_mut().enumerate() {
            if j.next_arrival <= now {
                if j.remaining > 0 {
                    // Previous job still unfinished at its deadline.
                    return false;
                }
                j.remaining = set[i].1 + overhead_ns;
                j.deadline = j.next_arrival + set[i].0;
                j.next_arrival += set[i].0;
            }
        }
    }
}

fn hyperperiod(periods: impl Iterator<Item = Nanos>) -> Nanos {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    periods.fold(1u64, |acc, p| {
        let g = gcd(acc, p);
        (acc / g).saturating_mul(p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedConfig {
        SchedConfig::default()
    }

    #[test]
    fn default_config_matches_paper() {
        let c = cfg();
        assert_eq!(c.util_limit_ppm, 990_000); // 99%
        assert_eq!(c.sporadic_reserve_ppm, 100_000); // 10%
        assert_eq!(c.aperiodic_reserve_ppm, 100_000); // 10%
        assert_eq!(c.aperiodic_quantum_ns, 100_000_000); // 10 Hz
        assert_eq!(c.periodic_budget_ppm(), 790_000); // 79% for periodic
    }

    #[test]
    fn aperiodic_always_admits() {
        let mut load = CpuLoad::new();
        for _ in 0..100 {
            load.admit(&cfg(), &Constraints::default_aperiodic())
                .unwrap();
        }
    }

    #[test]
    fn edf_bound_admits_up_to_budget() {
        let mut load = CpuLoad::new();
        let c = cfg();
        // 4 x 19% = 76% <= 79%
        for _ in 0..4 {
            load.admit(&c, &Constraints::periodic(100_000, 19_000).build())
                .unwrap();
        }
        // A 5th would reach 95%.
        assert_eq!(
            load.admit(&c, &Constraints::periodic(100_000, 19_000).build()),
            Err(AdmissionError::UtilizationExceeded)
        );
        assert_eq!(load.periodic_count(), 4);
    }

    #[test]
    fn release_returns_utilization() {
        let mut load = CpuLoad::new();
        let c = cfg();
        let big = Constraints::periodic(100_000, 70_000).build();
        load.admit(&c, &big).unwrap();
        assert_eq!(
            load.admit(&c, &Constraints::periodic(100_000, 20_000).build()),
            Err(AdmissionError::UtilizationExceeded)
        );
        load.release(&big);
        load.admit(&c, &Constraints::periodic(100_000, 20_000).build())
            .unwrap();
    }

    #[test]
    fn rm_bound_is_stricter_than_edf() {
        let mut c = cfg();
        c.policy = AdmissionPolicy::RmBound;
        let mut load = CpuLoad::new();
        // Two tasks at 39% each: 78% total passes EDF (79% budget) but
        // exceeds the 2-task RM bound of ~82.8%... 78 < 82.8, so passes.
        load.admit(&c, &Constraints::periodic(100_000, 39_000).build())
            .unwrap();
        load.admit(&c, &Constraints::periodic(100_000, 39_000).build())
            .unwrap();
        // Third at 39%: total 117% fails everything; try 5%: total 83%
        // exceeds the 3-task RM bound (~78%) but is under the EDF budget?
        // 83% > 79% budget too. Use tighter numbers: load 2x30%, third 17%:
        let mut load = CpuLoad::new();
        load.admit(&c, &Constraints::periodic(100_000, 30_000).build())
            .unwrap();
        load.admit(&c, &Constraints::periodic(100_000, 30_000).build())
            .unwrap();
        // total would be 77% < 79% budget, but 3-task RM bound is 77.98%:
        // 77% <= 77.98% admits. 18% instead -> 78% > 77.98% rejects.
        load.admit(&c, &Constraints::periodic(100_000, 17_000).build())
            .unwrap();
        let mut load2 = CpuLoad::new();
        load2
            .admit(&c, &Constraints::periodic(100_000, 30_000).build())
            .unwrap();
        load2
            .admit(&c, &Constraints::periodic(100_000, 30_000).build())
            .unwrap();
        assert_eq!(
            load2.admit(&c, &Constraints::periodic(100_000, 18_000).build()),
            Err(AdmissionError::UtilizationExceeded)
        );
    }

    #[test]
    fn hyperperiod_sim_rejects_overhead_dominated_sets() {
        let mut c = cfg();
        c.policy = AdmissionPolicy::HyperperiodSim {
            overhead_ns: 9_000, // ~ the Phi's per-period overhead
            window_cap_ns: 1_000_000_000,
        };
        let mut load = CpuLoad::new();
        // 10 us period with a 5 us slice: 50% utilization passes the bound,
        // but 5 + 9 us of work per 10 us period cannot fit.
        assert_eq!(
            load.admit(&c, &Constraints::periodic(10_000, 5_000).build()),
            Err(AdmissionError::UtilizationExceeded)
        );
        // The same 50% at 1 ms period absorbs the overhead easily.
        load.admit(&c, &Constraints::periodic(1_000_000, 500_000).build())
            .unwrap();
    }

    #[test]
    fn sporadic_consumes_reservation() {
        let mut load = CpuLoad::new();
        let c = cfg();
        // 5% of the CPU: fits in the 10% sporadic reservation.
        load.admit(&c, &Constraints::sporadic(5_000, 100_000).build())
            .unwrap();
        load.admit(&c, &Constraints::sporadic(5_000, 100_000).build())
            .unwrap();
        assert_eq!(
            load.admit(&c, &Constraints::sporadic(5_000, 100_000).build()),
            Err(AdmissionError::SporadicReservationExceeded)
        );
        load.release(&Constraints::sporadic(5_000, 100_000).build());
        load.admit(&c, &Constraints::sporadic(5_000, 100_000).build())
            .unwrap();
    }

    #[test]
    fn granularity_bounds_are_enforced() {
        let mut load = CpuLoad::new();
        let c = cfg();
        assert_eq!(
            load.admit(&c, &Constraints::periodic(500, 400).build()),
            Err(AdmissionError::TooFine)
        );
        assert_eq!(
            load.admit(&c, &Constraints::periodic(10_000, 100).build()),
            Err(AdmissionError::TooFine)
        );
    }

    #[test]
    fn disabled_admission_accepts_infeasible_rt() {
        let mut c = cfg();
        c.admission_enabled = false;
        let mut load = CpuLoad::new();
        // 95% + 95%: hopeless, but Figures 6-9 need it admitted.
        load.admit(&c, &Constraints::periodic(10_000, 9_500).build())
            .unwrap();
        load.admit(&c, &Constraints::periodic(10_000, 9_500).build())
            .unwrap();
    }

    #[test]
    fn structural_validation_applies_even_when_disabled() {
        let mut c = cfg();
        c.admission_enabled = false;
        let mut load = CpuLoad::new();
        // Deliberately malformed (σ > τ): bypass the builder's own check to
        // prove admission still rejects it with validation disabled.
        assert!(matches!(
            load.admit(&c, &Constraints::periodic(10_000, 20_000).build_unchecked()),
            Err(AdmissionError::Invalid(_))
        ));
    }

    #[test]
    fn edf_simulation_agrees_with_bound_when_overhead_is_zero() {
        // U = 100%: feasible with zero overhead.
        assert!(simulate_edf_feasible(
            &[(10_000, 5_000), (20_000, 10_000)],
            0,
            1_000_000_000
        ));
        // U > 100%: infeasible.
        assert!(!simulate_edf_feasible(
            &[(10_000, 6_000), (20_000, 10_000)],
            0,
            1_000_000_000
        ));
    }

    #[test]
    fn hyperperiod_of_coprime_periods() {
        assert!(simulate_edf_feasible(&[(3, 1), (7, 2)], 0, 1_000));
    }

    #[test]
    fn maintained_sum_tracks_rescan_through_churn() {
        let c = cfg();
        let mut load = CpuLoad::new();
        let a = Constraints::periodic(100_000, 19_000).build();
        let b = Constraints::periodic(300_000, 70_000).build();
        let s = Constraints::sporadic(5_000, 100_000).build();
        for _ in 0..3 {
            load.admit(&c, &a).unwrap();
            load.admit(&c, &b).unwrap();
            load.admit(&c, &s).unwrap();
            assert_eq!(load.periodic_util_ppm(), load.periodic_util_ppm_rescan());
            load.release(&a);
            assert_eq!(load.periodic_util_ppm(), load.periodic_util_ppm_rescan());
            load.release(&b);
            load.release(&s);
            assert_eq!(load.periodic_util_ppm(), 0);
            assert_eq!(load.periodic_util_ppm_rescan(), 0);
        }
        // Releasing a constraint that was never admitted is a no-op for
        // both the vector and the maintained sum.
        load.release(&a);
        assert_eq!(load.periodic_util_ppm(), 0);
    }

    #[test]
    fn sim_cache_serves_repeat_probes_and_counts() {
        let mut c = cfg();
        c.policy = AdmissionPolicy::HyperperiodSim {
            overhead_ns: 1_000,
            window_cap_ns: 1_000_000_000,
        };
        let mut load = CpuLoad::new();
        load.install_sim_cache(Rc::new(RefCell::new(SimCache::new())));
        let probe = Constraints::periodic(1_000_000, 200_000).build();
        load.admit(&c, &probe).unwrap();
        assert_eq!(load.admission_stats().sim_misses, 1);
        assert_eq!(load.admission_stats().sim_hits, 0);
        assert!(!load.take_probe().unwrap().hit);
        // Release and re-admit the identical constraints: same canonical
        // set, so the verdict must come from the cache.
        load.release(&probe);
        load.admit(&c, &probe).unwrap();
        assert_eq!(load.admission_stats().sim_misses, 1);
        assert_eq!(load.admission_stats().sim_hits, 1);
        let p = load.take_probe().unwrap();
        assert!(p.hit);
        assert!(p.feasible);
        // A different set misses again.
        load.admit(&c, &Constraints::periodic(500_000, 100_000).build())
            .unwrap();
        assert_eq!(load.admission_stats().sim_misses, 2);
    }

    #[test]
    fn fresh_engine_matches_incremental_verdicts_and_skips_cache() {
        let mut inc = cfg();
        inc.policy = AdmissionPolicy::HyperperiodSim {
            overhead_ns: 9_000,
            window_cap_ns: 1_000_000_000,
        };
        let mut fresh = inc;
        fresh.engine = AdmissionEngine::Fresh;
        let cache = Rc::new(RefCell::new(SimCache::new()));
        let mut li = CpuLoad::new();
        li.install_sim_cache(cache.clone());
        let mut lf = CpuLoad::new();
        lf.install_sim_cache(cache.clone());
        for req in [
            Constraints::periodic(10_000, 5_000).build(), // overhead-dominated
            Constraints::periodic(1_000_000, 500_000).build(),
            Constraints::periodic(1_000_000, 200_000).build(),
        ] {
            assert_eq!(li.admit(&inc, &req), lf.admit(&fresh, &req));
            assert_eq!(li.periodic_util_ppm(), lf.periodic_util_ppm());
        }
        // The fresh ledger never touched the shared cache and recorded
        // every simulation as a miss.
        assert_eq!(lf.admission_stats().sim_hits, 0);
        assert_eq!(cache.borrow().len() as u64, li.admission_stats().sim_misses);
    }

    #[test]
    fn rollback_counter_accumulates() {
        let mut load = CpuLoad::new();
        assert_eq!(load.admission_stats().rollbacks, 0);
        load.note_rollback();
        load.note_rollback();
        assert_eq!(load.admission_stats().rollbacks, 2);
        assert_eq!(load.admission_stats().total(), 2);
    }

    fn spec(g: u32, b: u32) -> LayerSpec {
        LayerSpec {
            guarantee_ppm: g,
            burst_ppm: b,
        }
    }

    /// RT 60% + burst, batch 25%, background 10%: the canonical shape the
    /// layer tests and the bench sweep use.
    fn three_layer() -> LayerTable {
        LayerTable::three_way(
            spec(600_000, 50_000),
            spec(250_000, 0),
            spec(100_000, 0),
            10_000_000,
        )
        .unwrap()
    }

    #[test]
    fn layer_table_build_validation() {
        assert_eq!(
            LayerTable::build(&[], 1_000, [0, 0, 0]),
            Err(LayerConfigError::BadCount)
        );
        assert_eq!(
            LayerTable::build(&[spec(1, 0); MAX_LAYERS + 1], 1_000, [0, 0, 0]),
            Err(LayerConfigError::BadCount)
        );
        // Guarantees summing to exactly 1_000_000 build; one ppm more is
        // rejected at construction.
        assert!(LayerTable::build(&[spec(600_000, 0), spec(400_000, 0)], 1_000, [0, 1, 1]).is_ok());
        assert_eq!(
            LayerTable::build(&[spec(600_000, 0), spec(400_001, 0)], 1_000, [0, 1, 1]),
            Err(LayerConfigError::GuaranteeOvercommit)
        );
        // Burst does not count against the guarantee sum.
        assert!(LayerTable::build(
            &[spec(600_000, 999_999), spec(400_000, 0)],
            1_000,
            [0, 1, 1]
        )
        .is_ok());
        assert_eq!(
            LayerTable::build(&[spec(500_000, 0)], 1_000, [0, 1, 0]),
            Err(LayerConfigError::BadMapping)
        );
        assert_eq!(
            LayerTable::build(&[spec(500_000, 0)], 0, [0, 0, 0]),
            Err(LayerConfigError::BadReplenish)
        );
    }

    #[test]
    fn default_layer_table_is_one_exempt_layer() {
        let t = LayerTable::default();
        assert_eq!(t.count(), 1);
        assert!(t.spec(0).exempt());
        assert_eq!(t.cap_ns(0), t.replenish_ns);
        assert_eq!(t, LayerTable::single(PPM as u32, 0, 10_000_000).unwrap());
        assert_eq!(t.encode(), "1000000:0;10000000;0,0,0");
        // A semantically identical table at a different replenish window
        // compares unequal: the scheduler keys its skip-everything fast
        // path on exact default equality.
        assert_ne!(t, LayerTable::single(PPM as u32, 0, 5_000_000).unwrap());
    }

    #[test]
    fn layer_codec_round_trips_and_rejects() {
        for t in [
            LayerTable::default(),
            three_layer(),
            LayerTable::single(1_000_000, 0, 777).unwrap(),
            LayerTable::build(&[spec(0, 0), spec(900_000, 100_000)], 123_456, [1, 1, 0]).unwrap(),
        ] {
            assert_eq!(LayerTable::decode(&t.encode()).unwrap(), t);
        }
        for bad in [
            "",
            "1000000:0;10000000",
            "1000000:0;10000000;0,0,0;extra",
            "1000000;10000000;0,0,0",
            "x:0;10000000;0,0,0",
            "1000000:y;10000000;0,0,0",
            "1000000:0;zzz;10000000;0,0,0",
            "1000000:0;0;0,0,0",
            "1000000:0;10000000;0,0",
            "1000000:0;10000000;0,0,1",
            "600000:0,400001:0;10000000;0,1,1",
        ] {
            assert!(LayerTable::decode(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn layer_of_follows_the_class_map() {
        let t = three_layer();
        assert_eq!(
            t.layer_of(&Constraints::periodic(100_000, 10_000).build()),
            0
        );
        assert_eq!(
            t.layer_of(&Constraints::sporadic(5_000, 100_000).build()),
            1
        );
        assert_eq!(t.layer_of(&Constraints::default_aperiodic()), 2);
        assert_eq!(t.cap_ns(0), 6_500_000);
        assert_eq!(t.cap_ns(2), 1_000_000);
    }

    #[test]
    fn layer_overcommit_rejects_past_the_guarantee() {
        let mut c = cfg();
        c.layers = three_layer();
        let mut load = CpuLoad::new();
        // Four periodic threads at 15% fill the 60% RT guarantee exactly,
        // and a fifth would still fit the 79% periodic budget (75%) — so
        // only the layer gate can be the refusal.
        for _ in 0..4 {
            load.admit(&c, &Constraints::periodic(100_000, 15_000).build())
                .unwrap();
        }
        assert_eq!(
            load.admit(&c, &Constraints::periodic(100_000, 15_000).build()),
            Err(AdmissionError::LayerOvercommit)
        );
        // Burst headroom is not admittable: even a 1% add is refused.
        assert_eq!(
            load.admit(&c, &Constraints::periodic(100_000, 1_000).build()),
            Err(AdmissionError::LayerOvercommit)
        );
        // Releasing returns layer headroom.
        load.release(&Constraints::periodic(100_000, 15_000).build());
        load.admit(&c, &Constraints::periodic(100_000, 15_000).build())
            .unwrap();
        assert_eq!(load.layer_util_ppm(&c.layers, 0), 600_000);
    }

    #[test]
    fn sporadic_charges_its_own_layer() {
        let mut c = cfg();
        // Batch guarantee below the 10% sporadic reserve: the layer gate
        // binds first.
        c.layers = LayerTable::three_way(
            spec(600_000, 0),
            spec(40_000, 0),
            spec(100_000, 0),
            10_000_000,
        )
        .unwrap();
        let mut load = CpuLoad::new();
        load.admit(&c, &Constraints::sporadic(4_000, 100_000).build())
            .unwrap();
        assert_eq!(
            load.admit(&c, &Constraints::sporadic(4_000, 100_000).build()),
            Err(AdmissionError::LayerOvercommit)
        );
        assert_eq!(load.layer_util_ppm(&c.layers, 1), 40_000);
        // Sporadic load never counts against the RT layer.
        assert_eq!(load.layer_util_ppm(&c.layers, 0), 0);
    }

    #[test]
    fn zero_ppm_layer_rejects_all_its_rt() {
        let mut c = cfg();
        c.layers =
            LayerTable::build(&[spec(0, 0), spec(900_000, 0)], 10_000_000, [0, 1, 1]).unwrap();
        let mut load = CpuLoad::new();
        assert_eq!(
            load.admit(&c, &Constraints::periodic(100_000, 1_000).build()),
            Err(AdmissionError::LayerOvercommit)
        );
        // Aperiodic threads carry no admitted utilization: always in.
        load.admit(&c, &Constraints::default_aperiodic()).unwrap();
    }

    #[test]
    fn full_ppm_layer_never_binds() {
        // A custom single full-bandwidth layer must produce verdicts
        // identical to the default table: the existing budget checks are
        // strictly tighter than a 100% guarantee.
        let mut layered = cfg();
        layered.layers = LayerTable::single(PPM as u32, 0, 2_000_000).unwrap();
        let plain = cfg();
        let mut ll = CpuLoad::new();
        let mut lp = CpuLoad::new();
        for req in [
            Constraints::periodic(100_000, 19_000).build(),
            Constraints::periodic(100_000, 70_000).build(),
            Constraints::periodic(100_000, 19_000).build(),
            Constraints::sporadic(5_000, 100_000).build(),
            Constraints::sporadic(9_000, 100_000).build(),
        ] {
            assert_eq!(ll.admit(&layered, &req), lp.admit(&plain, &req));
        }
    }

    #[test]
    fn layer_checks_are_skipped_when_admission_is_disabled() {
        let mut c = cfg();
        c.admission_enabled = false;
        c.layers = three_layer();
        let mut load = CpuLoad::new();
        // 95% into a 60% layer: the Figures 6-9 infeasible-region sweeps
        // must stay admissible with admission disabled.
        load.admit(&c, &Constraints::periodic(10_000, 9_500).build())
            .unwrap();
    }
}
