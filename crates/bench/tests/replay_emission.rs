//! Satellite 6 (smoke half): a trial flagged by an armed oracle emits a
//! replay file, and replaying that file reproduces the flagged state.
//!
//! The sabotage knob (`trace` feature) replaces CPU 1's eager-EDF pick
//! with FIFO-by-tid; on the competing-periodics workload the EDF oracle
//! panics at the first deadline-skipping dispatch. `run_recorded` must
//! catch that panic, write `<NAUTIX_REPLAY_DIR>/<name>.replay`, and
//! re-raise. This test mutates process environment, so the whole flow
//! lives in one `#[test]`.

#![cfg(feature = "trace")]

use nautix_bench::harness::NodePool;
use nautix_bench::Scenario;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn sabotaged() -> Scenario {
    let mut sc = Scenario::competing(200_000, 20_000, 40, 77);
    sc.name = "sabotage_smoke".into();
    sc.oracles = true;
    sc.sabotage_fifo = Some(1);
    sc
}

#[test]
fn flagged_trial_emits_a_replay_that_reproduces_the_flag() {
    let dir = std::env::temp_dir().join(format!("nautix-replays-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Control: the same workload unsabotaged runs clean under armed
    // oracles — the flag below is detection, not noise.
    let mut clean = sabotaged();
    clean.sabotage_fifo = None;
    let out = clean.run_fresh().expect("clean competing trial runs");
    assert!(out.jobs > 0);

    // SAFETY-of-test: no other test in this binary touches the env.
    std::env::set_var("NAUTIX_REPLAY_DIR", &dir);
    let sc = sabotaged();
    let flagged = catch_unwind(AssertUnwindSafe(|| sc.run_recorded(&mut NodePool::new())));
    std::env::remove_var("NAUTIX_REPLAY_DIR");
    assert!(
        flagged.is_err(),
        "FIFO sabotage under an armed EDF oracle must panic"
    );

    // The emission: a parseable replay file equal to the flagged trial.
    let path = dir.join("sabotage_smoke.replay");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("flagged trial did not emit {path:?}: {e}"));
    let replayed = Scenario::from_replay_string(&text).expect("emitted replay parses");
    assert_eq!(replayed, sc, "emitted replay must capture the exact trial");

    // Re-running the replay reproduces the flagged state: the oracle
    // fires again, deterministically.
    let again = catch_unwind(AssertUnwindSafe(|| replayed.run_fresh()));
    assert!(
        again.is_err(),
        "replaying a flagged trial must reproduce the flag"
    );

    // Without the env var, the same panic propagates but emits nothing.
    let _ = std::fs::remove_dir_all(&dir);
    let silent = catch_unwind(AssertUnwindSafe(|| sc.run_recorded(&mut NodePool::new())));
    assert!(silent.is_err());
    assert!(!dir.exists(), "no NAUTIX_REPLAY_DIR, no emission");
}
