//! Parallel trial harness: fan independent simulation trials across OS
//! threads with deterministic results.
//!
//! Every experiment in this crate decomposes into *trials* — independent
//! simulations distinguished by their parameters (seed, utilization point,
//! CPU count, granularity). Each trial builds its own [`Machine`](nautix_hw::Machine)
//! (`nautix_hw`) from its own seed, so trials share no mutable state and
//! their results depend only on their parameters, never on which worker
//! thread ran them or in what order. [`run_trials`] exploits that: workers
//! pull trial indices from a shared atomic counter, results land in
//! index-addressed slots, and the returned vector is always in input order
//! — a parallel run is byte-identical to a serial one.
//!
//! Thread count comes from the [`HarnessConfig`] passed to the trial
//! runners. Binaries build one with [`HarnessConfig::from_env`] (where
//! `NAUTIX_THREADS` survives as the compat shim, defaulting to the host's
//! available parallelism); tests construct one explicitly. A config with
//! `threads: 1` gives a plain serial run.
//!
//! Every trial is instrumented: the harness records per-trial wall time and
//! simulated-event count (the DES hot-path metric) and aggregates them into
//! [`HarnessStats`]. Binaries collect one `HarnessStats` per experiment
//! section into a [`BenchReport`] and emit it as `BENCH_repro.json`.

use nautix_rt::HarnessConfig;
use nautix_stats::{StatsSnapshot, StatsTx};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The process-wide stats stream, when one is installed.
///
/// `repro_all` (and tests) install a [`StatsTx`] here with
/// [`set_stats_stream`]; trial runners publish per-trial deltas through
/// [`stream_delta`], and [`run_trials_pooled`] publishes per-shard
/// heartbeats. With no stream installed every hook is a no-op, so sweeps
/// pay one relaxed `OnceLock` load + mutex probe per trial.
fn stats_stream() -> &'static Mutex<Option<StatsTx>> {
    static STREAM: OnceLock<Mutex<Option<StatsTx>>> = OnceLock::new();
    STREAM.get_or_init(|| Mutex::new(None))
}

/// Install (or with `None`, remove) the process-wide stats stream.
///
/// The returned previous value keeps its hub alive until dropped; callers
/// that temporarily swap a stream in (tests) should restore it.
pub fn set_stats_stream(tx: Option<StatsTx>) -> Option<StatsTx> {
    std::mem::replace(&mut *stats_stream().lock().unwrap(), tx)
}

/// Publish one trial's delta snapshot to the installed stream, if any.
/// The hub sums deltas into its running total, so callers must send each
/// trial exactly once.
pub fn stream_delta(snap: &StatsSnapshot) {
    if let Some(tx) = &*stats_stream().lock().unwrap() {
        tx.delta(*snap);
    }
}

/// Publish one worker heartbeat (shard throughput only; never totals).
fn stream_beat(shard: usize, trials: u64, events: u64, wall_nanos: u64) {
    if let Some(tx) = &*stats_stream().lock().unwrap() {
        tx.beat(shard, trials, events, wall_nanos);
    }
}

// The worker-owned node cache moved into `nautix_rt` (so the cluster
// layer's shard fleets can pool without depending on this crate); the
// re-export keeps every existing `harness::NodePool` path working.
pub use nautix_rt::NodePool;

/// Worker-thread count of the ambient environment. Compat shim over
/// [`HarnessConfig::from_env`]; prefer threading a [`HarnessConfig`]
/// through explicitly.
pub fn threads() -> usize {
    HarnessConfig::from_env().threads
}

/// Aggregate instrumentation for one batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessStats {
    /// Number of trials run.
    pub trials: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole batch, seconds.
    pub wall_secs: f64,
    /// Sum of per-trial wall times, seconds (the serial-equivalent time).
    pub cpu_secs: f64,
    /// Total simulated events across all trials.
    pub events: u64,
    /// Per-trial wall time, in input order, seconds.
    pub trial_wall_secs: Vec<f64>,
    /// Per-trial simulated-event count, in input order.
    pub trial_events: Vec<u64>,
}

impl HarnessStats {
    /// Simulated events per wall-clock second — the DES throughput metric.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// cpu_secs / wall_secs: effective parallel speedup of the batch.
    pub fn speedup(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cpu_secs / self.wall_secs
        } else {
            1.0
        }
    }

    /// Merge another batch into this one (sections built from several
    /// `run_trials` calls).
    pub fn merge(&mut self, other: &HarnessStats) {
        self.trials += other.trials;
        self.threads = self.threads.max(other.threads);
        self.wall_secs += other.wall_secs;
        self.cpu_secs += other.cpu_secs;
        self.events += other.events;
        self.trial_wall_secs
            .extend_from_slice(&other.trial_wall_secs);
        self.trial_events.extend_from_slice(&other.trial_events);
    }
}

/// Results plus instrumentation from [`run_trials`].
#[derive(Debug)]
pub struct TrialSet<R> {
    /// One result per input item, in input order.
    pub results: Vec<R>,
    /// Batch instrumentation.
    pub stats: HarnessStats,
}

/// Run `f` over every item, fanned across `hc.threads` worker threads.
///
/// `f` maps an item to `(result, simulated_events)`. It must be a pure
/// function of the item — build the simulation from parameters carried *in*
/// the item (including the RNG seed); never derive anything from thread
/// identity or execution order. Under that contract the output is
/// independent of the thread count: `results[i]` is `f(&items[i]).0`
/// exactly, whether the batch ran on one thread or sixteen.
pub fn run_trials<I, R, F>(hc: &HarnessConfig, items: Vec<I>, f: F) -> TrialSet<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> (R, u64) + Sync,
{
    run_trials_pooled(hc, items, |_pool, item| f(item))
}

/// [`run_trials`] with a per-worker [`NodePool`] threaded through `f`, so
/// trials that build a whole node can reuse the previous trial's arenas
/// instead of reconstructing from scratch.
///
/// The same purity contract applies: `f` must derive everything from the
/// item, and because `Node::reset` replays construction exactly, a pooled
/// node cannot leak state between trials — `results[i]` stays independent
/// of which worker ran trial `i` or what it ran before.
pub fn run_trials_pooled<I, R, F>(hc: &HarnessConfig, items: Vec<I>, f: F) -> TrialSet<R>
where
    I: Sync,
    R: Send,
    F: Fn(&mut NodePool, &I) -> (R, u64) + Sync,
{
    let n = items.len();
    let nthreads = hc.threads.max(1).min(n.max(1));
    let t0 = Instant::now();
    let slots: Vec<Mutex<Option<(R, u64, f64)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let slots = &slots;
        let next = &next;
        let items = &items;
        let f = &f;
        for shard in 0..nthreads {
            s.spawn(move || {
                let mut pool = NodePool::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let start = Instant::now();
                    let (result, events) = f(&mut pool, &items[i]);
                    let elapsed = start.elapsed();
                    stream_beat(shard, 1, events, elapsed.as_nanos() as u64);
                    *slots[i].lock().unwrap() = Some((result, events, elapsed.as_secs_f64()));
                }
            });
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut results = Vec::with_capacity(n);
    let mut trial_wall_secs = Vec::with_capacity(n);
    let mut trial_events = Vec::with_capacity(n);
    for slot in slots {
        let (r, events, wall) = slot
            .into_inner()
            .unwrap()
            .expect("trial slot unfilled: a worker must have panicked");
        results.push(r);
        trial_events.push(events);
        trial_wall_secs.push(wall);
    }
    let stats = HarnessStats {
        trials: n,
        threads: nthreads,
        wall_secs,
        cpu_secs: trial_wall_secs.iter().sum(),
        events: trial_events.iter().sum(),
        trial_wall_secs,
        trial_events,
    };
    TrialSet { results, stats }
}

/// Per-section instrumentation, serialized to `BENCH_repro.json`.
#[derive(Debug, Default)]
pub struct BenchReport {
    sections: Vec<(String, HarnessStats)>,
    notes: Vec<String>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one experiment section.
    pub fn add(&mut self, name: &str, stats: HarnessStats) {
        self.sections.push((name.to_string(), stats));
    }

    /// Attach a free-form advisory note (serialized under `"notes"`; the
    /// key is omitted entirely when no note was recorded, so note-free
    /// reports keep their exact shape). Used for tracked caveats — e.g.
    /// the wheel backend's tiny-backlog regression flag.
    pub fn note(&mut self, msg: impl Into<String>) {
        self.notes.push(msg.into());
    }

    /// Advisory notes recorded so far.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Totals over all sections: (trials, wall_secs, events).
    pub fn totals(&self) -> (usize, f64, u64) {
        self.sections.iter().fold((0, 0.0, 0), |(t, w, e), (_, s)| {
            (t + s.trials, w + s.wall_secs, e + s.events)
        })
    }

    /// Serialize as JSON.
    pub fn to_json(&self) -> String {
        let (trials, wall, events) = self.totals();
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"threads\": {},", threads());
        let _ = writeln!(s, "  \"trials\": {trials},");
        let _ = writeln!(s, "  \"wall_secs\": {},", fnum(wall));
        let _ = writeln!(s, "  \"events\": {events},");
        let _ = writeln!(
            s,
            "  \"events_per_sec\": {},",
            fnum(if wall > 0.0 {
                events as f64 / wall
            } else {
                0.0
            })
        );
        if !self.notes.is_empty() {
            s.push_str("  \"notes\": [\n");
            for (i, n) in self.notes.iter().enumerate() {
                let _ = write!(s, "    \"{}\"", escape(n));
                s.push_str(if i + 1 < self.notes.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            s.push_str("  ],\n");
        }
        s.push_str("  \"sections\": [\n");
        for (i, (name, st)) in self.sections.iter().enumerate() {
            s.push_str("    {");
            let _ = write!(
                s,
                "\"name\": \"{}\", \"trials\": {}, \"threads\": {}, \
                 \"wall_secs\": {}, \"cpu_secs\": {}, \"speedup\": {}, \
                 \"events\": {}, \"events_per_sec\": {}, ",
                escape(name),
                st.trials,
                st.threads,
                fnum(st.wall_secs),
                fnum(st.cpu_secs),
                fnum(st.speedup()),
                st.events,
                fnum(st.events_per_sec()),
            );
            let _ = write!(
                s,
                "\"trial_wall_secs\": [{}], \"trial_events\": [{}]",
                st.trial_wall_secs
                    .iter()
                    .map(|&x| fnum(x))
                    .collect::<Vec<_>>()
                    .join(", "),
                st.trial_events
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            s.push('}');
            s.push_str(if i + 1 < self.sections.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write the JSON report to `path`.
    pub fn write(&self, path: &Path) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }
}

/// JSON number formatting: finite, non-scientific, trailing-zero trimmed.
fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return "0".into();
    }
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".into()
    } else {
        s.to_string()
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let set = run_trials(&HarnessConfig::with_threads(4), items, |&i| (i * 2, i));
        assert_eq!(set.results, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
        assert_eq!(set.stats.trials, 100);
        assert_eq!(set.stats.events, (0..100).sum::<u64>());
        assert_eq!(set.stats.trial_events, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        // The contract under test: thread count must not affect results.
        let run = |threads: usize| {
            run_trials(
                &HarnessConfig::with_threads(threads),
                (0..64u64).collect(),
                |&i| {
                    // A little work so threads genuinely interleave.
                    let mut h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..1000 {
                        h ^= h >> 13;
                        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                    }
                    (h, i + 1)
                },
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.stats.trial_events, parallel.stats.trial_events);
        assert_eq!(parallel.stats.threads, 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let set = run_trials(&HarnessConfig::serial(), Vec::<u64>::new(), |&i| (i, 0));
        assert!(set.results.is_empty());
        assert_eq!(set.stats.trials, 0);
        assert_eq!(set.stats.events, 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let hc = HarnessConfig::serial();
        let a = run_trials(&hc, vec![1u64, 2], |&i| (i, 10));
        let b = run_trials(&hc, vec![3u64], |&i| (i, 5));
        let mut m = a.stats;
        m.merge(&b.stats);
        assert_eq!(m.trials, 3);
        assert_eq!(m.events, 25);
        assert_eq!(m.trial_events, vec![10, 10, 5]);
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut r = BenchReport::new();
        let set = run_trials(&HarnessConfig::with_threads(2), vec![1u64, 2, 3], |&i| {
            (i, i * 100)
        });
        r.add("sec\"one", set.stats);
        let j = r.to_json();
        assert!(j.contains("\"sections\": ["));
        assert!(j.contains("sec\\\"one"));
        assert!(j.contains("\"events\": 600"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn fnum_trims_and_stays_finite() {
        assert_eq!(fnum(1.5), "1.5");
        assert_eq!(fnum(2.0), "2");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(f64::NAN), "0");
        assert_eq!(fnum(f64::INFINITY), "0");
    }
}
