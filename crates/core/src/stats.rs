//! Scheduler statistics: what the evaluation measures.
//!
//! Every figure in §5 is computed from one of these records: per-thread
//! deadline outcomes (Figures 6–9), per-CPU overhead breakdowns
//! (Figure 5), and per-thread dispatch timestamps (Figures 11–12).

use nautix_des::{Cycles, Nanos, OnlineStats, Summary};

/// Per-thread real-time accounting.
#[derive(Debug, Clone, Default)]
pub struct ThreadRtStats {
    /// Jobs that arrived (periodic arrivals or the sporadic burst).
    pub arrivals: u64,
    /// Jobs whose slice completed by the deadline.
    pub met: u64,
    /// Jobs that completed late.
    pub missed: u64,
    /// How late the late jobs were, in nanoseconds.
    pub miss_times: OnlineStats,
    /// Total execution received, in cycles.
    pub executed_cycles: Cycles,
    /// Context switches *to* this thread.
    pub dispatches: u64,
}

impl ThreadRtStats {
    /// Deadline miss rate in [0, 1] over completed jobs.
    pub fn miss_rate(&self) -> f64 {
        let done = self.met + self.missed;
        if done == 0 {
            0.0
        } else {
            self.missed as f64 / done as f64
        }
    }

    /// Summary of miss times (ns).
    pub fn miss_time_summary(&self) -> Summary {
        self.miss_times.summary()
    }
}

/// One local-scheduler invocation's overhead breakdown (Figure 5):
/// interrupt entry/exit, everything-else bookkeeping, the scheduling pass,
/// and the context switch, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadSample {
    /// Interrupt entry + exit.
    pub irq: Cycles,
    /// Bookkeeping around the pass ("Other").
    pub other: Cycles,
    /// The scheduling pass ("Resched").
    pub resched: Cycles,
    /// The context switch ("Switch"); zero when the same thread continues.
    pub switch: Cycles,
}

impl OverheadSample {
    /// Total software overhead of the invocation.
    pub fn total(&self) -> Cycles {
        self.irq + self.other + self.resched + self.switch
    }
}

/// Degraded-mode activations on one CPU (see
/// [`crate::admission::DegradePolicy`]). All zero unless the policy is
/// enabled and interference actually forced a response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Sporadic jobs demoted to aperiodic after overrunning a deadline.
    pub sporadic_demotions: u64,
    /// Periodic reservations revoked and resubmitted with a wider period.
    pub periodic_widenings: u64,
    /// Periodic threads demoted to aperiodic (widening rounds exhausted or
    /// the widened set rejected).
    pub periodic_demotions: u64,
}

impl DegradeStats {
    /// Total degradation activations of any kind.
    pub fn total(&self) -> u64 {
        self.sporadic_demotions + self.periodic_widenings + self.periodic_demotions
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &DegradeStats) {
        self.sporadic_demotions += other.sporadic_demotions;
        self.periodic_widenings += other.periodic_widenings;
        self.periodic_demotions += other.periodic_demotions;
    }
}

/// Incremental-admission-engine counters on one CPU's ledger (see
/// [`crate::admission::CpuLoad`]). All zero when the `HyperperiodSim`
/// policy never runs and no re-admission ever fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Hyperperiod-simulation verdicts served from the memo cache.
    pub sim_hits: u64,
    /// Hyperperiod simulations actually run (cache misses, or every
    /// simulation under the `Fresh` engine).
    pub sim_misses: u64,
    /// Ledger rollbacks: failed re-admissions (or failed team
    /// transactions) that restored previously held reservations.
    pub rollbacks: u64,
}

impl AdmissionStats {
    /// Total engine activity of any kind.
    pub fn total(&self) -> u64 {
        self.sim_hits + self.sim_misses + self.rollbacks
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.sim_hits += other.sim_hits;
        self.sim_misses += other.sim_misses;
        self.rollbacks += other.rollbacks;
    }
}

/// Per-CPU scheduler counters and samples.
#[derive(Debug, Default)]
pub struct CpuSchedStats {
    /// Local scheduler invocations.
    pub invocations: u64,
    /// Timer-interrupt invocations specifically.
    pub timer_invocations: u64,
    /// Kick-IPI invocations.
    pub kick_invocations: u64,
    /// Context switches performed.
    pub switches: u64,
    /// Threads stolen *by* this CPU's work stealer.
    pub steals: u64,
    /// Steals broken down by thief→victim hop distance, indexed by
    /// `Distance::index()` (same-LLC / same-package / cross-package).
    /// Flat topologies only ever touch slot 0.
    pub steals_by_distance: [u64; 3],
    /// Overhead samples, recorded when sampling is enabled.
    pub overheads: Vec<OverheadSample>,
    /// Size-tagged tasks executed inline by the scheduler.
    pub inline_tasks: u64,
    /// Layer throttle events: a layer's token bucket went empty and its
    /// threads became ineligible until the next replenish. Always zero on
    /// the default single-layer config.
    pub layer_throttles: u64,
    /// Layer bucket refills at replenish-window boundaries (one per
    /// configured layer per refill pass).
    pub layer_replenishes: u64,
    /// Degraded-mode activations (all zero unless the policy is enabled).
    pub degrade: DegradeStats,
}

impl CpuSchedStats {
    /// Summaries of each overhead component across samples.
    pub fn overhead_summaries(&self) -> OverheadBreakdown {
        let mut irq = OnlineStats::new();
        let mut other = OnlineStats::new();
        let mut resched = OnlineStats::new();
        let mut switch = OnlineStats::new();
        for s in &self.overheads {
            irq.push(s.irq);
            other.push(s.other);
            resched.push(s.resched);
            if s.switch > 0 {
                switch.push(s.switch);
            }
        }
        OverheadBreakdown {
            irq: irq.summary(),
            other: other.summary(),
            resched: resched.summary(),
            switch: switch.summary(),
        }
    }
}

/// Summaries of the four Figure-5 overhead components.
#[derive(Debug, Clone, Copy)]
pub struct OverheadBreakdown {
    /// Interrupt entry + exit.
    pub irq: Summary,
    /// Bookkeeping ("Other").
    pub other: Summary,
    /// Scheduling pass ("Resched").
    pub resched: Summary,
    /// Context switch ("Switch"), over invocations that switched.
    pub switch: Summary,
}

/// A bounded log of dispatch timestamps for one thread, used by the
/// group-synchronization figures: entry k is the wall-clock time (ns) at
/// which the thread was switched in for the k-th time.
#[derive(Debug, Clone, Default)]
pub struct DispatchLog {
    times: Vec<Nanos>,
    cap: usize,
}

impl DispatchLog {
    /// A log holding at most `cap` entries (0 disables logging).
    pub fn with_capacity(cap: usize) -> Self {
        DispatchLog {
            times: Vec::with_capacity(cap.min(1 << 20)),
            cap,
        }
    }

    /// Record a dispatch, dropping entries past the cap.
    pub fn record(&mut self, at: Nanos) {
        if self.times.len() < self.cap {
            self.times.push(at);
        }
    }

    /// The recorded timestamps.
    pub fn times(&self) -> &[Nanos] {
        &self.times
    }

    /// Number recorded.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Given one dispatch log per group member, the per-index spread:
/// `max_i(t[k][i]) - min_i(t[k][i])` for each invocation index k present in
/// all logs. This is exactly what Figures 11 and 12 plot.
pub fn dispatch_spreads(logs: &[&DispatchLog]) -> Vec<u64> {
    let Some(min_len) = logs.iter().map(|l| l.len()).min() else {
        return Vec::new();
    };
    (0..min_len)
        .map(|k| {
            let mut lo = u64::MAX;
            let mut hi = 0;
            for l in logs {
                let t = l.times()[k];
                lo = lo.min(t);
                hi = hi.max(t);
            }
            hi - lo
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_arithmetic() {
        let mut s = ThreadRtStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        s.met = 3;
        s.missed = 1;
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overhead_sample_total() {
        let s = OverheadSample {
            irq: 1000,
            other: 500,
            resched: 3000,
            switch: 900,
        };
        assert_eq!(s.total(), 5400);
    }

    #[test]
    fn switch_summary_skips_non_switching_invocations() {
        let mut c = CpuSchedStats::default();
        c.overheads.push(OverheadSample {
            irq: 1,
            other: 1,
            resched: 1,
            switch: 0,
        });
        c.overheads.push(OverheadSample {
            irq: 1,
            other: 1,
            resched: 1,
            switch: 10,
        });
        let b = c.overhead_summaries();
        assert_eq!(b.irq.n, 2);
        assert_eq!(b.switch.n, 1);
        assert_eq!(b.switch.mean, 10.0);
    }

    #[test]
    fn dispatch_log_respects_cap() {
        let mut l = DispatchLog::with_capacity(2);
        l.record(1);
        l.record(2);
        l.record(3);
        assert_eq!(l.times(), &[1, 2]);
    }

    #[test]
    fn spreads_are_max_minus_min_per_index() {
        let mut a = DispatchLog::with_capacity(10);
        let mut b = DispatchLog::with_capacity(10);
        let mut c = DispatchLog::with_capacity(10);
        for k in 0..3u64 {
            a.record(1000 * k + 5);
            b.record(1000 * k);
            c.record(1000 * k + 17);
        }
        b.record(9999); // extra entry in one log is ignored
        let spreads = dispatch_spreads(&[&a, &b, &c]);
        assert_eq!(spreads, vec![17, 17, 17]);
    }

    #[test]
    fn spreads_of_empty_input() {
        assert!(dispatch_spreads(&[]).is_empty());
    }
}
