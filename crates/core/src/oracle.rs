//! Online invariant oracles over the scheduler trace stream.
//!
//! The paper's evaluation argues four behavioral claims; each gets an
//! oracle that re-derives the scheduler's state *independently* from the
//! queue-transition records and fails loudly the moment the stream
//! contradicts the claim:
//!
//! * **EDF** — in eager mode, every dispatch of an in-job RT thread picks
//!   the earliest absolute deadline among runnable RT threads, and a
//!   non-RT thread is never dispatched while an RT thread is runnable
//!   (§3.6). Skipped in lazy mode, which legitimately delays newly
//!   arrived jobs past earlier-deadline competitors.
//! * **Admission soundness** — an admitted (and enforced) periodic or
//!   sporadic thread never misses σ by its deadline. A miss is cross-
//!   checked against both admission policies: if the overhead-aware
//!   hyperperiod simulation also calls the admitted set feasible, the
//!   miss is a genuine scheduler violation; if only the closed-form
//!   utilization test passed, the miss is counted as a (non-fatal)
//!   policy divergence — the known gap the `HyperperiodSim` policy
//!   exists to close (§3.2).
//! * **RT isolation** — a size-tagged task executes inline only when no
//!   RT thread is runnable and the declared size fits before the next
//!   pending arrival (§3.1); work stealing never migrates an RT-admitted
//!   thread (§3.4).
//! * **Tickless correctness** — whenever arrivals are pending, the pass's
//!   one-shot request is armed no later than the earliest pending
//!   arrival, and a dispatched in-job RT thread always carries a
//!   slice-end request (§3.3). Checked in the scheduler's own wall-clock
//!   domain, before hardware quantization.
//! * **Layer isolation** — on a layered config, no layer consumes more
//!   wall time than its bandwidth cap over any replenish window (within
//!   timer-quantization slack), a throttled layer's threads never
//!   dispatch until the next replenish, and every `LayerReplenish`
//!   record's reported consumption matches the wall spans the dispatch
//!   stream itself implies — so a scheduler that over-replenishes its
//!   buckets cannot hide behind its own counters.
//!
//! The suite is an [`Observer`]: it sees every record online, in emission
//! order, with the ring available for post-mortem context. In
//! [`OracleMode::Panic`] (the default, used by `NAUTIX_ORACLES=1` runs) a
//! violation aborts the process with the recent trace window; in
//! [`OracleMode::Collect`] violations accumulate for inspection — the
//! sabotage regression test uses this to prove the oracles *would* fire.

use crate::admission::{
    simulate_edf_feasible, LayerTable, SchedConfig, SchedMode, SimProbe, MAX_LAYERS,
};
use nautix_des::{Cycles, Freq, Nanos};
use nautix_hw::{CostModel, MachineConfig, TimerMode};
use nautix_trace::{
    FaultLane, Observer, Record, TraceClass, TraceOutcome, TraceRing, TraceTid, TRACE_LAYER_IDLE,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// How the suite reacts to a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Abort the process with the violation and recent trace context.
    Panic,
    /// Record the violation and keep consuming the stream.
    Collect,
}

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which oracle family fired: `"edf"`, `"admission"`, `"isolation"`,
    /// `"steal"`, `"tickless"`, `"fire-order"`, or `"layer"`.
    pub oracle: &'static str,
    /// Human-readable account of the contradiction.
    pub message: String,
}

/// Check counters, for run summaries and sanity ("did the oracles
/// actually see anything?").
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleStats {
    /// Records consumed.
    pub records: u64,
    /// EDF dispatch checks performed.
    pub edf_checks: u64,
    /// Deadline-outcome checks on admitted threads.
    pub miss_checks: u64,
    /// Inline-task isolation checks.
    pub task_checks: u64,
    /// One-shot timer-request checks.
    pub timer_checks: u64,
    /// Timer-fire emission-order checks (batch-dispatch boundary guard:
    /// the machine pump must emit fires in simulation-time order whether
    /// it pops events one at a time or drains whole instants).
    pub fire_order_checks: u64,
    /// Misses on enforced-admitted threads where the closed-form test
    /// admitted a set the overhead-aware simulation calls infeasible
    /// (policy divergence, not a scheduler bug).
    pub divergences: u64,
    /// Hyperperiod-simulation probes re-checked against a fresh
    /// simulation of the mirrored admitted set.
    pub cache_checks: u64,
    /// Probes whose re-simulation disagreed with the engine's verdict
    /// (each is also a violation: the memo cache served a stale or
    /// colliding entry, or the ledger and the trace mirror drifted).
    pub cache_divergences: u64,
    /// Misses on enforced-admitted threads attributed to modeled hardware
    /// effects outside the admission model (SMIs, injected fault lanes,
    /// timer quantization).
    pub environment_misses: u64,
    /// Layer-isolation checks: dispatch-eligibility checks against the
    /// throttled mirror plus per-window bandwidth/honesty checks at each
    /// `LayerReplenish`. Zero on unlayered configs.
    pub layer_checks: u64,
    /// Fault-injection records seen, per lane ([`FaultLane::idx`] order).
    pub fault_records: [u64; FaultLane::COUNT],
    /// Environment-attributed misses broken down by the fault lane whose
    /// injection most recently preceded each miss ([`FaultLane::idx`]
    /// order). Misses with no preceding fault record (pure SMI or
    /// quantization effects) stay in the aggregate count only.
    pub env_miss_by_lane: [u64; FaultLane::COUNT],
}

impl OracleStats {
    /// Environment-attributed misses that a fault-lane injection preceded.
    pub fn env_misses_lane_attributed(&self) -> u64 {
        self.env_miss_by_lane.iter().sum()
    }
}

/// Process-wide accumulators, flushed from each suite as it drops (node
/// teardown or pooled reset), so a whole trial matrix can report one
/// oracle summary regardless of how its nodes were constructed.
static G_SUITES: AtomicU64 = AtomicU64::new(0);
static G_RECORDS: AtomicU64 = AtomicU64::new(0);
static G_EDF: AtomicU64 = AtomicU64::new(0);
static G_MISS: AtomicU64 = AtomicU64::new(0);
static G_TASK: AtomicU64 = AtomicU64::new(0);
static G_TIMER: AtomicU64 = AtomicU64::new(0);
static G_FIRE_ORDER: AtomicU64 = AtomicU64::new(0);
static G_DIVERGE: AtomicU64 = AtomicU64::new(0);
static G_CACHE_CHECKS: AtomicU64 = AtomicU64::new(0);
static G_CACHE_DIVERGE: AtomicU64 = AtomicU64::new(0);
static G_ENV_MISS: AtomicU64 = AtomicU64::new(0);
static G_LAYER: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ATOMIC_ZERO: AtomicU64 = AtomicU64::new(0);
static G_FAULT_RECORDS: [AtomicU64; FaultLane::COUNT] = [ATOMIC_ZERO; FaultLane::COUNT];
static G_ENV_BY_LANE: [AtomicU64; FaultLane::COUNT] = [ATOMIC_ZERO; FaultLane::COUNT];

/// Totals flushed from every dropped suite so far: `(suites, stats)`.
/// Suites still alive have not flushed yet.
pub fn global_stats() -> (u64, OracleStats) {
    let mut fault_records = [0u64; FaultLane::COUNT];
    let mut env_miss_by_lane = [0u64; FaultLane::COUNT];
    for i in 0..FaultLane::COUNT {
        fault_records[i] = G_FAULT_RECORDS[i].load(Ordering::Relaxed);
        env_miss_by_lane[i] = G_ENV_BY_LANE[i].load(Ordering::Relaxed);
    }
    (
        G_SUITES.load(Ordering::Relaxed),
        OracleStats {
            records: G_RECORDS.load(Ordering::Relaxed),
            edf_checks: G_EDF.load(Ordering::Relaxed),
            miss_checks: G_MISS.load(Ordering::Relaxed),
            task_checks: G_TASK.load(Ordering::Relaxed),
            timer_checks: G_TIMER.load(Ordering::Relaxed),
            fire_order_checks: G_FIRE_ORDER.load(Ordering::Relaxed),
            divergences: G_DIVERGE.load(Ordering::Relaxed),
            cache_checks: G_CACHE_CHECKS.load(Ordering::Relaxed),
            cache_divergences: G_CACHE_DIVERGE.load(Ordering::Relaxed),
            environment_misses: G_ENV_MISS.load(Ordering::Relaxed),
            layer_checks: G_LAYER.load(Ordering::Relaxed),
            fault_records,
            env_miss_by_lane,
        },
    )
}

/// Oracle configuration, normally derived from the node's own scheduler
/// config and cost model via [`OracleConfig::for_node`].
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Panic or collect.
    pub mode: OracleMode,
    /// Eager or lazy dispatch: the EDF oracle only applies to eager.
    pub sched_mode: SchedMode,
    /// Cycle/ns conversion for task sizes.
    pub freq: Freq,
    /// Modeled per-job scheduler overhead for the feasibility cross-check
    /// (two interrupt passes at worst-case cost).
    pub overhead_ns: Nanos,
    /// Window cap for the feasibility simulation.
    pub window_cap_ns: Nanos,
    /// Slack allowed on the inline-task fit check: the scheduler measures
    /// the gap at pass time and the wall clock advances slightly before
    /// each task is charged, so a strict comparison would false-positive
    /// on backlog jitter.
    pub task_slop_ns: Nanos,
    /// The layer bandwidth contracts the layer-isolation family checks
    /// against (the scheduler's own table).
    pub layers: LayerTable,
    /// Slack on the per-window bandwidth bound: the final span before a
    /// throttle may overdraw the bucket by one timer quantum plus the
    /// kernel path's busy window, and a window-straddling span is charged
    /// whole to the window it ends in.
    pub layer_slack_ns: Nanos,
    /// Whether the environment upholds the admission model at all: false
    /// when SMIs or any `FaultPlan` lane are injected, or when the timer
    /// is quantized (coarse one-shot ticks) — hardware effects the paper
    /// shows *do* cause misses on admitted sets (§4–§5). Admitted-set
    /// misses then count in [`OracleStats::environment_misses`] instead
    /// of failing, attributed per lane via the `Record::Fault` stream.
    pub admission_guarantee: bool,
}

impl OracleConfig {
    /// Derive the oracle configuration for a node: its TSC frequency, its
    /// scheduler mode, a per-job overhead bound of two worst-case
    /// scheduler interrupts under its cost model, and whether the modeled
    /// hardware (SMIs, timer quantization) upholds the admission model.
    pub fn for_node(freq: Freq, sched: &SchedConfig, cm: &CostModel, mc: &MachineConfig) -> Self {
        let pass_cycles = cm.irq_entry.worst()
            + cm.irq_exit.worst()
            + cm.sched_pass.worst()
            + cm.sched_other.worst()
            + cm.ctx_switch.worst()
            + cm.timer_program.worst();
        // A quantized one-shot voids the guarantee only when its tick is
        // coarser than the granularity the admission test accepts
        // constraints at: a slice remainder below one tick then grinds
        // through interrupt passes without progress (the §3.3 pathology
        // the `abl_timer_mode` ablation demonstrates).
        let tick_ok = match mc.timer_mode {
            TimerMode::TscDeadline => true,
            TimerMode::OneShot { tick_cycles } => {
                freq.cycles_to_ns(tick_cycles) <= sched.granularity_ns
            }
        };
        let tick_ns = match mc.timer_mode {
            TimerMode::TscDeadline => 0,
            TimerMode::OneShot { tick_cycles } => freq.cycles_to_ns(tick_cycles),
        };
        OracleConfig {
            mode: OracleMode::Panic,
            sched_mode: sched.mode,
            freq,
            overhead_ns: freq.cycles_to_ns(2 * pass_cycles),
            window_cap_ns: 1_000_000_000,
            task_slop_ns: 100_000,
            layers: sched.layers,
            layer_slack_ns: freq.cycles_to_ns(2 * pass_cycles) + tick_ns + 500_000,
            admission_guarantee: !mc.smi.enabled() && !mc.faults.enabled() && tick_ok,
        }
    }

    /// Switch to collect mode (tests).
    pub fn collecting(mut self) -> Self {
        self.mode = OracleMode::Collect;
        self
    }
}

/// A thread holding an enforced, admitted RT reservation.
#[derive(Debug, Clone, Copy)]
struct Admitted {
    tid: TraceTid,
    class: TraceClass,
    /// Period τ (periodic) or deadline window δ−φ context (sporadic), ns.
    period_ns: Nanos,
    /// Slice σ (periodic) or burst size (sporadic), ns.
    slice_ns: Nanos,
}

/// Per-CPU mirror of the scheduler's queues, rebuilt from the stream.
#[derive(Debug, Default)]
struct CpuState {
    /// Runnable RT threads with active jobs: `(tid, absolute deadline)`.
    queued_rt: Vec<(TraceTid, Nanos)>,
    /// Threads waiting for their next arrival: `(tid, absolute arrival)`.
    pending: Vec<(TraceTid, Nanos)>,
    /// Enforced-admitted RT reservations on this CPU's ledger.
    admitted: Vec<Admitted>,
    /// Whether the last dispatch on this CPU was an in-job RT thread.
    running_rt: bool,
    /// A `SimCacheProbe` awaiting its `AdmitVerdict` on this CPU.
    probe: Option<SimProbe>,
    /// The last dispatch on this CPU: `(layer, wall ns)`. The span until
    /// the next dispatch is charged to that layer, mirroring the
    /// scheduler's own span accounting exactly ([`TRACE_LAYER_IDLE`]
    /// spans are charged to nothing).
    last_dispatch: Option<(u32, Nanos)>,
    /// Mirrored per-layer wall-time consumption since the last replenish,
    /// re-derived purely from the dispatch stream.
    layer_spent: [u64; MAX_LAYERS],
    /// Layers throttled by a `LayerThrottle` with no replenish since.
    layer_throttled: [bool; MAX_LAYERS],
    /// Last accepted RT class per thread (from `AdmitVerdict`), for
    /// mapping queued threads to their layer on layered configs.
    rt_class: Vec<(TraceTid, TraceClass)>,
}

impl CpuState {
    fn set_class(&mut self, tid: TraceTid, class: TraceClass) {
        if class == TraceClass::Aperiodic {
            self.rt_class.retain(|(t, _)| *t != tid);
        } else {
            match self.rt_class.iter_mut().find(|(t, _)| *t == tid) {
                Some(slot) => slot.1 = class,
                None => self.rt_class.push((tid, class)),
            }
        }
    }

    /// Earliest-deadline queued RT thread the scheduler is actually
    /// allowed to run: threads whose layer is throttled are excluded,
    /// mirroring dispatch's own layer skip. On an unlayered config
    /// nothing is ever throttled and this is exactly [`set_min`].
    fn min_dispatchable(&self, layers: &LayerTable) -> Option<(TraceTid, Nanos)> {
        self.queued_rt
            .iter()
            .copied()
            .filter(|&(tid, _)| {
                let layer = match self.rt_class.iter().find(|(t, _)| *t == tid) {
                    Some((_, TraceClass::Sporadic)) => layers.map_sporadic(),
                    _ => layers.map_periodic(),
                };
                !self.layer_throttled[layer]
            })
            .min_by_key(|&(_, k)| k)
    }
}

fn set_insert(set: &mut Vec<(TraceTid, Nanos)>, tid: TraceTid, key: Nanos) {
    match set.iter_mut().find(|(t, _)| *t == tid) {
        Some(slot) => slot.1 = key,
        None => set.push((tid, key)),
    }
}

fn set_remove(set: &mut Vec<(TraceTid, Nanos)>, tid: TraceTid) {
    set.retain(|(t, _)| *t != tid);
}

fn set_min(set: &[(TraceTid, Nanos)]) -> Option<(TraceTid, Nanos)> {
    set.iter().copied().min_by_key(|&(_, k)| k)
}

/// The five oracle families plus the steal check, as one stream observer.
#[derive(Debug)]
pub struct OracleSuite {
    cfg: OracleConfig,
    cpus: Vec<CpuState>,
    violations: Vec<Violation>,
    stats: OracleStats,
    /// Most recent injected fault seen in the stream, for attributing
    /// environment misses to the lane that induced them.
    last_fault: Option<FaultLane>,
    /// True time of the most recent timer fire, for the emission-order
    /// check across batch-dispatch boundaries.
    last_fire_cycles: Option<Cycles>,
}

impl OracleSuite {
    /// An empty suite; per-CPU state grows on first sight of each CPU.
    pub fn new(cfg: OracleConfig) -> Self {
        OracleSuite {
            cfg,
            cpus: Vec::new(),
            violations: Vec::new(),
            stats: OracleStats::default(),
            last_fault: None,
            last_fire_cycles: None,
        }
    }

    /// Violations collected so far (always empty in panic mode — the
    /// first one aborts).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Check counters.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// Panic unless the stream was violation-free (and actually checked
    /// something, guarding against silently-disconnected wiring).
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "oracle violations: {:?}",
            self.violations
        );
    }

    fn cpu(&mut self, cpu: u32) -> &mut CpuState {
        let idx = cpu as usize;
        if self.cpus.len() <= idx {
            self.cpus.resize_with(idx + 1, CpuState::default);
        }
        &mut self.cpus[idx]
    }

    fn violate(&mut self, oracle: &'static str, message: String, recent: &TraceRing) {
        match self.cfg.mode {
            OracleMode::Panic => {
                let tail = 24usize;
                let skip = recent.len().saturating_sub(tail);
                let mut ctx = String::new();
                for r in recent.iter().skip(skip) {
                    ctx.push_str(&format!("  {r:?}\n"));
                }
                panic!(
                    "ORACLE VIOLATION [{oracle}]: {message}\n\
                     last {n} trace records (oldest first):\n{ctx}",
                    n = recent.len().min(tail),
                );
            }
            OracleMode::Collect => self.violations.push(Violation { oracle, message }),
        }
    }

    /// Oracle (a): the dispatched thread against the remaining runnable
    /// RT set. Eager mode only.
    fn check_dispatch(
        &mut self,
        cpu: u32,
        tid: TraceTid,
        now_ns: Nanos,
        deadline_ns: Nanos,
        is_rt: bool,
        recent: &TraceRing,
    ) {
        if self.cfg.sched_mode != SchedMode::Eager {
            return;
        }
        self.stats.edf_checks += 1;
        let layers = self.cfg.layers;
        let queued = self.cpu(cpu).min_dispatchable(&layers);
        if is_rt {
            if let Some((qtid, qdl)) = queued {
                if qdl < deadline_ns {
                    self.violate(
                        "edf",
                        format!(
                            "cpu {cpu} dispatched tid {tid} (deadline {deadline_ns}) while \
                             tid {qtid} with earlier deadline {qdl} was runnable (now {now_ns})"
                        ),
                        recent,
                    );
                }
            }
        } else if let Some((qtid, qdl)) = queued {
            self.violate(
                "edf",
                format!(
                    "cpu {cpu} dispatched non-RT tid {tid} while RT tid {qtid} \
                     (deadline {qdl}) was runnable (now {now_ns})"
                ),
                recent,
            );
        }
    }

    /// Oracle (b): a deadline miss on an enforced-admitted thread,
    /// cross-checked against the overhead-aware feasibility simulation.
    fn check_miss(
        &mut self,
        cpu: u32,
        tid: TraceTid,
        now_ns: Nanos,
        deadline_ns: Nanos,
        recent: &TraceRing,
    ) {
        let (overhead, cap) = (self.cfg.overhead_ns, self.cfg.window_cap_ns);
        let state = self.cpu(cpu);
        let Some(hit) = state.admitted.iter().find(|a| a.tid == tid).copied() else {
            return;
        };
        // The admitted set as the ledger saw it: every enforced periodic
        // reservation on this CPU, plus the missing thread itself if
        // sporadic (modeled as one pseudo-period of its window).
        let set: Vec<(Nanos, Nanos)> = state
            .admitted
            .iter()
            .filter(|a| a.class == TraceClass::Periodic || a.tid == tid)
            .map(|a| (a.period_ns, a.slice_ns))
            .collect();
        self.stats.miss_checks += 1;
        if !self.cfg.admission_guarantee {
            self.stats.environment_misses += 1;
            if let Some(lane) = self.last_fault {
                self.stats.env_miss_by_lane[lane.idx()] += 1;
            }
            return;
        }
        if simulate_edf_feasible(&set, overhead, cap) {
            self.violate(
                "admission",
                format!(
                    "cpu {cpu} admitted {class:?} tid {tid} missed its deadline \
                     {deadline_ns} ns at {now_ns} ns (+{late} ns), yet the admitted \
                     set {set:?} is EDF-feasible even with {overhead} ns/job modeled \
                     overhead",
                    class = hit.class,
                    late = now_ns.saturating_sub(deadline_ns),
                ),
                recent,
            );
        } else {
            // The closed-form test admitted a set whose granularity the
            // overhead-aware simulation rejects: a policy divergence the
            // HyperperiodSim policy exists to close, not a scheduler bug.
            self.stats.divergences += 1;
        }
    }

    /// Oracle (c): inline task execution against RT runnability and the
    /// next pending arrival.
    fn check_task(&mut self, cpu: u32, now_ns: Nanos, size_cycles: Cycles, recent: &TraceRing) {
        self.stats.task_checks += 1;
        let size_ns = self.cfg.freq.cycles_to_ns(size_cycles);
        let slop = self.cfg.task_slop_ns;
        let layers = self.cfg.layers;
        let state = self.cpu(cpu);
        if state.running_rt || state.min_dispatchable(&layers).is_some() {
            let msg = format!(
                "cpu {cpu} executed a size-tagged task ({size_ns} ns) at {now_ns} ns \
                 while an RT thread was {} (queued_rt: {:?})",
                if state.running_rt {
                    "dispatched"
                } else {
                    "runnable"
                },
                state.queued_rt,
            );
            self.violate("isolation", msg, recent);
            return;
        }
        if let Some((ptid, arrival)) = set_min(&state.pending) {
            if now_ns + size_ns > arrival + slop {
                self.violate(
                    "isolation",
                    format!(
                        "cpu {cpu} executed a {size_ns} ns size-tagged task at {now_ns} ns \
                         overlapping tid {ptid}'s arrival at {arrival} ns (+{slop} ns slop)"
                    ),
                    recent,
                );
            }
        }
    }

    /// Oracle (d): the pass's one-shot request against the pending set,
    /// in the scheduler's wall-clock domain.
    fn check_timer(
        &mut self,
        cpu: u32,
        now_ns: Nanos,
        wall_ns: Nanos,
        exec_cycles: Cycles,
        armed: bool,
        recent: &TraceRing,
    ) {
        self.stats.timer_checks += 1;
        let state = self.cpu(cpu);
        if let Some((ptid, arrival)) = set_min(&state.pending) {
            if !armed {
                self.violate(
                    "tickless",
                    format!(
                        "cpu {cpu} cancelled its one-shot at {now_ns} ns with tid {ptid} \
                         pending at {arrival} ns"
                    ),
                    recent,
                );
            } else if wall_ns > arrival {
                self.violate(
                    "tickless",
                    format!(
                        "cpu {cpu} armed its one-shot for {wall_ns} ns, past tid {ptid}'s \
                         pending arrival at {arrival} ns (now {now_ns})"
                    ),
                    recent,
                );
            }
        }
        if self.cpu(cpu).running_rt && exec_cycles == Cycles::MAX {
            self.violate(
                "tickless",
                format!(
                    "cpu {cpu} dispatched an in-job RT thread but requested no slice-end \
                     one-shot (now {now_ns} ns)"
                ),
                recent,
            );
        }
    }

    /// Cached-verdict oracle: a [`Record::SimCacheProbe`] preceding a
    /// periodic admission verdict is re-checked against a *fresh*
    /// overhead-aware simulation of the mirrored admitted set plus the
    /// candidate. Divergence means the memo cache served a stale or
    /// colliding entry — or the ledger and the trace mirror drifted
    /// apart — a violation either way. Misses (freshly simulated
    /// verdicts) are re-checked too, which pins the mirror itself.
    fn check_probe(
        &mut self,
        cpu: u32,
        tid: TraceTid,
        probe: SimProbe,
        period_ns: Nanos,
        slice_ns: Nanos,
        recent: &TraceRing,
    ) {
        self.stats.cache_checks += 1;
        // The set as the ledger saw it at simulation time: every mirrored
        // periodic reservation except the requesting thread's own (its old
        // reservation is released before the candidate is tested), plus
        // the candidate itself.
        let set: Vec<(Nanos, Nanos)> = self
            .cpu(cpu)
            .admitted
            .iter()
            .filter(|a| a.class == TraceClass::Periodic && a.tid != tid)
            .map(|a| (a.period_ns, a.slice_ns))
            .chain(std::iter::once((period_ns, slice_ns)))
            .collect();
        let fresh = simulate_edf_feasible(&set, probe.overhead_ns, probe.window_cap_ns);
        if fresh != probe.feasible {
            self.stats.cache_divergences += 1;
            self.violate(
                "admission-cache",
                format!(
                    "cpu {cpu} tid {tid}: {src} verdict said feasible={cached} for set \
                     {set:?} (sig {sig:#x}, {overhead} ns/job overhead), but a fresh \
                     simulation says feasible={fresh}",
                    src = if probe.hit { "cached" } else { "simulated" },
                    cached = probe.feasible,
                    sig = probe.sig,
                    overhead = probe.overhead_ns,
                ),
                recent,
            );
        }
    }

    /// Fire-order check: the machine pump emits `TimerFire` records in
    /// nondecreasing true-time order. Batched same-timestamp dispatch
    /// must be invisible in the stream; a fire stepping backwards means
    /// the pump reordered hardware events across a batch boundary.
    fn check_fire_order(&mut self, cpu: u32, at_cycles: Cycles, recent: &TraceRing) {
        self.stats.fire_order_checks += 1;
        if let Some(last) = self.last_fire_cycles {
            if at_cycles < last {
                self.violate(
                    "fire-order",
                    format!(
                        "cpu {cpu} timer fired at {at_cycles} cycles after a fire at \
                         {last}: the event pump emitted records out of time order"
                    ),
                    recent,
                );
            }
        }
        self.last_fire_cycles = Some(at_cycles);
    }

    /// Layer oracle, dispatch side: charge the elapsed span to the layer
    /// the previous dispatch stamped, then reject a dispatch in a layer
    /// that is still throttled (no replenish since its `LayerThrottle`).
    fn check_layer_dispatch(
        &mut self,
        cpu: u32,
        tid: TraceTid,
        now_ns: Nanos,
        layer: u32,
        recent: &TraceRing,
    ) {
        let state = self.cpu(cpu);
        if let Some((prev_layer, prev_ns)) = state.last_dispatch {
            if prev_layer != TRACE_LAYER_IDLE && (prev_layer as usize) < MAX_LAYERS {
                state.layer_spent[prev_layer as usize] += now_ns.saturating_sub(prev_ns);
            }
        }
        state.last_dispatch = Some((layer, now_ns));
        if layer == TRACE_LAYER_IDLE {
            return;
        }
        self.stats.layer_checks += 1;
        if (layer as usize) >= self.cfg.layers.count() {
            self.violate(
                "layer",
                format!("cpu {cpu} dispatched tid {tid} stamped with unconfigured layer {layer}"),
                recent,
            );
            return;
        }
        if self.cpu(cpu).layer_throttled[layer as usize] {
            self.violate(
                "layer",
                format!(
                    "cpu {cpu} dispatched tid {tid} at {now_ns} ns in layer {layer}, which \
                     is throttled until the next replenish"
                ),
                recent,
            );
        }
    }

    /// Layer oracle, replenish side: the record's reported consumption
    /// must equal what the dispatch stream implies (a scheduler cannot
    /// launder an over-replenish through its own counters), a finite
    /// layer must stay within its bandwidth cap over the window, and the
    /// cap itself must match the configured contract.
    fn check_layer_replenish(
        &mut self,
        cpu: u32,
        layer: u32,
        spent_ns: Nanos,
        cap_ns: Nanos,
        recent: &TraceRing,
    ) {
        self.stats.layer_checks += 1;
        let l = layer as usize;
        if l >= self.cfg.layers.count() {
            self.violate(
                "layer",
                format!("cpu {cpu} replenished unconfigured layer {layer}"),
                recent,
            );
            return;
        }
        let mirrored = self.cpu(cpu).layer_spent[l];
        if spent_ns != mirrored {
            self.violate(
                "layer",
                format!(
                    "cpu {cpu} layer {layer} replenish reports {spent_ns} ns consumed, but \
                     the dispatch stream implies {mirrored} ns"
                ),
                recent,
            );
        }
        let derived = self.cfg.layers.cap_ns(l);
        if cap_ns != derived {
            self.violate(
                "layer",
                format!(
                    "cpu {cpu} layer {layer} replenish carries cap {cap_ns} ns; the \
                     configured contract derives {derived} ns"
                ),
                recent,
            );
        }
        if !self.cfg.layers.spec(l).exempt() && spent_ns > derived + self.cfg.layer_slack_ns {
            self.violate(
                "layer",
                format!(
                    "cpu {cpu} layer {layer} consumed {spent_ns} ns in one replenish \
                     window, over its {derived} ns bandwidth cap (+{slack} ns slack)",
                    slack = self.cfg.layer_slack_ns,
                ),
                recent,
            );
        }
        let state = self.cpu(cpu);
        state.layer_spent[l] = 0;
        state.layer_throttled[l] = false;
    }

    /// Layer oracle, throttle side: only a configured, finite layer can
    /// legitimately exhaust its bucket.
    fn check_layer_throttle(&mut self, cpu: u32, layer: u32, now_ns: Nanos, recent: &TraceRing) {
        self.stats.layer_checks += 1;
        let l = layer as usize;
        if l >= self.cfg.layers.count() || self.cfg.layers.spec(l).exempt() {
            self.violate(
                "layer",
                format!(
                    "cpu {cpu} throttled layer {layer} at {now_ns} ns, which is \
                     unconfigured or exempt and can never exhaust a bucket"
                ),
                recent,
            );
            return;
        }
        self.cpu(cpu).layer_throttled[l] = true;
    }

    /// Steal check: work stealing must never migrate an RT reservation.
    fn check_steal(&mut self, thief: u32, victim: u32, tid: TraceTid, recent: &TraceRing) {
        let admitted_rt = self
            .cpus
            .iter()
            .flat_map(|c| c.admitted.iter())
            .any(|a| a.tid == tid);
        if admitted_rt {
            self.violate(
                "steal",
                format!("cpu {thief} stole RT-admitted tid {tid} from cpu {victim}"),
                recent,
            );
        }
    }
}

impl Drop for OracleSuite {
    fn drop(&mut self) {
        G_SUITES.fetch_add(1, Ordering::Relaxed);
        G_RECORDS.fetch_add(self.stats.records, Ordering::Relaxed);
        G_EDF.fetch_add(self.stats.edf_checks, Ordering::Relaxed);
        G_MISS.fetch_add(self.stats.miss_checks, Ordering::Relaxed);
        G_TASK.fetch_add(self.stats.task_checks, Ordering::Relaxed);
        G_TIMER.fetch_add(self.stats.timer_checks, Ordering::Relaxed);
        G_FIRE_ORDER.fetch_add(self.stats.fire_order_checks, Ordering::Relaxed);
        G_DIVERGE.fetch_add(self.stats.divergences, Ordering::Relaxed);
        G_CACHE_CHECKS.fetch_add(self.stats.cache_checks, Ordering::Relaxed);
        G_CACHE_DIVERGE.fetch_add(self.stats.cache_divergences, Ordering::Relaxed);
        G_ENV_MISS.fetch_add(self.stats.environment_misses, Ordering::Relaxed);
        G_LAYER.fetch_add(self.stats.layer_checks, Ordering::Relaxed);
        for i in 0..FaultLane::COUNT {
            G_FAULT_RECORDS[i].fetch_add(self.stats.fault_records[i], Ordering::Relaxed);
            G_ENV_BY_LANE[i].fetch_add(self.stats.env_miss_by_lane[i], Ordering::Relaxed);
        }
    }
}

impl Observer for OracleSuite {
    fn on_record(&mut self, r: &Record, recent: &TraceRing) {
        self.stats.records += 1;
        match *r {
            Record::RtQueued {
                cpu,
                tid,
                deadline_ns,
            } => {
                let state = self.cpu(cpu);
                set_insert(&mut state.queued_rt, tid, deadline_ns);
                set_remove(&mut state.pending, tid);
            }
            Record::PendingQueued {
                cpu,
                tid,
                arrival_ns,
            } => {
                let state = self.cpu(cpu);
                set_insert(&mut state.pending, tid, arrival_ns);
                set_remove(&mut state.queued_rt, tid);
            }
            Record::JobArrive {
                cpu,
                tid,
                deadline_ns,
                ..
            } => {
                let state = self.cpu(cpu);
                set_remove(&mut state.pending, tid);
                set_insert(&mut state.queued_rt, tid, deadline_ns);
            }
            Record::Dequeued { cpu, tid } => {
                let state = self.cpu(cpu);
                set_remove(&mut state.queued_rt, tid);
                set_remove(&mut state.pending, tid);
            }
            Record::Dispatch {
                cpu,
                tid,
                now_ns,
                deadline_ns,
                is_rt,
                is_idle,
                layer,
                ..
            } => {
                let state = self.cpu(cpu);
                set_remove(&mut state.queued_rt, tid);
                state.running_rt = is_rt && !is_idle;
                self.check_layer_dispatch(cpu, tid, now_ns, layer, recent);
                self.check_dispatch(cpu, tid, now_ns, deadline_ns, is_rt, recent);
            }
            Record::JobComplete {
                cpu,
                tid,
                now_ns,
                deadline_ns,
                outcome,
            } => {
                if outcome == TraceOutcome::Missed {
                    self.check_miss(cpu, tid, now_ns, deadline_ns, recent);
                }
            }
            Record::AdmitVerdict {
                cpu,
                tid,
                accepted,
                enforced,
                class,
                period_ns,
                slice_ns,
            } => {
                // Re-check a preceding simulation probe against the mirror
                // *before* the verdict mutates it. Any stashed probe is
                // consumed here: probes pair with the next verdict.
                if let Some(probe) = self.cpu(cpu).probe.take() {
                    if class == TraceClass::Periodic {
                        self.check_probe(cpu, tid, probe, period_ns, slice_ns, recent);
                    }
                }
                let state = self.cpu(cpu);
                state.admitted.retain(|a| a.tid != tid);
                if accepted {
                    state.set_class(tid, class);
                }
                if accepted && enforced && class != TraceClass::Aperiodic {
                    state.admitted.push(Admitted {
                        tid,
                        class,
                        period_ns,
                        slice_ns,
                    });
                }
            }
            Record::SimCacheProbe {
                cpu,
                hit,
                feasible,
                sig,
                overhead_ns,
                window_cap_ns,
            } => {
                self.cpu(cpu).probe = Some(SimProbe {
                    hit,
                    feasible,
                    sig,
                    overhead_ns,
                    window_cap_ns,
                });
            }
            Record::AdmitRollback {
                cpu,
                tid,
                enforced,
                class,
                period_ns,
                slice_ns,
            } => {
                // A failed re-admission restored the thread's previous
                // reservation after its rejected `AdmitVerdict` cleared
                // the mirror entry: put it back.
                let state = self.cpu(cpu);
                state.admitted.retain(|a| a.tid != tid);
                state.set_class(tid, class);
                if enforced && class != TraceClass::Aperiodic {
                    state.admitted.push(Admitted {
                        tid,
                        class,
                        period_ns,
                        slice_ns,
                    });
                }
            }
            Record::ConstraintsReleased { cpu, tid } => {
                let state = self.cpu(cpu);
                state.admitted.retain(|a| a.tid != tid);
                state.rt_class.retain(|(t, _)| *t != tid);
            }
            Record::TimerReq {
                cpu,
                now_ns,
                wall_ns,
                exec_cycles,
                armed,
            } => {
                self.check_timer(cpu, now_ns, wall_ns, exec_cycles, armed, recent);
            }
            Record::TaskExec {
                cpu,
                now_ns,
                size_cycles,
                ..
            } => {
                self.check_task(cpu, now_ns, size_cycles, recent);
            }
            Record::Steal { thief, victim, tid } => {
                self.check_steal(thief, victim, tid, recent);
            }
            Record::Fault { lane, .. } => {
                self.stats.fault_records[lane.idx()] += 1;
                self.last_fault = Some(lane);
            }
            Record::TimerFire { cpu, at_cycles } => {
                self.check_fire_order(cpu, at_cycles, recent);
            }
            Record::LayerThrottle { cpu, layer, now_ns } => {
                self.check_layer_throttle(cpu, layer, now_ns, recent);
            }
            Record::LayerReplenish {
                cpu,
                layer,
                spent_ns,
                cap_ns,
            } => {
                self.check_layer_replenish(cpu, layer, spent_ns, cap_ns, recent);
            }
            // Context-only records: no oracle state.
            Record::Preempt { .. }
            | Record::TimerArm { .. }
            | Record::TimerCancel { .. }
            | Record::Kick { .. }
            | Record::TaskSpawn { .. }
            | Record::TeamAdmit { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OracleConfig {
        OracleConfig::for_node(
            Freq::phi(),
            &SchedConfig::default(),
            &CostModel::phi(),
            &MachineConfig::phi(),
        )
        .collecting()
    }

    fn feed(suite: &mut OracleSuite, records: &[Record]) {
        let mut ring = TraceRing::new(64);
        for &r in records {
            ring.push(r);
            suite.on_record(&r, &ring);
        }
    }

    #[test]
    fn edf_oracle_accepts_earliest_deadline_dispatch() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::RtQueued {
                    cpu: 0,
                    tid: 2,
                    deadline_ns: 5_000,
                },
                Record::RtQueued {
                    cpu: 0,
                    tid: 3,
                    deadline_ns: 9_000,
                },
                Record::Dispatch {
                    cpu: 0,
                    tid: 2,
                    now_ns: 1_000,
                    deadline_ns: 5_000,
                    is_rt: true,
                    is_idle: false,
                    switched: true,
                    layer: 0,
                },
            ],
        );
        s.assert_clean();
        assert_eq!(s.stats().edf_checks, 1);
    }

    #[test]
    fn edf_oracle_flags_later_deadline_dispatch() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::RtQueued {
                    cpu: 0,
                    tid: 2,
                    deadline_ns: 5_000,
                },
                Record::RtQueued {
                    cpu: 0,
                    tid: 3,
                    deadline_ns: 9_000,
                },
                Record::Dispatch {
                    cpu: 0,
                    tid: 3,
                    now_ns: 1_000,
                    deadline_ns: 9_000,
                    is_rt: true,
                    is_idle: false,
                    switched: true,
                    layer: 0,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "edf");
    }

    #[test]
    fn edf_oracle_flags_nonrt_dispatch_over_runnable_rt() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::RtQueued {
                    cpu: 0,
                    tid: 2,
                    deadline_ns: 5_000,
                },
                Record::Dispatch {
                    cpu: 0,
                    tid: 7,
                    now_ns: 1_000,
                    deadline_ns: Nanos::MAX,
                    is_rt: false,
                    is_idle: false,
                    switched: true,
                    layer: 0,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "edf");
    }

    #[test]
    fn isolation_oracle_flags_task_over_runnable_rt() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::RtQueued {
                    cpu: 0,
                    tid: 2,
                    deadline_ns: 5_000,
                },
                Record::TaskExec {
                    cpu: 0,
                    now_ns: 1_000,
                    size_cycles: 100,
                    budget_cycles: 1_000,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "isolation");
    }

    #[test]
    fn tickless_oracle_flags_late_one_shot() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::PendingQueued {
                    cpu: 0,
                    tid: 2,
                    arrival_ns: 10_000,
                },
                Record::TimerReq {
                    cpu: 0,
                    now_ns: 1_000,
                    wall_ns: 50_000,
                    exec_cycles: Cycles::MAX,
                    armed: true,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "tickless");
        // An on-time request is clean.
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::PendingQueued {
                    cpu: 0,
                    tid: 2,
                    arrival_ns: 10_000,
                },
                Record::TimerReq {
                    cpu: 0,
                    now_ns: 1_000,
                    wall_ns: 10_000,
                    exec_cycles: Cycles::MAX,
                    armed: true,
                },
            ],
        );
        s.assert_clean();
    }

    #[test]
    fn admission_oracle_flags_miss_of_feasible_set() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 1_000_000,
                    slice_ns: 100_000,
                },
                Record::JobComplete {
                    cpu: 0,
                    tid: 2,
                    now_ns: 1_100_000,
                    deadline_ns: 1_000_000,
                    outcome: TraceOutcome::Missed,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "admission");
        assert_eq!(s.stats().miss_checks, 1);
    }

    #[test]
    fn admission_oracle_ignores_unenforced_misses() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: false,
                    class: TraceClass::Periodic,
                    period_ns: 10_000,
                    slice_ns: 9_500,
                },
                Record::JobComplete {
                    cpu: 0,
                    tid: 2,
                    now_ns: 50_000,
                    deadline_ns: 10_000,
                    outcome: TraceOutcome::Missed,
                },
            ],
        );
        s.assert_clean();
        assert_eq!(s.stats().miss_checks, 0);
    }

    #[test]
    fn steal_oracle_flags_rt_migration() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 1,
                    tid: 4,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Sporadic,
                    period_ns: 1_000_000,
                    slice_ns: 50_000,
                },
                Record::Steal {
                    thief: 0,
                    victim: 1,
                    tid: 4,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "steal");
    }

    #[test]
    fn release_clears_admitted_state() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 1_000_000,
                    slice_ns: 100_000,
                },
                Record::ConstraintsReleased { cpu: 0, tid: 2 },
                Record::JobComplete {
                    cpu: 0,
                    tid: 2,
                    now_ns: 1_100_000,
                    deadline_ns: 1_000_000,
                    outcome: TraceOutcome::Missed,
                },
            ],
        );
        s.assert_clean();
    }

    #[test]
    fn fault_lane_miss_attribution() {
        // With faults enabled the guarantee is void; a miss after a fault
        // record is environment-attributed to that lane, not a violation.
        let mc = MachineConfig::phi().with_faults(nautix_hw::FaultPlan::noisy(Freq::phi(), 1.0));
        let cfg =
            OracleConfig::for_node(Freq::phi(), &SchedConfig::default(), &CostModel::phi(), &mc)
                .collecting();
        assert!(!cfg.admission_guarantee);
        let mut s = OracleSuite::new(cfg);
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 1_000_000,
                    slice_ns: 100_000,
                },
                Record::Fault {
                    cpu: 0,
                    lane: FaultLane::CpuStall,
                    now_cycles: 500,
                    magnitude_cycles: 65_000,
                },
                Record::JobComplete {
                    cpu: 0,
                    tid: 2,
                    now_ns: 1_100_000,
                    deadline_ns: 1_000_000,
                    outcome: TraceOutcome::Missed,
                },
            ],
        );
        s.assert_clean();
        assert_eq!(s.stats().environment_misses, 1);
        assert_eq!(s.stats().fault_records[FaultLane::CpuStall.idx()], 1);
        assert_eq!(s.stats().env_miss_by_lane[FaultLane::CpuStall.idx()], 1);
        assert_eq!(s.stats().env_misses_lane_attributed(), 1);
    }

    #[test]
    fn cache_oracle_accepts_agreeing_probe() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::SimCacheProbe {
                    cpu: 0,
                    hit: true,
                    feasible: true,
                    sig: 0xabcd,
                    overhead_ns: 1_000,
                    window_cap_ns: 1_000_000_000,
                },
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 1_000_000,
                    slice_ns: 100_000,
                },
            ],
        );
        s.assert_clean();
        assert_eq!(s.stats().cache_checks, 1);
        assert_eq!(s.stats().cache_divergences, 0);
    }

    #[test]
    fn cache_oracle_flags_divergent_cached_verdict() {
        let mut s = OracleSuite::new(cfg());
        // The probe claims feasible, but a 10 us period with a 5 us slice
        // under 9 us/job modeled overhead cannot fit: a fresh simulation
        // contradicts the cached verdict.
        feed(
            &mut s,
            &[
                Record::SimCacheProbe {
                    cpu: 0,
                    hit: true,
                    feasible: true,
                    sig: 0xbeef,
                    overhead_ns: 9_000,
                    window_cap_ns: 1_000_000_000,
                },
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 10_000,
                    slice_ns: 5_000,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "admission-cache");
        assert_eq!(s.stats().cache_checks, 1);
        assert_eq!(s.stats().cache_divergences, 1);
    }

    #[test]
    fn cache_recheck_excludes_the_requesting_threads_old_reservation() {
        // A re-admission releases the thread's old reservation before the
        // candidate is tested, but a *rejected* verdict never emits
        // `ConstraintsReleased` — the mirror still holds the old entry.
        // The re-check must exclude it, or every failed widening would
        // simulate the old and new reservations as coexisting.
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 100_000,
                    slice_ns: 60_000,
                },
                // Re-admission attempt at a wider period: simulated alone
                // (the old 60% entry must not be double-counted).
                Record::SimCacheProbe {
                    cpu: 0,
                    hit: false,
                    feasible: true,
                    sig: 0x77,
                    overhead_ns: 0,
                    window_cap_ns: 1_000_000_000,
                },
                Record::AdmitVerdict {
                    cpu: 0,
                    tid: 2,
                    accepted: false,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 125_000,
                    slice_ns: 60_000,
                },
                Record::AdmitRollback {
                    cpu: 0,
                    tid: 2,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 100_000,
                    slice_ns: 60_000,
                },
            ],
        );
        s.assert_clean();
        assert_eq!(s.stats().cache_checks, 1);
    }

    #[test]
    fn rollback_restores_the_admitted_mirror() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[
                Record::AdmitVerdict {
                    cpu: 1,
                    tid: 4,
                    accepted: true,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 1_000_000,
                    slice_ns: 100_000,
                },
                // A failed re-admission: the rejected verdict clears the
                // mirror entry, the rollback record restores it.
                Record::AdmitVerdict {
                    cpu: 1,
                    tid: 4,
                    accepted: false,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 500_000,
                    slice_ns: 400_000,
                },
                Record::AdmitRollback {
                    cpu: 1,
                    tid: 4,
                    enforced: true,
                    class: TraceClass::Periodic,
                    period_ns: 1_000_000,
                    slice_ns: 100_000,
                },
                // Stealing the thread now must still trip the steal oracle:
                // the reservation survived the failed re-admission.
                Record::Steal {
                    thief: 0,
                    victim: 1,
                    tid: 4,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "steal");
    }

    fn layered_cfg() -> OracleConfig {
        use crate::admission::LayerSpec;
        let sched = SchedConfig {
            layers: LayerTable::three_way(
                LayerSpec {
                    guarantee_ppm: 600_000,
                    burst_ppm: 50_000,
                },
                LayerSpec {
                    guarantee_ppm: 250_000,
                    burst_ppm: 0,
                },
                LayerSpec {
                    guarantee_ppm: 100_000,
                    burst_ppm: 0,
                },
                10_000_000,
            )
            .unwrap(),
            ..SchedConfig::default()
        };
        OracleConfig::for_node(
            Freq::phi(),
            &sched,
            &CostModel::phi(),
            &MachineConfig::phi(),
        )
        .collecting()
    }

    /// A non-RT dispatch in layer 2 (background, 1 ms cap per 10 ms
    /// window at 100_000 ppm).
    fn bg_dispatch(tid: TraceTid, now_ns: Nanos) -> Record {
        Record::Dispatch {
            cpu: 0,
            tid,
            now_ns,
            deadline_ns: Nanos::MAX,
            is_rt: false,
            is_idle: false,
            switched: true,
            layer: 2,
        }
    }

    fn idle_dispatch(now_ns: Nanos) -> Record {
        Record::Dispatch {
            cpu: 0,
            tid: 0,
            now_ns,
            deadline_ns: Nanos::MAX,
            is_rt: false,
            is_idle: true,
            switched: true,
            layer: TRACE_LAYER_IDLE,
        }
    }

    #[test]
    fn layer_oracle_accepts_in_budget_window() {
        let mut s = OracleSuite::new(layered_cfg());
        // 800 us of background execution in a 1 ms-cap window.
        feed(
            &mut s,
            &[
                bg_dispatch(7, 0),
                idle_dispatch(800_000),
                Record::LayerReplenish {
                    cpu: 0,
                    layer: 2,
                    spent_ns: 800_000,
                    cap_ns: 1_000_000,
                },
            ],
        );
        s.assert_clean();
        assert_eq!(s.stats().layer_checks, 2);
    }

    #[test]
    fn layer_oracle_flags_overspent_window() {
        let mut s = OracleSuite::new(layered_cfg());
        // 9 ms of background execution against a 1 ms cap: far past any
        // quantization slack. The replenish reports it honestly (as the
        // sabotaged over-replenish does) and must still be caught.
        feed(
            &mut s,
            &[
                bg_dispatch(7, 0),
                idle_dispatch(9_000_000),
                Record::LayerReplenish {
                    cpu: 0,
                    layer: 2,
                    spent_ns: 9_000_000,
                    cap_ns: 1_000_000,
                },
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "layer");
    }

    #[test]
    fn layer_oracle_flags_dishonest_spent_report() {
        let mut s = OracleSuite::new(layered_cfg());
        // The dispatch stream implies 5 ms of consumption but the
        // replenish claims 500 us: the mirror contradicts the counter.
        feed(
            &mut s,
            &[
                bg_dispatch(7, 0),
                idle_dispatch(5_000_000),
                Record::LayerReplenish {
                    cpu: 0,
                    layer: 2,
                    spent_ns: 500_000,
                    cap_ns: 1_000_000,
                },
            ],
        );
        assert!(!s.violations().is_empty());
        assert!(s.violations().iter().all(|v| v.oracle == "layer"));
    }

    #[test]
    fn layer_oracle_flags_wrong_cap() {
        let mut s = OracleSuite::new(layered_cfg());
        feed(
            &mut s,
            &[Record::LayerReplenish {
                cpu: 0,
                layer: 2,
                spent_ns: 0,
                cap_ns: 4_000_000, // contract derives 1 ms
            }],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "layer");
    }

    #[test]
    fn layer_oracle_flags_throttled_dispatch() {
        let mut s = OracleSuite::new(layered_cfg());
        feed(
            &mut s,
            &[
                Record::LayerThrottle {
                    cpu: 0,
                    layer: 2,
                    now_ns: 1_000_000,
                },
                bg_dispatch(7, 1_100_000),
            ],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "layer");
    }

    #[test]
    fn layer_replenish_clears_the_throttle() {
        let mut s = OracleSuite::new(layered_cfg());
        feed(
            &mut s,
            &[
                Record::LayerThrottle {
                    cpu: 0,
                    layer: 2,
                    now_ns: 1_000_000,
                },
                Record::LayerReplenish {
                    cpu: 0,
                    layer: 2,
                    spent_ns: 0,
                    cap_ns: 1_000_000,
                },
                bg_dispatch(7, 10_100_000),
            ],
        );
        s.assert_clean();
    }

    #[test]
    fn layer_oracle_flags_exempt_or_unconfigured_throttle() {
        // Layer 3 is unconfigured in the 3-way table.
        let mut s = OracleSuite::new(layered_cfg());
        feed(
            &mut s,
            &[Record::LayerThrottle {
                cpu: 0,
                layer: 3,
                now_ns: 1_000,
            }],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "layer");
        // The default table's single layer is exempt: it can never
        // legitimately throttle either.
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[Record::LayerThrottle {
                cpu: 0,
                layer: 0,
                now_ns: 1_000,
            }],
        );
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].oracle, "layer");
    }

    #[test]
    fn team_admit_is_context_only() {
        let mut s = OracleSuite::new(cfg());
        feed(
            &mut s,
            &[Record::TeamAdmit {
                cpu: 0,
                group: 3,
                members: 4,
                accepted: true,
            }],
        );
        s.assert_clean();
        assert_eq!(s.stats().records, 1);
    }
}
