//! Interrupt steering and segregation (§3.5).
//!
//! External interrupts can be steered to any CPU, so the CPUs are
//! partitioned into an **interrupt-laden** partition (receives device
//! interrupts; the first CPU by default) and an **interrupt-free**
//! partition (sees only scheduling interrupts). On top of the partition,
//! the local scheduler sets the APIC processor priority when switching to
//! a hard real-time thread so that only scheduling vectors (timer, kick)
//! get through — steering interrupts *away* from RT threads even inside
//! the laden partition.
//!
//! With a tree [`Topology`](nautix_hw::Topology) the partition itself is
//! split along LLC boundaries: laden CPUs are grouped by LLC domain, new
//! IRQs hash to a group and round-robin within it, and
//! [`Steering::nearest_laden`] lets callers pin an IRQ to the laden CPU
//! closest to its consumer — so device interrupts land near the threads
//! that service them instead of ping-ponging lines across packages. Under
//! a flat topology all laden CPUs form one group and the policy reduces
//! exactly to the original global round-robin.

use nautix_hw::{CpuId, TopoMap};
use std::collections::HashMap;

/// Processor priority that admits only the scheduling vectors (priority
/// class 14) — what the scheduler programs when dispatching an RT thread.
pub const TPR_HARD_RT: u8 = 13;
/// Processor priority that admits everything.
pub const TPR_OPEN: u8 = 0;

/// The interrupt-routing policy for a node.
#[derive(Debug, Clone)]
pub struct Steering {
    laden: Vec<CpuId>,
    topo: Option<TopoMap>,
    /// Laden CPUs grouped by LLC domain, groups in first-appearance order
    /// of their members in `laden`. Without topology (or under flat) this
    /// is a single group equal to `laden`.
    groups: Vec<Vec<CpuId>>,
    /// One round-robin cursor per group.
    rr_next: Vec<usize>,
    assignments: HashMap<u8, CpuId>,
}

impl Steering {
    /// The default configuration: CPU 0 alone takes external interrupts.
    pub fn default_partition() -> Self {
        Self::new(vec![0])
    }

    /// A custom interrupt-laden partition ("can be changed according to
    /// how interrupt rich the workload is"), topology-blind: one group,
    /// global round-robin.
    pub fn new(laden: Vec<CpuId>) -> Self {
        assert!(!laden.is_empty(), "someone must take device interrupts");
        let mut s = Steering {
            laden,
            topo: None,
            groups: Vec::new(),
            rr_next: Vec::new(),
            assignments: HashMap::new(),
        };
        s.rebuild_groups();
        s
    }

    /// A laden partition split along `topo`'s LLC boundaries. A flat map
    /// produces one group — identical routing to [`Steering::new`].
    pub fn with_topology(laden: Vec<CpuId>, topo: TopoMap) -> Self {
        assert!(!laden.is_empty(), "someone must take device interrupts");
        let mut s = Steering {
            laden,
            topo: Some(topo),
            groups: Vec::new(),
            rr_next: Vec::new(),
            assignments: HashMap::new(),
        };
        s.rebuild_groups();
        s
    }

    /// Regroup `laden` by LLC (first-appearance order), preserving the
    /// per-irq assignments but restarting the round-robin cursors.
    fn rebuild_groups(&mut self) {
        self.groups.clear();
        match self.topo {
            Some(topo) if !topo.shape().is_flat() => {
                let mut llc_of_group: Vec<usize> = Vec::new();
                for &cpu in &self.laden {
                    let llc = topo.llc_of(cpu);
                    match llc_of_group.iter().position(|&l| l == llc) {
                        Some(g) => self.groups[g].push(cpu),
                        None => {
                            llc_of_group.push(llc);
                            self.groups.push(vec![cpu]);
                        }
                    }
                }
            }
            _ => self.groups.push(self.laden.clone()),
        }
        self.rr_next = vec![0; self.groups.len()];
    }

    /// The interrupt-laden partition.
    pub fn laden(&self) -> &[CpuId] {
        &self.laden
    }

    /// The LLC-aligned laden groups (one group when flat/topology-blind).
    pub fn groups(&self) -> &[Vec<CpuId>] {
        &self.groups
    }

    /// Whether `cpu` is in the interrupt-free partition.
    pub fn is_interrupt_free(&self, cpu: CpuId) -> bool {
        !self.laden.contains(&cpu)
    }

    /// The CPU that services `irq`: sticky per-irq assignment. A new IRQ
    /// hashes to an LLC-aligned group (spreading lines across domains)
    /// and round-robins within it; with one group this is the original
    /// global round-robin.
    pub fn cpu_for_irq(&mut self, irq: u8) -> CpuId {
        if let Some(&c) = self.assignments.get(&irq) {
            return c;
        }
        let g = irq as usize % self.groups.len();
        let group = &self.groups[g];
        let c = group[self.rr_next[g] % group.len()];
        self.rr_next[g] += 1;
        self.assignments.insert(irq, c);
        c
    }

    /// The laden CPU topologically closest to `consumer` (ties broken by
    /// lowest CPU id). Topology-blind steering treats every laden CPU as
    /// equidistant, so this is the first laden CPU by id.
    pub fn nearest_laden(&self, consumer: CpuId) -> CpuId {
        match self.topo {
            Some(topo) => *self
                .laden
                .iter()
                .min_by_key(|&&c| (topo.distance(consumer, c), c))
                .unwrap(),
            None => *self.laden.iter().min().unwrap(),
        }
    }

    /// Pin `irq` to a specific CPU.
    pub fn steer(&mut self, irq: u8, cpu: CpuId) {
        if !self.laden.contains(&cpu) {
            self.laden.push(cpu);
            self.rebuild_groups();
        }
        self.assignments.insert(irq, cpu);
    }

    /// Pin `irq` to the laden CPU nearest its consumer and return it.
    pub fn steer_near(&mut self, irq: u8, consumer: CpuId) -> CpuId {
        let cpu = self.nearest_laden(consumer);
        self.assignments.insert(irq, cpu);
        cpu
    }

    /// The TPR the scheduler should program when dispatching a thread:
    /// hard real-time threads see only scheduling interrupts.
    pub fn tpr_for(&self, is_hard_rt: bool) -> u8 {
        if is_hard_rt {
            TPR_HARD_RT
        } else {
            TPR_OPEN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_hw::Topology;

    #[test]
    fn default_partition_is_cpu0() {
        let mut s = Steering::default_partition();
        assert_eq!(s.laden(), &[0]);
        assert!(!s.is_interrupt_free(0));
        assert!(s.is_interrupt_free(1));
        assert_eq!(s.cpu_for_irq(3), 0);
    }

    #[test]
    fn irq_assignment_is_sticky() {
        let mut s = Steering::new(vec![0, 1]);
        let first = s.cpu_for_irq(7);
        for _ in 0..5 {
            assert_eq!(s.cpu_for_irq(7), first);
        }
    }

    #[test]
    fn round_robin_spreads_new_irqs() {
        let mut s = Steering::new(vec![0, 1]);
        let a = s.cpu_for_irq(1);
        let b = s.cpu_for_irq(2);
        assert_ne!(a, b);
    }

    #[test]
    fn steer_pins_and_extends_partition() {
        let mut s = Steering::default_partition();
        s.steer(9, 5);
        assert_eq!(s.cpu_for_irq(9), 5);
        assert!(!s.is_interrupt_free(5));
    }

    #[test]
    fn tpr_policy() {
        let s = Steering::default_partition();
        assert_eq!(s.tpr_for(true), TPR_HARD_RT);
        assert_eq!(s.tpr_for(false), TPR_OPEN);
    }

    #[test]
    fn flat_topology_routes_like_topology_blind() {
        // The byte-identity contract for the default config: a flat
        // TopoMap must produce the same group structure and the same
        // irq → cpu sequence as the original global round-robin.
        let topo = TopoMap::new(Topology::flat(), 16);
        let mut blind = Steering::new(vec![0, 3, 5]);
        let mut flat = Steering::with_topology(vec![0, 3, 5], topo);
        assert_eq!(blind.groups(), flat.groups());
        for irq in 0..32u8 {
            assert_eq!(blind.cpu_for_irq(irq), flat.cpu_for_irq(irq));
        }
    }

    #[test]
    fn tree_topology_groups_laden_by_llc() {
        // 16 CPUs over 2x2: LLCs are [0..4), [4..8), [8..12), [12..16).
        let topo = TopoMap::new(Topology::tree(2, 2), 16);
        let mut s = Steering::with_topology(vec![0, 1, 4, 12], topo);
        assert_eq!(s.groups(), &[vec![0, 1], vec![4], vec![12]]);
        // New IRQs hash across groups, round-robin within one.
        assert_eq!(s.cpu_for_irq(0), 0); // 0 % 3 == 0: group 0, first
        assert_eq!(s.cpu_for_irq(3), 1); // 3 % 3 == 0: group 0, second
        assert_eq!(s.cpu_for_irq(6), 0); // group 0 wraps
        assert_eq!(s.cpu_for_irq(1), 4); // group 1
        assert_eq!(s.cpu_for_irq(2), 12); // group 2
    }

    #[test]
    fn nearest_laden_prefers_same_llc_then_package() {
        let topo = TopoMap::new(Topology::tree(2, 2), 16);
        let s = Steering::with_topology(vec![0, 6, 13], topo);
        assert_eq!(s.nearest_laden(1), 0); // same LLC as 0
        assert_eq!(s.nearest_laden(5), 6); // same LLC as 6
        assert_eq!(s.nearest_laden(2), 0); // own LLC wins
        assert_eq!(s.nearest_laden(15), 13); // cross-package avoided
                                             // Consumer in LLC [8..12): no laden CPU there; 13 shares the
                                             // package, 0 and 6 do not.
        assert_eq!(s.nearest_laden(9), 13);
    }

    #[test]
    fn steer_near_pins_to_nearest() {
        let topo = TopoMap::new(Topology::tree(2, 2), 16);
        let mut s = Steering::with_topology(vec![0, 13], topo);
        assert_eq!(s.steer_near(7, 14), 13);
        assert_eq!(s.cpu_for_irq(7), 13); // sticky afterwards
    }
}
