//! Run-time constraint changes: "If the scheduler accepts these
//! constraints, it guarantees that they will be met until the thread
//! decides to change them, at which point the thread must repeat the
//! admission control process" (§3.1). A gang can therefore be re-throttled
//! *while running* by a second pass of group admission control — the
//! administrative control story of §1 and §6.3, live.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall, SysResult};
use nautix_rt::{AdmissionPolicy, Node, NodeConfig, SchedConfig};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn individual_thread_rethrottles_itself() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(61);
    cfg.sched = SchedConfig::throughput();
    let mut node = Node::new(cfg);
    // Progress counters in each regime.
    let progress = Rc::new(RefCell::new((0u64, 0u64)));
    let p2 = progress.clone();
    let prog = FnProgram::new(move |cx, n| {
        match n {
            0 => Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(
                    1_000_000, 800_000, // 80%
                )
                .build(),
            )),
            1..=60 => {
                assert_ne!(
                    cx.result,
                    SysResult::Admission(Err(nautix_rt::AdmissionError::UtilizationExceeded))
                );
                p2.borrow_mut().0 += 1;
                Action::Compute(260_000) // 200 µs of work per resume
            }
            61 => Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(
                    1_000_000, 200_000, // re-admit at 20%
                )
                .build(),
            )),
            62..=121 => {
                p2.borrow_mut().1 += 1;
                Action::Compute(260_000)
            }
            _ => Action::Exit,
        }
    });
    let tid = node.spawn_on(1, "throttle-me", Box::new(prog)).unwrap();
    // Timestamps: measure wall time of each 60-resume phase.
    node.run_until_quiescent();
    let st = node.thread_state(tid);
    assert_eq!(st.stats.missed, 0);
    // Both phases did identical work (60 x 200 µs); the 20% phase must
    // have taken ~4x the wall time of the 80% phase. We can't read wall
    // times per phase directly here, but the dispatch counters confirm
    // both phases ran to completion under their respective constraints.
    let (a, b) = *progress.borrow();
    assert_eq!((a, b), (60, 60));
    assert_eq!(
        st.constraints,
        Constraints::periodic(1_000_000, 200_000).build()
    );
}

/// A widen → re-admit → widen → (rejected) → demote churn under the
/// hyperperiod-simulation policy, with exact memo and rollback counter
/// assertions — fresh node first, then the same program again on the
/// *reset* (pooled) node, where the persistent memo serves every verdict.
#[test]
fn widening_churn_hits_the_sim_memo_and_rolls_back() {
    let mk_cfg = || {
        let mut cfg = NodeConfig::phi();
        cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(63);
        cfg.sched = SchedConfig {
            policy: AdmissionPolicy::HyperperiodSim {
                overhead_ns: 1_000,
                window_cap_ns: 20_000_000,
            },
            ..SchedConfig::throughput()
        };
        cfg
    };
    let tight = Constraints::periodic(1_000_000, 300_000).build();
    let wide = Constraints::periodic(1_250_000, 300_000).build(); // +25%
    let hog = Constraints::periodic(1_000_000, 990_100).build(); // past 99%
    let mk_prog = move || {
        FnProgram::new(move |cx, n| match n {
            0 => Action::Call(SysCall::ChangeConstraints(tight)),
            1 => {
                assert_eq!(cx.result, SysResult::Admission(Ok(())));
                Action::Call(SysCall::ChangeConstraints(wide))
            }
            2 => {
                assert_eq!(cx.result, SysResult::Admission(Ok(())));
                Action::Call(SysCall::ChangeConstraints(tight)) // re-admit
            }
            3 => {
                assert_eq!(cx.result, SysResult::Admission(Ok(())));
                Action::Call(SysCall::ChangeConstraints(wide)) // widen again
            }
            4 => {
                assert_eq!(cx.result, SysResult::Admission(Ok(())));
                // An over-budget request: rejected, rolled back to `wide`.
                Action::Call(SysCall::ChangeConstraints(hog))
            }
            5 => {
                assert_eq!(
                    cx.result,
                    SysResult::Admission(Err(nautix_rt::AdmissionError::UtilizationExceeded))
                );
                // Demote back to best-effort, releasing the reservation.
                Action::Call(SysCall::ChangeConstraints(Constraints::default_aperiodic()))
            }
            _ => Action::Exit,
        })
    };

    let mut node = Node::new(mk_cfg());
    node.spawn_on(1, "churn", Box::new(mk_prog())).unwrap();
    node.run_until_quiescent();
    let a = node.admission_stats();
    // {tight} and {wide} each simulate once; the re-admissions are memo
    // hits; the over-budget request dies at the utilization gate (no
    // simulation) and rolls back — and the rollback's own re-admission of
    // `wide` is itself a memo hit.
    assert_eq!(a.sim_misses, 2, "two distinct canonical sets");
    assert_eq!(a.sim_hits, 3, "re-admissions and rollback hit the memo");
    assert_eq!(a.rollbacks, 1, "one rejected change rolled back");
    assert_eq!(node.sim_cache_len(), 2);

    // Pooled rerun: reset clears the per-CPU counters but the memo
    // survives, so the identical trial simulates nothing at all.
    node.reset(mk_cfg());
    node.spawn_on(1, "churn", Box::new(mk_prog())).unwrap();
    node.run_until_quiescent();
    let b = node.admission_stats();
    assert_eq!(b.sim_misses, 0, "warm memo: nothing left to simulate");
    assert_eq!(b.sim_hits, 5, "every verdict served from the memo");
    assert_eq!(b.rollbacks, 1);
    assert_eq!(node.sim_cache_len(), 2);
}

#[test]
fn gang_readmission_rethrottles_the_whole_group() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(5).with_seed(62);
    cfg.sched = SchedConfig::throughput();
    let mut node = Node::new(cfg);
    let gid = node.create_group("rethrottle");
    let phase_times: Rc<RefCell<Vec<(u64, u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    let iters_per_phase = 30u64;
    let mut tids = Vec::new();
    for i in 0..4usize {
        let pt = phase_times.clone();
        let mut t_admit = 0u64;
        let mut t_mid = 0u64;
        let prog = FnProgram::new(move |cx, n| {
            let work_end_1 = 2 + iters_per_phase;
            let readmit_at = work_end_1 + 1;
            let work_end_2 = readmit_at + 1 + iters_per_phase;
            match n {
                0 => Action::Call(SysCall::GroupJoin(gid)),
                1 => Action::Call(SysCall::SleepNs(1_000_000)),
                2 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::periodic(500_000, 400_000).build(), // 80%
                }),
                3 => {
                    assert_eq!(cx.result, SysResult::Admission(Ok(())));
                    t_admit = cx.now_ns;
                    Action::Compute(130_000) // 100 µs per iteration
                }
                n if n < work_end_1 => Action::Compute(130_000),
                n if n == readmit_at => {
                    t_mid = cx.now_ns;
                    // The whole gang re-enters group admission at 20%.
                    Action::Call(SysCall::GroupChangeConstraints {
                        group: gid,
                        constraints: Constraints::periodic(500_000, 100_000).build(),
                    })
                }
                n if n == readmit_at + 1 => {
                    assert_eq!(cx.result, SysResult::Admission(Ok(())));
                    Action::Compute(130_000)
                }
                n if n < work_end_2 => Action::Compute(130_000),
                _ => {
                    pt.borrow_mut().push((t_admit, t_mid, cx.now_ns));
                    Action::Exit
                }
            }
        });
        tids.push(
            node.spawn_on(i + 1, &format!("g{i}"), Box::new(prog))
                .unwrap(),
        );
    }
    node.run_until_quiescent();
    let pts = phase_times.borrow();
    assert_eq!(pts.len(), 4, "all members must finish both phases");
    for &(t0, t1, t2) in pts.iter() {
        let fast = t1 - t0; // 30 iterations at 80%
        let slow = t2 - t1; // 30 iterations at 20%
        let ratio = slow as f64 / fast as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "re-throttling 80% -> 20% should slow ~4x (got {ratio}; fast {fast} slow {slow})"
        );
    }
    // No member missed a deadline in either regime.
    for &t in &tids {
        assert_eq!(node.thread_state(t).stats.missed, 0);
    }
}
