//! Deterministic fault injection beyond SMIs.
//!
//! §5 attributes the residual misses on admitted sets to environmental
//! interference the admission model cannot see — SMIs and coarse timer
//! quantization. Real platforms have more interference lanes than those
//! two: IPIs get lost or delayed by chipset arbitration, one-shot timers
//! overshoot their programmed deadline, DVFS transitions dip a core's
//! effective frequency, devices raise spurious interrupts, and firmware
//! or memory-controller hiccups stall a single CPU. A [`FaultPlan`]
//! composes all of these as independently configurable lanes, each drawn
//! from the machine's own [`DetRng`] stream so a fault-laden run is
//! byte-identical across host thread counts and across pooled/fresh
//! node construction — the same determinism contract [`crate::SmiConfig`]
//! already upholds.
//!
//! # Determinism discipline
//!
//! A disabled lane draws **nothing** and schedules **nothing**: the
//! all-disabled plan (the default) leaves the machine's RNG draw sequence
//! and event stream untouched, so the paper-scale reproduction keeps its
//! exact event count. Enabled lanes draw in a fixed order at fixed points
//! (construction, each kick send, each timer arm, each recurring fault
//! event), which `Machine::reset` replays exactly.

use crate::cost::Cost;
use nautix_des::{Cycles, DetRng};

/// Arrival pattern for a recurring fault lane (mirrors
/// [`crate::SmiPattern`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPattern {
    /// The lane never fires (draws nothing).
    Disabled,
    /// Fixed-interval arrivals.
    Periodic {
        /// Cycles between arrivals.
        interval: Cycles,
    },
    /// Memoryless arrivals with the given mean inter-arrival time.
    Poisson {
        /// Mean cycles between arrivals.
        mean_interval: Cycles,
    },
}

impl FaultPattern {
    /// Whether the lane will ever fire.
    pub fn enabled(&self) -> bool {
        !matches!(self, FaultPattern::Disabled)
    }

    /// Draw the next inter-arrival gap, if enabled.
    pub fn next_gap(&self, rng: &mut DetRng) -> Option<Cycles> {
        match *self {
            FaultPattern::Disabled => None,
            FaultPattern::Periodic { interval } => Some(interval.max(1)),
            FaultPattern::Poisson { mean_interval } => Some(rng.exponential(mean_interval as f64)),
        }
    }
}

/// Composed fault lanes, carried by `MachineConfig`. The default
/// ([`FaultPlan::disabled`]) is inert: no draws, no events, no behavior
/// change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability (parts per million, per send) that a kick IPI is
    /// silently lost in the interconnect.
    pub kick_drop_ppm: u32,
    /// Probability (ppm, per send) that a kick IPI is delayed beyond the
    /// modeled latency.
    pub kick_delay_ppm: u32,
    /// Extra delivery latency of a delayed kick.
    pub kick_delay_extra: Cost,
    /// Probability (ppm, per programming) that the one-shot timer fires
    /// late, past its quantized deadline. The overshoot is invisible to
    /// software: the programming call still reports the quantized delay.
    pub timer_overshoot_ppm: u32,
    /// Extra firing latency of an overshooting one-shot.
    pub timer_overshoot_extra: Cost,
    /// Recurring transient frequency dips (DVFS-style), each hitting one
    /// uniformly drawn CPU.
    pub freq_dip: FaultPattern,
    /// Wall-clock length of one dip window.
    pub freq_dip_duration: Cost,
    /// Percent of throughput lost during a dip (50 = the core runs at
    /// half speed, so half the window's cycles are lost).
    pub freq_dip_loss_pct: u32,
    /// Recurring spurious device interrupts on a uniformly drawn CPU.
    pub spurious_irq: FaultPattern,
    /// Device IRQ line (0..=0x3F) the spurious interrupts arrive on.
    pub spurious_irq_line: u8,
    /// Recurring bounded stalls of one uniformly drawn CPU (firmware or
    /// memory-controller hiccups; unlike an SMI, other CPUs keep running).
    pub cpu_stall: FaultPattern,
    /// Stall length.
    pub cpu_stall_duration: Cost,
}

impl FaultPlan {
    /// Every lane off. Draws nothing, schedules nothing.
    pub fn disabled() -> Self {
        FaultPlan {
            kick_drop_ppm: 0,
            kick_delay_ppm: 0,
            kick_delay_extra: Cost::fixed(0),
            timer_overshoot_ppm: 0,
            timer_overshoot_extra: Cost::fixed(0),
            freq_dip: FaultPattern::Disabled,
            freq_dip_duration: Cost::fixed(0),
            freq_dip_loss_pct: 0,
            spurious_irq: FaultPattern::Disabled,
            spurious_irq_line: 5,
            cpu_stall: FaultPattern::Disabled,
            cpu_stall_duration: Cost::fixed(0),
        }
    }

    /// A representative noisy-platform preset with every lane on, scaled
    /// by `intensity` (0.0 disables everything; 1.0 is a decidedly hostile
    /// environment: percent-scale kick loss, tens-of-µs overshoots and
    /// stalls, millisecond-mean recurring faults).
    pub fn noisy(freq: nautix_des::Freq, intensity: f64) -> Self {
        if intensity <= 0.0 {
            return FaultPlan::disabled();
        }
        let ppm = |base: f64| ((base * intensity) as u32).min(1_000_000);
        let mean = |base_us: u64| {
            let m = (base_us as f64 / intensity).max(1.0);
            FaultPattern::Poisson {
                mean_interval: freq.us_to_cycles(m as u64),
            }
        };
        let us = |n: u64| freq.us_to_cycles(n);
        FaultPlan {
            kick_drop_ppm: ppm(10_000.0),
            kick_delay_ppm: ppm(40_000.0),
            kick_delay_extra: Cost::new(us(5), us(5) / 2),
            timer_overshoot_ppm: ppm(40_000.0),
            timer_overshoot_extra: Cost::new(us(10), us(10) / 2),
            freq_dip: mean(3_000),
            freq_dip_duration: Cost::new(us(100), us(25)),
            freq_dip_loss_pct: 50,
            spurious_irq: mean(1_000),
            spurious_irq_line: 5,
            cpu_stall: mean(5_000),
            cpu_stall_duration: Cost::new(us(50), us(12)),
        }
    }

    /// Whether any lane is live. Gates the oracle layer's
    /// admission-guarantee predicate, like `SmiConfig::enabled`.
    pub fn enabled(&self) -> bool {
        self.kick_drop_ppm > 0
            || self.kick_delay_ppm > 0
            || self.timer_overshoot_ppm > 0
            || self.freq_dip.enabled()
            || self.spurious_irq.enabled()
            || self.cpu_stall.enabled()
    }

    /// One Bernoulli draw for a ppm-rated lane. Draws **only** when the
    /// lane is live, preserving the disabled-plan RNG stream.
    pub fn chance(ppm: u32, rng: &mut DetRng) -> bool {
        ppm > 0 && rng.uniform(0, 999_999) < ppm as u64
    }
}

/// Running ground-truth totals about injected faults, mirrored after
/// [`crate::SmiStats`]; experiments report these next to miss rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Kick IPIs silently dropped.
    pub kicks_dropped: u64,
    /// Kick IPIs delivered late.
    pub kicks_delayed: u64,
    /// Total extra kick latency injected.
    pub kick_delay_cycles: Cycles,
    /// One-shot programmings that overshot.
    pub timer_overshoots: u64,
    /// Total overshoot injected.
    pub timer_overshoot_cycles: Cycles,
    /// Frequency dips entered.
    pub freq_dips: u64,
    /// Total compute cycles lost to dips.
    pub freq_dip_lost_cycles: Cycles,
    /// Spurious device interrupts raised.
    pub spurious_irqs: u64,
    /// Single-CPU stalls entered.
    pub cpu_stalls: u64,
    /// Total cycles single CPUs spent stalled.
    pub cpu_stall_cycles: Cycles,
}

impl FaultStats {
    /// Total injections across every lane.
    pub fn total(&self) -> u64 {
        self.kicks_dropped
            + self.kicks_delayed
            + self.timer_overshoots
            + self.freq_dips
            + self.spurious_irqs
            + self.cpu_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_des::Freq;

    #[test]
    fn disabled_plan_is_inert() {
        let p = FaultPlan::disabled();
        assert!(!p.enabled());
        let mut rng = DetRng::seed_from(3);
        assert_eq!(p.freq_dip.next_gap(&mut rng), None);
        assert_eq!(p.spurious_irq.next_gap(&mut rng), None);
        assert_eq!(p.cpu_stall.next_gap(&mut rng), None);
        // A zero-ppm chance draws nothing: the stream is untouched.
        let before = rng.uniform(0, u64::MAX - 1);
        let mut rng2 = DetRng::seed_from(3);
        assert!(!FaultPlan::chance(0, &mut rng2));
        assert_eq!(rng2.uniform(0, u64::MAX - 1), before);
    }

    #[test]
    fn noisy_preset_scales_with_intensity() {
        let lo = FaultPlan::noisy(Freq::phi(), 0.25);
        let hi = FaultPlan::noisy(Freq::phi(), 1.0);
        assert!(lo.enabled() && hi.enabled());
        assert!(lo.kick_drop_ppm < hi.kick_drop_ppm);
        let gap = |p: &FaultPlan| match p.freq_dip {
            FaultPattern::Poisson { mean_interval } => mean_interval,
            _ => unreachable!(),
        };
        assert!(gap(&lo) > gap(&hi), "lower intensity means rarer dips");
        assert_eq!(FaultPlan::noisy(Freq::phi(), 0.0), FaultPlan::disabled());
    }

    #[test]
    fn chance_respects_rate_roughly() {
        let mut rng = DetRng::seed_from(11);
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| FaultPlan::chance(100_000, &mut rng))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn periodic_pattern_gap_is_constant() {
        let p = FaultPattern::Periodic { interval: 4_000 };
        let mut rng = DetRng::seed_from(1);
        assert_eq!(p.next_gap(&mut rng), Some(4_000));
        assert_eq!(p.next_gap(&mut rng), Some(4_000));
    }
}
