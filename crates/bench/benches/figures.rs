//! Scaled-down end-to-end runs of each figure experiment under Criterion,
//! so `cargo bench` exercises every reproduction path and tracks its
//! simulation throughput. The full-scale series come from the `fig*`
//! binaries (see `repro_all`).

use criterion::{criterion_group, criterion_main, Criterion};
use nautix_bench::throttle::Granularity;
use nautix_bench::{
    barrier_removal, fig03, fig04, fig05, fig10, groupsync, missrate, throttle, Scale,
};
use nautix_hw::Platform;
use std::hint::black_box;

fn bench_fig03(c: &mut Criterion) {
    c.bench_function("fig03_timesync_64cpus", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig03::run(Scale::Quick, seed))
        })
    });
}

fn bench_fig04(c: &mut Criterion) {
    c.bench_function("fig04_scope_200_periods", |b| {
        b.iter(|| black_box(fig04::run(Scale::Quick, 3)))
    });
}

fn bench_fig05(c: &mut Criterion) {
    c.bench_function("fig05_overheads_quick", |b| {
        b.iter(|| black_box(fig05::run(Scale::Quick, 17)))
    });
}

fn bench_missrate_point(c: &mut Criterion) {
    c.bench_function("fig06_missrate_point_100us", |b| {
        b.iter(|| {
            black_box(missrate::measure_point(
                Platform::Phi,
                100_000,
                50_000,
                60,
                5,
            ))
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_group_admission_n8", |b| {
        b.iter(|| black_box(fig10::measure(8, 9)))
    });
}

fn bench_groupsync(c: &mut Criterion) {
    c.bench_function("fig11_group_sync_n8_100inv", |b| {
        b.iter(|| black_box(groupsync::measure(8, 100, false, 21)))
    });
}

fn bench_throttle_point(c: &mut Criterion) {
    c.bench_function("fig13_throttle_point_p4", |b| {
        b.iter(|| {
            black_box(throttle::measure(
                Granularity::Coarse,
                4,
                1_000_000,
                500_000,
                Scale::Quick,
                3,
            ))
        })
    });
}

fn bench_barrier_removal_point(c: &mut Criterion) {
    c.bench_function("fig16_barrier_removal_point_p4", |b| {
        b.iter(|| {
            black_box(barrier_removal::measure(
                Granularity::Fine,
                4,
                500_000,
                400_000,
                Scale::Quick,
                7,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig03, bench_fig04, bench_fig05, bench_missrate_point,
              bench_fig10, bench_groupsync, bench_throttle_point,
              bench_barrier_removal_point
}
criterion_main!(benches);
