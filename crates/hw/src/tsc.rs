//! Per-CPU time stamp counter (TSC) model.
//!
//! The paper's requirements (§3.3–3.4): constant-rate cycle counters
//! ("constant TSC"), per-CPU *phase differences* introduced by staggered
//! boot, optional support for *writing* the counter to bring phases
//! together, and firmware that never stops or manipulates the counter. SMIs
//! do not stop the TSC — that is precisely why they appear as "missing
//! time" to software.
//!
//! The model keeps a signed offset from the machine's true time; reads are
//! exact (measurement noise is charged where measurements happen, in the
//! calibration code), and writes land with the granularity slop of the
//! write instruction sequence, modeled at the call site.

use nautix_des::Cycles;

/// One hardware thread's TSC.
#[derive(Debug, Clone)]
pub struct Tsc {
    /// `tsc_value - true_time`. Positive means this CPU's counter runs
    /// ahead of machine time.
    offset: i64,
    /// Whether the platform supports writing the TSC (§3.4: "In machines
    /// that support it, we write the cycle counter with predicted values").
    writable: bool,
    writes: u64,
}

impl Tsc {
    /// A TSC with the given boot-time phase offset.
    pub fn new(offset: i64, writable: bool) -> Self {
        Tsc {
            offset,
            writable,
            writes: 0,
        }
    }

    /// `rdtsc`: the counter value at machine time `now`.
    pub fn read(&self, now: Cycles) -> Cycles {
        let v = now as i64 + self.offset;
        debug_assert!(v >= 0, "TSC underflow: now={now} offset={}", self.offset);
        v as u64
    }

    /// Attempt to write the counter so it reads `value` at machine time
    /// `now`. Returns false (and does nothing) on platforms without TSC
    /// write support.
    pub fn write(&mut self, now: Cycles, value: Cycles) -> bool {
        if !self.writable {
            return false;
        }
        self.offset = value as i64 - now as i64;
        self.writes += 1;
        true
    }

    /// Adjust the counter by a signed delta (the common calibration
    /// operation: subtract the estimated phase). Returns false if the
    /// platform cannot write the TSC.
    pub fn adjust(&mut self, delta: i64) -> bool {
        if !self.writable {
            return false;
        }
        self.offset += delta;
        self.writes += 1;
        true
    }

    /// The true phase offset relative to machine time. The calibration code
    /// must *not* use this — it exists so experiments can report residual
    /// error against ground truth (Figure 3).
    pub fn true_offset(&self) -> i64 {
        self.offset
    }

    /// Whether this TSC supports writes.
    pub fn writable(&self) -> bool {
        self.writable
    }

    /// Number of writes/adjustments performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_applies_offset() {
        let t = Tsc::new(1000, true);
        assert_eq!(t.read(0), 1000);
        assert_eq!(t.read(500), 1500);
    }

    #[test]
    fn write_rebases_offset() {
        let mut t = Tsc::new(12345, true);
        assert!(t.write(1000, 1000));
        assert_eq!(t.true_offset(), 0);
        assert_eq!(t.read(2000), 2000);
        assert_eq!(t.writes(), 1);
    }

    #[test]
    fn adjust_shifts_phase() {
        let mut t = Tsc::new(700, true);
        assert!(t.adjust(-700));
        assert_eq!(t.true_offset(), 0);
        assert!(t.adjust(25));
        assert_eq!(t.read(100), 125);
    }

    #[test]
    fn unwritable_tsc_rejects_writes() {
        let mut t = Tsc::new(42, false);
        assert!(!t.write(0, 0));
        assert!(!t.adjust(-42));
        assert_eq!(t.true_offset(), 42);
        assert_eq!(t.writes(), 0);
    }

    #[test]
    fn negative_offsets_work() {
        let t = Tsc::new(-300, true);
        assert_eq!(t.read(1000), 700);
    }
}
