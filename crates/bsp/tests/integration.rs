//! BSP integration: co-resident instances, disjoint CPU placement, and
//! granularity scaling.

use nautix_bsp::{collect_bsp, run_bsp, spawn_bsp, BspMode, BspParams};
use nautix_hw::MachineConfig;
use nautix_rt::{Node, NodeConfig, SchedConfig};

fn cfg(cpus: usize, seed: u64) -> NodeConfig {
    let mut c = NodeConfig::phi();
    c.machine = MachineConfig::phi().with_cpus(cpus).with_seed(seed);
    c.sched = SchedConfig::throughput();
    c
}

#[test]
fn two_instances_on_disjoint_cpu_ranges() {
    // Gang A on CPUs 1..=4, gang B on CPUs 5..=8: both run concurrently
    // and correctly, each with its own group and halo state.
    let mut node = Node::new(cfg(9, 21));
    let p = BspParams::fine(4, 25).with_mode(BspMode::RtGroup {
        period: 1_000_000,
        slice: 700_000,
    });
    let a = spawn_bsp(&mut node, p, 1);
    let b = spawn_bsp(&mut node, p, 5);
    node.run_until_quiescent();
    let ra = collect_bsp(&node, &a);
    let rb = collect_bsp(&node, &b);
    assert!(ra.admitted && rb.admitted);
    assert_eq!(ra.violations(), 0);
    assert_eq!(rb.violations(), 0);
    assert!(ra.max_ns > 0 && rb.max_ns > 0);
    // Disjoint CPUs at identical constraints: near-identical times.
    let ratio = ra.max_ns as f64 / rb.max_ns as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "disjoint gangs should match ({ratio})"
    );
}

#[test]
fn more_iterations_take_proportionally_longer() {
    let base = BspParams::fine(4, 20);
    let short = run_bsp(cfg(5, 22), base);
    let long = run_bsp(cfg(5, 22), BspParams::fine(4, 60));
    let ratio = long.max_ns as f64 / short.max_ns as f64;
    assert!(
        (2.3..3.8).contains(&ratio),
        "3x the iterations should take ~3x the time ({ratio})"
    );
}

#[test]
fn coarse_iterations_dwarf_fine_ones() {
    let fine = run_bsp(cfg(5, 23), BspParams::fine(4, 10));
    let coarse = run_bsp(cfg(5, 23), BspParams::coarse(4, 10));
    assert!(
        coarse.max_ns > 10 * fine.max_ns,
        "coarse grain ({}) must dominate fine ({})",
        coarse.max_ns,
        fine.max_ns
    );
}

#[test]
fn spawn_bsp_rejects_out_of_range_placement() {
    let mut node = Node::new(cfg(4, 24));
    let p = BspParams::fine(4, 5);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        spawn_bsp(&mut node, p, 1) // needs CPUs 1..=4, machine has 0..=3
    }));
    assert!(result.is_err(), "placement beyond the machine must panic");
}
