//! Figure-by-figure reproduction harnesses for the HPDC'18 evaluation.
//!
//! Every figure in §5–§6 has a module here exposing its experiment as a
//! library function (so tests and Criterion benches can run it at reduced
//! scale) and a binary in `src/bin/` that prints the series and writes a
//! CSV under `results/` (override with `NAUTIX_RESULTS`). Pass `--paper`
//! to a binary for the paper-scale configuration; the default is a quick
//! configuration that finishes in seconds.
//!
//! | Figure | Module | Binary |
//! |--------|--------|--------|
//! | 3 | [`fig03`] | `fig03_timesync` |
//! | 4 | [`fig04`] | `fig04_scope` |
//! | 5 | [`fig05`] | `fig05_overheads` |
//! | 6, 8 | [`missrate`] | `fig06_missrate_phi`, `fig08_misstime_phi` |
//! | 7, 9 | [`missrate`] | `fig07_missrate_r415`, `fig09_misstime_r415` |
//! | 10 | [`fig10`] | `fig10_group_admission` |
//! | 11, 12 | [`groupsync`] | `fig11_group_sync8`, `fig12_group_sync_scale` |
//! | 13, 14 | [`throttle`] | `fig13_throttle_coarse`, `fig14_throttle_fine` |
//! | 15, 16 | [`barrier_removal`] | `fig15_barrier_coarse`, `fig16_barrier_fine` |
//! | ablations | [`ablations`] | `abl_*` |
//! | isolation (§1 claim) | [`isolation`] | `exp_isolation` |
//!
//! `repro_all` runs everything in sequence.

pub mod ablations;
pub mod admission_bench;
pub mod barrier_removal;
pub mod cluster_bench;
pub mod common;
pub mod fault_sweep;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig10;
pub mod groupsync;
pub mod harness;
pub mod isolation;
pub mod layers;
pub mod missrate;
pub mod scenario;
pub mod throttle;
pub mod topology;

pub use common::{banner, f, out_dir, write_csv, Scale};
pub use harness::{run_trials, set_stats_stream, BenchReport, HarnessStats, TrialSet};
pub use scenario::{Scenario, TrialOutcome, Workload, REPLAY_HEADER, REPLAY_VERSION};
