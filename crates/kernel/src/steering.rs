//! Interrupt steering and segregation (§3.5).
//!
//! External interrupts can be steered to any CPU, so the CPUs are
//! partitioned into an **interrupt-laden** partition (receives device
//! interrupts; the first CPU by default) and an **interrupt-free**
//! partition (sees only scheduling interrupts). On top of the partition,
//! the local scheduler sets the APIC processor priority when switching to
//! a hard real-time thread so that only scheduling vectors (timer, kick)
//! get through — steering interrupts *away* from RT threads even inside
//! the laden partition.

use nautix_hw::CpuId;
use std::collections::HashMap;

/// Processor priority that admits only the scheduling vectors (priority
/// class 14) — what the scheduler programs when dispatching an RT thread.
pub const TPR_HARD_RT: u8 = 13;
/// Processor priority that admits everything.
pub const TPR_OPEN: u8 = 0;

/// The interrupt-routing policy for a node.
#[derive(Debug, Clone)]
pub struct Steering {
    laden: Vec<CpuId>,
    assignments: HashMap<u8, CpuId>,
    rr_next: usize,
}

impl Steering {
    /// The default configuration: CPU 0 alone takes external interrupts.
    pub fn default_partition() -> Self {
        Self::new(vec![0])
    }

    /// A custom interrupt-laden partition ("can be changed according to
    /// how interrupt rich the workload is").
    pub fn new(laden: Vec<CpuId>) -> Self {
        assert!(!laden.is_empty(), "someone must take device interrupts");
        Steering {
            laden,
            assignments: HashMap::new(),
            rr_next: 0,
        }
    }

    /// The interrupt-laden partition.
    pub fn laden(&self) -> &[CpuId] {
        &self.laden
    }

    /// Whether `cpu` is in the interrupt-free partition.
    pub fn is_interrupt_free(&self, cpu: CpuId) -> bool {
        !self.laden.contains(&cpu)
    }

    /// The CPU that services `irq`: sticky per-irq assignment, initially
    /// distributed round-robin over the laden partition.
    pub fn cpu_for_irq(&mut self, irq: u8) -> CpuId {
        if let Some(&c) = self.assignments.get(&irq) {
            return c;
        }
        let c = self.laden[self.rr_next % self.laden.len()];
        self.rr_next += 1;
        self.assignments.insert(irq, c);
        c
    }

    /// Pin `irq` to a specific CPU.
    pub fn steer(&mut self, irq: u8, cpu: CpuId) {
        if !self.laden.contains(&cpu) {
            self.laden.push(cpu);
        }
        self.assignments.insert(irq, cpu);
    }

    /// The TPR the scheduler should program when dispatching a thread:
    /// hard real-time threads see only scheduling interrupts.
    pub fn tpr_for(&self, is_hard_rt: bool) -> u8 {
        if is_hard_rt {
            TPR_HARD_RT
        } else {
            TPR_OPEN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partition_is_cpu0() {
        let mut s = Steering::default_partition();
        assert_eq!(s.laden(), &[0]);
        assert!(!s.is_interrupt_free(0));
        assert!(s.is_interrupt_free(1));
        assert_eq!(s.cpu_for_irq(3), 0);
    }

    #[test]
    fn irq_assignment_is_sticky() {
        let mut s = Steering::new(vec![0, 1]);
        let first = s.cpu_for_irq(7);
        for _ in 0..5 {
            assert_eq!(s.cpu_for_irq(7), first);
        }
    }

    #[test]
    fn round_robin_spreads_new_irqs() {
        let mut s = Steering::new(vec![0, 1]);
        let a = s.cpu_for_irq(1);
        let b = s.cpu_for_irq(2);
        assert_ne!(a, b);
    }

    #[test]
    fn steer_pins_and_extends_partition() {
        let mut s = Steering::default_partition();
        s.steer(9, 5);
        assert_eq!(s.cpu_for_irq(9), 5);
        assert!(!s.is_interrupt_free(5));
    }

    #[test]
    fn tpr_policy() {
        let s = Steering::default_partition();
        assert_eq!(s.tpr_for(true), TPR_HARD_RT);
        assert_eq!(s.tpr_for(false), TPR_OPEN);
    }
}
