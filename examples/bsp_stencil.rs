//! A fine-grain BSP stencil run three ways (§6): non-real-time with
//! barriers, gang-scheduled real-time with barriers, and gang-scheduled
//! real-time with the barriers **removed** — correctness maintained purely
//! by time-synchronized scheduling.
//!
//! ```sh
//! cargo run --release --example bsp_stencil
//! ```

use nautix::bsp::{run_bsp, BspMode, BspParams};
use nautix::prelude::*;
use nautix::rt::SchedConfig;

fn cfg(workers: usize) -> NodeConfig {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(workers + 1).with_seed(11);
    cfg.sched = SchedConfig::throughput();
    cfg
}

fn main() {
    let workers = 16;
    let iters = 80;
    let base = BspParams::fine(workers, iters);
    println!(
        "1-D ring stencil: P={workers}, NE={}, NC={}, NW={}, N={iters}\n",
        base.ne, base.nc, base.nw
    );

    // 1. The non-real-time baseline: aperiodic scheduling, barrier needed.
    let aperiodic = run_bsp(cfg(workers), base.with_barrier(true));
    println!(
        "aperiodic + barrier      : {:>9} ns, violations {}",
        aperiodic.max_ns,
        aperiodic.violations()
    );

    // 2. Gang-scheduled at 90% utilization, still paying for barriers.
    let rt = BspMode::RtGroup {
        period: 500_000,
        slice: 450_000,
    };
    let rt_barrier = run_bsp(cfg(workers), base.with_mode(rt).with_barrier(true));
    println!(
        "rt gang (90%) + barrier  : {:>9} ns, violations {}",
        rt_barrier.max_ns,
        rt_barrier.violations()
    );

    // 3. Same gang, barriers removed: lock-step from scheduling alone.
    let rt_nobarrier = run_bsp(cfg(workers), base.with_mode(rt).with_barrier(false));
    println!(
        "rt gang (90%) no barrier : {:>9} ns, violations {}",
        rt_nobarrier.max_ns,
        rt_nobarrier.violations()
    );

    assert!(rt_nobarrier.admitted && rt_barrier.admitted);
    assert_eq!(
        rt_nobarrier.violations(),
        0,
        "time-synchronized execution must replace the barrier"
    );
    let speedup = rt_barrier.max_ns as f64 / rt_nobarrier.max_ns as f64;
    println!(
        "\nbarrier removal speedup at this granularity: {speedup:.2}x \
         (the finer the grain, the bigger the win — §6.4)"
    );
}
