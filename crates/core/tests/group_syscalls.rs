//! The standalone group-coordination syscalls (§4.2): election,
//! max-reduction, broadcast, barrier, size, and leave — exercised directly
//! by thread programs, outside group admission control.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, FnProgram, GroupId, SysCall, SysResult};
use nautix_rt::{Node, NodeConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn node(cpus: usize) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(cpus).with_seed(101);
    Node::new(cfg)
}

/// Build an n-member group where each member runs `steps` after joining
/// and settling; `steps(i, k, result)` returns the k-th action.
fn run_group<F>(n: usize, horizon_ns: u64, steps: F) -> Node
where
    F: Fn(usize, u64, SysResult) -> Action + 'static + Clone,
{
    let gid = GroupId(0);
    let mut node = node(n + 1);
    for i in 0..n {
        let steps = steps.clone();
        let prog = FnProgram::new(move |cx, raw| {
            let k = if i == 0 { raw } else { raw + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "g" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(1_000_000)),
                k => steps(i, k - 3, cx.result),
            }
        });
        node.spawn_on(i + 1, &format!("m{i}"), Box::new(prog))
            .unwrap();
    }
    node.run_for_ns(horizon_ns);
    node
}

#[test]
fn election_returns_the_same_leader_to_everyone() {
    let results = Rc::new(RefCell::new(Vec::new()));
    let r2 = results.clone();
    let mut node = run_group(4, 20_000_000, move |_i, k, result| match k {
        0 => Action::Call(SysCall::GroupElect(GroupId(0))),
        1 => {
            r2.borrow_mut().push(result);
            Action::Exit
        }
        _ => Action::Exit,
    });
    node.run_until_quiescent();
    let rs = results.borrow();
    assert_eq!(rs.len(), 4);
    let SysResult::Value(leader) = rs[0] else {
        panic!("expected a value, got {:?}", rs[0]);
    };
    assert!(rs.iter().all(|&r| r == SysResult::Value(leader)));
}

#[test]
fn reduce_max_delivers_the_maximum() {
    let results = Rc::new(RefCell::new(Vec::new()));
    let r2 = results.clone();
    let mut node = run_group(5, 20_000_000, move |i, k, result| match k {
        0 => Action::Call(SysCall::GroupReduceMax {
            group: GroupId(0),
            value: (i as u64 + 1) * 7,
        }),
        1 => {
            r2.borrow_mut().push(result);
            Action::Exit
        }
        _ => Action::Exit,
    });
    node.run_until_quiescent();
    let rs = results.borrow();
    assert_eq!(rs.len(), 5);
    assert!(rs.iter().all(|&r| r == SysResult::Value(35)));
}

#[test]
fn broadcast_delivers_the_leaders_value() {
    // The broadcast source is the first member in join order (member 0).
    let results = Rc::new(RefCell::new(Vec::new()));
    let r2 = results.clone();
    let mut node = run_group(4, 20_000_000, move |i, k, result| match k {
        0 => Action::Call(SysCall::GroupBroadcast {
            group: GroupId(0),
            value: 1000 + i as u64,
        }),
        1 => {
            r2.borrow_mut().push(result);
            Action::Exit
        }
        _ => Action::Exit,
    });
    node.run_until_quiescent();
    let rs = results.borrow();
    assert_eq!(rs.len(), 4);
    assert!(
        rs.iter().all(|&r| r == SysResult::Value(1000)),
        "everyone gets member 0's value: {rs:?}"
    );
}

#[test]
fn barrier_synchronizes_unequal_arrivals() {
    // Member i computes i * 200 µs before the barrier; all must depart at
    // (essentially) the same instant, after the slowest arrival.
    let depart: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let d2 = depart.clone();
    let mut node = run_group(4, 50_000_000, move |i, k, result| match k {
        0 => Action::Compute(260_000 * i as u64 + 1_000),
        1 => Action::Call(SysCall::GroupBarrier(GroupId(0))),
        2 => Action::Call(SysCall::ReadClock),
        3 => {
            if let SysResult::Clock(t) = result {
                d2.borrow_mut().push(t);
            }
            Action::Exit
        }
        _ => Action::Exit,
    });
    node.run_until_quiescent();
    let ds = depart.borrow();
    assert_eq!(ds.len(), 4);
    let spread = ds.iter().max().unwrap() - ds.iter().min().unwrap();
    assert!(
        spread < 50_000,
        "barrier departures must cluster (spread {spread} ns)"
    );
    // The slowest member computed ~600 µs, so departures are after that.
    let earliest = *ds.iter().min().unwrap();
    assert!(earliest > 600_000, "departed before the slowest arrival?");
}

#[test]
fn group_size_and_leave() {
    let results = Rc::new(RefCell::new(Vec::new()));
    let r2 = results.clone();
    let mut node = run_group(3, 30_000_000, move |i, k, result| match (i, k) {
        // Member 2 leaves, then member 0 reads the size.
        (2, 0) => Action::Call(SysCall::GroupLeave(GroupId(0))),
        (_, 0) => Action::Call(SysCall::SleepNs(2_000_000)),
        (0, 1) => Action::Call(SysCall::GroupSize(GroupId(0))),
        (0, 2) => {
            r2.borrow_mut().push(result);
            Action::Exit
        }
        _ => Action::Exit,
    });
    node.run_until_quiescent();
    let rs = results.borrow();
    assert_eq!(rs.as_slice(), &[SysResult::Value(2)]);
}
