//! System management interrupt (SMI) injection.
//!
//! §3.6: SMIs are firmware-owned interrupts that cannot be masked or
//! observed by the kernel. When one fires, *all CPUs stop*, one CPU runs
//! the hidden handler, then everything resumes — while the TSC keeps
//! counting. To software the episode is "missing time": the cycle counter
//! jumps by a surprisingly large amount.
//!
//! The machine model implements exactly that: during an SMI window no CPU
//! executes (in-flight computations stretch, interrupt handling defers),
//! but TSCs and APIC timer deadlines march on. Rates and durations are
//! configurable; the paper's mitigation (eager scheduling + the
//! utilization-limit knob) is evaluated against this injector in the
//! `abl_eager_vs_lazy` and `abl_util_limit` harnesses.

use crate::cost::Cost;
use nautix_des::{Cycles, DetRng};

/// When SMIs occur.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmiPattern {
    /// No SMIs (the default for figure reproductions; the paper's testbed
    /// BIOS is quiet during the measured windows).
    Disabled,
    /// Fixed-interval SMIs, as from periodic firmware housekeeping.
    Periodic {
        /// Cycles between SMI entries.
        interval: Cycles,
    },
    /// Memoryless SMI arrivals with the given mean inter-arrival time.
    Poisson {
        /// Mean cycles between SMI entries.
        mean_interval: Cycles,
    },
}

/// Full SMI injector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmiConfig {
    /// Arrival pattern.
    pub pattern: SmiPattern,
    /// Handler residency: how long the machine is stalled per SMI.
    pub duration: Cost,
}

impl SmiConfig {
    /// SMIs disabled.
    pub fn disabled() -> Self {
        SmiConfig {
            pattern: SmiPattern::Disabled,
            duration: Cost::fixed(0),
        }
    }

    /// A representative noisy-firmware configuration: SMIs roughly every
    /// `interval_us` microseconds of machine time, stalling for around
    /// `duration_us` (values in the literature run from tens of
    /// microseconds to milliseconds; Delgado & Karavanic 2013).
    pub fn noisy(freq: nautix_des::Freq, interval_us: u64, duration_us: u64) -> Self {
        let d = freq.us_to_cycles(duration_us);
        SmiConfig {
            pattern: SmiPattern::Poisson {
                mean_interval: freq.us_to_cycles(interval_us),
            },
            duration: Cost::new(d, d / 4),
        }
    }

    /// Whether any SMIs will ever fire.
    pub fn enabled(&self) -> bool {
        !matches!(self.pattern, SmiPattern::Disabled)
    }

    /// Draw the next inter-arrival gap, if enabled.
    pub fn next_gap(&self, rng: &mut DetRng) -> Option<Cycles> {
        match self.pattern {
            SmiPattern::Disabled => None,
            SmiPattern::Periodic { interval } => Some(interval.max(1)),
            SmiPattern::Poisson { mean_interval } => Some(rng.exponential(mean_interval as f64)),
        }
    }

    /// Draw one SMI's stall duration.
    pub fn draw_duration(&self, rng: &mut DetRng) -> Cycles {
        self.duration.draw(rng)
    }
}

/// Running totals the machine keeps about injected SMIs; experiments report
/// these as ground truth for "missing time".
#[derive(Debug, Clone, Copy, Default)]
pub struct SmiStats {
    /// SMIs entered so far.
    pub count: u64,
    /// Total cycles the machine spent stalled.
    pub stalled_cycles: Cycles,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_des::Freq;

    #[test]
    fn disabled_never_fires() {
        let c = SmiConfig::disabled();
        assert!(!c.enabled());
        let mut rng = DetRng::seed_from(1);
        assert_eq!(c.next_gap(&mut rng), None);
    }

    #[test]
    fn periodic_gap_is_constant() {
        let c = SmiConfig {
            pattern: SmiPattern::Periodic { interval: 5000 },
            duration: Cost::fixed(100),
        };
        let mut rng = DetRng::seed_from(1);
        assert_eq!(c.next_gap(&mut rng), Some(5000));
        assert_eq!(c.next_gap(&mut rng), Some(5000));
        assert_eq!(c.draw_duration(&mut rng), 100);
    }

    #[test]
    fn poisson_gap_has_requested_mean() {
        let c = SmiConfig {
            pattern: SmiPattern::Poisson {
                mean_interval: 10_000,
            },
            duration: Cost::fixed(1),
        };
        let mut rng = DetRng::seed_from(7);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| c.next_gap(&mut rng).unwrap()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10_000.0).abs() < 500.0, "mean={mean}");
    }

    #[test]
    fn noisy_preset_is_enabled_and_scaled() {
        let c = SmiConfig::noisy(Freq::phi(), 33_000, 150);
        assert!(c.enabled());
        // 150 µs at 1.3 GHz = 195_000 cycles.
        assert_eq!(c.duration.base, 195_000);
    }
}
