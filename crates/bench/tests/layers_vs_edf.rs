//! Differential suite: the layered scheduler degenerates to plain EDF.
//!
//! A single layer guaranteeing 100% of the CPU can never throttle, so the
//! entire layer mechanism — bucket charging, epoch rolls, throttle-aware
//! selection, replenish timer clamps — must be *observably absent*. The
//! contract locked down here is ordering: layers restrict which threads
//! are eligible, they never reorder the eligible ones. Any divergence in
//! the execution timeline, per-thread deadline outcomes, event count, or
//! stats (beyond the replenish tally itself) between the unlayered
//! default and a 100%-guarantee single layer is a bug in that contract.
//!
//! The randomized cases feed both engines the same constraint-churn
//! script: threads that hop between periodic points, sporadic bursts,
//! and plain aperiodic compute at random invoke indices. CI runs this at
//! `PROPTEST_CASES=256`.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{LayerTable, Node, NodeConfig, Span, PPM};
use nautix_stats::StatsSnapshot;
use proptest::prelude::*;
use proptest::TestRng;

const HORIZON_NS: u64 = 20_000_000;

/// One thread of a churn script: where it lives and which constraints it
/// requests at which invoke counts. Generated once per case and fed
/// verbatim to both runs.
#[derive(Clone, Debug)]
struct ThreadPlan {
    cpu: usize,
    work_cycles: u64,
    script: Vec<(u64, Constraints)>,
}

fn pick_constraints(rng: &mut TestRng) -> Constraints {
    match rng.below(4) {
        0 => Constraints::default_aperiodic(),
        1 => {
            let size = 50_000 + rng.below(100_000);
            let deadline = size * (3 + rng.below(5));
            Constraints::sporadic(size, deadline).build()
        }
        _ => {
            let period = [100_000u64, 200_000, 250_000, 500_000, 1_000_000][rng.below(5) as usize];
            let slice = (period * (5 + rng.below(20)) / 100).max(2_000);
            Constraints::periodic(period, slice).phase(period).build()
        }
    }
}

/// 2–5 threads on CPUs 1–2, each with 1–4 constraint changes at
/// increasing invoke indices. Thread 0 always opens periodic so every
/// case exercises RT dispatch, not just aperiodic round-robin.
fn gen_plans(seed: u64) -> Vec<ThreadPlan> {
    let mut rng = TestRng::seed_from(seed);
    let n = 2 + rng.below(4) as usize;
    (0..n)
        .map(|i| {
            let cpu = 1 + rng.below(2) as usize;
            let work_cycles = 50_000 + rng.below(150_000);
            let mut script = Vec::new();
            let first = if i == 0 {
                let period = 250_000 + 50_000 * rng.below(10);
                Constraints::periodic(period, period / 5)
                    .phase(period)
                    .build()
            } else {
                pick_constraints(&mut rng)
            };
            script.push((0, first));
            let mut at = 0;
            for _ in 0..rng.below(4) {
                at += 5 + rng.below(40);
                script.push((at, pick_constraints(&mut rng)));
            }
            ThreadPlan {
                cpu,
                work_cycles,
                script,
            }
        })
        .collect()
}

struct Run {
    events: u64,
    snapshot: StatsSnapshot,
    spans: Vec<Span>,
    outcomes: Vec<(u64, u64)>,
}

fn build_node(layers: LayerTable, seed: u64) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(3).with_seed(seed);
    cfg.sched.layers = layers;
    Node::new(cfg)
}

fn spawn_plans(node: &mut Node, plans: &[ThreadPlan]) -> Vec<nautix_kernel::ThreadId> {
    plans
        .iter()
        .map(|p| {
            let script = p.script.clone();
            let work = p.work_cycles;
            let prog = FnProgram::new(move |_cx, n| match script.iter().find(|(at, _)| *at == n) {
                Some((_, c)) => Action::Call(SysCall::ChangeConstraints(*c)),
                None => Action::Compute(work),
            });
            node.spawn_on(p.cpu, "churn", Box::new(prog)).unwrap()
        })
        .collect()
}

fn run_churn(layers: LayerTable, plans: &[ThreadPlan], seed: u64) -> Run {
    let mut node = build_node(layers, seed);
    node.record_timeline(1 << 20);
    let tids = spawn_plans(&mut node, plans);
    node.run_for_ns(HORIZON_NS);
    let outcomes = tids
        .iter()
        .map(|&t| {
            let s = &node.thread_state(t).stats;
            (s.met, s.missed)
        })
        .collect();
    Run {
        events: node.machine.events_processed(),
        snapshot: node.stats_snapshot(),
        spans: node.take_timeline().unwrap().spans().to_vec(),
        outcomes,
    }
}

/// The equivalence judgment. The replenish tally is the one legitimate
/// difference (the active table rolls its epoch counter); everything
/// else must be byte-identical, and the layered run must demonstrably
/// have exercised the layer path.
fn assert_equivalent(mut base: Run, mut layered: Run) {
    assert_eq!(
        layered.snapshot.layer_throttles, 0,
        "an exempt layer can never throttle"
    );
    assert!(
        layered.snapshot.layer_replenishes > 0,
        "vacuous case: the layer path never ran"
    );
    assert_eq!(
        base.snapshot.layer_replenishes, 0,
        "the default table must keep the unlayered fast path"
    );
    base.snapshot.layer_replenishes = 0;
    layered.snapshot.layer_replenishes = 0;
    assert_eq!(base.events, layered.events, "event counts diverged");
    assert_eq!(
        base.outcomes, layered.outcomes,
        "per-thread met/missed diverged"
    );
    assert_eq!(base.spans, layered.spans, "dispatch order diverged");
    assert_eq!(base.snapshot, layered.snapshot, "stats diverged");
}

/// Deterministic anchor at a fixed seed, independent of the generator.
#[test]
fn reference_churn_script_is_layer_invisible() {
    let plans = gen_plans(0xED0F);
    let base = run_churn(LayerTable::default(), &plans, 7);
    let layered = run_churn(
        LayerTable::single(PPM as u32, 0, 2_000_000).unwrap(),
        &plans,
        7,
    );
    assert_equivalent(base, layered);
}

/// Lockstep variant: the two nodes advance event by event and must agree
/// on the machine clock after every single step, not just at the end —
/// a divergence is pinned to the exact event where it first appears.
#[test]
fn lockstep_runs_agree_at_every_event() {
    let plans = gen_plans(0x10C5);
    let mut a = build_node(LayerTable::default(), 11);
    let mut b = build_node(LayerTable::single(PPM as u32, 0, 1_000_000).unwrap(), 11);
    spawn_plans(&mut a, &plans);
    spawn_plans(&mut b, &plans);
    let mut steps = 0u64;
    loop {
        let ra = a.step();
        let rb = b.step();
        assert_eq!(ra, rb, "one run went quiescent first (step {steps})");
        assert_eq!(
            a.machine.now(),
            b.machine.now(),
            "machine clocks diverged at step {steps}"
        );
        steps += 1;
        if !ra || steps >= 20_000 {
            break;
        }
    }
    assert!(steps > 1_000, "lockstep run did too little work");
}

proptest! {
    /// Random churn scripts, random replenish windows and burst budgets:
    /// the 100%-guarantee single layer reproduces plain EDF exactly.
    #[test]
    fn exempt_single_layer_reproduces_plain_edf(
        seed in 0u64..u64::MAX,
        replenish in prop::sample::select(vec![
            500_000u64, 1_000_000, 2_000_000, 3_333_333, 7_000_000,
        ]),
        burst in prop::sample::select(vec![0u32, 250_000]),
    ) {
        let plans = gen_plans(seed);
        let base = run_churn(LayerTable::default(), &plans, seed);
        let layered = run_churn(
            LayerTable::single(PPM as u32, burst, replenish).unwrap(),
            &plans,
            seed,
        );
        assert_equivalent(base, layered);
    }
}
