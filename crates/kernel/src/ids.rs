//! Shared identifier types for kernel objects.

/// Handle to a thread group (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Handle to a lightweight task (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);
