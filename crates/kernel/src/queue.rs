//! Fixed-capacity scheduler queues.
//!
//! §3.3: "each local scheduler uses fixed size priority queues to implement
//! the pending and real-time run queues, and other state is also of fixed
//! size. As a result, the time spent in a local scheduler invocation is
//! bounded." These are those queues: a bounded binary min-heap with
//! deterministic FIFO tie-breaking, and a bounded round-robin queue for
//! non-real-time threads. Pushing past capacity is an admission-control
//! failure surfaced to the caller, never a reallocation.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded binary min-heap of `(key, value)` with FIFO tie-break.
///
/// Alongside the heap array it keeps a value→count multiset, preallocated
/// at capacity, so [`FixedHeap::contains`] is O(1) instead of a linear
/// scan. Both structures are sized once in [`FixedHeap::new`] and never
/// grow past `capacity` entries, preserving the no-reallocation bound.
#[derive(Debug, Clone)]
pub struct FixedHeap<K: Ord + Copy, V: Copy + Eq + Hash> {
    items: Vec<(K, u64, V)>,
    members: HashMap<V, u32>,
    capacity: usize,
    seq: u64,
}

impl<K: Ord + Copy, V: Copy + Eq + Hash> FixedHeap<K, V> {
    /// An empty heap that will never hold more than `capacity` items.
    pub fn new(capacity: usize) -> Self {
        FixedHeap {
            items: Vec::with_capacity(capacity),
            members: HashMap::with_capacity(capacity),
            capacity,
            seq: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `value` with `key`. Fails (returning the value) when full.
    pub fn push(&mut self, key: K, value: V) -> Result<(), V> {
        if self.items.len() >= self.capacity {
            return Err(value);
        }
        let seq = self.seq;
        self.seq += 1;
        self.items.push((key, seq, value));
        *self.members.entry(value).or_insert(0) += 1;
        self.sift_up(self.items.len() - 1);
        Ok(())
    }

    /// The minimum-key entry without removing it.
    pub fn peek(&self) -> Option<(K, V)> {
        self.items.first().map(|&(k, _, v)| (k, v))
    }

    /// Remove and return the minimum-key entry.
    pub fn pop(&mut self) -> Option<(K, V)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let (k, _, v) = self.items.pop().unwrap();
        self.forget(v);
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        Some((k, v))
    }

    /// Remove the first entry whose value equals `value`. O(capacity),
    /// which is the bounded cost the paper's design relies on; absent
    /// values are rejected in O(1) via the membership map.
    pub fn remove(&mut self, value: V) -> bool {
        if !self.contains(value) {
            return false;
        }
        let Some(idx) = self.items.iter().position(|&(_, _, v)| v == value) else {
            return false;
        };
        let last = self.items.len() - 1;
        self.items.swap(idx, last);
        self.items.pop();
        self.forget(value);
        if idx < self.items.len() {
            self.sift_down(idx);
            self.sift_up(idx);
        }
        true
    }

    /// Whether `value` is queued. O(1): a lookup in the membership map.
    pub fn contains(&self, value: V) -> bool {
        self.members.contains_key(&value)
    }

    /// Drop one multiset reference to `value` after it left the heap.
    fn forget(&mut self, value: V) {
        match self.members.get_mut(&value) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.members.remove(&value);
            }
            None => debug_assert!(false, "membership map out of sync"),
        }
    }

    /// Iterate entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.items.iter().map(|&(k, _, v)| (k, v))
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, sa, _) = &self.items[a];
        let (kb, sb, _) = &self.items[b];
        (ka, sa) < (kb, sb)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.items.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.items.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

/// A bounded round-robin ready queue with priorities: lower priority value
/// is more important; within a priority class, strict FIFO rotation.
#[derive(Debug, Clone)]
pub struct RrQueue<V: Copy + Eq> {
    items: std::collections::VecDeque<(u64, V)>,
    capacity: usize,
}

impl<V: Copy + Eq> RrQueue<V> {
    /// An empty queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        RrQueue {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Enqueue at the back of `priority`'s class. Fails when full.
    pub fn push(&mut self, priority: u64, value: V) -> Result<(), V> {
        if self.items.len() >= self.capacity {
            return Err(value);
        }
        // Insert before the first entry with a strictly larger priority
        // value, i.e. after all peers: FIFO within the class.
        let pos = self
            .items
            .iter()
            .position(|&(p, _)| p > priority)
            .unwrap_or(self.items.len());
        self.items.insert(pos, (priority, value));
        Ok(())
    }

    /// Dequeue the most important (then oldest) entry.
    pub fn pop(&mut self) -> Option<(u64, V)> {
        self.items.pop_front()
    }

    /// The entry `pop` would return.
    pub fn peek(&self) -> Option<(u64, V)> {
        self.items.front().copied()
    }

    /// Remove a specific value.
    pub fn remove(&mut self, value: V) -> bool {
        if let Some(idx) = self.items.iter().position(|&(_, v)| v == value) {
            self.items.remove(idx);
            true
        } else {
            false
        }
    }

    /// Whether `value` is queued.
    pub fn contains(&self, value: V) -> bool {
        self.items.iter().any(|&(_, v)| v == value)
    }

    /// Iterate entries front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_pops_in_key_order() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for (k, v) in [(5, 0), (1, 1), (9, 2), (3, 3)] {
            h.push(k, v).unwrap();
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 9]);
    }

    #[test]
    fn heap_ties_are_fifo() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for v in 0..5 {
            h.push(42, v).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn heap_rejects_overflow() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(2);
        h.push(1, 10).unwrap();
        h.push(2, 20).unwrap();
        assert_eq!(h.push(3, 30), Err(30));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn heap_remove_keeps_order() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for (k, v) in [(5, 0), (1, 1), (9, 2), (3, 3), (7, 4)] {
            h.push(k, v).unwrap();
        }
        assert!(h.remove(3)); // the key-3 entry
        assert!(!h.remove(3));
        let keys: Vec<_> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(keys, vec![1, 5, 7, 9]);
    }

    #[test]
    fn heap_contains_and_peek() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(4);
        h.push(2, 7).unwrap();
        h.push(1, 8).unwrap();
        assert!(h.contains(7));
        assert!(!h.contains(9));
        assert_eq!(h.peek(), Some((1, 8)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn heap_membership_tracks_duplicates() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        h.push(1, 7).unwrap();
        h.push(2, 7).unwrap();
        h.push(3, 8).unwrap();
        assert!(h.contains(7));
        assert!(h.remove(7));
        // One copy of 7 is still queued.
        assert!(h.contains(7));
        assert_eq!(h.pop(), Some((2, 7)));
        assert!(!h.contains(7));
        assert!(!h.remove(7));
        assert!(h.contains(8));
    }

    #[test]
    fn rr_priority_then_fifo() {
        let mut q: RrQueue<usize> = RrQueue::new(8);
        q.push(1, 10).unwrap();
        q.push(0, 20).unwrap();
        q.push(1, 11).unwrap();
        q.push(0, 21).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![20, 21, 10, 11]);
    }

    #[test]
    fn rr_rotation_is_fair() {
        let mut q: RrQueue<usize> = RrQueue::new(4);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        // Simulate round robin: pop, run, push back.
        let mut seen = Vec::new();
        for _ in 0..4 {
            let (p, v) = q.pop().unwrap();
            seen.push(v);
            q.push(p, v).unwrap();
        }
        assert_eq!(seen, vec![1, 2, 1, 2]);
    }

    #[test]
    fn rr_remove_and_overflow() {
        let mut q: RrQueue<usize> = RrQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(0, 3), Err(3));
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert!(q.contains(2));
        assert_eq!(q.len(), 1);
    }
}
