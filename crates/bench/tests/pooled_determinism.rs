//! Regression test: a pooled node reset in place is byte-identical to a
//! freshly constructed one. `Node::reset` replays construction exactly
//! (same RNG draw order, same ThreadId assignment, same queue tie-break
//! state), so arena reuse must be invisible in every trial result. CI runs
//! this binary under both `NAUTIX_THREADS=1` and `NAUTIX_THREADS=4`, which
//! also varies how trials are distributed over warm pools.

use nautix_bench::harness::NodePool;
use nautix_bench::{missrate, Scale};
use nautix_hw::{MachineConfig, Platform};
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{AdmissionPolicy, HarnessConfig, Node, NodeConfig, SchedConfig};

#[test]
fn pooled_reset_node_matches_fresh_construction() {
    // Warm the pool on a *different* configuration first, so what's under
    // test is the reset path of a dirty node, not first construction.
    let mut pool = NodePool::new();
    let _ = missrate::measure_point_pooled(&mut pool, Platform::R415, 100_000, 50_000, 30, 11);

    for &(platform, period, slice, jobs, seed) in &[
        (Platform::Phi, 1_000_000u64, 500_000u64, 50u64, 5u64),
        (Platform::Phi, 10_000, 7_000, 80, 9),
        (Platform::R415, 4_000, 400, 80, 7),
    ] {
        let fresh = missrate::measure_point(platform, period, slice, jobs, seed);
        let pooled = missrate::measure_point_pooled(&mut pool, platform, period, slice, jobs, seed);
        assert_eq!(
            fresh, pooled,
            "reset node diverged from fresh node at \
             ({platform:?}, {period}, {slice}, {jobs}, {seed})"
        );
    }
}

/// Node configuration for the widening-churn trial: every admission
/// verdict runs (or memo-serves) the hyperperiod simulation.
fn churn_cfg() -> NodeConfig {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(64);
    cfg.sched = SchedConfig {
        policy: AdmissionPolicy::HyperperiodSim {
            overhead_ns: 1_000,
            window_cap_ns: 20_000_000,
        },
        ..SchedConfig::throughput()
    };
    cfg
}

/// One widen → re-admit → (rejected) → demote trial with real compute
/// between the constraint changes; returns everything a warm memo could
/// conceivably perturb.
fn churn_trial(node: &mut Node) -> (Constraints, u64, u64) {
    let tight = Constraints::periodic(1_000_000, 300_000).build();
    let wide = Constraints::periodic(1_250_000, 300_000).build();
    let hog = Constraints::periodic(1_000_000, 990_100).build();
    let prog = FnProgram::new(move |_cx, n| match n {
        0 => Action::Call(SysCall::ChangeConstraints(tight)),
        2 => Action::Call(SysCall::ChangeConstraints(wide)),
        4 => Action::Call(SysCall::ChangeConstraints(tight)),
        6 => Action::Call(SysCall::ChangeConstraints(wide)),
        8 => Action::Call(SysCall::ChangeConstraints(hog)), // rejected
        10 => Action::Call(SysCall::ChangeConstraints(Constraints::default_aperiodic())),
        n if n < 12 => Action::Compute(130_000),
        _ => Action::Exit,
    });
    let tid = node.spawn_on(1, "churn", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    let st = node.thread_state(tid);
    (st.constraints, st.stats.missed, st.stats.executed_cycles)
}

/// The warm sim memo of a pooled node must be invisible in trial results:
/// the widen → re-admit → demote churn returns byte-identical outcomes on
/// a reset node, while the admission counters prove the memo actually
/// served the pooled run (all hits where the fresh run simulated).
#[test]
fn warm_sim_memo_is_invisible_in_pooled_trial_results() {
    let mut fresh_node = Node::new(churn_cfg());
    let fresh = churn_trial(&mut fresh_node);
    let fa = fresh_node.admission_stats();
    assert_eq!(fa.sim_misses, 2, "fresh run simulates both canonical sets");
    assert_eq!(fa.sim_hits, 3, "re-admissions and rollback hit the memo");
    assert_eq!(fa.rollbacks, 1, "the over-budget change rolls back");

    // Dirty the pool on a different workload, then run the same trial
    // twice: the second pass sees a node whose memo is fully warm.
    let mut pool = NodePool::new();
    let _ = missrate::measure_point_pooled(&mut pool, Platform::Phi, 100_000, 50_000, 20, 11);
    let warm = churn_trial(pool.node(churn_cfg()));
    assert_eq!(warm, fresh, "reset node diverged from fresh node");
    let node = pool.node(churn_cfg());
    let pooled = churn_trial(node);
    let pa = node.admission_stats();
    assert_eq!(pooled, fresh, "warm memo perturbed a trial result");
    assert_eq!(pa.sim_misses, 0, "warm memo: nothing left to simulate");
    assert_eq!(pa.sim_hits, fa.sim_hits + fa.sim_misses);
    assert_eq!(pa.rollbacks, fa.rollbacks);
    assert_eq!(node.sim_cache_len(), 2);
}

#[test]
fn pooled_sweep_matches_fresh_per_point_results() {
    // The full sweep runs on per-worker pools; every point must equal an
    // isolated fresh run.
    let (sweep, _) = missrate::sweep_with_stats(
        &HarnessConfig::with_threads(4),
        Platform::Phi,
        Scale::Quick,
        5,
    );
    let grid = missrate::trial_grid(Platform::Phi, Scale::Quick);
    assert_eq!(sweep.len(), grid.len());
    for (point, &(period, slice, jobs)) in sweep.iter().zip(&grid) {
        let fresh = missrate::measure_point(Platform::Phi, period, slice, jobs, 5);
        assert_eq!(
            *point, fresh,
            "pooled sweep diverged from fresh node at ({period}, {slice})"
        );
    }
}
