//! Deterministic pseudo-randomness for simulations.
//!
//! All stochastic elements of the hardware model (boot skew, interrupt
//! latency jitter, SMI arrival processes, measurement granularity noise)
//! draw from a [`DetRng`] seeded from the experiment configuration, so a
//! given configuration always produces the same trace.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, explicitly seeded PRNG.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Seed deterministically. Equal seeds give equal streams.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, e.g. one per CPU, such that the
    /// per-CPU streams do not depend on event interleaving.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let s = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from(s)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty uniform range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A jittered duration: `base` plus a uniform draw in `[0, spread]`.
    ///
    /// This is the standard noise shape for modeled hardware costs: a fixed
    /// path length plus bounded variation (cache state, pipeline state).
    pub fn jitter(&mut self, base: u64, spread: u64) -> u64 {
        if spread == 0 {
            base
        } else {
            base + self.uniform(0, spread)
        }
    }

    /// An exponentially distributed duration with the given mean, for
    /// Poisson arrival processes (e.g. SMI injection). Clamped to at least 1.
    pub fn exponential(&mut self, mean: f64) -> u64 {
        assert!(mean > 0.0);
        let u = self.unit().max(f64::MIN_POSITIVE);
        ((-u.ln()) * mean).round().max(1.0) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0, 1_000_000), b.uniform(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = DetRng::seed_from(7);
        let mut root2 = DetRng::seed_from(7);
        let mut a1 = root1.fork(0);
        let mut a2 = root2.fork(0);
        for _ in 0..32 {
            assert_eq!(a1.uniform(0, 1000), a2.uniform(0, 1000));
        }
        let mut b1 = root1.fork(1);
        let s_a: Vec<u64> = (0..8).map(|_| a1.uniform(0, 1 << 30)).collect();
        let s_b: Vec<u64> = (0..8).map(|_| b1.uniform(0, 1 << 30)).collect();
        assert_ne!(s_a, s_b);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = DetRng::seed_from(3);
        for _ in 0..1000 {
            let v = r.jitter(100, 50);
            assert!((100..=150).contains(&v));
        }
        assert_eq!(r.jitter(77, 0), 77);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = DetRng::seed_from(9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.exponential(500.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean={mean}");
    }

    #[test]
    fn uniform_inclusive_endpoints_reachable() {
        let mut r = DetRng::seed_from(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.uniform(0, 3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
