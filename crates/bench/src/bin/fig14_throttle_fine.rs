//! Figure 14: resource control with commensurate performance (fine).

use nautix_bench::throttle::{self, Granularity};
use nautix_bench::{banner, f, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 14: throttling, finest granularity (more variation expected)");
    let pts = throttle::run(Granularity::Fine, scale, 3);
    let (mean, cv) = throttle::control_quality(&pts);
    println!("period_ns,slice_ns,utilization,time_ns,admitted");
    for p in &pts {
        println!(
            "{},{},{},{},{}",
            p.period_ns,
            p.slice_ns,
            f(p.utilization),
            p.time_ns,
            p.admitted
        );
    }
    println!(
        "control quality: time x utilization = {} ns (cv {}); fine granularity varies more",
        f(mean),
        f(cv)
    );
    write_csv(
        &out_dir().join("fig14_throttle_fine.csv"),
        &[
            "period_ns",
            "slice_ns",
            "utilization",
            "time_ns",
            "admitted",
        ],
        pts.iter().map(|p| {
            vec![
                p.period_ns.to_string(),
                p.slice_ns.to_string(),
                f(p.utilization),
                p.time_ns.to_string(),
                p.admitted.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig14_throttle_fine.csv"));
}
