//! Shared harness plumbing: scales, CSV output, and series types.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced CPU counts / sweep densities: seconds per figure. Used by
    /// tests and the Criterion benches.
    Quick,
    /// The paper's configuration (full Phi, full sweeps).
    Paper,
}

impl Scale {
    /// Parse from argv: `--paper` selects [`Scale::Paper`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}

/// Where result CSVs land.
pub fn out_dir() -> PathBuf {
    let p = std::env::var("NAUTIX_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(p);
    fs::create_dir_all(&path).expect("create results dir");
    path
}

/// Write a CSV of displayable rows.
pub fn write_csv<R, C>(path: &Path, header: &[&str], rows: R)
where
    R: IntoIterator<Item = Vec<C>>,
    C: Display,
{
    let mut f = fs::File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in rows {
        let line: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        writeln!(f, "{}", line.join(",")).unwrap();
    }
}

/// Format a float compactly for CSV/console output.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Print a banner line for console output.
pub fn banner(title: &str) {
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("nautix_csv_test");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.csv");
        write_csv(&p, &["a", "b"], vec![vec![1, 2], vec![3, 4]]);
        let s = fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(12345.6789), "12345.7");
    }
}
