//! Cross-crate integration tests through the `nautix` facade: the whole
//! stack — DES engine, machine model, kernel, groups, scheduler, BSP —
//! exercised together.

use nautix::bsp::{run_bsp, BspMode, BspParams};
use nautix::kernel::{FnProgram, GroupId, Script, SysResult};
use nautix::prelude::*;
use nautix::rt::SchedConfig;

fn small(cpus: usize, seed: u64) -> NodeConfig {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(cpus).with_seed(seed);
    cfg
}

#[test]
fn facade_reexports_compose() {
    // Types from every layer are usable together through the prelude.
    let mut node = Node::new(small(2, 1));
    let tid = node
        .spawn_on(1, "t", Box::new(Script::new(vec![Action::Compute(1000)])))
        .unwrap();
    node.run_until_quiescent();
    assert!(node.thread_state(tid).stats.executed_cycles >= 1000);
}

#[test]
fn sporadic_burst_end_to_end() {
    let mut node = Node::new(small(2, 2));
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let log2 = log.clone();
    let prog = FnProgram::new(move |cx, n| match n {
        0 => Action::Call(SysCall::ChangeConstraints(
            Constraints::sporadic(50_000, 500_000).build(),
        )),
        1 => {
            log2.borrow_mut().push(cx.result);
            Action::Compute(65_000) // the burst
        }
        2 => Action::Compute(10_000), // now aperiodic
        _ => Action::Exit,
    });
    let tid = node.spawn_on(1, "burst", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    assert_eq!(log.borrow()[0], SysResult::Admission(Ok(())));
    let st = node.thread_state(tid);
    assert_eq!(st.stats.met, 1, "the sporadic burst must meet its deadline");
    assert!(!st.is_rt(), "after the burst the thread is aperiodic");
}

#[test]
fn two_gangs_share_the_node() {
    // Two independent real-time gangs with different periods coexist,
    // each meeting its own constraints.
    let mut cfg = small(9, 3);
    cfg.sched = SchedConfig::throughput();
    let mut node = Node::new(cfg);
    let mut tids = Vec::new();
    for g in 0..2usize {
        let gid = GroupId(g as u32);
        let period = [500_000u64, 1_000_000][g];
        let slice = period / 5;
        for i in 0..4usize {
            let prog = FnProgram::new(move |_cx, step| {
                let k = if i == 0 { step } else { step + 1 };
                match k {
                    0 => Action::Call(SysCall::GroupCreate {
                        name: if g == 0 { "gang-a" } else { "gang-b" },
                    }),
                    1 => Action::Call(SysCall::GroupJoin(gid)),
                    2 => Action::Call(SysCall::SleepNs(2_000_000)),
                    3 => Action::Call(SysCall::GroupChangeConstraints {
                        group: gid,
                        constraints: Constraints::periodic(period, slice).build(),
                    }),
                    _ => Action::Compute(80_000),
                }
            });
            let cpu = 1 + g * 4 + i;
            tids.push(
                node.spawn_on(cpu, &format!("g{g}t{i}"), Box::new(prog))
                    .unwrap(),
            );
        }
    }
    node.run_for_ns(50_000_000);
    for &t in &tids {
        let st = node.thread_state(t);
        assert!(st.is_rt(), "every member admitted");
        assert!(st.stats.arrivals > 20);
        assert_eq!(st.stats.missed, 0, "no gang member may miss");
    }
}

#[test]
fn bsp_through_the_facade() {
    let mut cfg = small(5, 4);
    cfg.sched = SchedConfig::throughput();
    let r = run_bsp(
        cfg,
        BspParams::fine(4, 20).with_mode(BspMode::RtGroup {
            period: 1_000_000,
            slice: 600_000,
        }),
    );
    assert!(r.admitted);
    assert_eq!(r.violations(), 0);
    assert!(r.max_ns > 0);
}

#[test]
fn smi_missing_time_is_visible_in_wall_clock() {
    use nautix::hw::{Cost, SmiConfig, SmiPattern};
    let mut cfg = small(2, 5);
    cfg.machine = cfg.machine.with_smi(SmiConfig {
        pattern: SmiPattern::Periodic {
            interval: 1_300_000, // every ~1 ms
        },
        duration: Cost::fixed(130_000), // 100 µs stalls
    });
    let mut node = Node::new(cfg);
    let tid = node
        .spawn_on(
            1,
            "w",
            Box::new(Script::new(vec![Action::Compute(13_000_000)])),
        )
        .unwrap();
    node.run_until_quiescent();
    // 10 ms of work stretched by ~10 SMIs of 100 µs each: wall clock shows
    // at least ~0.8 ms of missing time.
    let wall = node.machine.now();
    assert!(
        wall > 13_000_000 + 800_000,
        "missing time absent: wall {wall}"
    );
    assert!(node.machine.smi_stats().count >= 8);
    let _ = tid;
}

/// The full stack under the pooled trial harness: the same RT workload
/// fanned over seeds via `run_trials_pooled` (worker-local `NodePool`s
/// reusing nodes through `Node::reset`) must be green — every deadline
/// met — and byte-equal to fresh-node runs of the same seeds.
#[test]
fn full_stack_is_green_under_the_pooled_harness() {
    use nautix_bench::harness::run_trials_pooled;

    fn trial(node: &mut Node) -> (u64, u64, u64) {
        let mut tids = Vec::new();
        for cpu in 1..3 {
            let prog = FnProgram::new(move |_cx, n| {
                if n == 0 {
                    Action::Call(SysCall::ChangeConstraints(
                        Constraints::periodic(200_000, 50_000).build(),
                    ))
                } else if n < 40 {
                    Action::Compute(30_000)
                } else {
                    Action::Exit
                }
            });
            tids.push(node.spawn_on(cpu, "p", Box::new(prog)).unwrap());
        }
        node.run_until_quiescent();
        let missed = tids
            .iter()
            .map(|&t| node.thread_state(t).stats.missed)
            .sum();
        (node.machine.now(), node.machine.events_processed(), missed)
    }

    let seeds: Vec<u64> = (100..112).collect();
    let hc = nautix_rt::HarnessConfig::with_threads(4);
    let pooled = run_trials_pooled(&hc, seeds.clone(), |pool, &seed| {
        let node = pool.node(small(3, seed));
        let r = trial(node);
        (r, r.1)
    });
    assert_eq!(pooled.results.len(), seeds.len());
    for (i, &seed) in seeds.iter().enumerate() {
        let fresh = trial(&mut Node::new(small(3, seed)));
        assert_eq!(
            pooled.results[i], fresh,
            "pooled node diverged from a fresh node on seed {seed}"
        );
        assert_eq!(pooled.results[i].2, 0, "deadline missed under seed {seed}");
    }
    assert_eq!(
        pooled.stats.events,
        pooled.results.iter().map(|r| r.1).sum::<u64>(),
        "harness event accounting must match the trials"
    );
}

#[test]
fn seeds_differ_but_each_is_reproducible() {
    let run = |seed: u64| {
        let mut node = Node::new(small(3, seed));
        for cpu in 1..3 {
            let prog = FnProgram::new(move |_cx, n| {
                if n == 0 {
                    Action::Call(SysCall::ChangeConstraints(
                        Constraints::periodic(200_000, 50_000).build(),
                    ))
                } else if n < 40 {
                    Action::Compute(30_000)
                } else {
                    Action::Exit
                }
            });
            node.spawn_on(cpu, "p", Box::new(prog)).unwrap();
        }
        node.run_until_quiescent();
        (node.machine.now(), node.machine.events_processed())
    };
    assert_eq!(run(1234), run(1234), "identical seeds, identical runs");
    assert_ne!(run(1234), run(4321), "different seeds, different noise");
}
