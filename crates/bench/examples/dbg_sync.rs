use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, GroupId, SysCall};
use nautix_rt::{Node, NodeConfig};

fn main() {
    let n = 8;
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(n + 1).with_seed(21);
    cfg.dispatch_log_cap = 256;
    cfg.record_ga_timing = true;
    cfg.phase_correction = false;
    let mut node = Node::new(cfg);
    let gid = GroupId(0);
    let mut tids = Vec::new();
    for i in 0..n {
        let prog = FnProgram::new(move |_cx, step| {
            let k = if i == 0 { step } else { step + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "sync" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(3_000_000)),
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::Periodic {
                        phase: 1_000_000,
                        period: 100_000,
                        slice: 50_000,
                    },
                }),
                _ => Action::Compute(1_000_000),
            }
        });
        tids.push(
            node.spawn_on(i + 1, &format!("s{i}"), Box::new(prog))
                .unwrap(),
        );
    }
    node.run_for_ns(12_000_000);
    for t in node.ga_timings() {
        println!("tid {} done at {}", t.tid, t.t_done);
    }
    for (j, &t) in tids.iter().enumerate() {
        let times = node.thread_state(t).dispatch_log.times();
        let tail: Vec<u64> = times.iter().rev().take(5).rev().copied().collect();
        println!("thread {j}: n={} last5={:?}", times.len(), tail);
    }
}
