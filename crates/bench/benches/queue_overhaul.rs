//! Before/after microbenchmarks for the DES hot-path overhaul.
//!
//! The "before" contenders reconstruct the seed's data structures inline:
//! a `BinaryHeap` event queue whose `cancel` leaves a tombstone that `pop`
//! must skip, with the per-CPU one-shot timer living *in* that heap so
//! every scheduler re-arm is a push + tombstone. The "after" contenders
//! are the real [`nautix_des::EventQueue`] (index-tracked true removal)
//! and [`nautix_hw::TimerSlots`] (flat per-CPU slots, O(1) re-arm).
//!
//! Run with `cargo bench -p nautix-bench --bench queue_overhaul`; the
//! README's Performance section quotes these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use nautix_des::EventQueue;
use nautix_hw::TimerSlots;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// The seed's queue: tombstone cancellation over `std` binary heap.
struct TombstoneQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    cancelled: Vec<bool>,
    next_id: u64,
}

impl TombstoneQueue {
    fn new() -> Self {
        TombstoneQueue {
            heap: BinaryHeap::new(),
            cancelled: Vec::new(),
            next_id: 0,
        }
    }

    fn schedule(&mut self, time: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.cancelled.push(false);
        self.heap.push(Reverse((time, id, id)));
        id
    }

    fn cancel(&mut self, id: u64) {
        self.cancelled[id as usize] = true;
    }

    fn pop(&mut self) -> Option<u64> {
        while let Some(Reverse((t, _, id))) = self.heap.pop() {
            if !self.cancelled[id as usize] {
                return Some(black_box(t));
            }
        }
        None
    }
}

const CPUS: usize = 64;
const REARMS_PER_CPU: u64 = 64;

/// Before: every timer re-arm is a heap push plus a tombstone, and the
/// eventual drain wades through all the corpses.
fn bench_rearm_tombstone(c: &mut Criterion) {
    c.bench_function("timer_rearm_before_tombstone_heap", |b| {
        b.iter(|| {
            let mut q = TombstoneQueue::new();
            let mut pending = vec![None; CPUS];
            for round in 0..REARMS_PER_CPU {
                for (cpu, slot) in pending.iter_mut().enumerate() {
                    if let Some(old) = slot.take() {
                        q.cancel(old);
                    }
                    *slot = Some(q.schedule(1_000 + round * 10 + cpu as u64));
                }
            }
            let mut fired = 0u64;
            while q.pop().is_some() {
                fired += 1;
            }
            black_box(fired)
        })
    });
}

/// After: a re-arm is a slot store (plus an occasional earliest rescan).
fn bench_rearm_slots(c: &mut Criterion) {
    c.bench_function("timer_rearm_after_per_cpu_slots", |b| {
        b.iter(|| {
            let mut t = TimerSlots::new(CPUS);
            for round in 0..REARMS_PER_CPU {
                for cpu in 0..CPUS {
                    t.arm(cpu, 1_000 + round * 10 + cpu as u64);
                }
            }
            let mut fired = 0u64;
            while let Some((cpu, _)) = t.earliest() {
                t.disarm(cpu);
                fired += 1;
            }
            black_box(fired)
        })
    });
}

const CHURN_STEPS: u64 = 8192;
const CHURN_LIVE: usize = 256;

/// The rolling-horizon workload a long simulation produces: a bounded set
/// of live events, but each step cancels one and schedules a replacement
/// further out (a wakeup superseded, an op preempted). In the tombstone
/// design the heap never sheds the corpses until their timestamps surface,
/// so it keeps growing for the whole run.
fn bench_churn_tombstone(c: &mut Criterion) {
    c.bench_function("event_churn_before_tombstone_heap", |b| {
        b.iter(|| {
            let mut q = TombstoneQueue::new();
            let mut live: Vec<u64> = (0..CHURN_LIVE as u64).map(|i| q.schedule(i * 97)).collect();
            let mut now_hint = CHURN_LIVE as u64 * 97;
            for step in 0..CHURN_STEPS {
                let victim = (step.wrapping_mul(2_654_435_761) % CHURN_LIVE as u64) as usize;
                q.cancel(live[victim]);
                now_hint += 61;
                live[victim] = q.schedule(now_hint + (step % 53) * 17);
                if step % 4 == 0 {
                    black_box(q.pop());
                }
            }
            black_box(q.heap.len())
        })
    });
}

/// After: a cancel removes the entry and recycles its slot, so the heap
/// stays at the live-event count no matter how long the run is.
fn bench_churn_true_removal(c: &mut Criterion) {
    c.bench_function("event_churn_after_true_removal", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut live: Vec<_> = (0..CHURN_LIVE as u64)
                .map(|i| q.schedule(i * 97, i))
                .collect();
            let mut now_hint = CHURN_LIVE as u64 * 97;
            for step in 0..CHURN_STEPS {
                let victim = (step.wrapping_mul(2_654_435_761) % CHURN_LIVE as u64) as usize;
                q.cancel(live[victim]);
                now_hint += 61;
                live[victim] = q.schedule(now_hint + (step % 53) * 17, step);
                if step % 4 == 0 {
                    black_box(q.pop());
                }
            }
            black_box(q.backlog())
        })
    });
}

criterion_group!(
    benches,
    bench_rearm_tombstone,
    bench_rearm_slots,
    bench_churn_tombstone,
    bench_churn_true_removal
);
criterion_main!(benches);
