//! Cluster-scale multi-tenant admission service benchmark.
//!
//! Sweeps the synthetic tenant stream over every placement strategy at
//! growing tenant counts (to one million gangs per strategy with
//! `--paper`) and reports admission decisions/second, packing quality
//! against the fluid oracle, and the hyperperiod-sim memo hit rate.
//! Writes `results/cluster.csv` plus `BENCH_cluster.json`. Set
//! `NAUTIX_STATS_STREAM=<path>` to watch cluster admission throughput
//! live with `nautix-top <path>`.

use nautix_bench::cluster_bench::{run_with_stats, ClusterPoint};
use nautix_bench::{banner, f, out_dir, set_stats_stream, write_csv, Scale};
use nautix_rt::HarnessConfig;
use nautix_stats::{HubOptions, StatsHub};

fn json(points: &[ClusterPoint], overall_dps: f64, threads: usize) -> String {
    let mut s = String::from("{\n  \"bench\": \"cluster\",\n");
    s.push_str(&format!("  \"threads\": {threads},\n  \"points\": [\n"));
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"shards\": {}, \"cpus\": {}, \
             \"tenants\": {}, \"decisions\": {}, \"placed\": {}, \
             \"rejected\": {}, \"departures\": {}, \"probes\": {}, \
             \"placed_util_ppm\": {}, \"oracle_util_ppm\": {}, \
             \"quality\": {}, \"sim_hit_rate\": {}, \"wall_secs\": {}, \
             \"decisions_per_sec\": {}}}{}\n",
            p.strategy,
            p.shards,
            p.cpus,
            p.tenants,
            p.decisions,
            p.placed,
            p.rejected,
            p.departures,
            p.probes,
            p.placed_util_ppm,
            p.oracle_util_ppm,
            f(p.quality),
            f(p.sim_hit_rate),
            f(p.wall_secs),
            f(p.decisions_per_sec),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"overall_decisions_per_sec\": {}\n}}\n",
        f(overall_dps)
    ));
    s
}

fn main() {
    let scale = Scale::from_args();
    let hc = HarnessConfig::from_env();
    banner("Cluster admission service: placement strategies vs fluid oracle");
    println!(
        "scale: {scale:?} (pass --paper for 16 shards and 1M tenant gangs \
         per strategy); {} worker threads\n",
        hc.threads
    );
    let hub = hc.stats_stream.clone().map(|path| {
        let hub = StatsHub::start(HubOptions {
            stream_path: Some(path.clone()),
            ..HubOptions::default()
        });
        set_stats_stream(Some(hub.tx()));
        println!(
            "streaming live stats to {path:?} (watch with `nautix-top {}`)\n",
            path.display()
        );
        hub
    });

    let (points, stats) = run_with_stats(&hc, scale, 0xC1);

    println!("strategy   shards  tenants   placed  rejected  quality  sim_hit  kdec/s");
    for p in &points {
        println!(
            "{:<9}  {:>6}  {:>7}  {:>7}  {:>8}  {:>7}  {:>7}  {:>6}",
            p.strategy,
            p.shards,
            p.tenants,
            p.placed,
            p.rejected,
            f(p.quality),
            f(p.sim_hit_rate),
            f(p.decisions_per_sec / 1e3),
        );
    }
    let decisions: u64 = points.iter().map(|p| p.decisions).sum();
    let overall_dps = if stats.cpu_secs > 0.0 {
        decisions as f64 / stats.cpu_secs
    } else {
        0.0
    };
    println!(
        "\ntotal: {} decisions in {:.2}s serial-equivalent ({} decisions/s); \
         {:.2}s wall on {} threads",
        decisions,
        stats.cpu_secs,
        f(overall_dps),
        stats.wall_secs,
        stats.threads
    );

    write_csv(
        &out_dir().join("cluster.csv"),
        &[
            "strategy",
            "shards",
            "cpus",
            "tenants",
            "decisions",
            "placed",
            "rejected",
            "departures",
            "probes",
            "placed_util_ppm",
            "oracle_util_ppm",
            "quality",
            "sim_hit_rate",
            "wall_secs",
            "decisions_per_sec",
        ],
        points.iter().map(|p| {
            vec![
                p.strategy.to_string(),
                p.shards.to_string(),
                p.cpus.to_string(),
                p.tenants.to_string(),
                p.decisions.to_string(),
                p.placed.to_string(),
                p.rejected.to_string(),
                p.departures.to_string(),
                p.probes.to_string(),
                p.placed_util_ppm.to_string(),
                p.oracle_util_ppm.to_string(),
                f(p.quality),
                f(p.sim_hit_rate),
                f(p.wall_secs),
                f(p.decisions_per_sec),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("cluster.csv"));

    if let Some(hub) = hub {
        set_stats_stream(None);
        let live = hub.finish();
        println!(
            "live stats: {} trials streamed over {} frames; final {}",
            live.total.trials,
            live.series.len(),
            live.total.headline()
        );
    }

    let bench_path = std::path::Path::new("BENCH_cluster.json");
    std::fs::write(bench_path, json(&points, overall_dps, hc.threads))
        .expect("write BENCH_cluster.json");
    println!("wrote {bench_path:?}");
}
