//! The node-wide thread table.
//!
//! Nautilus threads are kernel threads with explicitly managed stacks and
//! a compile-time bound on the total count (§3.3: "the maximum number of
//! threads in the whole system is determined at compile time"). The table
//! here mirrors that: a fixed-capacity slab with an explicit free list
//! (thread reaping / reanimation — the paper's thread-pool maintenance),
//! never reallocating.

use crate::program::{Program, ThreadId};
use nautix_des::Cycles;
use nautix_hw::CpuId;

/// Default system-wide thread bound, like Nautilus's compile-time maximum.
pub const MAX_THREADS: usize = 1024;

/// Life-cycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, queued on some local scheduler.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Blocked.
    Waiting(WaitKind),
    /// Exited; slot awaiting reap.
    Exited,
}

/// Why a thread is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// In a sleep until a wall-clock instant.
    Sleep,
    /// Spinning in a barrier.
    Barrier,
    /// Inside a blocking group operation (election, reduction, ...).
    Group,
    /// Waiting for work (task-exec or interrupt thread).
    Idle,
}

/// A kernel thread.
pub struct Thread {
    /// Debug name.
    pub name: String,
    /// The CPU this thread currently runs on.
    pub cpu: CpuId,
    /// Whether the thread is *bound* to its CPU (§2: Nautilus guarantees
    /// bound threads' state stays in the best zone; bound threads are
    /// never migrated). Only unbound aperiodic threads are work-stealing
    /// candidates (§3.4).
    pub bound: bool,
    /// Life-cycle state.
    pub state: ThreadState,
    /// The resumable body.
    pub program: Box<dyn Program>,
    /// Cycles of CPU actually consumed (thread-local accounting).
    pub cycles_used: Cycles,
    /// Whether this is the per-CPU idle thread.
    pub is_idle: bool,
    /// Address of the stack allocation backing this thread, if the node
    /// allocated one from the buddy system.
    pub stack: Option<usize>,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("name", &self.name)
            .field("cpu", &self.cpu)
            .field("state", &self.state)
            .field("program", &self.program.name())
            .finish()
    }
}

/// Fixed-capacity thread table with slot reuse.
pub struct ThreadTable {
    slots: Vec<Option<Thread>>,
    free: Vec<ThreadId>,
    live: usize,
    spawned: u64,
    reaped: u64,
}

impl ThreadTable {
    /// A table with the given capacity.
    pub fn new(capacity: usize) -> Self {
        ThreadTable {
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            live: 0,
            spawned: 0,
            reaped: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Return to an empty table of `capacity` slots, reusing the backing
    /// storage. The free list is rebuilt in the same order `new` builds it,
    /// so a reset table hands out ThreadIds in the same sequence as a fresh
    /// one — required for pooled trials to replay exactly.
    pub fn reset(&mut self, capacity: usize) {
        self.slots.clear();
        self.slots.resize_with(capacity, || None);
        self.free.clear();
        self.free.extend((0..capacity).rev());
        self.live = 0;
        self.spawned = 0;
        self.reaped = 0;
    }

    /// Live (spawned, unreaped) thread count.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Threads spawned over the table's lifetime.
    pub fn spawned(&self) -> u64 {
        self.spawned
    }

    /// Threads reaped over the table's lifetime.
    pub fn reaped(&self) -> u64 {
        self.reaped
    }

    /// Allocate a slot for a new thread. Fails when the compile-time bound
    /// is reached.
    pub fn spawn(&mut self, thread: Thread) -> Result<ThreadId, Thread> {
        let Some(tid) = self.free.pop() else {
            return Err(thread);
        };
        debug_assert!(self.slots[tid].is_none());
        self.slots[tid] = Some(thread);
        self.live += 1;
        self.spawned += 1;
        Ok(tid)
    }

    /// Reclaim an exited thread's slot (reaping). Returns its stack
    /// allocation, if any, for the caller to free.
    pub fn reap(&mut self, tid: ThreadId) -> Option<usize> {
        let slot = self.slots.get_mut(tid)?;
        match slot {
            Some(t) if t.state == ThreadState::Exited => {
                let stack = t.stack;
                *slot = None;
                self.free.push(tid);
                self.live -= 1;
                self.reaped += 1;
                stack
            }
            _ => None,
        }
    }

    /// Borrow a thread.
    pub fn get(&self, tid: ThreadId) -> Option<&Thread> {
        self.slots.get(tid).and_then(|s| s.as_ref())
    }

    /// Mutably borrow a thread.
    pub fn get_mut(&mut self, tid: ThreadId) -> Option<&mut Thread> {
        self.slots.get_mut(tid).and_then(|s| s.as_mut())
    }

    /// Borrow a thread, panicking on a dangling id (kernel invariant).
    pub fn expect(&self, tid: ThreadId) -> &Thread {
        self.get(tid).expect("dangling ThreadId")
    }

    /// Mutably borrow a thread, panicking on a dangling id.
    pub fn expect_mut(&mut self, tid: ThreadId) -> &mut Thread {
        self.get_mut(tid).expect("dangling ThreadId")
    }

    /// Iterate `(tid, thread)` over live threads.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, &Thread)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (i, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IdleLoop;

    fn mk(name: &str) -> Thread {
        Thread {
            name: name.into(),
            cpu: 0,
            bound: true,
            state: ThreadState::Ready,
            program: Box::new(IdleLoop::new(100)),
            cycles_used: 0,
            is_idle: false,
            stack: None,
        }
    }

    #[test]
    fn spawn_and_lookup() {
        let mut t = ThreadTable::new(4);
        let a = t.spawn(mk("a")).unwrap();
        let b = t.spawn(mk("b")).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.expect(a).name, "a");
        assert_eq!(t.expect(b).name, "b");
        assert_eq!(t.live(), 2);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut t = ThreadTable::new(2);
        t.spawn(mk("a")).unwrap();
        t.spawn(mk("b")).unwrap();
        assert!(t.spawn(mk("c")).is_err());
    }

    #[test]
    fn reap_recycles_slots() {
        let mut t = ThreadTable::new(2);
        let a = t.spawn(mk("a")).unwrap();
        t.spawn(mk("b")).unwrap();
        t.expect_mut(a).state = ThreadState::Exited;
        t.expect_mut(a).stack = Some(0xBEEF);
        assert_eq!(t.reap(a), Some(0xBEEF));
        assert_eq!(t.live(), 1);
        let c = t.spawn(mk("c")).unwrap();
        assert_eq!(c, a, "slot should be reused");
        assert_eq!(t.spawned(), 3);
        assert_eq!(t.reaped(), 1);
    }

    #[test]
    fn reap_refuses_non_exited_threads() {
        let mut t = ThreadTable::new(2);
        let a = t.spawn(mk("a")).unwrap();
        assert_eq!(t.reap(a), None);
        assert_eq!(t.live(), 1);
        assert!(t.get(a).is_some());
    }

    #[test]
    fn iter_skips_holes() {
        let mut t = ThreadTable::new(4);
        let a = t.spawn(mk("a")).unwrap();
        let b = t.spawn(mk("b")).unwrap();
        t.expect_mut(a).state = ThreadState::Exited;
        t.reap(a);
        let names: Vec<_> = t.iter().map(|(_, th)| th.name.clone()).collect();
        assert_eq!(names, vec!["b"]);
        assert_eq!(t.iter().next().unwrap().0, b);
    }
}
