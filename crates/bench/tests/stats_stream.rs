//! Satellite 3: the streaming stats layer is a pure refactoring of
//! single-threaded accounting — merging the per-trial delta snapshots
//! that N harness workers publish gives byte-for-byte the totals a
//! serial accumulation produces, and the published stream file parses
//! back to the same numbers.
//!
//! The installed stream is process-global state, so everything that
//! touches it lives in ONE `#[test]` (integration tests in a file share
//! a process and run on parallel threads).

use nautix_bench::harness::run_trials_pooled;
use nautix_bench::{set_stats_stream, Scenario};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;
use nautix_stats::{Frame, HubOptions, StatsHub, StatsSnapshot};

/// A small mixed batch: both workload families, several seeds.
fn batch() -> Vec<Scenario> {
    let mut v = Vec::new();
    for seed in [5u64, 6, 7] {
        v.push(Scenario::missrate(Platform::Phi, 100_000, 30_000, 40, seed));
        v.push(Scenario::fault_mix(1.0, 30_000, 60, 150, seed));
    }
    // An infeasible point so the batch genuinely records misses.
    v.push(Scenario::missrate(Platform::Phi, 10_000, 7_000, 60, 5));
    v.push(Scenario::missrate(Platform::R415, 50_000, 10_000, 30, 9));
    v.push(Scenario::competing(200_000, 20_000, 30, 77));
    v
}

#[test]
fn fanned_worker_deltas_merge_to_the_serial_totals() {
    let scenarios = batch();

    // Ground truth: serial accumulation, no hub anywhere.
    let mut expect = StatsSnapshot::default();
    for sc in &scenarios {
        expect.merge(&sc.run_fresh().unwrap().snapshot);
    }
    assert_eq!(expect.trials, scenarios.len() as u64);
    assert!(expect.events > 0 && expect.missed > 0 && expect.faults_total() > 0);

    // Fanned: 4 workers streaming deltas + beats into a hub that also
    // publishes frames to a file.
    let stream_path =
        std::env::temp_dir().join(format!("nautix-stats-test-{}.stream", std::process::id()));
    let hub = StatsHub::start(HubOptions {
        stream_path: Some(stream_path.clone()),
        flush_every: Some(std::time::Duration::from_millis(1)),
        ..HubOptions::default()
    });
    let prev = set_stats_stream(Some(hub.tx()));
    let outs = run_trials_pooled(
        &HarnessConfig::with_threads(4),
        scenarios.clone(),
        |pool, sc| {
            let out = sc.run_recorded(pool).unwrap();
            let events = out.events;
            (out, events)
        },
    );
    set_stats_stream(prev);
    let report = hub.finish();

    // The golden equality: worker-merged == serial, byte for byte.
    assert_eq!(report.total, expect);
    assert_eq!(report.total.to_text(), expect.to_text());

    // Beats feed the shard table without touching totals: shard trial
    // and event sums must both equal the batch totals.
    assert_eq!(
        report.shards.iter().map(|s| s.trials).sum::<u64>(),
        expect.trials
    );
    assert_eq!(
        report.shards.iter().map(|s| s.events).sum::<u64>(),
        expect.events
    );

    // The last published frame matches the final totals and survives a
    // file round-trip.
    let frame = Frame::read(&stream_path).expect("stream file parses");
    assert_eq!(frame.snapshot, expect);
    assert_eq!(
        outs.results.iter().map(|o| o.events).sum::<u64>(),
        expect.events
    );
    let _ = std::fs::remove_file(&stream_path);

    // Re-running the same batch serially through the harness (1 thread,
    // fresh hub) must stream the identical total: order independence.
    let hub2 = StatsHub::start(HubOptions::default());
    let prev = set_stats_stream(Some(hub2.tx()));
    run_trials_pooled(&HarnessConfig::with_threads(1), scenarios, |pool, sc| {
        let out = sc.run_recorded(pool).unwrap();
        let events = out.events;
        (out, events)
    });
    set_stats_stream(prev);
    assert_eq!(hub2.finish().total, expect);
}
