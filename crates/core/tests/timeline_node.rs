//! The timeline recorder wired into a live node.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{Node, NodeConfig};

#[test]
fn node_timeline_captures_periodic_execution() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(3).with_seed(91);
    let mut node = Node::new(cfg);
    node.record_timeline(10_000);
    for cpu in 1..3 {
        let prog = FnProgram::new(move |_cx, n| {
            if n == 0 {
                Action::Call(SysCall::ChangeConstraints(
                    Constraints::periodic(
                        200_000,
                        80_000 * cpu as u64 / 2, // different duty per CPU
                    )
                    .build(),
                ))
            } else {
                Action::Compute(1_000_000)
            }
        });
        node.spawn_on(cpu, &format!("p{cpu}"), Box::new(prog))
            .unwrap();
    }
    node.run_for_ns(5_000_000);
    let tl = node.take_timeline().expect("recording was enabled");
    // Spans exist on both worker CPUs and alternate thread/idle.
    for cpu in 1..3usize {
        let spans: Vec<_> = tl.spans().iter().filter(|s| s.cpu == cpu).collect();
        assert!(spans.len() > 20, "cpu {cpu} has only {} spans", spans.len());
        assert!(spans.iter().any(|s| s.tid.is_some()));
        assert!(spans.iter().any(|s| s.tid.is_none()), "idle gaps expected");
        // Spans are time-ordered and non-overlapping per CPU.
        for w in spans.windows(2) {
            assert!(w[0].end_ns <= w[1].start_ns);
        }
    }
    // The rendering covers both CPUs with distinct symbols.
    let pic = tl.render(1_000_000, 3_000_000, 80);
    assert!(pic.contains("cpu   1 |"));
    assert!(pic.contains("cpu   2 |"));
    assert!(pic.contains("legend:"));
    // CPU 2's thread has twice CPU 1's duty cycle: more letters per row.
    let letters = |row: &str| {
        row.chars()
            .filter(|c| c.is_ascii_alphabetic() && *c != 'c' && *c != 'p' && *c != 'u')
            .count()
    };
    let rows: Vec<&str> = pic.lines().filter(|l| l.starts_with("cpu")).collect();
    assert!(
        letters(rows[1]) > letters(rows[0]),
        "higher duty cycle must show denser occupancy:\n{pic}"
    );
}

#[test]
fn timeline_disabled_by_default() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(92);
    let mut node = Node::new(cfg);
    node.spawn_on(
        1,
        "t",
        Box::new(nautix_kernel::Script::new(vec![Action::Compute(1000)])),
    )
    .unwrap();
    node.run_until_quiescent();
    assert!(node.take_timeline().is_none());
}
