//! Cancellable, deterministically ordered event queue.
//!
//! The queue is a binary heap keyed on `(time, sequence)` where the sequence
//! number is assigned at insertion. Two events scheduled for the same
//! instant therefore fire in insertion order, which keeps whole-machine
//! simulations reproducible regardless of hash-map iteration order or other
//! environmental noise.
//!
//! Cancellation is *lazy*: `cancel` records the event id, and cancelled
//! entries are discarded as they surface. This makes re-programming a
//! one-shot APIC timer (the dominant use) O(log n) without heap surgery.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Cycles;

/// Identifier of a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number. Exposed for trace output only.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycles,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.id).cmp(&(other.time, other.id))
    }
}

/// A deterministic future-event list.
///
/// `E` is the event payload type chosen by the simulation layer (the
/// hardware model uses a fixed enum of machine events).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    now: Cycles,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            now: 0,
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: the simulation layers above never
    /// schedule retroactive events, so this is always a logic error worth
    /// failing loudly on.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            id,
            payload,
        }));
        id
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) -> EventId {
        let at = self.now.checked_add(delay).expect("simulation time overflow");
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op; the return value
    /// says whether the cancellation might still take effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.id, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<Cycles> {
        // Drop cancelled heads so the answer reflects a live event.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let id = entry.id;
                self.heap.pop();
                self.cancelled.remove(&id);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently in the heap, including not-yet-collected
    /// cancelled entries. Intended for tests and capacity diagnostics.
    pub fn backlog(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        q.schedule(9, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, "a");
        q.schedule(2, "b");
        assert!(q.cancel(a));
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, "first");
        q.pop();
        // The id was consumed; cancelling it again must not poison a future id.
        q.cancel(a);
        let b = q.schedule(2, "live");
        assert_ne!(a, b);
        assert_eq!(q.pop().unwrap().2, "live");
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, ());
        q.schedule(5, ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(5));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, 150);
    }

    #[test]
    fn events_processed_counts_live_only() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, ());
        q.schedule(2, ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 1);
    }
}
