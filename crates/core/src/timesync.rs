//! Boot-time cross-CPU time synchronization (§3.4).
//!
//! "At boot time, the local schedulers interact via a barrier-like
//! mechanism to estimate the phase of each CPU's cycle counter relative to
//! the first CPU's cycle counter, which is defined as being synchronized to
//! wall clock time. ... In machines that support it, we write the cycle
//! counter with predicted values to account for the phase difference. ...
//! As both the phase measurement and cycle counter updates happen using
//! instruction sequences whose own granularity is larger than a cycle, the
//! calibration does necessarily have an error, which we then estimate and
//! account for."
//!
//! The estimator below is the classic one-way-timestamp exchange with
//! min-filtering: CPU 0 publishes its counter through a shared cache line;
//! the peer timestamps the observation; the offset estimate is the
//! difference minus the nominal propagation delay. The minimum over many
//! rounds suppresses most of the (one-sided) propagation jitter; what
//! remains — and the slop of the TSC write itself — is the residual error
//! Figure 3 histograms at under ~1000 cycles across 256 CPUs.

use nautix_des::{Cycles, Histogram, Summary};
use nautix_hw::{CpuId, Machine};

/// Outcome of calibrating one node.
#[derive(Debug, Clone)]
pub struct TimeSync {
    /// Per-CPU wall-clock correction, in cycles: subtract this from the
    /// CPU's TSC to get wall-clock cycles. Zero where the TSC was written
    /// directly.
    pub correction: Vec<i64>,
    /// Residual error vs. ground truth, per CPU (cycles, absolute).
    /// Available only because the simulator knows the true offsets —
    /// exactly the external view Figure 3 needs.
    pub residual: Vec<u64>,
}

impl TimeSync {
    /// Identity sync for a machine treated as perfectly synchronized.
    pub fn perfect(n_cpus: usize) -> Self {
        TimeSync {
            correction: vec![0; n_cpus],
            residual: vec![0; n_cpus],
        }
    }

    /// Residual summary across CPUs (excluding CPU 0, the reference).
    pub fn residual_summary(&self) -> Summary {
        Summary::of(&self.residual[1..self.residual.len().max(1)])
    }

    /// Residual histogram, Figure-3 style: bins of `width` cycles from 0.
    pub fn residual_histogram(&self, width: u64, bins: usize) -> Histogram {
        let mut h = Histogram::new(0, width, bins);
        for &r in &self.residual[1..] {
            h.record(r);
        }
        h
    }
}

/// Estimate CPU `peer`'s TSC offset relative to CPU 0 with `rounds`
/// one-way exchanges, min-filtered.
fn estimate_offset(m: &mut Machine, peer: CpuId, rounds: u32) -> i64 {
    let transfer = m.cost_model().barrier_release_stagger;
    let gran = m.cost_model().tsc_read_granularity;
    let nominal = (transfer.base + transfer.jitter / 2 + gran.base) as i64;
    let mut best: Option<i64> = None;
    for _ in 0..rounds {
        let t0 = m.read_tsc(0) as i64;
        // The peer observes the publication one propagation delay later and
        // timestamps it with read-granularity slop.
        let delay = (m.draw(transfer) + m.draw(gran)) as i64;
        let t_peer = m.read_tsc(peer) as i64 + delay;
        let est = t_peer - t0 - nominal;
        best = Some(match best {
            None => est,
            // The smallest |estimate| corresponds to the round with the
            // least propagation jitter.
            Some(b) => {
                if est.abs() < b.abs() {
                    est
                } else {
                    b
                }
            }
        });
    }
    best.unwrap_or(0)
}

/// Run the boot-time calibration on every CPU. Where the hardware supports
/// TSC writes the counters themselves are corrected (correction 0);
/// otherwise the estimated offset is kept as a software correction.
pub fn calibrate(m: &mut Machine, rounds: u32) -> TimeSync {
    let n = m.n_cpus();
    let mut correction = vec![0i64; n];
    let mut residual = vec![0u64; n];
    for cpu in 1..n {
        let est = estimate_offset(m, cpu, rounds);
        if m.adjust_tsc(cpu, -est) {
            // Hardware write: the counter now carries the (slop-bearing)
            // corrected phase; no software correction needed.
            correction[cpu] = 0;
            residual[cpu] = m.tsc_true_offset(cpu).unsigned_abs();
        } else {
            correction[cpu] = est;
            residual[cpu] = (m.tsc_true_offset(cpu) - est).unsigned_abs();
        }
    }
    TimeSync {
        correction,
        residual,
    }
}

/// A CPU's wall-clock reading in cycles: its TSC minus its correction.
/// Clamped at zero: within the first residual-sized window after boot a
/// software-corrected clock can read "before boot".
pub fn wall_cycles(m: &Machine, sync: &TimeSync, cpu: CpuId) -> Cycles {
    let t = m.read_tsc(cpu) as i64 - sync.correction[cpu];
    t.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_hw::MachineConfig;

    #[test]
    fn calibration_brings_256_cpus_within_1000_cycles() {
        // The Figure 3 claim: "we keep cycle counters within 1000 cycles
        // across 256 CPUs."
        let mut m = Machine::new(MachineConfig::phi().with_seed(11));
        let sync = calibrate(&mut m, 16);
        let s = sync.residual_summary();
        assert_eq!(s.n, 255);
        assert!(
            s.max <= 1000,
            "worst residual {} exceeds the paper's 1000-cycle envelope",
            s.max
        );
        assert!(
            s.mean > 0.0,
            "a zero-mean residual would be unrealistically good"
        );
    }

    #[test]
    fn calibration_improves_on_boot_skew() {
        let mut m = Machine::new(MachineConfig::phi().with_cpus(16).with_seed(3));
        let raw: Vec<u64> = (0..16)
            .map(|c| m.tsc_true_offset(c).unsigned_abs())
            .collect();
        let sync = calibrate(&mut m, 16);
        let raw_max = raw.iter().max().copied().unwrap();
        assert!(
            sync.residual_summary().max < raw_max / 10,
            "calibration should shrink skew by over an order of magnitude"
        );
    }

    #[test]
    fn unwritable_tsc_uses_software_correction() {
        let mut cfg = MachineConfig::phi().with_cpus(8).with_seed(5);
        cfg.tsc_writable = false;
        let mut m = Machine::new(cfg);
        let sync = calibrate(&mut m, 16);
        assert!(
            (1..8).any(|c| sync.correction[c] != 0),
            "software corrections expected without TSC writes"
        );
        // Wall-clock readings still agree across CPUs to the residual.
        let w0 = wall_cycles(&m, &sync, 0);
        for c in 1..8 {
            let wc = wall_cycles(&m, &sync, c);
            let diff = wc.abs_diff(w0);
            assert!(diff <= 1_500, "cpu {c} wall clock off by {diff}");
        }
    }

    #[test]
    fn histogram_covers_all_cpus() {
        let mut m = Machine::new(MachineConfig::phi().with_seed(7));
        let sync = calibrate(&mut m, 16);
        let h = sync.residual_histogram(50, 40); // 0..2000 in 50-cycle bins
        assert_eq!(h.count() + h.overflow(), 255 + h.overflow());
        assert_eq!(h.count(), 255);
        // The bulk must sit well below 1000 cycles.
        assert!(h.fraction_below(1000) > 0.95);
    }

    #[test]
    fn perfect_sync_is_identity() {
        let s = TimeSync::perfect(4);
        assert_eq!(s.correction, vec![0; 4]);
        assert_eq!(s.residual_summary().max, 0);
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::new(MachineConfig::phi().with_cpus(32).with_seed(seed));
            calibrate(&mut m, 8).residual
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
