//! Time-sharing with performance isolation (§1):
//!
//! "Perfectly predictable timing behavior can also be the cornerstone for
//! achieving performance isolation within a time-sharing model, with its
//! promise for better resource utilization."
//!
//! Two gangs time-share the *same* CPUs under complementary hard real-time
//! constraints (40% + 40% of every period). The test of isolation: gang
//! A's execution time with B present equals its time alone — B runs in
//! time A never owned. The non-real-time baseline shows the opposite:
//! co-running reshapes both workloads' timing.

use nautix_bsp::{collect_bsp, spawn_bsp, BspMode, BspParams};
use nautix_des::Nanos;
use nautix_hw::MachineConfig;
use nautix_rt::{Node, NodeConfig, SchedConfig};

/// Result of one isolation measurement.
#[derive(Debug, Clone, Copy)]
pub struct IsolationPoint {
    /// Gang A alone, ns.
    pub alone_ns: Nanos,
    /// Gang A with gang B co-resident on the same CPUs, ns.
    pub shared_ns: Nanos,
    /// Slowdown from co-residency (1.0 = perfect isolation).
    pub interference: f64,
    /// Gang A's deadline misses while sharing.
    pub misses: u64,
}

fn node(workers: usize, seed: u64) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(workers + 1).with_seed(seed);
    cfg.sched = SchedConfig::throughput();
    Node::new(cfg)
}

fn gang_params(workers: usize, iters: u64, rt: bool) -> BspParams {
    let base = BspParams::fine(workers, iters);
    if rt {
        base.with_mode(BspMode::RtGroup {
            period: 1_000_000,
            slice: 400_000, // 40%: two such gangs co-schedule exactly
        })
    } else {
        base
    }
}

/// Measure gang A's sensitivity to a co-resident gang B on the same CPUs.
pub fn measure(rt: bool, workers: usize, iters: u64, seed: u64) -> IsolationPoint {
    // Alone.
    let mut n1 = node(workers, seed);
    let a_alone = spawn_bsp(&mut n1, gang_params(workers, iters, rt), 1);
    n1.run_until_quiescent();
    let alone = collect_bsp(&n1, &a_alone);
    assert!(alone.admitted, "gang A must admit alone");

    // Shared: gangs A and B on the same CPUs.
    let mut n2 = node(workers, seed);
    let a = spawn_bsp(&mut n2, gang_params(workers, iters, rt), 1);
    let b = spawn_bsp(&mut n2, gang_params(workers, iters, rt), 1);
    n2.run_until_quiescent();
    let ra = collect_bsp(&n2, &a);
    let rb = collect_bsp(&n2, &b);
    assert!(ra.admitted && rb.admitted, "both gangs must admit");
    IsolationPoint {
        alone_ns: alone.max_ns,
        shared_ns: ra.max_ns,
        interference: ra.max_ns as f64 / alone.max_ns.max(1) as f64,
        misses: ra.misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_rt_gangs_time_share_without_interference() {
        let p = measure(true, 4, 40, 131);
        assert_eq!(p.misses, 0);
        assert!(
            (0.95..1.1).contains(&p.interference),
            "a 40% gang must be unaffected by a co-resident 40% gang \
             (interference {})",
            p.interference
        );
    }

    #[test]
    fn best_effort_co_running_interferes() {
        let p = measure(false, 4, 40, 131);
        assert!(
            p.interference > 1.5,
            "aperiodic co-running must reshape timing (interference {})",
            p.interference
        );
    }

    #[test]
    fn rt_beats_best_effort_on_isolation() {
        let rt = measure(true, 4, 30, 77);
        let be = measure(false, 4, 30, 77);
        assert!(rt.interference < be.interference);
    }
}
