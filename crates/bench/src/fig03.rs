//! Figure 3: cross-CPU cycle counter synchronization on the Phi.
//!
//! "We keep cycle counters within 1000 cycles across 256 CPUs." The figure
//! is a histogram of each CPU's post-calibration offset from CPU 0.

use crate::common::Scale;
use nautix_des::Summary;
use nautix_hw::{Machine, MachineConfig};
use nautix_rt::timesync;

/// One histogram bin.
#[derive(Debug, Clone, Copy)]
pub struct Bin {
    /// Lower edge, cycles.
    pub edge: u64,
    /// CPUs in the bin.
    pub count: u64,
}

/// The experiment's output.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// CPUs calibrated (excluding the CPU 0 reference).
    pub cpus: usize,
    /// Histogram of residual offsets (50-cycle bins over 0..2000).
    pub bins: Vec<Bin>,
    /// Residual summary.
    pub summary: Summary,
    /// CPUs beyond the 1000-cycle envelope the paper reports.
    pub over_1000: u64,
}

/// Run the calibration experiment.
pub fn run(scale: Scale, seed: u64) -> Fig03 {
    let cpus = match scale {
        Scale::Quick => 64,
        Scale::Paper => 256,
    };
    let mut m = Machine::new(MachineConfig::phi().with_cpus(cpus).with_seed(seed));
    let sync = timesync::calibrate(&mut m, 16);
    let h = sync.residual_histogram(50, 40);
    let bins = h.iter().map(|(edge, count)| Bin { edge, count }).collect();
    let over_1000 = sync.residual[1..].iter().filter(|&&r| r > 1000).count() as u64;
    Fig03 {
        cpus: cpus - 1,
        bins,
        summary: sync.residual_summary(),
        over_1000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residuals_match_the_papers_envelope() {
        let r = run(Scale::Paper, 42);
        assert_eq!(r.cpus, 255);
        assert_eq!(r.over_1000, 0, "paper: within 1000 cycles across 256 CPUs");
        assert!(r.summary.mean > 0.0 && r.summary.mean < 800.0);
        let total: u64 = r.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 255);
    }
}
