//! Property-based tests of the scheduler's core invariants: admission
//! soundness, ledger conservation, phase-correction alignment, EDF
//! simulation consistency, and calibration bounds.

use nautix_kernel::Constraints;
use nautix_rt::admission::simulate_edf_feasible;
use nautix_rt::{compile_cyclic, CpuLoad, CyclicTask, SchedConfig, PPM};
use proptest::prelude::*;

fn arb_periodic() -> impl Strategy<Value = Constraints> {
    // Periods 10 µs .. 10 ms (multiples of the 100 ns granularity),
    // slices 5..90% of the period.
    (100u64..100_000, 5u64..90).prop_map(|(p100, pct)| {
        let period = p100 * 100;
        let slice = (period * pct / 100).max(500);
        Constraints::periodic(period, slice)
    })
}

proptest! {
    /// The EDF-bound ledger never admits past its budget, and the admitted
    /// utilization it reports is exactly the sum of the admitted tasks'.
    #[test]
    fn ledger_conserves_utilization(cs in prop::collection::vec(arb_periodic(), 1..20)) {
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        let mut admitted: Vec<Constraints> = Vec::new();
        for c in &cs {
            if load.admit(&cfg, c).is_ok() {
                admitted.push(*c);
            }
        }
        let expect: u64 = admitted.iter().map(|c| c.utilization_ppm()).sum();
        prop_assert_eq!(load.periodic_util_ppm(), expect);
        prop_assert!(load.periodic_util_ppm() <= cfg.periodic_budget_ppm());
        // Releasing everything drains the ledger completely.
        for c in &admitted {
            load.release(c);
        }
        prop_assert_eq!(load.periodic_util_ppm(), 0);
        prop_assert_eq!(load.periodic_count(), 0);
    }

    /// A rejected admission leaves the ledger exactly as it was.
    #[test]
    fn rejection_is_side_effect_free(
        cs in prop::collection::vec(arb_periodic(), 1..12),
        greedy_pct in 85u64..99,
    ) {
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        for c in &cs {
            let _ = load.admit(&cfg, c);
        }
        let before_util = load.periodic_util_ppm();
        let before_count = load.periodic_count();
        // An oversized request that must fail.
        let hog = Constraints::periodic(1_000_000, greedy_pct * 10_000);
        if load.admit(&cfg, &hog).is_err() {
            prop_assert_eq!(load.periodic_util_ppm(), before_util);
            prop_assert_eq!(load.periodic_count(), before_count);
        } else {
            // It fit; release to restore.
            load.release(&hog);
            prop_assert_eq!(load.periodic_util_ppm(), before_util);
        }
    }

    /// Any set the EDF bound admits at <=100% is feasible in the
    /// zero-overhead EDF simulation (Liu & Layland optimality), and adding
    /// overhead can only ever make a feasible set infeasible, not the
    /// reverse.
    #[test]
    fn edf_bound_agrees_with_simulation(cs in prop::collection::vec(arb_periodic(), 1..6)) {
        let util: u64 = cs.iter().map(|c| c.utilization_ppm()).sum();
        let set: Vec<(u64, u64)> = cs
            .iter()
            .map(|c| match *c {
                Constraints::Periodic { period, slice, .. } => (period, slice),
                _ => unreachable!(),
            })
            .collect();
        let window = 50_000_000; // cap the hyperperiod for test speed
        if util <= PPM {
            prop_assert!(
                simulate_edf_feasible(&set, 0, window),
                "EDF-optimal: any set within 100% utilization is schedulable"
            );
        }
        if !simulate_edf_feasible(&set, 0, window) {
            prop_assert!(
                !simulate_edf_feasible(&set, 5_000, window),
                "overhead can never rescue an infeasible set"
            );
        }
    }

    /// Phase correction aligns all first arrivals to the same instant,
    /// regardless of release order, group size, or measured delta.
    #[test]
    fn phase_correction_aligns_arrivals(
        n in 2usize..256,
        delta in 0u64..10_000,
        phase in 0u64..1_000_000,
    ) {
        let arrivals: Vec<u64> = (0..n)
            .map(|i| {
                let departure = i as u64 * delta;
                departure + nautix_groups::corrected_phase(phase, i, n, delta)
            })
            .collect();
        prop_assert!(arrivals.windows(2).all(|w| w[0] == w[1]));
    }

    /// Calibration keeps residuals within the paper's envelope for any
    /// seed, and wall clocks agree across CPUs afterwards.
    #[test]
    fn calibration_envelope_holds_for_any_seed(seed in 0u64..5_000) {
        let mut m = nautix_hw::Machine::new(
            nautix_hw::MachineConfig::phi().with_cpus(16).with_seed(seed),
        );
        let sync = nautix_rt::calibrate(&mut m, 16);
        let s = sync.residual_summary();
        prop_assert!(s.max <= 1_200, "residual {} beyond envelope (seed {})", s.max, seed);
    }

    /// Sporadic admissions and releases keep the reservation accounting
    /// balanced.
    #[test]
    fn sporadic_reservation_balances(
        bursts in prop::collection::vec((500u64..50_000, 100_000u64..1_000_000), 1..12),
    ) {
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        let mut admitted = Vec::new();
        for &(size, deadline) in &bursts {
            let c = Constraints::sporadic(size, deadline);
            if load.admit(&cfg, &c).is_ok() {
                admitted.push(c);
            }
            prop_assert!(load.sporadic_util_ppm() <= cfg.sporadic_reserve_ppm);
        }
        for c in &admitted {
            load.release(c);
        }
        prop_assert_eq!(load.sporadic_util_ppm(), 0);
    }
}

fn arb_cyclic_set() -> impl Strategy<Value = Vec<CyclicTask>> {
    // Periods drawn from a harmonic-friendly menu keep hyperperiods small.
    let menu = prop::sample::select(vec![
        50_000u64, 100_000, 200_000, 250_000, 400_000, 500_000, 1_000_000,
    ]);
    prop::collection::vec((menu, 2u64..40), 1..5).prop_map(|v| {
        v.into_iter()
            .map(|(period, pct)| CyclicTask {
                period,
                wcet: (period * pct / 100).max(1_000),
            })
            .collect()
    })
}

proptest! {
    /// Whatever table the cyclic compiler emits must pass its own
    /// verifier: every instance placed fully inside its window, frames
    /// never overfull.
    #[test]
    fn cyclic_tables_always_verify(set in arb_cyclic_set()) {
        if let Ok(s) = compile_cyclic(&set) {
            prop_assert!(s.verify().is_ok(), "emitted table failed verification");
            prop_assert_eq!(s.hyperperiod % s.frame, 0);
            prop_assert!(s.peak_frame_load() <= s.frame);
        }
    }

    /// The compiler never accepts an over-utilized set and never rejects
    /// a single-task set with utilization <= 100% whose period admits a
    /// valid frame (the task's own period always does).
    #[test]
    fn cyclic_compiler_boundaries(period in 10_000u64..1_000_000, pct in 1u64..101) {
        let wcet = (period * pct / 100).max(1);
        let res = compile_cyclic(&[CyclicTask { period, wcet }]);
        if pct <= 100 {
            prop_assert!(res.is_ok(), "single feasible task must compile: {res:?}");
        } else {
            prop_assert!(res.is_err());
        }
    }
}
