//! Cluster-scale multi-tenant admission: many [`nautix_rt::Node`] shards
//! behind one typed placement API.
//!
//! The paper admits hard real-time gangs onto *one* shared-memory node.
//! This crate asks the next question up the stack: given a fleet of such
//! nodes and a churning population of tenants — each a gang with periodic
//! constraints and a finite residency — which shard should take each
//! gang, and how much does the placement policy cost relative to a fluid
//! oracle? The layering mirrors the node's own admission design: policies
//! ([`PlacementPolicy`]) only *order* shards; the mechanism (one
//! all-or-nothing team admission per candidate via
//! [`nautix_rt::AdmissionRequest`]) is owned by the engine, so no policy
//! can place a gang the per-CPU ledgers would not certify.
//!
//! * [`tenant`] — [`TenantRequest`] and the deterministic heavy-tailed
//!   [`TenantStream`],
//! * [`policy`] — the [`PlacementStrategy`] palette: first-fit, best-fit
//!   by ledger utilization, power-of-two-choices, and the RT-Gang-style
//!   one-gang-per-shard baseline,
//! * [`cluster`] — [`ClusterConfig`], the reusable [`Fleet`], and the
//!   [`run`] / [`run_fresh`] / [`run_with_policy`] entry points producing
//!   a [`ClusterOutcome`].
//!
//! Everything is a pure function of [`ClusterConfig`] (see the
//! determinism tests): the replay layer records a cluster scenario as a
//! handful of integers and a strategy name.

pub mod cluster;
pub mod policy;
pub mod tenant;

pub use cluster::{
    run, run_fresh, run_with_policy, ClusterConfig, ClusterOutcome, Fleet, PlacementOutcome,
};
pub use policy::{ClusterView, PlacementPolicy, PlacementStrategy, ScriptedPolicy, ShardView};
pub use tenant::{TenantRequest, TenantStream, PERIODS_NS, UTILS_PPM};
