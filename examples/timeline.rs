//! Watch a gang schedule execute: record the node's context switches and
//! render the lock-step pattern as an ASCII timeline — the whole-machine
//! version of the paper's oscilloscope.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use nautix::kernel::{FnProgram, GroupId, SysCall};
use nautix::prelude::*;

fn main() {
    let n = 4;
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(n + 1).with_seed(17);
    let mut node = Node::new(cfg);
    node.record_timeline(100_000);
    let gid = GroupId(0);
    for i in 0..n {
        let prog = FnProgram::new(move |_cx, step| {
            let k = if i == 0 { step } else { step + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "gang" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(2_000_000)),
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::Periodic {
                        phase: 500_000,
                        period: 200_000, // 200 µs period
                        slice: 80_000,   // 40% slice
                    },
                }),
                _ => Action::Compute(1_000_000),
            }
        });
        node.spawn_on(i + 1, &format!("g{i}"), Box::new(prog))
            .unwrap();
    }
    node.run_for_ns(8_000_000);
    let tl = node.take_timeline().unwrap();
    // Render 1.2 ms of steady-state gang execution (6 periods).
    let from = 5_000_000;
    let to = from + 1_200_000;
    println!(
        "4-thread hard real-time gang, τ=200µs σ=80µs, {}..{} µs:\n",
        from / 1000,
        to / 1000
    );
    print!("{}", tl.render(from, to, 96));
    println!(
        "\neach row is one CPU; letters are gang members, dots are idle.\n\
         the columns line up because the schedulers coordinate only\n\
         through synchronized wall-clock time (§4.1)."
    );
}
