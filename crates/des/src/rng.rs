//! Deterministic pseudo-randomness for simulations.
//!
//! All stochastic elements of the hardware model (boot skew, interrupt
//! latency jitter, SMI arrival processes, measurement granularity noise)
//! draw from a [`DetRng`] seeded from the experiment configuration, so a
//! given configuration always produces the same trace.
//!
//! The generator is a self-contained xoshiro256++ (the algorithm behind
//! `rand::rngs::SmallRng` on 64-bit targets), seeded through SplitMix64.
//! Keeping it in-tree removes the only external runtime dependency and
//! guarantees the stream never shifts underneath recorded experiment
//! results when a crate version would have bumped.

/// A small, fast, explicitly seeded PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed deterministically. Equal seeds give equal streams.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as specified by the xoshiro authors (and used by SmallRng).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Derive an independent child stream, e.g. one per CPU, such that the
    /// per-CPU streams do not depend on event interleaving.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let s = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from(s)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty uniform range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 64-bit range.
            return self.next_u64();
        }
        // Lemire's unbiased multiply-shift rejection sampling.
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(span as u128);
            if m as u64 >= threshold {
                return lo.wrapping_add((m >> 64) as u64);
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 uniformly random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A jittered duration: `base` plus a uniform draw in `[0, spread]`.
    ///
    /// This is the standard noise shape for modeled hardware costs: a fixed
    /// path length plus bounded variation (cache state, pipeline state).
    pub fn jitter(&mut self, base: u64, spread: u64) -> u64 {
        if spread == 0 {
            base
        } else {
            base + self.uniform(0, spread)
        }
    }

    /// An exponentially distributed duration with the given mean, for
    /// Poisson arrival processes (e.g. SMI injection). Clamped to at least 1.
    pub fn exponential(&mut self, mean: f64) -> u64 {
        assert!(mean > 0.0);
        let u = self.unit().max(f64::MIN_POSITIVE);
        ((-u.ln()) * mean).round().max(1.0) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0, 1_000_000), b.uniform(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut root1 = DetRng::seed_from(7);
        let mut root2 = DetRng::seed_from(7);
        let mut a1 = root1.fork(0);
        let mut a2 = root2.fork(0);
        for _ in 0..32 {
            assert_eq!(a1.uniform(0, 1000), a2.uniform(0, 1000));
        }
        let mut b1 = root1.fork(1);
        let s_a: Vec<u64> = (0..8).map(|_| a1.uniform(0, 1 << 30)).collect();
        let s_b: Vec<u64> = (0..8).map(|_| b1.uniform(0, 1 << 30)).collect();
        assert_ne!(s_a, s_b);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = DetRng::seed_from(3);
        for _ in 0..1000 {
            let v = r.jitter(100, 50);
            assert!((100..=150).contains(&v));
        }
        assert_eq!(r.jitter(77, 0), 77);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = DetRng::seed_from(9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.exponential(500.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 500.0).abs() < 25.0, "mean={mean}");
    }

    #[test]
    fn uniform_inclusive_endpoints_reachable() {
        let mut r = DetRng::seed_from(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.uniform(0, 3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_range_uniform_does_not_loop_forever() {
        let mut r = DetRng::seed_from(13);
        // span == 2^64 takes the raw-output fast path.
        let _ = r.uniform(0, u64::MAX);
    }
}
