//! Topology scale sweep: flat vs tree machines at 256/512/1024 CPUs.
//!
//! The paper's evaluation models its machines as uniform-cost nodes; this
//! sweep asks what changes when the machine model grows a package → LLC →
//! core tree (DESIGN.md §6e). Three workloads per (CPU count, topology)
//! cell:
//!
//! * **missrate** — the Figure 6 probe replicated onto every CPU: one
//!   always-runnable periodic thread per core, measuring whether the
//!   feasibility story survives 1024 schedulers ticking at once;
//! * **groupsync** — the Figure 11/12 gang-dispatch experiment at a group
//!   size near the machine size: gang coordination is deliberately
//!   communication-free (schedulers sync through wall-clock time alone),
//!   so this checks the spread story survives scale and topology;
//! * **irq_fanout** — the kick-heavy workload: one interrupt-waiter per
//!   device line spread across the machine, A/B-ing
//!   [`Node::steer_irq_near`] placement against the default round-robin —
//!   this is where cross-package kick fraction is measured;
//! * **steal storm** — backlog piled on one CPU per LLC-sized block, run
//!   under [`StealPolicy::LlcFirst`] and [`StealPolicy::Uniform`]: the
//!   A/B that LLC-biased stealing wins on locality hit rate and simulated
//!   makespan.
//!
//! Every metric reported here except wall-clock throughput is
//! deterministic — a trial depends only on its parameters, so the
//! flat-vs-tree determinism suite can compare whole sweeps across thread
//! counts and pooled-vs-fresh nodes.

use crate::common::Scale;
use crate::harness::{run_trials, HarnessStats, NodePool};
use nautix_hw::{MachineConfig, Topology};
use nautix_kernel::{Action, Constraints, FnProgram, Script, SysCall};
use nautix_rt::{HarnessConfig, Node, NodeConfig, StealPolicy};

/// CPU counts swept at each scale. Quick keeps only the largest machine
/// (the CI smoke run: 1024 CPUs under oracles); paper runs the full
/// 256/512/1024 scaling curve.
pub fn cpu_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1024],
        Scale::Paper => vec![256, 512, 1024],
    }
}

/// The two machine shapes compared: the paper's uniform-cost flat model
/// and a 2-package × 4-LLC tree.
pub fn topologies() -> Vec<Topology> {
    vec![Topology::flat(), Topology::tree(2, 4)]
}

/// One row of the sweep. Fields that a workload does not measure are
/// zero. `PartialEq` is derived so the determinism tests can compare
/// whole sweeps exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoPoint {
    /// Workload name: `missrate`, `groupsync`, `steal_llcfirst`,
    /// `steal_uniform`.
    pub workload: &'static str,
    /// Simulated CPUs.
    pub n_cpus: usize,
    /// Topology label (`flat`, `2x4`).
    pub topology: String,
    /// Simulated machine events this trial processed.
    pub events: u64,
    /// Simulated time to quiescence, ms (steal storm only).
    pub makespan_ms: f64,
    /// Aggregate deadline miss rate (missrate only).
    pub miss_rate: f64,
    /// Mean gang-dispatch spread, cycles (groupsync only).
    pub spread_mean_cycles: f64,
    /// Successful steals (steal storm only).
    pub steals: u64,
    /// Steals by distance class: same-LLC, same-package, cross-package.
    pub steals_by_distance: [u64; 3],
    /// IPIs by distance class.
    pub ipis_by_distance: [u64; 3],
}

impl TopoPoint {
    fn zero(workload: &'static str, n_cpus: usize, topology: Topology) -> Self {
        TopoPoint {
            workload,
            n_cpus,
            topology: topology.label(),
            events: 0,
            makespan_ms: 0.0,
            miss_rate: 0.0,
            spread_mean_cycles: 0.0,
            steals: 0,
            steals_by_distance: [0; 3],
            ipis_by_distance: [0; 3],
        }
    }

    /// Fraction of steals that stayed inside the thief's LLC.
    pub fn locality_hit_rate(&self) -> f64 {
        if self.steals > 0 {
            self.steals_by_distance[0] as f64 / self.steals as f64
        } else {
            0.0
        }
    }

    /// Fraction of IPIs that crossed a package boundary.
    pub fn cross_package_kick_fraction(&self) -> f64 {
        let total: u64 = self.ipis_by_distance.iter().sum();
        if total > 0 {
            self.ipis_by_distance[2] as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The Phi machine config for one sweep cell.
fn machine(n_cpus: usize, topology: Topology, seed: u64) -> MachineConfig {
    MachineConfig::phi()
        .with_cpus(n_cpus)
        .with_seed(seed)
        .with_topology(topology)
}

/// Figure-6-style miss-rate probe on every CPU: each core past CPU 0 runs
/// one always-runnable periodic thread at a comfortably feasible point
/// (100 µs period, 30% slice), so the measured rate isolates scheduler
/// scale effects rather than infeasibility.
pub fn missrate_at_scale(n_cpus: usize, topology: Topology, jobs: u64, seed: u64) -> TopoPoint {
    let period_ns: u64 = 100_000;
    let slice_ns: u64 = 30_000;
    let mut cfg = NodeConfig::for_machine(machine(n_cpus, topology, seed));
    cfg.sched.admission_enabled = false;
    // One idle thread per CPU plus one probe per CPU: the default
    // 1024-entry table is too small for the 1024-CPU cells.
    cfg.max_threads = cfg.max_threads.max(n_cpus * 2 + 64);
    let mut node = Node::new(cfg);
    let mut tids = Vec::with_capacity(n_cpus - 1);
    for cpu in 1..n_cpus {
        let prog = FnProgram::new(move |_cx, n| {
            if n == 0 {
                Action::Call(SysCall::ChangeConstraints(Constraints::Periodic {
                    phase: period_ns,
                    period: period_ns,
                    slice: slice_ns,
                }))
            } else {
                Action::Compute(100_000)
            }
        });
        tids.push(
            node.spawn_on(cpu, &format!("p{cpu}"), Box::new(prog))
                .unwrap(),
        );
    }
    node.run_for_ns(period_ns * (jobs + 20));
    let (mut met, mut missed) = (0u64, 0u64);
    for &t in &tids {
        let st = &node.thread_state(t).stats;
        met += st.met;
        missed += st.missed;
    }
    let mut p = TopoPoint::zero("missrate", n_cpus, topology);
    p.events = node.machine.events_processed();
    p.miss_rate = if met + missed > 0 {
        missed as f64 / (met + missed) as f64
    } else {
        0.0
    };
    p.ipis_by_distance = node.machine.ipis_by_distance();
    p
}

/// Figure-11/12-style gang dispatch at a group size near the machine
/// size (capped by `MAX_GROUP_MEMBERS`), on a machine with the given
/// topology. The kick-heavy workload: per-distance IPI counters show how
/// much gang traffic crosses packages.
pub fn groupsync_at_scale(
    n_cpus: usize,
    topology: Topology,
    invocations: usize,
    seed: u64,
) -> TopoPoint {
    let group = (n_cpus - 1).min(nautix_groups::MAX_GROUP_MEMBERS - 1);
    let (series, events, ipis) =
        crate::groupsync::measure_on(machine(n_cpus, topology, seed), group, invocations, false);
    let mut p = TopoPoint::zero("groupsync", n_cpus, topology);
    p.events = events;
    p.spread_mean_cycles = series.summary.mean;
    p.ipis_by_distance = ipis;
    p
}

/// Interrupt fan-out: one waiter thread per device line, consumers
/// spread evenly across the machine, the laden partition one CPU per
/// LLC-sized block. Every handled interrupt wakes its waiter through a
/// kick IPI whose latency is distance-dependent, so the per-distance
/// IPI counters measure where the wake traffic lands. With `near` the
/// lines are pinned via [`Node::steer_irq_near`] (the topology-aware
/// placement: handler in the consumer's LLC); without it the default
/// LLC-grouped round-robin spreads handlers, so on a tree machine a
/// large fraction of kicks crosses packages — that contrast is the
/// steering layer's win.
pub fn irq_fanout(
    n_cpus: usize,
    topology: Topology,
    near: bool,
    rounds: usize,
    seed: u64,
) -> TopoPoint {
    const LINES: usize = 64;
    let mut cfg = NodeConfig::for_machine(machine(n_cpus, topology, seed));
    let stride = (n_cpus / 8).max(1);
    cfg.laden = (0..n_cpus).step_by(stride).collect();
    cfg.max_threads = cfg.max_threads.max(n_cpus * 2 + 64);
    let mut node = Node::new(cfg);
    let lines = LINES.min(n_cpus - 1);
    let spacing = (n_cpus / LINES).max(1);
    for i in 0..lines {
        let cpu = (i * spacing + 1).min(n_cpus - 1);
        let irq = i as u8;
        let prog = FnProgram::new(move |_cx, n| {
            if n % 2 == 0 {
                Action::Call(SysCall::WaitIrq(irq))
            } else {
                Action::Compute(50_000)
            }
        });
        node.spawn_on(cpu, &format!("c{cpu}"), Box::new(prog))
            .unwrap();
        if near {
            node.steer_irq_near(irq, cpu);
        }
    }
    for _ in 0..rounds {
        for irq in 0..lines {
            node.raise_device_irq(irq as u8);
        }
        node.run_for_ns(50_000);
    }
    let name = if near {
        "irq_fanout_near"
    } else {
        "irq_fanout_rr"
    };
    let mut p = TopoPoint::zero(name, n_cpus, topology);
    p.events = node.machine.events_processed();
    p.ipis_by_distance = node.machine.ipis_by_distance();
    p
}

/// Work-stealing storm: `tasks_per_pile` unbound compute threads piled on
/// one CPU per LLC-sized block (stride `n/8`, matching the 2×4 tree's
/// eight LLC domains so flat and tree runs see the same backlog shape),
/// run to quiescence. Everything except the victim-selection policy is
/// held fixed, so LlcFirst-vs-Uniform differences are the policy's.
pub fn steal_storm(
    pool: &mut NodePool,
    n_cpus: usize,
    topology: Topology,
    policy: StealPolicy,
    tasks_per_pile: usize,
    seed: u64,
) -> TopoPoint {
    let mut cfg = NodeConfig::for_machine(machine(n_cpus, topology, seed));
    cfg.sched.steal = policy;
    cfg.max_threads = cfg.max_threads.max(n_cpus + 8 * tasks_per_pile + 64);
    let node = pool.node(cfg);
    let stride = (n_cpus / 8).max(1);
    let mut w = 0usize;
    for pile in (0..n_cpus).step_by(stride) {
        for _ in 0..tasks_per_pile {
            // Short tasks keep the storm steal-dominated: the idle loop
            // re-steals continuously, so victim-selection cost and
            // distance-dependent charges actually move the makespan.
            node.spawn_unbound(
                pile,
                &format!("w{w}"),
                Box::new(Script::new(vec![Action::Compute(2_000_000)])),
            )
            .unwrap();
            w += 1;
        }
    }
    node.run_until_quiescent();
    let name = match policy {
        StealPolicy::LlcFirst => "steal_llcfirst",
        StealPolicy::Uniform => "steal_uniform",
    };
    let mut p = TopoPoint::zero(name, n_cpus, topology);
    p.events = node.machine.events_processed();
    p.makespan_ms = node.freq().cycles_to_ns(node.machine.now()) as f64 / 1e6;
    for c in 0..n_cpus {
        let st = &node.scheduler(c).stats;
        p.steals += st.steals;
        for (i, d) in st.steals_by_distance.iter().enumerate() {
            p.steals_by_distance[i] += d;
        }
    }
    p.ipis_by_distance = node.machine.ipis_by_distance();
    p
}

/// Per-workload trial sizing: (missrate jobs, groupsync invocations,
/// storm backlog factor, irq fan-out rounds). The storm's tasks per pile
/// scale with the machine — `factor × n/8` — so the steal count (and the
/// locality statistics) grow with CPU count instead of washing out.
pub fn workload_sizes(scale: Scale) -> (u64, usize, usize, usize) {
    match scale {
        Scale::Quick => (10, 30, 1, 40),
        Scale::Paper => (40, 100, 2, 160),
    }
}

/// Run the full sweep: every workload × CPU count × topology (plus the
/// LlcFirst/Uniform policy A/B for the storm), trials fanned across
/// worker threads. Returns the rows in a fixed order plus one
/// [`HarnessStats`] per workload section, in `(missrate, groupsync,
/// storm)` order.
pub fn sweep_with_stats(
    hc: &HarnessConfig,
    scale: Scale,
    seed: u64,
) -> (Vec<TopoPoint>, Vec<(&'static str, HarnessStats)>) {
    let (jobs, invocations, pile_factor, irq_rounds) = workload_sizes(scale);
    let cells: Vec<(usize, Topology)> = cpu_counts(scale)
        .into_iter()
        .flat_map(|n| topologies().into_iter().map(move |t| (n, t)))
        .collect();

    let miss = run_trials(hc, cells.clone(), |&(n, t)| {
        let p = missrate_at_scale(n, t, jobs, seed);
        let ev = p.events;
        (p, ev)
    });
    let sync = run_trials(hc, cells.clone(), |&(n, t)| {
        let p = groupsync_at_scale(n, t, invocations, seed);
        let ev = p.events;
        (p, ev)
    });
    let fanout_cells: Vec<(usize, Topology, bool)> = cells
        .iter()
        .flat_map(|&(n, t)| [true, false].into_iter().map(move |near| (n, t, near)))
        .collect();
    let fanout = run_trials(hc, fanout_cells, |&(n, t, near)| {
        let p = irq_fanout(n, t, near, irq_rounds, seed);
        let ev = p.events;
        (p, ev)
    });
    // One section per steal policy so BENCH_topology.json carries a
    // directly comparable events/s for the LlcFirst-vs-Uniform A/B.
    let storm_llc = run_trials(hc, cells.clone(), |&(n, t)| {
        let tasks = pile_factor * (n / 8).max(1);
        let p = steal_storm(
            &mut NodePool::new(),
            n,
            t,
            StealPolicy::LlcFirst,
            tasks,
            seed,
        );
        let ev = p.events;
        (p, ev)
    });
    let storm_uni = run_trials(hc, cells, |&(n, t)| {
        let tasks = pile_factor * (n / 8).max(1);
        let p = steal_storm(
            &mut NodePool::new(),
            n,
            t,
            StealPolicy::Uniform,
            tasks,
            seed,
        );
        let ev = p.events;
        (p, ev)
    });

    let mut rows = Vec::new();
    rows.extend(miss.results);
    rows.extend(sync.results);
    rows.extend(fanout.results);
    rows.extend(storm_llc.results);
    rows.extend(storm_uni.results);
    (
        rows,
        vec![
            ("topology_missrate", miss.stats),
            ("topology_groupsync", sync.stats),
            ("topology_irq_fanout", fanout.stats),
            ("topology_steal_llcfirst", storm_llc.stats),
            ("topology_steal_uniform", storm_uni.stats),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_llc_bias_beats_uniform_on_locality() {
        let mut pool = NodePool::new();
        let tree = Topology::tree(2, 4);
        let llc = steal_storm(&mut pool, 64, tree, StealPolicy::LlcFirst, 4, 7);
        let uni = steal_storm(&mut pool, 64, tree, StealPolicy::Uniform, 4, 7);
        assert!(llc.steals > 0 && uni.steals > 0);
        assert!(
            llc.locality_hit_rate() > uni.locality_hit_rate(),
            "LlcFirst locality {} must beat Uniform {}",
            llc.locality_hit_rate(),
            uni.locality_hit_rate()
        );
    }

    #[test]
    fn flat_storm_is_policy_invariant() {
        let mut pool = NodePool::new();
        let a = steal_storm(&mut pool, 32, Topology::flat(), StealPolicy::LlcFirst, 3, 7);
        let b = steal_storm(&mut pool, 32, Topology::flat(), StealPolicy::Uniform, 3, 7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.makespan_ms, b.makespan_ms);
    }

    #[test]
    fn missrate_at_scale_is_feasible_and_counts_ipis() {
        let p = missrate_at_scale(32, Topology::tree(2, 4), 10, 7);
        assert!(p.events > 0);
        assert!(p.miss_rate < 0.05, "feasible point missed: {}", p.miss_rate);
    }

    #[test]
    fn groupsync_at_scale_holds_the_spread_story() {
        let p = groupsync_at_scale(16, Topology::tree(2, 4), 20, 7);
        assert!(p.events > 0);
        assert!(p.spread_mean_cycles > 0.0);
        // Gang coordination is communication-free: wall-clock sync, no
        // kick IPIs (the paper's §4.3 design point).
        assert_eq!(p.ipis_by_distance.iter().sum::<u64>(), 0);
    }

    #[test]
    fn irq_fanout_measures_kick_distances() {
        let near = irq_fanout(32, Topology::tree(2, 4), true, 20, 7);
        assert!(near.events > 0);
        let total: u64 = near.ipis_by_distance.iter().sum();
        assert!(total > 0, "interrupt wakes must send kicks");
        assert_eq!(
            near.ipis_by_distance[1] + near.ipis_by_distance[2],
            0,
            "near-steered lines must keep every kick inside the consumer's LLC"
        );
        // Blind round-robin on the same machine spills across packages.
        let rr = irq_fanout(32, Topology::tree(2, 4), false, 20, 7);
        assert!(
            rr.ipis_by_distance[1] + rr.ipis_by_distance[2] > 0,
            "round-robin steering should spread kicks beyond the LLC"
        );
        assert!(near.cross_package_kick_fraction() < rr.cross_package_kick_fraction() + 1e-9);
        // Flat runs classify every hop as same-LLC by construction.
        let flat = irq_fanout(32, Topology::flat(), true, 20, 7);
        assert_eq!(flat.ipis_by_distance[1] + flat.ipis_by_distance[2], 0);
        assert_eq!(flat.cross_package_kick_fraction(), 0.0);
    }

    #[test]
    fn sweep_rows_cover_every_cell() {
        // Covered structurally: cpu_counts x topologies x 4 workload rows.
        assert_eq!(cpu_counts(Scale::Quick).len(), 1);
        assert_eq!(cpu_counts(Scale::Paper).len(), 3);
        assert_eq!(topologies().len(), 2);
    }
}
