//! Flat-vs-tree determinism: the topology sweep must be byte-identical
//! across worker-thread counts and pooled-vs-fresh nodes, and an
//! explicitly flat machine must match the default machine exactly.
//!
//! CI runs this binary under both `NAUTIX_THREADS=1` and
//! `NAUTIX_THREADS=4`; the explicit-config tests below additionally pin
//! thread counts so the suite is deterministic regardless.

use nautix_bench::harness::NodePool;
use nautix_bench::{topology, Scale};
use nautix_hw::{MachineConfig, Topology};
use nautix_rt::{HarnessConfig, StealPolicy};

fn hc(threads: usize) -> HarnessConfig {
    let mut hc = HarnessConfig::serial();
    hc.threads = threads;
    hc
}

/// A reduced sweep fanned through the real trial harness: every workload
/// on small flat and tree machines, one trial per cell, so worker count
/// genuinely varies which threads (and which warm state) run each cell.
fn micro_sweep(hc: &HarnessConfig) -> Vec<Vec<topology::TopoPoint>> {
    let cells = vec![Topology::flat(), Topology::tree(2, 4)];
    nautix_bench::run_trials(hc, cells, |&topo| {
        let mut rows = vec![
            topology::missrate_at_scale(32, topo, 8, 7),
            topology::groupsync_at_scale(16, topo, 20, 7),
            topology::irq_fanout(32, topo, true, 15, 7),
            topology::irq_fanout(32, topo, false, 15, 7),
        ];
        for pol in [StealPolicy::LlcFirst, StealPolicy::Uniform] {
            rows.push(topology::steal_storm(
                &mut NodePool::new(),
                32,
                topo,
                pol,
                3,
                7,
            ));
        }
        let events = rows.iter().map(|p| p.events).sum();
        (rows, events)
    })
    .results
}

#[test]
fn tree_sweep_is_identical_across_thread_counts() {
    // The real parallel path: the full quick-sizing sweep machinery at
    // micro CPU counts, run serially and on four workers, compared row
    // for row. (`sweep_with_stats` at its production CPU counts is the
    // CI smoke run; here the same trial functions go through the same
    // `run_trials` fan-out at test-sized machines.)
    let serial = micro_sweep(&hc(1));
    let parallel = micro_sweep(&hc(4));
    assert_eq!(serial, parallel, "topology sweep varied with thread count");
}

#[test]
fn tree_storm_is_identical_pooled_vs_fresh() {
    let tree = Topology::tree(2, 4);
    // Warm the pool on a different cell so reset-in-place is what's
    // under test, then replay the same trials fresh.
    let mut pool = NodePool::new();
    let _ = topology::steal_storm(&mut pool, 16, Topology::flat(), StealPolicy::Uniform, 2, 3);
    for (n, pol, seed) in [
        (32usize, StealPolicy::LlcFirst, 7u64),
        (32, StealPolicy::Uniform, 7),
        (64, StealPolicy::LlcFirst, 9),
    ] {
        let pooled = topology::steal_storm(&mut pool, n, tree, pol, 3, seed);
        let fresh = topology::steal_storm(&mut NodePool::new(), n, tree, pol, 3, seed);
        assert_eq!(
            pooled, fresh,
            "pooled tree-topology node diverged from fresh at ({n}, {pol:?}, {seed})"
        );
    }
}

#[test]
fn explicit_flat_matches_the_default_machine() {
    // `with_topology(flat)` must be indistinguishable from never calling
    // `with_topology` at all (the env default is flat in this suite).
    let base = MachineConfig::phi().with_cpus(32).with_seed(7);
    assert_eq!(
        base.clone().with_topology(Topology::flat()).topology,
        base.topology,
    );
    let explicit = topology::steal_storm(
        &mut NodePool::new(),
        32,
        Topology::flat(),
        StealPolicy::LlcFirst,
        3,
        7,
    );
    let via_default = {
        let mut pool = NodePool::new();
        topology::steal_storm(&mut pool, 32, base.topology, StealPolicy::LlcFirst, 3, 7)
    };
    assert_eq!(explicit, via_default);
}

#[test]
fn quick_sweep_sizing_is_stable() {
    // The CI smoke run's shape: quick scale is exactly the 1024-CPU
    // machine under both topologies. Guard the sizing so the smoke job
    // keeps covering what the acceptance criteria name.
    assert_eq!(topology::cpu_counts(Scale::Quick), vec![1024]);
    assert_eq!(topology::cpu_counts(Scale::Paper), vec![256, 512, 1024]);
    assert_eq!(topology::topologies().len(), 2);
}
