//! `nautix-top`: one-screen terminal view over a nautix stats stream.
//!
//! A harness run started with `NAUTIX_STATS_STREAM=<path>` publishes a
//! [`Frame`] to `<path>` a few times a second (atomic tmp+rename, so a
//! read never sees a torn frame). This binary tails that file and renders
//! one screen: overall throughput and miss rate, per-shard progress,
//! fault-lane injections, degradation responses, steal locality, and
//! admission/oracle tallies.
//!
//! ```text
//! nautix-top <stream-file> [--once] [--interval-ms N]
//! ```
//!
//! `--once` renders a single frame without clearing the screen (useful in
//! CI and for piping); otherwise the view refreshes every `--interval-ms`
//! milliseconds (default 500) until interrupted.

use nautix_stats::Frame;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: nautix-top <stream-file> [--once] [--interval-ms N]");
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut once = false;
    let mut interval_ms: u64 = 500;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                let v = args.next().unwrap_or_else(|| usage());
                interval_ms = v.parse().unwrap_or_else(|_| usage());
            }
            "-h" | "--help" => usage(),
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            _ => usage(),
        }
    }
    let path = std::path::PathBuf::from(path.unwrap_or_else(|| usage()));

    loop {
        match Frame::read(&path) {
            Ok(frame) => {
                if !once {
                    // Clear screen + home cursor.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&frame));
            }
            Err(e) if once => {
                eprintln!("nautix-top: {e}");
                std::process::exit(1);
            }
            Err(e) => {
                print!("\x1b[2J\x1b[H");
                println!("nautix-top: waiting for stream at {path:?} ({e})");
            }
        }
        if once {
            return;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

fn human(n: u64) -> String {
    if n >= 10_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * width as f64).round()) as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

/// Render one frame to a full screen of text. Pure, so it is unit-testable
/// without a terminal.
fn render(f: &Frame) -> String {
    let s = &f.snapshot;
    let mut out = String::new();
    let secs = f.elapsed_nanos as f64 / 1e9;
    out.push_str(&format!(
        "nautix-top · {:.1}s · {} trials · {} events · {}/s\n",
        secs,
        human(s.trials),
        human(s.events),
        human(f.events_per_sec() as u64),
    ));
    out.push_str(&format!(
        "jobs: {} arrivals · {} met · {} missed · miss rate {:>8.6}  [{}]\n",
        human(s.arrivals),
        human(s.met),
        human(s.missed),
        s.miss_rate(),
        bar(s.miss_rate(), 20),
    ));
    out.push('\n');

    out.push_str("shards  trials      events      ev/s\n");
    for (i, sh) in f.shards.iter().enumerate() {
        out.push_str(&format!(
            "  {i:>2}    {:>8}  {:>10}  {:>8}\n",
            human(sh.trials),
            human(sh.events),
            human(sh.events_per_sec() as u64),
        ));
    }
    if f.shards.is_empty() {
        out.push_str("  (no shard beats yet)\n");
    }
    out.push('\n');

    out.push_str(&format!(
        "sched: {} invocations ({} timer, {} kick) · {} switches · {} dispatches · {} inline\n",
        human(s.invocations),
        human(s.timer_invocations),
        human(s.kick_invocations),
        human(s.switches),
        human(s.dispatches),
        human(s.inline_tasks),
    ));
    out.push_str(&format!(
        "steals: {} total · locality {:.2} (llc {} / pkg {} / xpkg {})\n",
        human(s.steals),
        s.steal_locality(),
        human(s.steals_llc),
        human(s.steals_pkg),
        human(s.steals_xpkg),
    ));
    out.push_str(&format!(
        "ipis: {} total (llc {} / pkg {} / xpkg {}) · {} device irqs · {} timer programmings · {} smis\n",
        human(s.ipis),
        human(s.ipis_llc),
        human(s.ipis_pkg),
        human(s.ipis_xpkg),
        human(s.device_irqs),
        human(s.timer_programmings),
        human(s.smis),
    ));
    out.push('\n');

    out.push_str(&format!(
        "faults: {} total · kick drop {} · kick delay {} · overshoot {} · freq dip {} · spurious {} · stall {}\n",
        human(s.faults_total()),
        human(s.kicks_dropped),
        human(s.kicks_delayed),
        human(s.timer_overshoots),
        human(s.freq_dips),
        human(s.spurious_irqs),
        human(s.cpu_stalls),
    ));
    out.push_str(&format!(
        "degrade: {} total · sporadic demotions {} · widenings {} · periodic demotions {}\n",
        human(s.degrade_total()),
        human(s.sporadic_demotions),
        human(s.periodic_widenings),
        human(s.periodic_demotions),
    ));
    out.push_str(&format!(
        "admission: {} sim hits · {} sim misses · {} rollbacks\n",
        human(s.sim_hits),
        human(s.sim_misses),
        human(s.rollbacks),
    ));
    if s.cluster_decisions > 0 {
        let secs = (f.elapsed_nanos as f64 / 1e9).max(1e-9);
        out.push_str(&format!(
            "cluster: {} decisions ({}/s) · {} placed · {} rejected · {} departures · {} probes\n",
            human(s.cluster_decisions),
            human((s.cluster_decisions as f64 / secs) as u64),
            human(s.cluster_placed),
            human(s.cluster_rejected),
            human(s.cluster_departures),
            human(s.cluster_probes),
        ));
    }
    out.push_str(&format!(
        "oracles: {} suites · {} records · {} checks · {} env misses · {} divergences\n",
        human(s.oracle_suites),
        human(s.oracle_records),
        human(s.oracle_checks),
        human(s.oracle_env_misses),
        human(s.oracle_divergences),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_stats::{ShardStat, StatsSnapshot};

    #[test]
    fn render_covers_every_section() {
        let frame = Frame {
            elapsed_nanos: 2_000_000_000,
            snapshot: StatsSnapshot {
                trials: 10,
                events: 1_000_000,
                arrivals: 5000,
                met: 4900,
                missed: 100,
                steals: 40,
                steals_llc: 30,
                kicks_dropped: 7,
                periodic_widenings: 3,
                sim_hits: 12,
                oracle_suites: 2,
                cluster_decisions: 150_000,
                cluster_placed: 120_000,
                cluster_rejected: 30_000,
                ..StatsSnapshot::default()
            },
            shards: vec![ShardStat {
                trials: 10,
                events: 1_000_000,
                wall_nanos: 2_000_000_000,
            }],
        };
        let text = render(&frame);
        for needle in [
            "nautix-top",
            "miss rate",
            "shards",
            "steals",
            "locality 0.75",
            "faults",
            "degrade",
            "admission",
            "oracles",
            "500.0k/s",
            "cluster: 150.0k decisions (75.0k/s)",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn cluster_line_is_omitted_for_node_only_runs() {
        let frame = Frame {
            elapsed_nanos: 1,
            snapshot: StatsSnapshot::default(),
            shards: vec![],
        };
        assert!(!render(&frame).contains("cluster:"));
    }

    #[test]
    fn human_scales() {
        assert_eq!(human(999), "999");
        assert_eq!(human(45_472_710), "45.5M");
        assert_eq!(human(12_000_000_000), "12.0G");
    }
}
