//! The fork-join run-time in action: an OpenMP-shaped program — parallel
//! loops (static and dynamic schedules), a reduction, a serial section —
//! run as a best-effort team and as a hard real-time gang (§8's direction:
//! parallel run-times on the hard real-time substrate).
//!
//! ```sh
//! cargo run --release --example parallel_runtime
//! ```

use nautix::prelude::*;
use nautix::rt::SchedConfig;
use nautix::runtime::{run_plan, CostProfile, LoopSchedule, Plan, TeamConfig, TeamMode};

fn cfg(workers: usize) -> NodeConfig {
    let mut c = NodeConfig::phi();
    c.machine = MachineConfig::phi().with_cpus(workers + 1).with_seed(91);
    c.sched = SchedConfig::throughput();
    c
}

fn main() {
    let workers = 8;
    // The program: init loop, imbalanced main loop, reduction, serial I/O.
    let make_plan = |schedule| {
        Plan::new()
            .parallel_for(4096, CostProfile::Uniform(2_000), LoopSchedule::Static)
            .parallel_for(
                1024,
                CostProfile::Linear {
                    base: 2_000,
                    step: 40,
                },
                schedule,
            )
            .reduce_sum(4096, 500)
            .serial(500_000)
    };

    println!("{workers}-worker team, 4-region plan:\n");

    // Static vs dynamic scheduling of the imbalanced loop.
    let rs = run_plan(
        cfg(workers),
        TeamConfig {
            workers,
            mode: TeamMode::BestEffort,
        },
        make_plan(LoopSchedule::Static),
    );
    let rd = run_plan(
        cfg(workers),
        TeamConfig {
            workers,
            mode: TeamMode::BestEffort,
        },
        make_plan(LoopSchedule::Dynamic { chunk: 16 }),
    );
    println!(
        "schedule(static) : {:>9} ns, speedup {:.2}x, efficiency {:.2}",
        rs.total_ns,
        rs.speedup(),
        rs.efficiency()
    );
    println!(
        "schedule(dynamic): {:>9} ns, speedup {:.2}x, efficiency {:.2}",
        rd.total_ns,
        rd.speedup(),
        rd.efficiency()
    );
    assert_eq!(rd.reductions, vec![4096 * 4095 / 2], "reduction exact");

    // The same program as a gang-scheduled hard real-time team at 60%.
    let rt = run_plan(
        cfg(workers),
        TeamConfig {
            workers,
            mode: TeamMode::RealTime {
                period: 1_000_000,
                slice: 600_000,
            },
        },
        make_plan(LoopSchedule::Dynamic { chunk: 16 }),
    );
    assert!(rt.admitted);
    println!(
        "rt gang at 60%   : {:>9} ns (throttled: ~{:.1}x the 100% dynamic time)",
        rt.total_ns,
        rt.total_ns as f64 / rd.total_ns as f64
    );
    println!(
        "\nthe same binary runs best-effort or as an isolated, throttleable \
         hard real-time gang — the run-time only changes the admission call."
    );
}
