//! Cross-trial node pooling.
//!
//! Paper-scale sweeps run thousands of trials, and each used to pay full
//! node construction and teardown — hundreds of `Vec`/`Box` allocations per
//! trial, contending on the global allocator from every worker thread. A
//! [`NodePool`] instead keeps the previous trial's node and
//! [`Node::reset`]s it in place for the next configuration, reusing its
//! arenas. Reset is defined to be byte-identical to fresh construction
//! (see the pooled determinism test in `nautix-bench`), so pooling is
//! purely a performance choice.
//!
//! The pool started life inside the bench harness; it lives here so other
//! layers that own node fleets — the cluster admission service keeps one
//! pool per shard — can reuse it without depending on the bench crate.

use crate::node::{Node, NodeConfig};

/// A worker-owned cache of one [`Node`] reused across trials.
#[derive(Default)]
pub struct NodePool {
    node: Option<Node>,
}

impl NodePool {
    /// An empty pool; the first [`NodePool::node`] call constructs.
    pub fn new() -> Self {
        Self::default()
    }

    /// A node booted for `cfg`: the pooled arena reset in place when one
    /// exists, a fresh construction otherwise.
    pub fn node(&mut self, cfg: NodeConfig) -> &mut Node {
        match &mut self.node {
            Some(n) => n.reset(cfg),
            slot @ None => *slot = Some(Node::new(cfg)),
        }
        self.node.as_mut().unwrap()
    }

    /// The pooled node *without* rebooting it — for owners that boot once
    /// via [`NodePool::node`] and then keep mutating the same node (the
    /// cluster layer's shards). `None` until the first boot.
    pub fn current(&mut self) -> Option<&mut Node> {
        self.node.as_mut()
    }
}
