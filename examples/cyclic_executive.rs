//! Real-time behavior by static construction (§8): compile a periodic
//! task set into a cyclic executive table offline, verify it, and run it
//! on the node under a single hosting constraint — no run-time scheduling
//! decisions remain.
//!
//! ```sh
//! cargo run --release --example cyclic_executive
//! ```

use nautix::kernel::{FnProgram, Program, SysCall, SysResult};
use nautix::prelude::*;
use nautix::rt::{compile_cyclic, CyclicExecutive, CyclicTask};

fn main() {
    // A control-loop flavored task set.
    let set = [
        CyclicTask {
            period: 100_000, // 100 µs sensor poll
            wcet: 15_000,
        },
        CyclicTask {
            period: 200_000, // 200 µs control law
            wcet: 40_000,
        },
        CyclicTask {
            period: 400_000, // 400 µs telemetry
            wcet: 30_000,
        },
    ];
    let schedule = compile_cyclic(&set).expect("compilable set");
    schedule.verify().expect("table verifies offline");
    println!(
        "compiled: hyperperiod {} µs, minor frame {} µs, {} frames, peak frame load {} µs, U = {}%",
        schedule.hyperperiod / 1000,
        schedule.frame / 1000,
        schedule.frames.len(),
        schedule.peak_frame_load() / 1000,
        schedule.utilization_ppm() / 10_000
    );
    for (i, f) in schedule.frames.iter().enumerate() {
        let desc: Vec<String> = f
            .placements
            .iter()
            .map(|p| format!("T{}#{}({}µs)", p.task, p.instance, p.duration / 1000))
            .collect();
        println!("  frame {i}: {}", desc.join(" "));
    }

    // Host it on a node.
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(71);
    cfg.sched = nautix::rt::SchedConfig::throughput();
    let mut node = Node::new(cfg);
    let hosting = schedule.hosting_constraints(10_000);
    println!("\nhosting constraint: {hosting:?}");
    let major_cycles = 50;
    let mut exec = Some(CyclicExecutive::new(schedule, node.freq(), major_cycles));
    let mut inner: Option<CyclicExecutive> = None;
    let prog = FnProgram::new(move |cx, n| {
        if n == 0 {
            return Action::Call(SysCall::ChangeConstraints(hosting));
        }
        if n == 1 {
            assert_eq!(cx.result, SysResult::Admission(Ok(())));
            inner = exec.take();
        }
        inner.as_mut().unwrap().resume(cx)
    });
    let tid = node.spawn_on(1, "cyclic", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    let st = node.thread_state(tid);
    println!(
        "ran {major_cycles} major cycles: {} frame arrivals, {} met, {} missed",
        st.stats.arrivals, st.stats.met, st.stats.missed
    );
    assert_eq!(st.stats.missed, 0);
    println!("every placement executed in its frame — the schedule was decided at compile time.");
}
