//! Before/after microbenchmarks for the zero-allocation event hot path.
//!
//! The "before" contenders reconstruct what the seed did on every simulated
//! event: clone the ~320-byte `CostModel` through a reference, key serial
//! sections and IRQ waiters through `HashMap`s, collect a `Vec` of steal
//! candidates per probe, and build a whole `Node` per trial. The "after"
//! contenders are the shipped paths: a by-value `CostModel` read, flat
//! fixed-index tables, an iterator probe over the victim's ring, and a
//! pooled `Node::reset`.
//!
//! Run with `cargo bench -p nautix-bench --bench hot_path`; the README's
//! Performance section quotes these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use nautix_bench::harness::NodePool;
use nautix_hw::{CostModel, MachineConfig};
use nautix_kernel::RrQueue;
use nautix_rt::{Node, NodeConfig};
use std::collections::HashMap;
use std::hint::black_box;

const EVENTS: u64 = 4096;

/// Before: each simulated interrupt cloned the whole cost model out of the
/// machine to read two or three fields from it.
fn bench_cost_clone(c: &mut Criterion) {
    let cm = CostModel::phi();
    c.bench_function("cost_model_before_clone_per_event", |b| {
        b.iter(|| {
            let by_ref = black_box(&cm);
            let mut acc = 0u64;
            for _ in 0..EVENTS {
                #[allow(clippy::clone_on_copy)]
                let local = by_ref.clone();
                // The seed bound the clone to a local that stayed live
                // across `&mut self` calls, forcing the full ~320-byte
                // struct onto the stack; reproduce that materialization.
                black_box(&local);
                acc += black_box(local.irq_entry.base) + black_box(local.sched_pass.base);
            }
            black_box(acc)
        })
    });
}

/// After: the node caches the model by value at boot; an event reads fields
/// straight out of the cached copy.
fn bench_cost_cached(c: &mut Criterion) {
    let cm = CostModel::phi();
    c.bench_function("cost_model_after_cached_copy", |b| {
        b.iter(|| {
            let cached = black_box(cm);
            let mut acc = 0u64;
            for _ in 0..EVENTS {
                acc += black_box(cached.irq_entry.base) + black_box(cached.sched_pass.base);
            }
            black_box(acc)
        })
    });
}

const GROUPS: u64 = 16;
const SERIAL_OPS: u64 = 4096;

/// Before: serial-section bookkeeping hashed a synthetic u64 key per group
/// operation — hashing plus possible rehash growth inside the event loop.
fn bench_serial_hashmap(c: &mut Criterion) {
    c.bench_function("serial_table_before_hashmap", |b| {
        b.iter(|| {
            let mut serial: HashMap<u64, u64> = HashMap::new();
            let mut now = 0u64;
            for op in 0..SERIAL_OPS {
                let key = 0x10_0000 + (op % GROUPS);
                now += 7;
                let until = serial.entry(key).or_insert(0);
                let start = now.max(*until);
                *until = start + 40;
                black_box(start);
            }
            black_box(serial.len())
        })
    });
}

/// After: the (class, group) pair indexes a flat array sized at boot — one
/// bounded load/store, no hashing, no growth.
fn bench_serial_flat(c: &mut Criterion) {
    c.bench_function("serial_table_after_flat_array", |b| {
        b.iter(|| {
            let mut serial = vec![0u64; 8 * 64];
            let mut now = 0u64;
            for op in 0..SERIAL_OPS {
                let slot = (op % GROUPS) as usize;
                now += 7;
                let until = &mut serial[slot];
                let start = now.max(*until);
                *until = start + 40;
                black_box(start);
            }
            black_box(serial.len())
        })
    });
}

const RING: usize = 24;
const PROBES: u64 = 4096;

/// Before: every steal probe collected the victim's non-RT tids into a
/// fresh `Vec` just to check the length and scan for an unbound candidate.
fn bench_probe_collect(c: &mut Criterion) {
    let mut ring: RrQueue<usize> = RrQueue::new(64);
    for t in 0..RING {
        ring.push(1, t).unwrap();
    }
    c.bench_function("steal_probe_before_vec_collect", |b| {
        b.iter(|| {
            let mut picked = 0usize;
            for p in 0..PROBES {
                let tids: Vec<usize> = ring.iter().map(|(_, t)| t).collect();
                if tids.len() >= 2 {
                    picked += tids[(p as usize) % tids.len()];
                }
            }
            black_box(picked)
        })
    });
}

/// After: an O(1) length read plus an iterator scan for the candidate — no
/// allocation on the probe path.
fn bench_probe_iter(c: &mut Criterion) {
    let mut ring: RrQueue<usize> = RrQueue::new(64);
    for t in 0..RING {
        ring.push(1, t).unwrap();
    }
    c.bench_function("steal_probe_after_len_and_iter", |b| {
        b.iter(|| {
            let mut picked = 0usize;
            for p in 0..PROBES {
                if ring.len() >= 2 {
                    let skip = (p as usize) % ring.len();
                    if let Some((_, t)) = ring.iter().nth(skip) {
                        picked += t;
                    }
                }
            }
            black_box(picked)
        })
    });
}

const TRIALS: u64 = 8;

fn trial_cfg(seed: u64) -> NodeConfig {
    NodeConfig::for_machine(MachineConfig::phi().with_cpus(4).with_seed(seed))
}

/// Before: every trial built a whole node — machine, thread table, queues,
/// group registry — and dropped it all again at the end.
fn bench_trial_fresh(c: &mut Criterion) {
    c.bench_function("trial_before_node_new_per_trial", |b| {
        b.iter(|| {
            let mut events = 0u64;
            for seed in 0..TRIALS {
                let mut node = Node::new(trial_cfg(seed));
                node.run_for_ns(50_000);
                events += node.machine.events_processed();
            }
            black_box(events)
        })
    });
}

/// After: one pooled node, reset in place per trial; the arenas and their
/// capacity survive across trials.
fn bench_trial_pooled(c: &mut Criterion) {
    c.bench_function("trial_after_pooled_reset", |b| {
        b.iter(|| {
            let mut pool = NodePool::new();
            let mut events = 0u64;
            for seed in 0..TRIALS {
                let node = pool.node(trial_cfg(seed));
                node.run_for_ns(50_000);
                events += node.machine.events_processed();
            }
            black_box(events)
        })
    });
}

criterion_group!(
    benches,
    bench_cost_clone,
    bench_cost_cached,
    bench_serial_hashmap,
    bench_serial_flat,
    bench_probe_collect,
    bench_probe_iter,
    bench_trial_fresh,
    bench_trial_pooled
);
criterion_main!(benches);
