//! Figure 6: local scheduler deadline miss rate on the Phi.

use nautix_bench::{banner, f, missrate, out_dir, write_csv, BenchReport, Scale};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 6: miss rate vs period/slice (Phi)");
    let (pts, stats) =
        missrate::sweep_with_stats(&HarnessConfig::from_env(), Platform::Phi, scale, 5);
    println!("period_us,slice_pct,miss_rate,jobs");
    for p in &pts {
        println!(
            "{},{},{},{}",
            p.period_us,
            p.slice_pct,
            f(p.miss_rate),
            p.jobs
        );
    }
    write_csv(
        &out_dir().join("fig06_missrate_phi.csv"),
        &["period_us", "slice_pct", "miss_rate", "jobs"],
        pts.iter().map(|p| {
            vec![
                p.period_us.to_string(),
                p.slice_pct.to_string(),
                f(p.miss_rate),
                p.jobs.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig06_missrate_phi.csv"));
    println!(
        "{} trials on {} threads: {:.2}s wall, {:.2}s cpu, {:.0} events/s",
        stats.trials,
        stats.threads,
        stats.wall_secs,
        stats.cpu_secs,
        stats.events_per_sec()
    );
    let mut report = BenchReport::new();
    report.add("fig06_missrate_phi", stats);
    report.write(&out_dir().join("BENCH_fig06_missrate_phi.json"));
}
