//! Regression test: a pooled node reset in place is byte-identical to a
//! freshly constructed one. `Node::reset` replays construction exactly
//! (same RNG draw order, same ThreadId assignment, same queue tie-break
//! state), so arena reuse must be invisible in every trial result. CI runs
//! this binary under both `NAUTIX_THREADS=1` and `NAUTIX_THREADS=4`, which
//! also varies how trials are distributed over warm pools.

use nautix_bench::harness::NodePool;
use nautix_bench::{missrate, Scale};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

#[test]
fn pooled_reset_node_matches_fresh_construction() {
    // Warm the pool on a *different* configuration first, so what's under
    // test is the reset path of a dirty node, not first construction.
    let mut pool = NodePool::new();
    let _ = missrate::measure_point_pooled(&mut pool, Platform::R415, 100_000, 50_000, 30, 11);

    for &(platform, period, slice, jobs, seed) in &[
        (Platform::Phi, 1_000_000u64, 500_000u64, 50u64, 5u64),
        (Platform::Phi, 10_000, 7_000, 80, 9),
        (Platform::R415, 4_000, 400, 80, 7),
    ] {
        let fresh = missrate::measure_point(platform, period, slice, jobs, seed);
        let pooled = missrate::measure_point_pooled(&mut pool, platform, period, slice, jobs, seed);
        assert_eq!(
            fresh, pooled,
            "reset node diverged from fresh node at \
             ({platform:?}, {period}, {slice}, {jobs}, {seed})"
        );
    }
}

#[test]
fn pooled_sweep_matches_fresh_per_point_results() {
    // The full sweep runs on per-worker pools; every point must equal an
    // isolated fresh run.
    let (sweep, _) = missrate::sweep_with_stats(
        &HarnessConfig::with_threads(4),
        Platform::Phi,
        Scale::Quick,
        5,
    );
    let grid = missrate::trial_grid(Platform::Phi, Scale::Quick);
    assert_eq!(sweep.len(), grid.len());
    for (point, &(period, slice, jobs)) in sweep.iter().zip(&grid) {
        let fresh = missrate::measure_point(Platform::Phi, period, slice, jobs, 5);
        assert_eq!(
            *point, fresh,
            "pooled sweep diverged from fresh node at ({period}, {slice})"
        );
    }
}
