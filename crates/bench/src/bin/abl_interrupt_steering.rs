//! Ablation: interrupt steering and segregation (§3.5).

use nautix_bench::{ablations, banner, f, out_dir, write_csv};

fn main() {
    banner("Ablation: device interrupts steered away from vs onto the RT CPU");
    let away = ablations::steering_effect(false, 13);
    let onto = ablations::steering_effect(true, 13);
    println!("steering,dispatch_interval_jitter_cycles");
    println!("away_from_rt_cpu,{}", f(away));
    println!("onto_rt_cpu,{}", f(onto));
    println!("jitter amplification: {}x", f(onto / away.max(1.0)));
    write_csv(
        &out_dir().join("abl_interrupt_steering.csv"),
        &["steering", "dispatch_interval_jitter_cycles"],
        vec![
            vec!["away_from_rt_cpu".to_string(), f(away)],
            vec!["onto_rt_cpu".to_string(), f(onto)],
        ],
    );
    println!("wrote {:?}", out_dir().join("abl_interrupt_steering.csv"));
}
