//! Simulation time: cycles, nanoseconds, and exact conversions.
//!
//! The simulator's base unit of time is the **machine cycle** of the node's
//! base clock (the invariant TSC rate). The paper's scheduler API works in
//! **nanoseconds stored in 64-bit integers** (§3.3), so conversions between
//! the two appear on every hot path. Conversions use 128-bit intermediates
//! and are exact up to the stated rounding direction; a 64-bit nanosecond
//! counter does not overflow for the lifetime of a machine (the paper makes
//! the same observation).

/// A point in (or span of) simulation time measured in machine cycles.
pub type Cycles = u64;

/// A span of time in nanoseconds, as used by the scheduler-facing API.
pub type Nanos = u64;

/// A fixed clock frequency used to convert between cycles and nanoseconds.
///
/// Frequencies are stored in kHz so that common HPC clocks (e.g. the Xeon
/// Phi 7210's 1.3 GHz) are represented exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Freq {
    khz: u64,
}

impl Freq {
    /// A frequency from a kHz count. Panics on zero: a zero-frequency clock
    /// cannot measure time.
    pub fn from_khz(khz: u64) -> Self {
        assert!(khz > 0, "clock frequency must be nonzero");
        Freq { khz }
    }

    /// A frequency from a MHz count.
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_khz(mhz * 1000)
    }

    /// The Xeon Phi 7210 (KNL) clock used in the paper's main testbed.
    pub fn phi() -> Self {
        Self::from_mhz(1300)
    }

    /// The AMD Opteron 4122 clock of the paper's Dell R415 testbed.
    pub fn r415() -> Self {
        Self::from_mhz(2200)
    }

    /// Frequency in kHz.
    pub fn khz(&self) -> u64 {
        self.khz
    }

    /// Frequency in MHz, rounded down.
    pub fn mhz(&self) -> u64 {
        self.khz / 1000
    }

    /// Convert a cycle count to nanoseconds, rounding down.
    ///
    /// `ns = cycles * 1e6 / khz`, computed in 128-bit arithmetic.
    pub fn cycles_to_ns(&self, cycles: Cycles) -> Nanos {
        ((cycles as u128) * 1_000_000 / self.khz as u128) as u64
    }

    /// Convert nanoseconds to a cycle count, rounding down.
    pub fn ns_to_cycles(&self, ns: Nanos) -> Cycles {
        ((ns as u128) * self.khz as u128 / 1_000_000) as u64
    }

    /// Convert nanoseconds to a cycle count, rounding up.
    ///
    /// Used where a *conservative* (never-late) duration is required, e.g.
    /// for slice budgets.
    pub fn ns_to_cycles_ceil(&self, ns: Nanos) -> Cycles {
        ((ns as u128) * self.khz as u128).div_ceil(1_000_000) as u64
    }

    /// Convert microseconds to cycles, rounding down.
    pub fn us_to_cycles(&self, us: u64) -> Cycles {
        self.ns_to_cycles(us * 1000)
    }
}

/// Convenience constructors for nanosecond quantities.
pub const fn us(n: u64) -> Nanos {
    n * 1_000
}

/// Milliseconds to nanoseconds.
pub const fn ms(n: u64) -> Nanos {
    n * 1_000_000
}

/// Seconds to nanoseconds.
pub const fn secs(n: u64) -> Nanos {
    n * 1_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_frequency_is_exact() {
        assert_eq!(Freq::phi().khz(), 1_300_000);
        assert_eq!(Freq::phi().mhz(), 1300);
    }

    #[test]
    fn cycles_ns_round_trip_at_phi() {
        let f = Freq::phi();
        // 1.3 cycles per ns: 13_000 cycles == 10_000 ns exactly.
        assert_eq!(f.cycles_to_ns(13_000), 10_000);
        assert_eq!(f.ns_to_cycles(10_000), 13_000);
    }

    #[test]
    fn ns_to_cycles_rounding_directions() {
        let f = Freq::phi();
        // 1 ns = 1.3 cycles: floor is 1, ceil is 2.
        assert_eq!(f.ns_to_cycles(1), 1);
        assert_eq!(f.ns_to_cycles_ceil(1), 2);
        // Exact conversions agree in both directions.
        assert_eq!(f.ns_to_cycles(10), f.ns_to_cycles_ceil(10));
    }

    #[test]
    fn large_values_do_not_overflow() {
        let f = Freq::from_mhz(4000);
        // A century of cycles at 4 GHz fits comfortably.
        let century_ns: u64 = 100 * 365 * 24 * 3600 * 1_000_000_000u64;
        let c = f.ns_to_cycles(century_ns / 1_000_000_000 * 1_000_000_000);
        assert!(c > 0);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(10), 10_000);
        assert_eq!(ms(3), 3_000_000);
        assert_eq!(secs(2), 2_000_000_000);
    }

    #[test]
    #[should_panic]
    fn zero_frequency_panics() {
        let _ = Freq::from_khz(0);
    }
}
