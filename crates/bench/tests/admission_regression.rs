//! Regression lock on the incremental admission engine: a quick-scale
//! repro workload produces byte-identical results and an identical event
//! count whether the engine runs incrementally (the default) or is forced
//! to fresh recompute through the `NAUTIX_ADMISSION=fresh` escape hatch.
//! The engine choice is an implementation strategy, never an observable.
//!
//! Everything lives in ONE test function: the escape hatch is a process
//! environment variable, and splitting the phases into separate `#[test]`
//! functions would let the harness interleave an env-dependent phase with
//! another test's default-engine node construction.

use nautix_bench::missrate;
use nautix_bench::Scale;
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

/// Quick-scale events of the missrate sweep (the repro_all section this
/// test replays), pinned. A change here means the schedule itself moved —
/// that must be a deliberate decision, never a side effect of admission
/// engine work.
const QUICK_SWEEP_EVENTS: u64 = 13_389;

#[test]
fn engine_choice_is_unobservable_and_the_event_count_is_pinned() {
    let hc = HarnessConfig::serial();

    // Default engine (incremental + memoized simulation).
    let (incr_points, incr_stats) = missrate::sweep_with_stats(&hc, Platform::Phi, Scale::Quick, 5);

    // Forced fresh recompute via the escape hatch. The variable is set
    // and removed inside this single test; no other phase of this binary
    // constructs nodes while it is set.
    std::env::set_var("NAUTIX_ADMISSION", "fresh");
    let (fresh_points, fresh_stats) =
        missrate::sweep_with_stats(&hc, Platform::Phi, Scale::Quick, 5);
    std::env::remove_var("NAUTIX_ADMISSION");

    assert_eq!(
        incr_points, fresh_points,
        "NAUTIX_ADMISSION=fresh changed a sweep result"
    );
    assert_eq!(
        incr_stats.events, fresh_stats.events,
        "engine choice changed the event count"
    );
    assert_eq!(
        incr_stats.events, QUICK_SWEEP_EVENTS,
        "quick-scale event count moved; if intentional, re-pin the constant"
    );

    // Replaying the default-engine sweep must also be self-identical (the
    // env round-trip above left no residue).
    let (again, again_stats) = missrate::sweep_with_stats(&hc, Platform::Phi, Scale::Quick, 5);
    assert_eq!(again, incr_points);
    assert_eq!(again_stats.events, incr_stats.events);
}
