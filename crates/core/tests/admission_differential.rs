//! Differential suite for the incremental admission engine: at every step
//! of a random admit / revoke / re-admit / widen sequence, the incremental
//! ledger with the memoized hyperperiod simulation must return exactly the
//! verdict the fresh-recompute reference returns, and its incrementally
//! maintained sums must equal a full rescan of the admitted set.
//!
//! Both engines run under [`AdmissionPolicy::HyperperiodSim`] so every
//! periodic verdict exercises the simulation (and, on the incremental
//! side, the memo), not just the closed-form bound.

use nautix_kernel::Constraints;
use nautix_rt::{AdmissionEngine, AdmissionPolicy, CpuLoad, SchedConfig, SimCache};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One step of the random constraint-churn sequence. Indices are raw
/// draws, reduced modulo the live set at application time.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit a periodic reservation (period `p100`·100 ns, `pct`% slice).
    Periodic { p100: u64, pct: u64 },
    /// Admit a sporadic burst.
    Sporadic { size: u64, deadline: u64 },
    /// Admit an aperiodic thread (always succeeds, never in the ledger).
    Aperiodic,
    /// Revoke the `idx % live`-th admitted reservation.
    Release { idx: usize },
    /// Widen the `idx % live`-th admitted periodic reservation's period by
    /// `widen_pct`% and re-admit it; on rejection, roll back by
    /// re-admitting the original (which must always succeed).
    Widen { idx: usize, widen_pct: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (100u64..20_000, 5u64..45).prop_map(|(p100, pct)| Op::Periodic { p100, pct }),
        (500u64..20_000, 1_000u64..9_000).prop_map(|(size, d100)| Op::Sporadic {
            size,
            deadline: d100 * 100
        }),
        (0u64..1).prop_map(|_| Op::Aperiodic),
        (0usize..1024).prop_map(|idx| Op::Release { idx }),
        (0usize..1024, 10u64..60).prop_map(|(idx, widen_pct)| Op::Widen { idx, widen_pct }),
    ]
}

fn sim_cfg(engine: AdmissionEngine) -> SchedConfig {
    SchedConfig {
        policy: AdmissionPolicy::HyperperiodSim {
            overhead_ns: 1_000,
            window_cap_ns: 8_000_000,
        },
        engine,
        ..SchedConfig::default()
    }
}

/// Both ledgers side by side; every operation is applied to both and the
/// verdicts compared.
struct Pair {
    fresh: CpuLoad,
    fresh_cfg: SchedConfig,
    incr: CpuLoad,
    incr_cfg: SchedConfig,
}

impl Pair {
    fn new() -> Self {
        let mut incr = CpuLoad::new();
        incr.install_sim_cache(Rc::new(RefCell::new(SimCache::new())));
        Pair {
            fresh: CpuLoad::new(),
            fresh_cfg: sim_cfg(AdmissionEngine::Fresh),
            incr,
            incr_cfg: sim_cfg(AdmissionEngine::Incremental),
        }
    }

    /// Admit on both; panics on divergence, returns the common verdict.
    fn admit(&mut self, c: &Constraints) -> bool {
        let vf = self.fresh.admit(&self.fresh_cfg, c).is_ok();
        let vi = self.incr.admit(&self.incr_cfg, c).is_ok();
        assert_eq!(
            vf,
            vi,
            "cached verdict diverged from fresh recompute on {c:?} \
             (ledger at {} ppm)",
            self.fresh.periodic_util_ppm()
        );
        vf
    }

    fn release(&mut self, c: &Constraints) {
        self.fresh.release(c);
        self.incr.release(c);
    }

    /// The per-step invariant: incremental sums equal a rescan, and the
    /// two ledgers hold identical totals.
    fn check(&self) {
        assert_eq!(
            self.incr.periodic_util_ppm(),
            self.incr.periodic_util_ppm_rescan(),
            "incremental periodic sum drifted from rescan"
        );
        assert_eq!(
            self.fresh.periodic_util_ppm(),
            self.fresh.periodic_util_ppm_rescan()
        );
        assert_eq!(
            self.fresh.periodic_util_ppm(),
            self.incr.periodic_util_ppm()
        );
        assert_eq!(
            self.fresh.sporadic_util_ppm(),
            self.incr.sporadic_util_ppm()
        );
        assert_eq!(self.fresh.periodic_count(), self.incr.periodic_count());
    }
}

/// Round a widened period down to the 100 ns admission granularity.
fn widen_period(period: u64, widen_pct: u64) -> u64 {
    period * (100 + widen_pct) / 100 / 100 * 100
}

proptest! {
    /// The differential property: incremental + memoized verdicts and
    /// sums match the fresh recompute at every step of a random
    /// admit/revoke/re-admit/widen sequence over mixed task sets.
    #[test]
    fn incremental_engine_matches_fresh_recompute(
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let mut pair = Pair::new();
        // The live mirror of admitted reservations (verdicts are asserted
        // equal, so one mirror serves both ledgers).
        let mut live: Vec<Constraints> = Vec::new();
        for op in &ops {
            match *op {
                Op::Periodic { p100, pct } => {
                    let period = p100 * 100;
                    let slice = (period * pct / 100).max(500);
                    let c = Constraints::periodic(period, slice).build();
                    if pair.admit(&c) {
                        live.push(c);
                    }
                }
                Op::Sporadic { size, deadline } => {
                    let c = Constraints::sporadic(size, deadline).build();
                    if pair.admit(&c) {
                        live.push(c);
                    }
                }
                Op::Aperiodic => {
                    prop_assert!(pair.admit(&Constraints::default_aperiodic()));
                }
                Op::Release { idx } => {
                    if !live.is_empty() {
                        let c = live.swap_remove(idx % live.len());
                        pair.release(&c);
                    }
                }
                Op::Widen { idx, widen_pct } => {
                    let periodic: Vec<usize> = live
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| matches!(c, Constraints::Periodic { .. }))
                        .map(|(i, _)| i)
                        .collect();
                    if periodic.is_empty() {
                        continue;
                    }
                    let i = periodic[idx % periodic.len()];
                    let Constraints::Periodic { phase, period, slice } = live[i] else {
                        unreachable!()
                    };
                    let old = live[i];
                    pair.release(&old);
                    let wide = Constraints::Periodic {
                        phase,
                        period: widen_period(period, widen_pct),
                        slice,
                    };
                    if pair.admit(&wide) {
                        live[i] = wide;
                    } else {
                        // All-or-nothing: the freed reservation must
                        // always re-admit.
                        prop_assert!(
                            pair.admit(&old),
                            "rollback re-admission of {old:?} rejected"
                        );
                    }
                }
            }
            pair.check();
        }
        // Every simulated verdict on the fresh side was either served from
        // the memo or simulated on the incremental side — never skipped,
        // never duplicated.
        let fs = pair.fresh.admission_stats();
        let is = pair.incr.admission_stats();
        prop_assert_eq!(is.sim_hits + is.sim_misses, fs.sim_misses);
    }
}

/// Draining the whole live set and re-admitting it in reverse hits the
/// memo for the full prefix chain and ends byte-identical.
#[test]
fn drain_and_readmit_round_trips_through_the_memo() {
    let mut pair = Pair::new();
    let set: Vec<Constraints> = (0..6)
        .map(|i| Constraints::periodic(1_000_000 + i * 200_000, 80_000).build())
        .collect();
    for c in &set {
        assert!(pair.admit(c));
        pair.check();
    }
    let first_pass = pair.incr.admission_stats();
    assert_eq!(first_pass.sim_hits, 0, "fresh prefixes cannot hit the memo");
    for c in set.iter().rev() {
        pair.release(c);
        pair.check();
    }
    for c in &set {
        assert!(pair.admit(c));
        pair.check();
    }
    let second_pass = pair.incr.admission_stats();
    assert_eq!(
        second_pass.sim_hits,
        set.len() as u64,
        "re-admitting the same prefix chain must be all memo hits"
    );
    assert_eq!(second_pass.sim_misses, first_pass.sim_misses);
}
