//! Cancellable, deterministically ordered event queue.
//!
//! The queue is an index-tracked binary min-heap keyed on `(time, sequence)`
//! where the sequence number is assigned at insertion. Two events scheduled
//! for the same instant therefore fire in insertion order, which keeps
//! whole-machine simulations reproducible regardless of hash-map iteration
//! order or other environmental noise.
//!
//! Cancellation is *true removal*: every scheduled event owns a slot that
//! records its current heap position, kept up to date through sift swaps, so
//! `cancel` excises the entry in O(log n) with no tombstones left behind.
//! Compared with the earlier lazy scheme (a `cancelled: HashSet` consulted
//! on every pop and peek) this keeps the heap at its live size under
//! re-programming storms, makes `peek_time`/`is_empty` pure `&self` reads,
//! and removes a hash lookup from the hot pop path.
//!
//! Slots are reused through a free list; an [`EventId`] packs the slot index
//! with a per-slot generation so a stale id (already fired or already
//! cancelled) can never alias a later event in the same slot.

use crate::time::Cycles;

/// Identifier of a scheduled event, usable to cancel it later.
///
/// Packs a slot index (high 32 bits) and that slot's generation at schedule
/// time (low 32 bits). Ids are unique across the life of the queue up to
/// 2^32 reuses of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw packed value. Exposed for trace output only.
    pub fn raw(&self) -> u64 {
        self.0
    }

    fn new(slot: u32, gen: u32) -> Self {
        EventId((slot as u64) << 32 | gen as u64)
    }

    fn slot(&self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn gen(&self) -> u32 {
        self.0 as u32
    }
}

/// Per-event bookkeeping. `payload` is `Some` exactly while the event is
/// pending; `pos` is its current index in `heap` during that window.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    pos: usize,
    payload: Option<E>,
}

/// POD heap entry: ordering key plus the owning slot. Payloads stay in the
/// slot table so sift swaps move 24 bytes regardless of `E`.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: Cycles,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (Cycles, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic future-event list.
///
/// `E` is the event payload type chosen by the simulation layer (the
/// hardware model uses a fixed enum of machine events).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: Cycles,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: 0,
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event (or
    /// the last [`advance_to`](Self::advance_to) target, whichever is later).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Return the queue to its power-on state — empty, clock at zero,
    /// sequence counter restarted — while keeping the backing allocations.
    /// A cleared queue is indistinguishable from a fresh one (pending ids,
    /// slot generations, and tie-break order all restart), which is what
    /// trial pooling relies on for byte-identical reruns.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.next_seq = 0;
        self.now = 0;
        self.popped = 0;
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: the simulation layers above never
    /// schedule retroactive events, so this is always a logic error worth
    /// failing loudly on.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        let slot = match self.free.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                debug_assert!(slot.payload.is_none());
                slot.payload = Some(payload);
                s
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event slot overflow");
                self.slots.push(Slot {
                    gen: 0,
                    pos: 0,
                    payload: Some(payload),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len();
        self.heap.push(HeapEntry {
            time: at,
            seq,
            slot,
        });
        self.slots[slot as usize].pos = pos;
        self.sift_up(pos);
        EventId::new(slot, self.slots[slot as usize].gen)
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event, removing it from the queue
    /// outright. Returns `true` if the event was pending (and is now gone);
    /// `false` if it had already fired or been cancelled — stale ids are
    /// harmless because the slot generation no longer matches.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let s = id.slot() as usize;
        if s >= self.slots.len() {
            return false;
        }
        if self.slots[s].gen != id.gen() || self.slots[s].payload.is_none() {
            return false;
        }
        let pos = self.slots[s].pos;
        self.remove_at(pos);
        self.retire_slot(s);
        true
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, EventId, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap[0];
        self.remove_at(0);
        let s = entry.slot as usize;
        let id = EventId::new(entry.slot, self.slots[s].gen);
        let payload = self.retire_slot(s).expect("heap entry without payload");
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, id, payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.first().map(|e| e.time)
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advance the clock to `t` without popping an event. Used by simulation
    /// layers that interleave out-of-heap event sources (per-CPU timer
    /// slots) with the queue. Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: Cycles) {
        assert!(
            t >= self.now,
            "clock moved backwards: to={} now={}",
            t,
            self.now
        );
        self.now = t;
    }

    /// Record `n` events processed by an out-of-heap event source, so
    /// whole-simulation throughput accounting stays honest.
    pub fn note_external_events(&mut self, n: u64) {
        self.popped += n;
    }

    /// Number of pending events. With true-removal cancellation this is the
    /// live count — there are no tombstones to exclude.
    pub fn backlog(&self) -> usize {
        self.heap.len()
    }

    /// Bump the slot's generation, free it, and take its payload.
    fn retire_slot(&mut self, s: usize) -> Option<E> {
        let slot = &mut self.slots[s];
        slot.gen = slot.gen.wrapping_add(1);
        let payload = slot.payload.take();
        self.free.push(s as u32);
        payload
    }

    /// Remove the heap entry at `pos`, restoring the heap property.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos != last {
            self.heap.swap(pos, last);
            self.slots[self.heap[pos].slot as usize].pos = pos;
        }
        self.heap.pop();
        if pos < self.heap.len() {
            // The transplanted entry may violate the heap property in
            // either direction relative to its new neighborhood.
            let moved = self.sift_down(pos);
            if !moved {
                self.sift_up(pos);
            }
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[pos].key() >= self.heap[parent].key() {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos].slot as usize].pos = pos;
            self.slots[self.heap[parent].slot as usize].pos = parent;
            pos = parent;
        }
    }

    /// Returns whether the entry moved.
    fn sift_down(&mut self, mut pos: usize) -> bool {
        let start = pos;
        let n = self.heap.len();
        loop {
            let l = 2 * pos + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && self.heap[r].key() < self.heap[l].key() {
                r
            } else {
                l
            };
            if self.heap[child].key() >= self.heap[pos].key() {
                break;
            }
            self.heap.swap(pos, child);
            self.slots[self.heap[pos].slot as usize].pos = pos;
            self.slots[self.heap[child].slot as usize].pos = child;
            pos = child;
        }
        pos != start
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        for (i, e) in self.heap.iter().enumerate() {
            let slot = &self.slots[e.slot as usize];
            assert_eq!(slot.pos, i, "slot {} position out of sync", e.slot);
            assert!(slot.payload.is_some(), "heap entry without payload");
            if i > 0 {
                let parent = &self.heap[(i - 1) / 2];
                assert!(parent.key() <= e.key(), "heap property violated at {i}");
            }
        }
        let pending = self.heap.len();
        let free = self.free.len();
        assert_eq!(pending + free, self.slots.len(), "slot leak");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        q.schedule(9, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 7);
        q.pop();
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, "a");
        q.schedule(2, "b");
        assert!(q.cancel(a));
        let (_, _, p) = q.pop().unwrap();
        assert_eq!(p, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, "first");
        q.pop();
        // The id was consumed; cancelling it must report dead and not
        // poison a future event reusing the same slot.
        assert!(!q.cancel(a));
        let b = q.schedule(2, "live");
        assert_ne!(a, b);
        assert!(!q.cancel(a));
        assert_eq!(q.pop().unwrap().2, "live");
    }

    #[test]
    fn double_cancel_reports_dead() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
    }

    #[test]
    fn stale_id_does_not_alias_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, "a");
        assert!(q.cancel(a));
        // The slot is reused for a different event; the stale id must not
        // be able to cancel it.
        let b = q.schedule(2, "b");
        assert!(!q.cancel(a));
        assert_eq!(q.peek_time(), Some(2));
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_immediately() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10).map(|t| q.schedule(t, t)).collect();
        assert_eq!(q.backlog(), 10);
        for id in &ids {
            q.cancel(*id);
        }
        // True removal: no tombstones linger in the heap.
        assert_eq!(q.backlog(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, ());
        q.schedule(5, ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(5));
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, "first");
        q.pop();
        q.schedule_in(50, "second");
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t, 150);
    }

    #[test]
    fn events_processed_counts_live_only() {
        let mut q = EventQueue::new();
        let a = q.schedule(1, ());
        q.schedule(2, ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    fn advance_to_moves_clock_without_pop() {
        let mut q = EventQueue::<()>::new();
        q.advance_to(500);
        assert_eq!(q.now(), 500);
        assert_eq!(q.events_processed(), 0);
        q.note_external_events(3);
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    #[should_panic]
    fn advance_to_rejects_the_past() {
        let mut q = EventQueue::<()>::new();
        q.schedule(10, ());
        q.pop();
        q.advance_to(5);
    }

    #[test]
    fn interleaved_schedule_cancel_pop_keeps_heap_consistent() {
        // Deterministic stress: a mix of schedules, targeted cancels, and
        // pops, with the internal invariants checked after every step.
        let mut q = EventQueue::new();
        let mut live: Vec<EventId> = Vec::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for step in 0..2000u64 {
            match next(4) {
                0 | 1 => {
                    let at = q.now() + next(100);
                    live.push(q.schedule(at, step));
                }
                2 => {
                    if !live.is_empty() {
                        let i = next(live.len() as u64) as usize;
                        let id = live.swap_remove(i);
                        q.cancel(id);
                    }
                }
                _ => {
                    if let Some((_, id, _)) = q.pop() {
                        live.retain(|x| *x != id);
                    }
                }
            }
            q.assert_invariants();
        }
        // Drain; everything left must pop in nondecreasing time order.
        let mut last = q.now();
        while let Some((t, _, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            q.assert_invariants();
        }
        assert!(q.is_empty());
        assert_eq!(q.backlog(), 0);
    }
}
