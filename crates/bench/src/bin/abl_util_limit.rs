//! Ablation: the utilization-limit knob under SMI injection (§3.6).

use nautix_bench::{ablations, banner, f, out_dir, write_csv};

fn main() {
    banner("Ablation: utilization limit vs SMI sensitivity");
    let rows = ablations::util_limit_knob(31);
    println!("util_limit_pct,miss_rate");
    for (limit, rate) in &rows {
        println!("{},{}", limit, f(*rate));
    }
    write_csv(
        &out_dir().join("abl_util_limit.csv"),
        &["util_limit_pct", "miss_rate"],
        rows.iter().map(|(l, r)| vec![l.to_string(), f(*r)]),
    );
    println!("wrote {:?}", out_dir().join("abl_util_limit.csv"));
}
