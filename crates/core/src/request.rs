//! The typed admission surface.
//!
//! [`Node`](crate::node::Node) used to expose one entry point per admission
//! shape: `admit_team` for host-context gang admission and the
//! `ChangeConstraints` syscall path for a single thread re-negotiating its
//! own reservation. Callers picked the method, and every new shape (the
//! cluster placement layer, tooling, tests) grew another ad-hoc signature.
//!
//! [`AdmissionRequest`] replaces that with a single typed request built in
//! the [`ConstraintsBuilder`](nautix_kernel::ConstraintsBuilder) style and
//! submitted through [`Node::admit`](crate::node::Node::admit), which
//! always answers with an [`AdmissionOutcome`]. The request names *what*
//! should hold the reservation (one thread, or a whole team in one
//! all-or-nothing ledger transaction); the scheduler decides *whether* it
//! can. The legacy `admit_team` method survives as a thin deprecated shim.
//!
//! ```
//! use nautix_rt::{AdmissionRequest, Constraints};
//!
//! let gang = Constraints::periodic(1_000_000, 100_000).build();
//! let req = AdmissionRequest::team(vec![4, 5, 6]).constraints(gang);
//! assert_eq!(req.members(), 3);
//! // let outcome = node.admit(req);
//! ```

use nautix_des::Nanos;
use nautix_kernel::{AdmissionError, Constraints, ThreadId};

/// Who the reservation is for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionTarget {
    /// One thread re-negotiating its own constraints (the host-context
    /// face of the `ChangeConstraints` syscall).
    Thread(ThreadId),
    /// A gang admitted in one all-or-nothing ledger transaction: on
    /// success every member holds the constraints phase-corrected by its
    /// slot, on failure every ledger is back exactly as it was.
    Team(Vec<ThreadId>),
}

/// One typed admission request: a target, the constraints it asks for, and
/// the anchoring knobs. Build with [`AdmissionRequest::thread`] /
/// [`AdmissionRequest::team`] plus the chained setters, then submit via
/// [`Node::admit`](crate::node::Node::admit).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRequest {
    target: AdmissionTarget,
    constraints: Constraints,
    anchor_ns: Option<Nanos>,
    phase_delta_ns: Nanos,
}

impl AdmissionRequest {
    /// A request for one thread. Defaults to the aperiodic class — chain
    /// [`constraints`](AdmissionRequest::constraints) for a real-time
    /// reservation.
    pub fn thread(tid: ThreadId) -> Self {
        AdmissionRequest {
            target: AdmissionTarget::Thread(tid),
            constraints: Constraints::default_aperiodic(),
            anchor_ns: None,
            phase_delta_ns: 0,
        }
    }

    /// A request for a team, admitted all-or-nothing in member order.
    /// An empty team is valid and trivially admitted.
    pub fn team(members: impl Into<Vec<ThreadId>>) -> Self {
        AdmissionRequest {
            target: AdmissionTarget::Team(members.into()),
            constraints: Constraints::default_aperiodic(),
            anchor_ns: None,
            phase_delta_ns: 0,
        }
    }

    /// The constraints every target thread should hold (team members get
    /// the per-slot phase correction applied on commit).
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Anchor the admitted schedule at an explicit instant instead of the
    /// submitting CPU's current wall clock.
    pub fn anchor_at(mut self, anchor_ns: Nanos) -> Self {
        self.anchor_ns = Some(anchor_ns);
        self
    }

    /// Team targets only: the inter-member phase stagger handed to the
    /// slot-order phase correction (the `GroupAdmitTeam` syscall's
    /// `delta_ns`). Ignored for single-thread targets.
    pub fn phase_delta_ns(mut self, delta_ns: Nanos) -> Self {
        self.phase_delta_ns = delta_ns;
        self
    }

    /// The request's target.
    pub fn target(&self) -> &AdmissionTarget {
        &self.target
    }

    /// The requested constraints.
    pub fn requested(&self) -> Constraints {
        self.constraints
    }

    /// The explicit anchor, when one was set.
    pub fn anchor(&self) -> Option<Nanos> {
        self.anchor_ns
    }

    /// The team phase stagger.
    pub fn delta_ns(&self) -> Nanos {
        self.phase_delta_ns
    }

    /// How many threads the request covers.
    pub fn members(&self) -> usize {
        match &self.target {
            AdmissionTarget::Thread(_) => 1,
            AdmissionTarget::Team(m) => m.len(),
        }
    }
}

/// The answer to an [`AdmissionRequest`]: either every targeted thread now
/// holds the reservation, or none does and the first rejection explains
/// why. Either way `members` is the request's size, so callers can account
/// capacity without re-inspecting the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an admission outcome carries the rejection you must handle"]
pub enum AdmissionOutcome {
    /// Every target holds the reservation.
    Admitted {
        /// Threads covered by the request.
        members: usize,
    },
    /// No target changed state; `error` is the first rejection.
    Rejected {
        /// Threads covered by the request.
        members: usize,
        /// Why the ledger (or validation) said no.
        error: AdmissionError,
    },
}

impl AdmissionOutcome {
    /// Whether the reservation was granted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted { .. })
    }

    /// The rejection, if any.
    pub fn error(&self) -> Option<AdmissionError> {
        match self {
            AdmissionOutcome::Admitted { .. } => None,
            AdmissionOutcome::Rejected { error, .. } => Some(*error),
        }
    }

    /// Threads the request covered.
    pub fn members(&self) -> usize {
        match self {
            AdmissionOutcome::Admitted { members } | AdmissionOutcome::Rejected { members, .. } => {
                *members
            }
        }
    }

    /// Collapse to the legacy `Result` shape (member count on success).
    pub fn into_result(self) -> Result<usize, AdmissionError> {
        match self {
            AdmissionOutcome::Admitted { members } => Ok(members),
            AdmissionOutcome::Rejected { error, .. } => Err(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let r = AdmissionRequest::thread(3);
        assert_eq!(r.members(), 1);
        assert_eq!(r.requested(), Constraints::default_aperiodic());
        assert_eq!(r.anchor(), None);
        assert_eq!(r.delta_ns(), 0);

        let c = Constraints::periodic(1_000_000, 50_000).build();
        let r = AdmissionRequest::team(vec![7, 8])
            .constraints(c)
            .anchor_at(42)
            .phase_delta_ns(9);
        assert_eq!(r.members(), 2);
        assert_eq!(r.requested(), c);
        assert_eq!(r.anchor(), Some(42));
        assert_eq!(r.delta_ns(), 9);
        assert_eq!(r.target(), &AdmissionTarget::Team(vec![7, 8]));
    }

    #[test]
    fn outcome_accessors() {
        let ok = AdmissionOutcome::Admitted { members: 4 };
        assert!(ok.is_admitted());
        assert_eq!(ok.error(), None);
        assert_eq!(ok.members(), 4);
        assert_eq!(ok.into_result(), Ok(4));

        let no = AdmissionOutcome::Rejected {
            members: 2,
            error: AdmissionError::UtilizationExceeded,
        };
        assert!(!no.is_admitted());
        assert_eq!(no.error(), Some(AdmissionError::UtilizationExceeded));
        assert_eq!(no.members(), 2);
        assert_eq!(no.into_result(), Err(AdmissionError::UtilizationExceeded));
    }
}
