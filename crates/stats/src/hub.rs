//! Streaming snapshot hub: harness workers send deltas over a channel; a
//! collector thread merges them into a process-level series and
//! periodically publishes a frame for live viewers.
//!
//! Two message kinds flow through the channel:
//!
//! * **deltas** — full [`StatsSnapshot`]s covering exactly one trial,
//!   merged (component-wise sum) into the running process total. Sums are
//!   commutative, so the total is independent of worker scheduling — a
//!   4-thread run's final total is byte-identical to a serial run's, which
//!   the golden merge test pins.
//! * **beats** — tiny per-shard progress records `(trials, events,
//!   wall_nanos)` from each harness worker, kept per shard for the
//!   per-shard throughput column of `nautix-top`. Beats never enter the
//!   snapshot total, so richer deltas and coarse beats cannot double
//!   count.
//!
//! When a stream path is configured the collector writes a [`Frame`]
//! (elapsed time + latest cumulative snapshot + shard table) to
//! `path.tmp` and renames it over `path`, so a tailing viewer never reads
//! a torn frame. An optional *sampler* callback runs over each published
//! frame to overlay process-global counters (oracle tallies live in
//! process statics, not in any node) without touching the additive total.
//!
//! Observation only: nothing in this module feeds back into a simulation.
//! A run with streaming enabled is byte-identical to one without.

use crate::snapshot::StatsSnapshot;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One per-shard progress row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Trials this shard has completed.
    pub trials: u64,
    /// Simulated events this shard has processed.
    pub events: u64,
    /// Summed per-trial wall time on this shard, nanoseconds.
    pub wall_nanos: u64,
}

impl ShardStat {
    /// Simulated events per wall-clock second on this shard.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.events as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }
}

// Deltas are sent by value: one full snapshot per *trial*, not per
// event, so the size asymmetry vs `Beat` is cheaper than a per-trial
// heap allocation.
#[allow(clippy::large_enum_variant)]
enum Msg {
    Delta(StatsSnapshot),
    Beat {
        shard: usize,
        trials: u64,
        events: u64,
        wall_nanos: u64,
    },
}

/// Cloneable sending half handed to harness workers.
#[derive(Clone)]
pub struct StatsTx {
    tx: mpsc::Sender<Msg>,
}

impl StatsTx {
    /// Stream one trial's delta snapshot. Sends never block and a closed
    /// hub is ignored — workers must not care whether anyone is watching.
    pub fn delta(&self, snap: StatsSnapshot) {
        let _ = self.tx.send(Msg::Delta(snap));
    }

    /// Stream one worker progress beat.
    pub fn beat(&self, shard: usize, trials: u64, events: u64, wall_nanos: u64) {
        let _ = self.tx.send(Msg::Beat {
            shard,
            trials,
            events,
            wall_nanos,
        });
    }
}

/// Sampler callback: overlay process-global counters onto a frame
/// snapshot just before publication.
pub type Sampler = Box<dyn FnMut(&mut StatsSnapshot) + Send>;

/// Collector configuration.
#[derive(Default)]
pub struct HubOptions {
    /// Where to publish frames (atomically, via `path.tmp` + rename).
    /// `None` keeps the hub in-memory only.
    pub stream_path: Option<PathBuf>,
    /// Process-global overlay applied to published frames.
    pub sampler: Option<Sampler>,
    /// Minimum delay between published frames; `None` means the 200 ms
    /// default.
    pub flush_every: Option<Duration>,
}

/// Everything the collector accumulated, returned by [`StatsHub::finish`].
pub struct HubReport {
    /// Final cumulative snapshot (sum of every delta received).
    pub total: StatsSnapshot,
    /// Process-level series: the cumulative snapshot at each publication
    /// point, oldest first (bounded; old entries are dropped).
    pub series: Vec<StatsSnapshot>,
    /// Final per-shard progress table.
    pub shards: Vec<ShardStat>,
}

/// The receiving half: owns the collector thread.
pub struct StatsHub {
    tx: Option<StatsTx>,
    handle: std::thread::JoinHandle<HubReport>,
}

const SERIES_CAP: usize = 4096;

impl StatsHub {
    /// Start a collector.
    pub fn start(opts: HubOptions) -> StatsHub {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("nautix-stats-hub".into())
            .spawn(move || collect(rx, opts))
            .expect("spawn stats hub");
        StatsHub {
            tx: Some(StatsTx { tx }),
            handle,
        }
    }

    /// A sending handle for workers.
    pub fn tx(&self) -> StatsTx {
        self.tx.as_ref().expect("hub already finished").clone()
    }

    /// Drop the hub's own sender and wait for the collector to drain.
    /// Every [`StatsTx`] clone must be dropped by the caller first, or
    /// this blocks until they are.
    pub fn finish(mut self) -> HubReport {
        self.tx = None;
        self.handle.join().expect("stats hub panicked")
    }
}

fn collect(rx: mpsc::Receiver<Msg>, mut opts: HubOptions) -> HubReport {
    let started = Instant::now();
    let flush_every = opts.flush_every.unwrap_or(Duration::from_millis(200));
    let mut total = StatsSnapshot::default();
    let mut series: Vec<StatsSnapshot> = Vec::new();
    let mut shards: Vec<ShardStat> = Vec::new();
    let mut last_flush = Instant::now();
    let mut dirty = false;
    loop {
        match rx.recv_timeout(flush_every) {
            Ok(Msg::Delta(d)) => {
                total.merge(&d);
                dirty = true;
            }
            Ok(Msg::Beat {
                shard,
                trials,
                events,
                wall_nanos,
            }) => {
                if shards.len() <= shard {
                    shards.resize(shard + 1, ShardStat::default());
                }
                let s = &mut shards[shard];
                s.trials += trials;
                s.events += events;
                s.wall_nanos += wall_nanos;
                dirty = true;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        if dirty && last_flush.elapsed() >= flush_every {
            publish(&total, &shards, started, &mut opts, &mut series);
            last_flush = Instant::now();
            dirty = false;
        }
    }
    // Final frame so viewers (and the report) see the complete totals.
    publish(&total, &shards, started, &mut opts, &mut series);
    HubReport {
        total,
        series,
        shards,
    }
}

fn publish(
    total: &StatsSnapshot,
    shards: &[ShardStat],
    started: Instant,
    opts: &mut HubOptions,
    series: &mut Vec<StatsSnapshot>,
) {
    let mut frame_snap = *total;
    if let Some(sampler) = opts.sampler.as_mut() {
        sampler(&mut frame_snap);
    }
    if series.len() == SERIES_CAP {
        series.remove(0);
    }
    series.push(frame_snap);
    if let Some(path) = opts.stream_path.as_ref() {
        let frame = Frame {
            elapsed_nanos: started.elapsed().as_nanos() as u64,
            snapshot: frame_snap,
            shards: shards.to_vec(),
        };
        // Best effort: a live view must never kill the run.
        let _ = frame.write_atomic(path);
    }
}

/// Header line of the stream-frame codec.
pub const FRAME_HEADER: &str = "nautix-stream v1";

/// One published stream frame: what `nautix-top` renders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Nanoseconds since the hub started.
    pub elapsed_nanos: u64,
    /// Cumulative process-level snapshot (sampler overlay applied).
    pub snapshot: StatsSnapshot,
    /// Per-shard progress table.
    pub shards: Vec<ShardStat>,
}

impl Frame {
    /// Overall simulated-event throughput, events per wall second.
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.snapshot.events as f64 / (self.elapsed_nanos as f64 / 1e9)
        }
    }

    /// Canonical text encoding (versioned, strict; mirrors the snapshot
    /// codec's rules).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(FRAME_HEADER);
        s.push('\n');
        s.push_str(&format!("elapsed_nanos {}\n", self.elapsed_nanos));
        s.push_str(&self.snapshot.to_text());
        for (i, sh) in self.shards.iter().enumerate() {
            s.push_str(&format!(
                "shard {i} {} {} {}\n",
                sh.trials, sh.events, sh.wall_nanos
            ));
        }
        s.push_str("eof\n");
        s
    }

    /// Strict parse of [`Frame::to_text`] output.
    pub fn from_text(text: &str) -> Result<Frame, String> {
        let mut rest = text;
        let mut take_line = |what: &str| -> Result<&str, String> {
            let (line, tail) = rest
                .split_once('\n')
                .ok_or_else(|| format!("truncated frame: missing {what}"))?;
            rest = tail;
            Ok(line)
        };
        let header = take_line("header")?;
        if header != FRAME_HEADER {
            return Err(format!(
                "unknown stream version: expected `{FRAME_HEADER}`, got `{header}`"
            ));
        }
        let elapsed = take_line("elapsed_nanos")?;
        let elapsed_nanos = elapsed
            .strip_prefix("elapsed_nanos ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad elapsed_nanos line: `{elapsed}`"))?;
        // The embedded snapshot runs up to and including its `end` line.
        let end = rest
            .find("\nend\n")
            .map(|i| i + "\nend\n".len())
            .ok_or("truncated frame: snapshot missing `end`")?;
        let snapshot = StatsSnapshot::from_text(&rest[..end])?;
        rest = &rest[end..];
        let mut shards = Vec::new();
        loop {
            let (line, tail) = rest
                .split_once('\n')
                .ok_or("truncated frame: missing `eof`")?;
            rest = tail;
            if line == "eof" {
                break;
            }
            let mut it = line.split(' ');
            let parse = |v: Option<&str>| -> Result<u64, String> {
                v.and_then(|x| x.parse().ok())
                    .ok_or_else(|| format!("bad shard line: `{line}`"))
            };
            if it.next() != Some("shard") {
                return Err(format!("expected `shard` or `eof`, got `{line}`"));
            }
            let idx = parse(it.next())? as usize;
            if idx != shards.len() {
                return Err(format!("shard lines out of order at `{line}`"));
            }
            shards.push(ShardStat {
                trials: parse(it.next())?,
                events: parse(it.next())?,
                wall_nanos: parse(it.next())?,
            });
            if it.next().is_some() {
                return Err(format!("bad shard line: `{line}`"));
            }
        }
        if !rest.trim().is_empty() {
            return Err("trailing garbage after `eof`".into());
        }
        Ok(Frame {
            elapsed_nanos,
            snapshot,
            shards,
        })
    }

    /// Write the frame to `path.tmp`, then rename over `path`, so readers
    /// never observe a torn frame.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Read and parse the latest published frame.
    pub fn read(path: &Path) -> Result<Frame, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Frame::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(events: u64, missed: u64) -> StatsSnapshot {
        StatsSnapshot {
            trials: 1,
            events,
            met: 10,
            missed,
            ..StatsSnapshot::default()
        }
    }

    #[test]
    fn hub_total_is_order_independent_sum() {
        let serial = {
            let hub = StatsHub::start(HubOptions::default());
            let tx = hub.tx();
            for i in 0..100 {
                tx.delta(delta(i, i % 3));
            }
            drop(tx);
            hub.finish().total
        };
        let fanned = {
            let hub = StatsHub::start(HubOptions::default());
            std::thread::scope(|s| {
                for w in 0..4 {
                    let tx = hub.tx();
                    s.spawn(move || {
                        for i in (w..100).step_by(4) {
                            tx.delta(delta(i, i % 3));
                        }
                    });
                }
            });
            hub.finish().total
        };
        assert_eq!(serial, fanned);
        assert_eq!(serial.trials, 100);
        assert_eq!(serial.events, (0..100).sum::<u64>());
    }

    #[test]
    fn beats_accumulate_per_shard_without_touching_totals() {
        let hub = StatsHub::start(HubOptions::default());
        let tx = hub.tx();
        tx.beat(0, 1, 500, 1000);
        tx.beat(2, 1, 700, 2000);
        tx.beat(0, 1, 300, 1000);
        drop(tx);
        let rep = hub.finish();
        assert_eq!(rep.total, StatsSnapshot::default());
        assert_eq!(rep.shards.len(), 3);
        assert_eq!(rep.shards[0].trials, 2);
        assert_eq!(rep.shards[0].events, 800);
        assert_eq!(rep.shards[1], ShardStat::default());
        assert_eq!(rep.shards[2].events, 700);
    }

    #[test]
    fn sampler_overlays_frames_but_not_the_total() {
        let hub = StatsHub::start(HubOptions {
            sampler: Some(Box::new(|s| s.oracle_suites = 42)),
            ..HubOptions::default()
        });
        let tx = hub.tx();
        tx.delta(delta(5, 0));
        drop(tx);
        let rep = hub.finish();
        assert_eq!(rep.total.oracle_suites, 0, "total stays a pure sum");
        assert_eq!(rep.series.last().unwrap().oracle_suites, 42);
    }

    #[test]
    fn frame_round_trips_through_file() {
        let frame = Frame {
            elapsed_nanos: 123_456_789,
            snapshot: delta(99, 1),
            shards: vec![
                ShardStat {
                    trials: 3,
                    events: 50,
                    wall_nanos: 10,
                },
                ShardStat {
                    trials: 1,
                    events: 49,
                    wall_nanos: 20,
                },
            ],
        };
        let back = Frame::from_text(&frame.to_text()).unwrap();
        assert_eq!(frame, back);
        let dir = std::env::temp_dir().join("nautix_frame_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("stream.nautix");
        frame.write_atomic(&p).unwrap();
        assert_eq!(Frame::read(&p).unwrap(), frame);
    }

    #[test]
    fn frame_parse_is_strict() {
        let frame = Frame {
            elapsed_nanos: 1,
            snapshot: StatsSnapshot::default(),
            shards: vec![ShardStat::default()],
        };
        let t = frame.to_text();
        assert!(Frame::from_text(&t.replace("v1", "v7"))
            .unwrap_err()
            .contains("version"));
        assert!(Frame::from_text(t.strip_suffix("eof\n").unwrap()).is_err());
        assert!(Frame::from_text(&t.replace("shard 0", "shard 5")).is_err());
        assert!(Frame::from_text(&format!("{t}junk\n")).is_err());
    }

    #[test]
    fn stream_file_is_published_and_parseable() {
        let dir = std::env::temp_dir().join("nautix_hub_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("live.nautix");
        let hub = StatsHub::start(HubOptions {
            stream_path: Some(p.clone()),
            flush_every: Some(Duration::from_millis(1)),
            ..HubOptions::default()
        });
        let tx = hub.tx();
        tx.delta(delta(11, 2));
        tx.beat(0, 1, 11, 5_000);
        drop(tx);
        let rep = hub.finish();
        let frame = Frame::read(&p).unwrap();
        assert_eq!(frame.snapshot, rep.total);
        assert_eq!(frame.shards, rep.shards);
    }
}
