//! Differential property tests: the timing wheel against the binary heap.
//!
//! The wheel's entire value proposition rests on being *observationally
//! identical* to the heap reference — same pop stream, same [`EventId`]s
//! (tie-breaks included), same counters — so the paper-scale repro can
//! switch backends without moving a byte. These tests drive both backends
//! through identical random schedule/cancel/advance/pop churn and assert
//! the full observable state stays in lockstep at every step.

use nautix_des::event::HeapQueue;
use nautix_des::wheel::WheelQueue;
use nautix_des::{Cycles, EventId, EventQueue, QueueKind};
use proptest::prelude::*;

/// One scripted queue operation, decoded from raw random words so the
/// same script drives both backends.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delay`; delay mixes magnitudes from level-0
    /// spans up to beyond the 2^32-cycle wheel horizon.
    Push { delay: Cycles, key: u64 },
    /// Cancel the `pick`-th live id (mod the live count).
    Cancel { pick: usize },
    /// Advance both clocks part-way toward the next event (`frac`/256 of
    /// the gap) — this is what forces mid-window cascades.
    Advance { frac: u8 },
    /// Pop one event from each and compare.
    Pop,
    /// Drain one whole instant from each and compare the batches.
    PopBatch,
}

fn decode(sel: u8, a: u64, b: u64) -> Op {
    match sel % 8 {
        // Weight pushes heaviest so queues actually fill up.
        0..=2 => {
            // Spans covering every wheel level plus the overflow list,
            // with a bias toward small deltas (timer-like traffic).
            let span = [
                0x40u64,
                0x100,
                0x4000,
                0x40_0000,
                0x4000_0000,
                0x2_0000_0000,
            ][(a % 6) as usize];
            Op::Push {
                delay: b % span,
                key: a ^ b,
            }
        }
        3 => Op::Cancel { pick: a as usize },
        4 => Op::Advance { frac: a as u8 },
        5 | 6 => Op::Pop,
        _ => Op::PopBatch,
    }
}

/// Assert every `&self` observable matches.
fn assert_state_eq(h: &HeapQueue<u64>, w: &WheelQueue<u64>) {
    assert_eq!(h.now(), w.now(), "clocks diverged");
    assert_eq!(h.peek_time(), w.peek_time(), "peek_time diverged");
    assert_eq!(h.is_empty(), w.is_empty(), "is_empty diverged");
    assert_eq!(h.backlog(), w.backlog(), "backlog diverged");
    assert_eq!(
        h.events_processed(),
        w.events_processed(),
        "events_processed diverged"
    );
}

fn run_script(ops: &[(u8, u64, u64)]) {
    let mut h: HeapQueue<u64> = HeapQueue::new();
    let mut w: WheelQueue<u64> = WheelQueue::new();
    // Live ids mirror each other exactly because both backends use the
    // same LIFO free-list discipline; minted ids are asserted equal.
    let mut live: Vec<EventId> = Vec::new();

    for &(sel, a, b) in ops {
        match decode(sel, a, b) {
            Op::Push { delay, key } => {
                let at = h.now().saturating_add(delay);
                let hid = h.schedule(at, key);
                let wid = w.schedule(at, key);
                prop_assert_eq!(hid, wid, "minted EventIds diverged");
                live.push(hid);
            }
            Op::Cancel { pick } => {
                if !live.is_empty() {
                    let id = live.swap_remove(pick % live.len());
                    let hc = h.cancel(id);
                    let wc = w.cancel(id);
                    prop_assert_eq!(hc, wc, "cancel outcome diverged");
                    prop_assert!(hc, "live-tracked id was not cancellable");
                }
            }
            Op::Advance { frac } => {
                if let Some(t) = h.peek_time() {
                    let gap = t - h.now();
                    let to = h.now() + gap / 256 * frac as u64;
                    h.advance_to(to);
                    w.advance_to(to);
                }
            }
            Op::Pop => {
                let hp = h.pop();
                let wp = w.pop();
                prop_assert_eq!(&hp, &wp, "pop streams diverged");
                if let Some((_, id, _)) = hp {
                    live.retain(|x| *x != id);
                }
            }
            Op::PopBatch => {
                let mut hb: Vec<(Cycles, EventId, u64)> = Vec::new();
                let mut wb: Vec<(Cycles, EventId, u64)> = Vec::new();
                let hn = h.pop_batch(|t, id, p| hb.push((t, id, p)));
                let wn = w.pop_batch(|t, id, p| wb.push((t, id, p)));
                prop_assert_eq!(hn, wn, "batch sizes diverged");
                prop_assert_eq!(&hb, &wb, "batch contents diverged");
                for (_, id, _) in &hb {
                    live.retain(|x| x != id);
                }
            }
        }
        assert_state_eq(&h, &w);
    }

    // Full drain: the remaining streams must agree event for event.
    loop {
        let hp = h.pop();
        let wp = w.pop();
        prop_assert_eq!(&hp, &wp, "drain streams diverged");
        assert_state_eq(&h, &w);
        if hp.is_none() {
            break;
        }
    }
}

proptest! {
    #[test]
    fn wheel_matches_heap_under_random_churn(
        ops in prop::collection::vec((0u8..=255, 0u64..u64::MAX, 0u64..u64::MAX), 1..400)
    ) {
        run_script(&ops);
    }
}

/// Same churn, but driven through the [`EventQueue`] facade with mixed
/// same-instant bursts — exercises the `QueueKind` selection path itself.
#[test]
fn facade_backends_agree_on_bursty_same_instant_traffic() {
    let mut h = EventQueue::with_kind(QueueKind::Heap);
    let mut w = EventQueue::with_kind(QueueKind::Wheel);
    assert_eq!(h.kind(), QueueKind::Heap);
    assert_eq!(w.kind(), QueueKind::Wheel);
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let mut next = |bound: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % bound
    };
    for round in 0..200u64 {
        // A burst of events at one instant, plus stragglers elsewhere.
        let t = h.now() + next(1 << 20);
        for i in 0..next(8) {
            let (a, b) = (
                h.schedule(t, round * 100 + i),
                w.schedule(t, round * 100 + i),
            );
            assert_eq!(a, b);
        }
        let far = h.now() + (1 << 16) + next(1 << 34);
        assert_eq!(h.schedule(far, round), w.schedule(far, round));
        let mut hb = Vec::new();
        let mut wb = Vec::new();
        h.pop_batch(|x, id, p| hb.push((x, id, p)));
        w.pop_batch(|x, id, p| wb.push((x, id, p)));
        assert_eq!(hb, wb, "facade batch diverged at round {round}");
    }
    loop {
        let (a, b) = (h.pop(), w.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

/// Cancel-during-cascade, pinned: events parked at a high level are
/// cancelled *after* an `advance_to` has cascaded their neighbours but
/// before their own slot drains, on both backends.
#[test]
fn cancel_during_cascade_stays_in_lockstep() {
    let mut h: HeapQueue<u64> = HeapQueue::new();
    let mut w: WheelQueue<u64> = WheelQueue::new();
    // Ten same-instant events parked at level 2 of the wheel.
    let t = 3 << 16;
    let ids: Vec<EventId> = (0..10)
        .map(|i| {
            let id = h.schedule(t, i);
            assert_eq!(id, w.schedule(t, i));
            id
        })
        .collect();
    // Advance into the window: the wheel cascades the slot down.
    h.advance_to(t - 1);
    w.advance_to(t - 1);
    // Cancel every other one mid-cascade-state.
    for id in ids.iter().step_by(2) {
        assert!(h.cancel(*id));
        assert!(w.cancel(*id));
    }
    let mut hb = Vec::new();
    let mut wb = Vec::new();
    assert_eq!(
        h.pop_batch(|x, id, p| hb.push((x, id, p))),
        w.pop_batch(|x, id, p| wb.push((x, id, p)))
    );
    assert_eq!(hb, wb);
    // Survivors fire in original insertion order.
    assert_eq!(
        hb.iter().map(|e| e.2).collect::<Vec<_>>(),
        vec![1, 3, 5, 7, 9]
    );
}
