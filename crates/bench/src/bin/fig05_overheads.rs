//! Figure 5: local scheduler overhead breakdown on Phi and R415.

use nautix_bench::{banner, f, fig05, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 5: scheduler overhead breakdown (cycles)");
    let r = fig05::run(scale, 17);
    let mut rows = Vec::new();
    for p in [&r.phi, &r.r415] {
        println!(
            "-- {:?} ({} samples), total mean {}",
            p.platform,
            p.samples,
            f(p.mean_total())
        );
        for (name, s) in [
            ("IRQ", &p.breakdown.irq),
            ("Other", &p.breakdown.other),
            ("Resched", &p.breakdown.resched),
            ("Switch", &p.breakdown.switch),
        ] {
            println!(
                "  {name:8} mean={} std={} min={} max={}",
                f(s.mean),
                f(s.std_dev),
                s.min,
                s.max
            );
            rows.push(vec![
                format!("{:?}", p.platform),
                name.to_string(),
                f(s.mean),
                f(s.std_dev),
                s.min.to_string(),
                s.max.to_string(),
            ]);
        }
    }
    write_csv(
        &out_dir().join("fig05_overheads.csv"),
        &["platform", "component", "mean", "std", "min", "max"],
        rows,
    );
    println!("wrote {:?}", out_dir().join("fig05_overheads.csv"));
}
