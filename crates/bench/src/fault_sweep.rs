//! Fault sweep: deterministic injection under graceful degradation.
//!
//! Sweeps the [`nautix_hw::FaultPlan::noisy`] intensity knob over an admitted
//! mixed-criticality workload (one periodic probe, one sporadic burst) and
//! reports, per grid point, the deadline miss rate, the per-lane injection
//! counts the machine recorded, and the degradation responses the local
//! schedulers took (sporadic demotion, periodic widening/demotion).
//!
//! Intensity 0.0 is always the first column: it runs the identical
//! workload with a disabled [`nautix_hw::FaultPlan`] and must match a fault-free
//! build byte for byte — the determinism contract the
//! `fault_determinism` test pins down.

use crate::common::Scale;
use crate::harness::{run_trials_pooled, HarnessStats, NodePool};
use crate::scenario::Scenario;
use nautix_des::Nanos;
use nautix_hw::FaultStats;
use nautix_rt::{DegradeStats, HarnessConfig};

/// One (intensity, period, slice) sample of the sweep.
///
/// `PartialEq` is derived so determinism tests can compare whole sweeps
/// (serial vs. parallel, fresh vs. pooled) for exact equality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// Injection intensity passed to [`nautix_hw::FaultPlan::noisy`] (0 = disabled).
    pub intensity: f64,
    /// Probe period τ in µs.
    pub period_us: u64,
    /// Probe slice as % of period.
    pub slice_pct: u64,
    /// Periodic jobs observed.
    pub jobs: u64,
    /// Fraction of periodic jobs completing after their deadline.
    pub miss_rate: f64,
    /// Per-lane injection counters from the machine.
    pub faults: FaultStats,
    /// Degradation responses across the node's local schedulers.
    pub degrade: DegradeStats,
    /// Simulated machine events this trial processed.
    pub events: u64,
}

/// The intensities every sweep visits; `hc.faults`, when enabled and not
/// already present, is appended so `NAUTIX_FAULTS` extends the grid.
pub fn intensities(hc: &HarnessConfig) -> Vec<f64> {
    let mut v = vec![0.0, 0.25, 0.5, 1.0];
    if hc.faults.enabled() && !v.contains(&hc.faults.0) {
        v.push(hc.faults.0);
    }
    v
}

/// The (intensity, period_ns, slice_pct, jobs) grid for a scale.
pub fn trial_grid(hc: &HarnessConfig, scale: Scale) -> Vec<(f64, Nanos, u64, u64)> {
    // Every point is feasible fault-free (the intensity-0 column must run
    // miss-free, or an armed oracle would flag a violated admission
    // guarantee); the short-period points leave only a few µs of slack,
    // so injected interference surfaces as misses and — sustained — as
    // degradation responses.
    let (periods_us, pcts, jobs): (Vec<u64>, Vec<u64>, u64) = match scale {
        Scale::Quick => (vec![1000, 100, 30], vec![30, 60], 150),
        Scale::Paper => (vec![1000, 100, 50, 30], vec![30, 50, 60], 400),
    };
    let mut grid = Vec::new();
    for &i in &intensities(hc) {
        for &p in &periods_us {
            for &pct in &pcts {
                grid.push((i, p * 1000, pct, jobs));
            }
        }
    }
    grid
}

/// Measure one grid point on a fresh node.
pub fn measure_point(
    intensity: f64,
    period_ns: Nanos,
    slice_pct: u64,
    jobs: u64,
    seed: u64,
) -> FaultPoint {
    measure_point_pooled(
        &mut NodePool::new(),
        intensity,
        period_ns,
        slice_pct,
        jobs,
        seed,
    )
}

/// Measure one grid point, reusing `pool`'s node arenas.
///
/// The trial itself is described by [`Scenario::fault_mix`] and executed
/// through [`Scenario::run_recorded`], so every sweep point is
/// automatically streamable to the stats hub and replayable from its
/// scenario text if an armed oracle flags it.
pub fn measure_point_pooled(
    pool: &mut NodePool,
    intensity: f64,
    period_ns: Nanos,
    slice_pct: u64,
    jobs: u64,
    seed: u64,
) -> FaultPoint {
    let sc = Scenario::fault_mix(intensity, period_ns, slice_pct, jobs, seed);
    let out = sc.run_recorded(pool).expect("fault scenario is runnable");
    FaultPoint {
        intensity,
        period_us: period_ns / 1000,
        slice_pct,
        jobs: out.jobs,
        miss_rate: out.miss_rate,
        faults: out.faults,
        degrade: out.degrade,
        events: out.events,
    }
}

/// Run the full sweep, grid points fanned across worker threads as
/// independent trials on pooled nodes.
pub fn sweep_with_stats(
    hc: &HarnessConfig,
    scale: Scale,
    seed: u64,
) -> (Vec<FaultPoint>, HarnessStats) {
    let set = run_trials_pooled(
        hc,
        trial_grid(hc, scale),
        |pool, &(intensity, period_ns, slice_pct, jobs)| {
            let p = measure_point_pooled(pool, intensity, period_ns, slice_pct, jobs, seed);
            (p, p.events)
        },
    );
    (set.results, set.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_intensity_runs_clean_and_injects_nothing() {
        let p = measure_point(0.0, 1_000_000, 30, 40, 7);
        assert_eq!(p.faults.total(), 0, "disabled plan must inject nothing");
        assert_eq!(p.miss_rate, 0.0, "feasible fault-free point must not miss");
        assert_eq!(p.degrade.total(), 0);
    }

    #[test]
    fn full_intensity_injects_on_every_configured_lane() {
        let p = measure_point(1.0, 100_000, 60, 200, 7);
        assert!(p.faults.total() > 0, "noisy plan must inject faults");
        assert!(
            p.faults.freq_dips + p.faults.spurious_irqs + p.faults.cpu_stalls > 0,
            "patterned lanes must fire over 20 ms: {:?}",
            p.faults
        );
    }

    #[test]
    fn same_inputs_reproduce_byte_identically() {
        let a = measure_point(0.5, 100_000, 60, 60, 11);
        let b = measure_point(0.5, 100_000, 60, 60, 11);
        assert_eq!(a, b);
    }
}
