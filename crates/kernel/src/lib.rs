//! Nautilus-like kernel substrate.
//!
//! The paper's scheduler is embedded in Nautilus, "a kernel framework
//! designed to support HRT construction": streamlined threads, fixed-size
//! scheduler state, explicit buddy-system NUMA memory management, bounded
//! interrupt handlers, and fully steerable interrupts (§2). This crate is
//! that substrate, rebuilt for the simulated node:
//!
//! * [`thread`] — the fixed-capacity thread table with reaping/reanimation,
//! * [`program`] — resumable thread bodies and the kernel service ABI,
//! * [`constraints`] — the Liu-model timing-constraint descriptors (§3.1),
//! * [`queue`] — fixed-size priority and round-robin queues (§3.3),
//! * [`alloc`] — buddy allocators with NUMA zones (§2),
//! * [`sync`] — the spin barrier with modeled release staggering (§4.4),
//! * [`task`] — lightweight size-tagged tasks (§3.1),
//! * [`steering`] — interrupt steering and segregation (§3.5).
//!
//! The hard real-time scheduler itself lives in `nautix-rt`.

pub mod alloc;
pub mod constraints;
pub mod ids;
pub mod program;
pub mod queue;
pub mod steering;
pub mod sync;
pub mod task;
pub mod thread;

pub use alloc::{BuddyAllocator, Zone, ZoneAllocator};
pub use constraints::{
    task_set_signature, AdmissionError, ConstraintError, Constraints, ConstraintsBuilder, Priority,
};
pub use ids::{GroupId, TaskId};
pub use program::{
    Action, FnProgram, GroupError, IdleLoop, Program, ResumeCx, Script, SysCall, SysResult,
    ThreadId,
};
pub use queue::{FixedHeap, RrQueue};
pub use steering::{Steering, TPR_HARD_RT, TPR_OPEN};
pub use sync::{BarrierOutcome, Release, SimBarrier};
pub use task::{Task, TaskQueueFull, TaskQueues};
pub use thread::{Thread, ThreadState, ThreadTable, WaitKind, MAX_THREADS};
