//! Sporadic fallback semantics (§3.2): a sporadic burst past its
//! deadline δ decays to the aperiodic class at its declared priority µ,
//! and once demoted it can never preempt — or outrank — an in-deadline
//! RT thread.

use nautix_des::Freq;
use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{
    InvokeReason, JobOutcome, LocalScheduler, Node, NodeConfig, SchedConfig, SchedThread,
};

fn mk() -> (LocalScheduler, Vec<SchedThread>) {
    // tid 0 is the idle thread by convention.
    let sched = LocalScheduler::new(0, 0, SchedConfig::default(), Freq::phi(), 64);
    let threads = (0..8).map(|_| SchedThread::new_aperiodic()).collect();
    (sched, threads)
}

fn sporadic_mu(size: u64, deadline: u64, mu: u64) -> Constraints {
    Constraints::Sporadic {
        phase: 0,
        size,
        deadline,
        aperiodic_priority: mu,
    }
}

/// A burst that completes only after δ records a miss and lands the
/// thread in the aperiodic class at exactly priority µ.
#[test]
fn overrun_past_deadline_demotes_to_priority_mu() {
    let (mut s, mut ts) = mk();
    s.change_constraints(1, &mut ts[1], sporadic_mu(5_000, 50_000, 7), 0, true)
        .unwrap();
    s.enqueue(1, &mut ts[1], 0);
    let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
    assert_eq!(d.next, 1);
    assert!(d.next_is_rt);
    // Burn the whole burst, but only complete 10 µs past the deadline.
    let c = ts[1].remaining_cycles;
    s.account(&mut ts[1], c);
    s.invoke(60_000, &mut ts, InvokeReason::Timer, true);
    assert_eq!(s.last_outcome, Some(JobOutcome::Missed { late_ns: 10_000 }));
    assert_eq!(ts[1].stats.missed, 1);
    assert!(!ts[1].is_rt(), "burst over: thread must leave the RT class");
    assert_eq!(
        ts[1].constraints,
        Constraints::Aperiodic { priority: 7 },
        "demotion must preserve the declared aperiodic priority µ"
    );
}

/// After demotion the thread is scheduled strictly behind any in-deadline
/// RT thread: it neither wins the initial pick nor preempts mid-job, no
/// matter how high its µ.
#[test]
fn demoted_sporadic_never_preempts_in_deadline_rt() {
    let (mut s, mut ts) = mk();
    // Maximal µ: if any aperiodic could outrank RT, this one would.
    s.change_constraints(1, &mut ts[1], sporadic_mu(5_000, 50_000, u64::MAX), 0, true)
        .unwrap();
    s.enqueue(1, &mut ts[1], 0);
    s.invoke(0, &mut ts, InvokeReason::Timer, false);
    let c = ts[1].remaining_cycles;
    s.account(&mut ts[1], c);
    let d = s.invoke(60_000, &mut ts, InvokeReason::Timer, true);
    assert!(!ts[1].is_rt());
    assert_eq!(d.next, 1, "demoted thread alone: it runs as background");

    // An in-deadline periodic thread arrives; it must win immediately
    // even though the demoted thread is current and runnable.
    // Phase is relative to the anchor instant: 0 means "first job due
    // now", so the thread is immediately in deadline.
    let rt = Constraints::periodic(100_000, 30_000).build();
    s.change_constraints(2, &mut ts[2], rt, 60_000, true)
        .unwrap();
    s.enqueue(2, &mut ts[2], 60_000);
    let d = s.invoke(60_000, &mut ts, InvokeReason::Timer, true);
    assert_eq!(d.next, 2, "in-deadline RT must displace the demoted thread");
    assert!(d.next_is_rt);

    // Mid-job re-invocations keep the RT thread on the CPU.
    let half = ts[2].remaining_cycles / 2;
    s.account(&mut ts[2], half);
    let d = s.invoke(75_000, &mut ts, InvokeReason::Timer, true);
    assert_eq!(d.next, 2, "demoted thread must not preempt an active job");

    // Only once the RT job completes does the demoted thread run again.
    let rest = ts[2].remaining_cycles;
    s.account(&mut ts[2], rest);
    let d = s.invoke(90_000, &mut ts, InvokeReason::Timer, true);
    assert_eq!(s.last_outcome, Some(JobOutcome::Met));
    assert_eq!(d.next, 1, "RT job done: background thread resumes");
    assert!(!d.next_is_rt);
}

/// Full-node version of the fallback contract: after its declared burst
/// a sporadic thread decays to the aperiodic class, and however much it
/// keeps computing afterwards it must not induce a single miss in a
/// co-located periodic thread. (An *admitted* sporadic always meets its
/// burst on a clean node — that is the admission guarantee — so the
/// miss-triggered demotion itself is pinned down at scheduler level
/// above.)
#[test]
fn decayed_sporadic_is_harmless_to_periodic_neighbors_on_a_node() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(99);
    let mut node = Node::new(cfg);

    // Sporadic: declares a 10 µs burst in a 100 µs window, then keeps
    // computing for 10 ms as demoted background work.
    let sporadic = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::sporadic(10_000, 100_000).build(),
            ))
        } else {
            Action::Compute(10_000_000)
        }
    });
    let sp = node.spawn_on(1, "burst", Box::new(sporadic)).unwrap();

    // Periodic neighbor on the same CPU: 200 µs period, 40 µs slice.
    let periodic = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(200_000, 40_000).build(),
            ))
        } else {
            Action::Compute(1_000_000)
        }
    });
    let rt = node.spawn_on(1, "victim", Box::new(periodic)).unwrap();

    node.run_for_ns(10_000_000);

    let sp_st = node.thread_state(sp);
    assert!(!sp_st.is_rt(), "sporadic must decay after its burst");
    assert_eq!(
        sp_st.stats.met + sp_st.stats.missed,
        1,
        "exactly the one declared burst should have completed"
    );
    let rt_st = node.thread_state(rt);
    assert!(rt_st.stats.met > 0, "periodic neighbor never ran");
    assert_eq!(
        rt_st.stats.missed, 0,
        "decayed sporadic induced misses in an in-deadline RT neighbor"
    );
}
