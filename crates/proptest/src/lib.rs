//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no network access, so the
//! real proptest cannot be vendored. This crate implements the subset of
//! its API that the workspace's property tests actually use — enough to
//! keep those tests meaningful randomized tests rather than deleting them:
//!
//! * the [`proptest!`] macro (each test function runs `PROPTEST_CASES`
//!   deterministic cases, default 64, seeded from the test's name),
//! * [`Strategy`] with `prop_map`, implemented for integer ranges and
//!   tuples,
//! * `prop::collection::vec`, `prop::bool::ANY`, `prop::sample::select`,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`].
//!
//! Sampling is deterministic: the same test name and case index always see
//! the same inputs, so failures reproduce without shrink support. Set
//! `PROPTEST_CASES` to raise or lower the case count.

/// The deterministic source of randomness behind every strategy.
///
/// SplitMix64: tiny, full-period, and statistically fine for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream determined entirely by `seed`.
    pub fn seed_from(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for test-input
        // generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over a test's name: a stable per-test seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of cases each `proptest!` function runs.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// One alternative of a [`OneOf`]: a boxed sampling closure.
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A weighted-free choice among boxed alternatives ([`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Build from sampling closures (used by the macro).
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(!arms.is_empty());
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// A `Vec` whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// The result of [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Either boolean, evenly.
        pub struct Any;
        /// Either boolean, evenly.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Sampling from explicit menus.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty());
            Select { options }
        }

        /// The result of [`select`].
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Strategy};
}

/// Assert inside a property test (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let s = $arm;
                std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&s, rng)
                })
            }),+
        ])
    };
}

/// Define property tests: each function body runs [`cases`] times with
/// inputs drawn deterministically from its strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::seed_from($crate::seed_of(stringify!($name)));
            for _case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3usize..=7).sample(&mut rng);
            assert!((3..=7).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::seed_from(2);
        let s = prop::collection::vec(0u64..100, 2..9);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![
            (0u64..1).prop_map(|_| "a"),
            (0u64..1).prop_map(|_| "b"),
            (0u64..1).prop_map(|_| "c"),
        ];
        let mut rng = TestRng::seed_from(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn select_and_bool_sample() {
        let mut rng = TestRng::seed_from(4);
        let menu = prop::sample::select(vec![5u64, 6, 7]);
        for _ in 0..50 {
            assert!((5..=7).contains(&menu.sample(&mut rng)));
        }
        let mut t = 0;
        for _ in 0..100 {
            if prop::bool::ANY.sample(&mut rng) {
                t += 1;
            }
        }
        assert!(t > 20 && t < 80);
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 1u64..50, v in prop::collection::vec(0u64..10, 1..4)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }
}
