//! Figure 10: group admission control costs vs. group size.

use nautix_bench::{banner, f, fig10, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 10: group admission cost breakdown (cycles)");
    let results = fig10::run(scale, 9);
    let mut rows = Vec::new();
    println!("n,step,min,avg,max");
    for r in &results {
        for (step, s) in [
            ("join", &r.join),
            ("election", &r.election),
            ("admission", &r.admission),
            ("local_admission", &r.local),
            ("barrier_phase", &r.barrier_phase),
            ("total", &r.total),
        ] {
            println!("{},{},{},{},{}", r.n, step, s.min, f(s.mean), s.max);
            rows.push(vec![
                r.n.to_string(),
                step.to_string(),
                s.min.to_string(),
                f(s.mean),
                s.max.to_string(),
            ]);
        }
    }
    if let Some(last) = results.last() {
        println!(
            "at n={}: total mean {:.2}M cycles (paper: ~8M at 255)",
            last.n,
            last.total.mean / 1e6
        );
    }
    write_csv(
        &out_dir().join("fig10_group_admission.csv"),
        &["n", "step", "min_cycles", "avg_cycles", "max_cycles"],
        rows,
    );
    println!("wrote {:?}", out_dir().join("fig10_group_admission.csv"));
}
