//! Fixed-capacity scheduler queues.
//!
//! §3.3: "each local scheduler uses fixed size priority queues to implement
//! the pending and real-time run queues, and other state is also of fixed
//! size. As a result, the time spent in a local scheduler invocation is
//! bounded." These are those queues: a bounded binary min-heap with
//! deterministic FIFO tie-breaking, and a bounded round-robin queue for
//! non-real-time threads. Pushing past capacity is an admission-control
//! failure surfaced to the caller, never a reallocation.
//!
//! These run queues deliberately stay heaps even though the simulator's
//! future-event list moved to a hierarchical timing wheel
//! (`nautix_des::wheel`): a run queue holds at most `capacity` entries
//! (tens, set by admission control), where O(log n) with FIFO tie-break
//! beats a 1K-slot wheel's cache footprint — and EDF keys are deadlines,
//! not timestamps bounded by a sim clock horizon. The wheel pays off at
//! the event-queue's scale (hundreds of thousands of timer-shaped
//! events), not here.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded binary min-heap of `(key, value)` with FIFO tie-break.
///
/// Alongside the heap array it keeps a value→heap-indices map, maintained
/// through every sift swap, so [`FixedHeap::contains`] is O(1) and
/// [`FixedHeap::remove`] is O(log n) — no linear scan for the victim's
/// position. Duplicate values each track their own index. Both structures
/// are sized once in [`FixedHeap::new`] and never grow past `capacity`
/// entries, preserving the no-reallocation bound.
#[derive(Debug, Clone)]
pub struct FixedHeap<K: Ord + Copy, V: Copy + Eq + Hash> {
    items: Vec<(K, u64, V)>,
    /// value → indices in `items` currently holding it.
    positions: HashMap<V, Vec<u32>>,
    capacity: usize,
    seq: u64,
}

impl<K: Ord + Copy, V: Copy + Eq + Hash> FixedHeap<K, V> {
    /// An empty heap that will never hold more than `capacity` items.
    pub fn new(capacity: usize) -> Self {
        FixedHeap {
            items: Vec::with_capacity(capacity),
            positions: HashMap::with_capacity(capacity),
            capacity,
            seq: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empty the heap in place, keeping the backing storage. The FIFO
    /// sequence counter restarts, so a cleared heap behaves exactly like a
    /// fresh one (trial-to-trial determinism for pooled schedulers).
    pub fn clear(&mut self) {
        self.items.clear();
        self.positions.clear();
        self.seq = 0;
    }

    /// Insert `value` with `key`. Fails (returning the value) when full.
    pub fn push(&mut self, key: K, value: V) -> Result<(), V> {
        if self.items.len() >= self.capacity {
            return Err(value);
        }
        let seq = self.seq;
        self.seq += 1;
        self.items.push((key, seq, value));
        let idx = (self.items.len() - 1) as u32;
        self.positions.entry(value).or_default().push(idx);
        self.sift_up(self.items.len() - 1);
        Ok(())
    }

    /// The minimum-key entry without removing it.
    pub fn peek(&self) -> Option<(K, V)> {
        self.items.first().map(|&(k, _, v)| (k, v))
    }

    /// Remove and return the minimum-key entry.
    pub fn pop(&mut self) -> Option<(K, V)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.swap_entries(0, last);
        let (k, _, v) = self.items.pop().unwrap();
        self.drop_position(v, last as u32);
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        Some((k, v))
    }

    /// Remove the first-positioned entry whose value equals `value`, in
    /// O(log n): the position map hands over the victim's heap index (the
    /// lowest, matching the old array-scan semantics for duplicates), and
    /// only the sifts remain. Absent values are rejected in O(1).
    pub fn remove(&mut self, value: V) -> bool {
        let Some(ps) = self.positions.get(&value) else {
            return false;
        };
        let idx = *ps.iter().min().expect("position map entry empty") as usize;
        let last = self.items.len() - 1;
        self.swap_entries(idx, last);
        self.items.pop();
        self.drop_position(value, last as u32);
        if idx < self.items.len() {
            self.sift_down(idx);
            self.sift_up(idx);
        }
        true
    }

    /// Whether `value` is queued. O(1): a lookup in the position map.
    pub fn contains(&self, value: V) -> bool {
        self.positions.contains_key(&value)
    }

    /// Swap two heap slots, keeping the position map in sync.
    fn swap_entries(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let va = self.items[a].2;
        let vb = self.items[b].2;
        self.items.swap(a, b);
        self.reindex(va, a as u32, b as u32);
        self.reindex(vb, b as u32, a as u32);
    }

    /// Retarget one tracked index of `value` from `from` to `to`.
    fn reindex(&mut self, value: V, from: u32, to: u32) {
        let ps = self
            .positions
            .get_mut(&value)
            .expect("position map out of sync");
        let slot = ps
            .iter_mut()
            .find(|p| **p == from)
            .expect("position map out of sync");
        *slot = to;
    }

    /// Forget that `value` occupied heap index `at` (it left the heap).
    fn drop_position(&mut self, value: V, at: u32) {
        let ps = self
            .positions
            .get_mut(&value)
            .expect("position map out of sync");
        let i = ps
            .iter()
            .position(|&p| p == at)
            .expect("position map out of sync");
        ps.swap_remove(i);
        if ps.is_empty() {
            self.positions.remove(&value);
        }
    }

    /// Iterate entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        self.items.iter().map(|&(k, _, v)| (k, v))
    }

    fn less(&self, a: usize, b: usize) -> bool {
        let (ka, sa, _) = &self.items[a];
        let (kb, sb, _) = &self.items[b];
        (ka, sa) < (kb, sb)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.swap_entries(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.items.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.items.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap_entries(i, smallest);
            i = smallest;
        }
    }
}

/// A bounded round-robin ready queue with priorities: lower priority value
/// is more important; within a priority class, strict FIFO rotation.
#[derive(Debug, Clone)]
pub struct RrQueue<V: Copy + Eq> {
    items: std::collections::VecDeque<(u64, V)>,
    capacity: usize,
}

impl<V: Copy + Eq> RrQueue<V> {
    /// An empty queue with the given capacity.
    pub fn new(capacity: usize) -> Self {
        RrQueue {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Empty the queue in place, keeping the backing storage.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Enqueue at the back of `priority`'s class. Fails when full.
    pub fn push(&mut self, priority: u64, value: V) -> Result<(), V> {
        if self.items.len() >= self.capacity {
            return Err(value);
        }
        // Insert before the first entry with a strictly larger priority
        // value, i.e. after all peers: FIFO within the class.
        let pos = self
            .items
            .iter()
            .position(|&(p, _)| p > priority)
            .unwrap_or(self.items.len());
        self.items.insert(pos, (priority, value));
        Ok(())
    }

    /// Dequeue the most important (then oldest) entry.
    pub fn pop(&mut self) -> Option<(u64, V)> {
        self.items.pop_front()
    }

    /// The entry `pop` would return.
    pub fn peek(&self) -> Option<(u64, V)> {
        self.items.front().copied()
    }

    /// Remove a specific value.
    pub fn remove(&mut self, value: V) -> bool {
        if let Some(idx) = self.items.iter().position(|&(_, v)| v == value) {
            self.items.remove(idx);
            true
        } else {
            false
        }
    }

    /// Whether `value` is queued.
    pub fn contains(&self, value: V) -> bool {
        self.items.iter().any(|&(_, v)| v == value)
    }

    /// Iterate entries front-to-back.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_pops_in_key_order() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for (k, v) in [(5, 0), (1, 1), (9, 2), (3, 3)] {
            h.push(k, v).unwrap();
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 9]);
    }

    #[test]
    fn heap_ties_are_fifo() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for v in 0..5 {
            h.push(42, v).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn heap_rejects_overflow() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(2);
        h.push(1, 10).unwrap();
        h.push(2, 20).unwrap();
        assert_eq!(h.push(3, 30), Err(30));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn heap_remove_keeps_order() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for (k, v) in [(5, 0), (1, 1), (9, 2), (3, 3), (7, 4)] {
            h.push(k, v).unwrap();
        }
        assert!(h.remove(3)); // the key-3 entry
        assert!(!h.remove(3));
        let keys: Vec<_> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(keys, vec![1, 5, 7, 9]);
    }

    #[test]
    fn heap_contains_and_peek() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(4);
        h.push(2, 7).unwrap();
        h.push(1, 8).unwrap();
        assert!(h.contains(7));
        assert!(!h.contains(9));
        assert_eq!(h.peek(), Some((1, 8)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn heap_membership_tracks_duplicates() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        h.push(1, 7).unwrap();
        h.push(2, 7).unwrap();
        h.push(3, 8).unwrap();
        assert!(h.contains(7));
        assert!(h.remove(7));
        // One copy of 7 is still queued.
        assert!(h.contains(7));
        assert_eq!(h.pop(), Some((2, 7)));
        assert!(!h.contains(7));
        assert!(!h.remove(7));
        assert!(h.contains(8));
    }

    #[test]
    fn heap_remove_then_pop_preserves_order() {
        // Interior removals must leave the heap property and FIFO
        // tie-breaks intact — this is the path the position map serves.
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(16);
        for (i, k) in [8, 3, 11, 1, 9, 4, 15, 2, 6].iter().enumerate() {
            h.push(*k, i).unwrap();
        }
        assert!(h.remove(0)); // key 8, an interior node
        assert!(h.remove(7)); // key 2
        let keys: Vec<_> = std::iter::from_fn(|| h.pop().map(|(k, _)| k)).collect();
        assert_eq!(keys, vec![1, 3, 4, 6, 9, 11, 15]);
        assert!(h.is_empty());
    }

    #[test]
    fn heap_clear_restarts_fifo_sequence() {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(8);
        for v in 0..3 {
            h.push(1, v).unwrap();
        }
        h.pop();
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(1));
        // After clear, tie-break order must match a fresh heap's.
        for v in [30, 10, 20] {
            h.push(5, v).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![30, 10, 20]);
    }

    #[test]
    fn heap_random_remove_pop_matches_model() {
        // Drive the heap through thousands of push/remove/pop steps and
        // check every pop against a brute-force model; any drift in the
        // position map would surface as a mismatch or an internal panic.
        let mut h: FixedHeap<u64, u64> = FixedHeap::new(64);
        let mut model: Vec<(u64, u64)> = Vec::new(); // (key, value); value doubles as seq
        let mut next_v = 0u64;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for _ in 0..8000 {
            match next(4) {
                0 | 3 if model.len() < 64 => {
                    let k = next(50);
                    h.push(k, next_v).unwrap();
                    model.push((k, next_v));
                    next_v += 1;
                }
                1 if !model.is_empty() => {
                    let i = next(model.len() as u64) as usize;
                    let (_, v) = model[i];
                    assert!(h.remove(v));
                    assert!(!h.contains(v));
                    model.remove(i);
                }
                _ => {
                    // Values are assigned in push order, so (key, value)
                    // ordering equals the heap's (key, seq) tie-break.
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(k, v))| (k, v))
                        .map(|(i, &(k, v))| (i, k, v));
                    match (h.pop(), expect) {
                        (None, None) => {}
                        (Some((k, v)), Some((i, ek, ev))) => {
                            assert_eq!((k, v), (ek, ev));
                            model.remove(i);
                        }
                        (got, want) => panic!("pop {got:?} vs model {want:?}"),
                    }
                }
            }
        }
        assert_eq!(h.len(), model.len());
    }

    #[test]
    fn rr_priority_then_fifo() {
        let mut q: RrQueue<usize> = RrQueue::new(8);
        q.push(1, 10).unwrap();
        q.push(0, 20).unwrap();
        q.push(1, 11).unwrap();
        q.push(0, 21).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![20, 21, 10, 11]);
    }

    #[test]
    fn rr_rotation_is_fair() {
        let mut q: RrQueue<usize> = RrQueue::new(4);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        // Simulate round robin: pop, run, push back.
        let mut seen = Vec::new();
        for _ in 0..4 {
            let (p, v) = q.pop().unwrap();
            seen.push(v);
            q.push(p, v).unwrap();
        }
        assert_eq!(seen, vec![1, 2, 1, 2]);
    }

    #[test]
    fn rr_remove_and_overflow() {
        let mut q: RrQueue<usize> = RrQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(0, 3), Err(3));
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert!(q.contains(2));
        assert_eq!(q.len(), 1);
    }
}
