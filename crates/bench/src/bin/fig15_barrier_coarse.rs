//! Figure 15: benefit of barrier removal, coarse granularity.

use nautix_bench::barrier_removal;
use nautix_bench::throttle::Granularity;
use nautix_bench::{banner, f, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 15: barrier removal, coarsest granularity");
    let r = barrier_removal::run(Granularity::Coarse, scale, 7);
    println!("period_ns,slice_ns,with_barrier_ns,without_barrier_ns,speedup,violations");
    for p in &r.points {
        println!(
            "{},{},{},{},{},{}",
            p.period_ns,
            p.slice_ns,
            p.with_barrier_ns,
            p.without_barrier_ns,
            f(p.speedup()),
            p.violations
        );
    }
    println!(
        "aperiodic (non-RT, with barriers) reference: {} ns",
        r.aperiodic_ns
    );
    let wins = r.points.iter().filter(|p| p.speedup() > 1.0).count();
    println!(
        "{} of {} points run faster without the barrier",
        wins,
        r.points.len()
    );
    write_csv(
        &out_dir().join("fig15_barrier_coarse.csv"),
        &[
            "period_ns",
            "slice_ns",
            "with_barrier_ns",
            "without_barrier_ns",
            "speedup",
            "violations",
        ],
        r.points.iter().map(|p| {
            vec![
                p.period_ns.to_string(),
                p.slice_ns.to_string(),
                p.with_barrier_ns.to_string(),
                p.without_barrier_ns.to_string(),
                f(p.speedup()),
                p.violations.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig15_barrier_coarse.csv"));
}
