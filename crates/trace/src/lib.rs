//! Typed scheduler trace records and a zero-allocation ring sink.
//!
//! The paper's claims are behavioral: an admitted periodic/sporadic thread
//! never misses its deadline, the local scheduler always dispatches the
//! earliest-deadline runnable RT thread, tasks never delay RT threads, and
//! the tickless one-shot timer is always armed for the next constraint
//! edge (§3–§5). This crate is the observability substrate that lets the
//! rest of the workspace *check* those claims continuously: the scheduler,
//! node, kernel task queues, and machine emit [`Record`]s into a
//! fixed-capacity [`TraceRing`]; an optional [`Observer`] (the invariant
//! oracles in `nautix-rt::oracle`) consumes each record online, as the
//! simulation runs.
//!
//! # Zero-allocation discipline
//!
//! Records are plain `Copy` values. The ring is allocated once at trace
//! enable time and overwrites its oldest entry when full — emitting a
//! record on the event hot path is a bounds-checked store plus an optional
//! virtual call into the observer, never an allocation. The entire layer
//! is compiled in only under the `trace` cargo feature of the crates that
//! host the emission points; with the feature off the hot path is
//! byte-identical to a build without this crate.
//!
//! # Timestamps
//!
//! The simulation has two clocks, and records carry whichever the emitting
//! layer actually sees: scheduler-level records carry the CPU's wall-clock
//! estimate in nanoseconds (`now_ns`), hardware-level records carry true
//! machine time in cycles (`now_cycles`). Oracles that need both (the
//! tickless-correctness check) compare within one domain and never convert
//! across the calibration boundary.

use nautix_des::{Cycles, Nanos};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::OnceLock;

/// CPU index as recorded in the trace.
pub type TraceCpu = u32;
/// Thread id as recorded in the trace.
pub type TraceTid = u32;

/// Default ring capacity: enough recent context to explain a violation
/// (a full scheduling pass emits a handful of records) without measurable
/// footprint per node.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Outcome of a completed real-time job, as recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Completed by its deadline.
    Met,
    /// Completed after its deadline.
    Missed,
    /// The thread blocked during the job; the guarantee was forfeited.
    Forfeited,
}

/// Which injected fault lane a [`Record::Fault`] came from (the machine
/// layer's `FaultPlan`), mirrored here like [`TraceClass`] so observers
/// need no hardware-crate dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLane {
    /// A kick IPI was silently dropped.
    KickDrop,
    /// A kick IPI was delivered late.
    KickDelay,
    /// A one-shot timer fired past its quantized deadline.
    TimerOvershoot,
    /// A transient frequency dip slowed one CPU.
    FreqDip,
    /// A spurious device interrupt was raised.
    SpuriousIrq,
    /// One CPU was stalled outright.
    CpuStall,
}

impl FaultLane {
    /// Number of lanes, for per-lane counter arrays.
    pub const COUNT: usize = 6;

    /// Dense index for counter arrays.
    pub fn idx(self) -> usize {
        match self {
            FaultLane::KickDrop => 0,
            FaultLane::KickDelay => 1,
            FaultLane::TimerOvershoot => 2,
            FaultLane::FreqDip => 3,
            FaultLane::SpuriousIrq => 4,
            FaultLane::CpuStall => 5,
        }
    }

    /// Short name for summaries.
    pub fn name(self) -> &'static str {
        match self {
            FaultLane::KickDrop => "kick-drop",
            FaultLane::KickDelay => "kick-delay",
            FaultLane::TimerOvershoot => "timer-overshoot",
            FaultLane::FreqDip => "freq-dip",
            FaultLane::SpuriousIrq => "spurious-irq",
            FaultLane::CpuStall => "cpu-stall",
        }
    }

    /// All lanes in [`FaultLane::idx`] order.
    pub fn all() -> [FaultLane; FaultLane::COUNT] {
        [
            FaultLane::KickDrop,
            FaultLane::KickDelay,
            FaultLane::TimerOvershoot,
            FaultLane::FreqDip,
            FaultLane::SpuriousIrq,
            FaultLane::CpuStall,
        ]
    }
}

/// `layer` value on a [`Record::Dispatch`] of the idle thread: idle time
/// is charged to no layer.
pub const TRACE_LAYER_IDLE: u32 = u32::MAX;

/// Constraint class of an admission verdict, as recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClass {
    /// Best-effort priority class.
    Aperiodic,
    /// Periodic (phase φ, period τ, slice σ).
    Periodic,
    /// Sporadic (one burst with a deadline, then aperiodic).
    Sporadic,
}

/// One typed trace record. Emission points are the scheduler/kernel/
/// hardware paths named in each variant's doc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// End of a scheduling pass: `tid` was placed on the CPU
    /// (`LocalScheduler::invoke`). `deadline_ns` is the dispatched job's
    /// absolute deadline, `Nanos::MAX` when the thread is not an in-job RT
    /// thread (or is the idle thread).
    Dispatch {
        /// CPU the pass ran on.
        cpu: TraceCpu,
        /// Chosen thread (may be the idle thread).
        tid: TraceTid,
        /// The CPU's wall-clock estimate at the pass.
        now_ns: Nanos,
        /// Absolute deadline of the dispatched job, or `Nanos::MAX`.
        deadline_ns: Nanos,
        /// Whether the chosen thread holds RT constraints with an active job.
        is_rt: bool,
        /// Whether the chosen thread is the CPU's idle thread.
        is_idle: bool,
        /// Whether this differs from the previously running thread.
        switched: bool,
        /// Scheduling layer the chosen thread's class maps to (its wall
        /// time until the next pass is charged here), or
        /// [`TRACE_LAYER_IDLE`] for the idle thread.
        layer: u32,
    },
    /// A runnable current thread was displaced by the pass's selection.
    Preempt {
        /// CPU it happened on.
        cpu: TraceCpu,
        /// The displaced thread.
        tid: TraceTid,
        /// Wall-clock estimate at the pass.
        now_ns: Nanos,
    },
    /// A thread entered the RT run queue with an active job
    /// (`enqueue`/`enqueue_current`).
    RtQueued {
        /// CPU whose queue it entered.
        cpu: TraceCpu,
        /// The queued thread.
        tid: TraceTid,
        /// Absolute deadline it is keyed by.
        deadline_ns: Nanos,
    },
    /// A thread entered the pending queue to wait for its next arrival.
    PendingQueued {
        /// CPU whose queue it entered.
        cpu: TraceCpu,
        /// The queued thread.
        tid: TraceTid,
        /// Absolute arrival instant it is keyed by.
        arrival_ns: Nanos,
    },
    /// A thread left every queue (exit, migration, class change, or
    /// because it was dispatched).
    Dequeued {
        /// CPU whose queues it left.
        cpu: TraceCpu,
        /// The removed thread.
        tid: TraceTid,
    },
    /// A pending arrival was pumped into the RT run queue: a new job is
    /// active (`LocalScheduler::invoke`, step 2).
    JobArrive {
        /// CPU it arrived on.
        cpu: TraceCpu,
        /// The arriving thread.
        tid: TraceTid,
        /// The job's arrival instant (wall ns).
        arrival_ns: Nanos,
        /// The job's absolute deadline.
        deadline_ns: Nanos,
    },
    /// A job ran its slice to completion and was classified
    /// (`complete_job`).
    JobComplete {
        /// CPU it completed on.
        cpu: TraceCpu,
        /// The thread whose job completed.
        tid: TraceTid,
        /// Wall-clock estimate at classification.
        now_ns: Nanos,
        /// The job's absolute deadline.
        deadline_ns: Nanos,
        /// Met, missed, or forfeited.
        outcome: TraceOutcome,
    },
    /// An admission decision (`change_constraints` or group admission).
    AdmitVerdict {
        /// CPU whose ledger decided.
        cpu: TraceCpu,
        /// The thread requesting constraints.
        tid: TraceTid,
        /// Whether the request was admitted.
        accepted: bool,
        /// Whether admission control was actually enforcing (the missrate
        /// sweeps run with it disabled to map the infeasible region).
        enforced: bool,
        /// Requested class.
        class: TraceClass,
        /// Period τ (periodic) or deadline δ (sporadic), ns; 0 otherwise.
        period_ns: Nanos,
        /// Slice σ (periodic) or burst size (sporadic), ns; 0 otherwise.
        slice_ns: Nanos,
    },
    /// A thread's RT reservation was released (exit, class change away
    /// from RT, or sporadic decay to aperiodic).
    ConstraintsReleased {
        /// CPU whose ledger released it.
        cpu: TraceCpu,
        /// The thread.
        tid: TraceTid,
    },
    /// The admission engine ran a hyperperiod-simulation probe for the
    /// verdict that immediately follows as an [`Record::AdmitVerdict`] on
    /// the same CPU. Emitted only under the `HyperperiodSim` policy; the
    /// oracle layer re-simulates the mirrored admitted set and flags any
    /// divergence from a (possibly cached) `feasible` verdict.
    SimCacheProbe {
        /// CPU whose ledger probed.
        cpu: TraceCpu,
        /// Whether the verdict came from the memo cache.
        hit: bool,
        /// The feasibility verdict the probe produced.
        feasible: bool,
        /// Canonical task-set signature the memo is keyed by.
        sig: u64,
        /// Overhead model the verdict was computed under, ns/job.
        overhead_ns: Nanos,
        /// Simulation window cap, ns.
        window_cap_ns: Nanos,
    },
    /// A failed re-admission (or failed team transaction) rolled the
    /// ledger back: `tid` again holds the recorded constraints, exactly as
    /// before the attempt. Restores the oracle's admitted mirror, which
    /// the preceding rejected [`Record::AdmitVerdict`] cleared.
    AdmitRollback {
        /// CPU whose ledger rolled back.
        cpu: TraceCpu,
        /// The thread whose old reservation was restored.
        tid: TraceTid,
        /// Whether admission control was enforcing.
        enforced: bool,
        /// Class of the restored constraints.
        class: TraceClass,
        /// Period τ (periodic) or deadline δ (sporadic), ns; 0 otherwise.
        period_ns: Nanos,
        /// Slice σ (periodic) or burst size (sporadic), ns; 0 otherwise.
        slice_ns: Nanos,
    },
    /// A batched team admission transaction committed or rolled back
    /// (`Node::admit_team` / the `GroupAdmitTeam` syscall): every member
    /// was admitted, or none was.
    TeamAdmit {
        /// CPU of the member that completed the transaction.
        cpu: TraceCpu,
        /// The group id.
        group: u32,
        /// Team size the transaction covered.
        members: u32,
        /// Whether the whole team was admitted.
        accepted: bool,
    },
    /// The node's per-pass timer request, in the scheduler's own terms,
    /// before hardware quantization (`Node::program_timer`).
    TimerReq {
        /// CPU whose one-shot is being programmed.
        cpu: TraceCpu,
        /// Wall-clock estimate at the request.
        now_ns: Nanos,
        /// Absolute wall-clock request (pending arrival, lazy latest
        /// start, deadline backstop), or `Nanos::MAX` for none.
        wall_ns: Nanos,
        /// Execution-relative request (slice/quantum end), in cycles of
        /// remaining execution, or `Cycles::MAX` for none.
        exec_cycles: Cycles,
        /// Whether any one-shot was armed (false means the pass cancelled
        /// the timer).
        armed: bool,
    },
    /// The APIC one-shot was armed (`Machine::set_timer_cycles`).
    TimerArm {
        /// CPU whose timer slot was written.
        cpu: TraceCpu,
        /// True machine time of the programming.
        now_cycles: Cycles,
        /// True machine time the one-shot will fire at (post-quantization).
        fire_at_cycles: Cycles,
    },
    /// The APIC one-shot was disarmed (`Machine::cancel_timer`).
    TimerCancel {
        /// CPU whose timer slot was cleared.
        cpu: TraceCpu,
        /// True machine time of the cancellation.
        now_cycles: Cycles,
    },
    /// The one-shot deadline elapsed and the timer interrupt was raised
    /// (`Machine::advance`).
    TimerFire {
        /// CPU the interrupt is for.
        cpu: TraceCpu,
        /// True machine time of the hardware deadline.
        at_cycles: Cycles,
    },
    /// A scheduler kick IPI was sent (`Machine::send_kick`, §3.4).
    Kick {
        /// Sending CPU.
        from: TraceCpu,
        /// Target CPU.
        to: TraceCpu,
        /// True machine time of the send.
        now_cycles: Cycles,
    },
    /// An aperiodic thread was stolen by an idle CPU (`Node::try_steal`,
    /// power-of-two-choices, §3.4).
    Steal {
        /// The idle CPU that took the thread.
        thief: TraceCpu,
        /// The CPU it was taken from.
        victim: TraceCpu,
        /// The migrated thread.
        tid: TraceTid,
    },
    /// A task was queued (`TaskQueues::spawn`, §3.1).
    TaskSpawn {
        /// CPU whose queues received it.
        cpu: TraceCpu,
        /// Whether the producer declared a size.
        sized: bool,
        /// Actual execution cost, cycles.
        work_cycles: Cycles,
    },
    /// A size-tagged task was executed inline by the scheduler in the gap
    /// before the next RT arrival (§3.1).
    TaskExec {
        /// CPU that ran it.
        cpu: TraceCpu,
        /// Wall-clock estimate when the gap was measured.
        now_ns: Nanos,
        /// Declared size, cycles.
        size_cycles: Cycles,
        /// Inline budget the scheduler computed for the gap, cycles.
        budget_cycles: Cycles,
    },
    /// A layer's token bucket went non-positive during span charging: its
    /// threads are ineligible for dispatch on this CPU until the next
    /// replenish boundary (`LocalScheduler::invoke`, layer accounting).
    /// Emitted once per layer per window.
    LayerThrottle {
        /// CPU whose bucket ran dry.
        cpu: TraceCpu,
        /// The exhausted layer.
        layer: u32,
        /// Wall-clock estimate when exhaustion was detected.
        now_ns: Nanos,
    },
    /// A replenish boundary refilled a layer's token bucket to capacity.
    /// `spent_ns` is the independently accumulated honest consumption of
    /// the closing window — the layer-isolation oracle re-derives it from
    /// the dispatch stream and checks it against `cap_ns`, so a sabotaged
    /// bucket cannot hide overspend.
    LayerReplenish {
        /// CPU whose bucket refilled.
        cpu: TraceCpu,
        /// The refilled layer.
        layer: u32,
        /// Wall ns the layer consumed in the closing window.
        spent_ns: Nanos,
        /// Bucket capacity per window on this CPU, wall ns.
        cap_ns: Nanos,
    },
    /// The machine injected one fault from an enabled `FaultPlan` lane
    /// (`Machine::send_kick`, `Machine::set_timer_cycles`, or the
    /// recurring fault pump in `Machine::advance`). The oracle layer uses
    /// these to attribute environment-caused deadline misses to the lane
    /// that induced them.
    Fault {
        /// Affected CPU (the target, for kick lanes).
        cpu: TraceCpu,
        /// Which lane fired.
        lane: FaultLane,
        /// True machine time of the injection.
        now_cycles: Cycles,
        /// Lane-specific magnitude in cycles: delay/overshoot length,
        /// stall length, compute lost to a dip; 0 for drops and spurious
        /// interrupts.
        magnitude_cycles: Cycles,
    },
}

/// Fixed-capacity overwrite-oldest record buffer.
///
/// Allocated once when tracing is enabled; `push` never allocates. Keeps
/// the most recent `capacity` records for post-mortem context when an
/// oracle fails.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<Record>,
    capacity: usize,
    seq: u64,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` records.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            seq: 0,
        }
    }

    /// Append a record, overwriting the oldest once full.
    pub fn push(&mut self, r: Record) {
        let pos = (self.seq % self.capacity as u64) as usize;
        if self.buf.len() < self.capacity {
            self.buf.push(r);
        } else {
            self.buf[pos] = r;
        }
        self.seq += 1;
    }

    /// Total records ever pushed (not just the retained window).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained records, oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Record> + '_ {
        let split = if self.buf.len() < self.capacity {
            0
        } else {
            (self.seq % self.capacity as u64) as usize
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Forget everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.seq = 0;
    }
}

/// An online consumer of the record stream (the invariant oracles).
///
/// `recent` is the ring *including* the record just emitted, for
/// violation messages that want the surrounding context.
pub trait Observer {
    /// Called once per emitted record, in emission order.
    fn on_record(&mut self, r: &Record, recent: &TraceRing);
}

impl<T: Observer> Observer for Rc<RefCell<T>> {
    fn on_record(&mut self, r: &Record, recent: &TraceRing) {
        self.borrow_mut().on_record(r, recent);
    }
}

/// The ring plus an optional online observer.
pub struct Sink {
    ring: TraceRing,
    observer: Option<Box<dyn Observer>>,
}

impl Sink {
    /// A sink with no observer (record-only tracing).
    pub fn new(capacity: usize) -> Self {
        Sink {
            ring: TraceRing::new(capacity),
            observer: None,
        }
    }

    /// A sink whose records are also fed to `observer` online.
    pub fn with_observer(capacity: usize, observer: Box<dyn Observer>) -> Self {
        Sink {
            ring: TraceRing::new(capacity),
            observer: Some(observer),
        }
    }

    /// Record `r` and notify the observer.
    pub fn emit(&mut self, r: Record) {
        self.ring.push(r);
        if let Some(o) = self.observer.as_mut() {
            o.on_record(&r, &self.ring);
        }
    }

    /// The retained record window.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink")
            .field("ring", &self.ring)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

/// Shared handle to a [`Sink`], cloned into every emitting layer of one
/// node (scheduler, node, task queues, machine). Single-threaded by
/// design: one simulated node is driven by one host thread.
#[derive(Clone)]
pub struct TraceHandle(Rc<RefCell<Sink>>);

impl TraceHandle {
    /// Wrap a sink for sharing.
    pub fn new(sink: Sink) -> Self {
        TraceHandle(Rc::new(RefCell::new(sink)))
    }

    /// Emit one record.
    pub fn emit(&self, r: Record) {
        self.0.borrow_mut().emit(r);
    }

    /// Run `f` against the sink (inspection, draining for tests).
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut Sink) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Total records emitted so far.
    pub fn records(&self) -> u64 {
        self.0.borrow().ring.seq()
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceHandle(records={})", self.records())
    }
}

/// Whether `NAUTIX_ORACLES=1` (or `true`/`yes`/`on`) is set. Read once per
/// process so every node in a run sees the same answer.
pub fn oracles_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("NAUTIX_ORACLES")
            .map(|v| matches!(v.as_str(), "1" | "true" | "yes" | "on"))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kick(n: u64) -> Record {
        Record::Kick {
            from: 0,
            to: 1,
            now_cycles: n,
        }
    }

    #[test]
    fn ring_retains_newest_window() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.push(kick(i));
        }
        assert_eq!(r.seq(), 10);
        assert_eq!(r.len(), 4);
        let got: Vec<u64> = r
            .iter()
            .map(|rec| match rec {
                Record::Kick { now_cycles, .. } => *now_cycles,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_iter_before_wraparound() {
        let mut r = TraceRing::new(8);
        for i in 0..3 {
            r.push(kick(i));
        }
        assert_eq!(r.iter().count(), 3);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seq(), 0);
    }

    #[test]
    fn sink_feeds_observer_in_order() {
        struct Collect(Rc<RefCell<Vec<u64>>>);
        impl Observer for Collect {
            fn on_record(&mut self, r: &Record, recent: &TraceRing) {
                if let Record::Kick { now_cycles, .. } = r {
                    self.0.borrow_mut().push(*now_cycles);
                }
                assert!(recent.seq() > 0, "ring includes the current record");
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sink = Sink::with_observer(4, Box::new(Collect(Rc::clone(&seen))));
        for i in 0..5 {
            sink.emit(kick(i));
        }
        assert_eq!(*seen.borrow(), vec![0, 1, 2, 3, 4]);
        assert_eq!(sink.ring().seq(), 5);
    }

    #[test]
    fn handle_is_shared() {
        let h = TraceHandle::new(Sink::new(4));
        let h2 = h.clone();
        h.emit(kick(1));
        h2.emit(kick(2));
        assert_eq!(h.records(), 2);
    }
}
