//! Figure 10: absolute group admission control costs vs. group size.
//!
//! Four panels: (a) group join, (b) leader election, (c) distributed
//! admission control — with the constant local-admission line it builds on
//! — and (d) the final barrier + phase correction. Averages grow linearly
//! with the member count because the coordination schemes are deliberately
//! simple; at 255 threads the whole algorithm costs ~8M cycles (~6 ms).

use crate::common::Scale;
use nautix_des::Summary;
use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, GroupId, SysCall};
use nautix_rt::{Node, NodeConfig};

/// Cost summaries (cycles) for one group size.
#[derive(Debug, Clone)]
pub struct GaCosts {
    /// Members admitted.
    pub n: usize,
    /// (a) Group join.
    pub join: Summary,
    /// (b) Leader election.
    pub election: Summary,
    /// (c) Distributed admission control (barrier + local admission +
    /// error reduction).
    pub admission: Summary,
    /// (c) The constant local admission control it builds on.
    pub local: Summary,
    /// (d) Final barrier + phase correction.
    pub barrier_phase: Summary,
    /// End-to-end group change constraints.
    pub total: Summary,
}

/// Group sizes to measure.
pub fn group_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![2, 4, 8, 16, 32, 63],
        Scale::Paper => vec![2, 4, 8, 16, 32, 64, 128, 192, 255],
    }
}

/// Measure group admission at one size.
pub fn measure(n: usize, seed: u64) -> GaCosts {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(n + 1).with_seed(seed);
    cfg.record_ga_timing = true;
    let mut node = Node::new(cfg);
    let gid = GroupId(0);
    let mut tids = Vec::new();
    for i in 0..n {
        let prog = FnProgram::new(move |_cx, step| {
            let k = if i == 0 { step } else { step + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "fig10" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(3_000_000)), // settle
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::Periodic {
                        phase: 1_000_000,
                        period: 10_000_000,
                        slice: 1_000_000,
                    },
                }),
                _ => Action::Exit,
            }
        });
        tids.push(
            node.spawn_on(i + 1, &format!("m{i}"), Box::new(prog))
                .unwrap(),
        );
    }
    node.run_until_quiescent();
    let freq = node.freq();
    let to_cycles = |ns: u64| freq.ns_to_cycles(ns);
    let join: Vec<u64> = node
        .join_timings()
        .iter()
        .map(|&(_, d)| to_cycles(d))
        .collect();
    let timings = node.ga_timings();
    assert_eq!(timings.len(), n, "every member must complete admission");
    let election: Vec<u64> = timings
        .iter()
        .map(|t| to_cycles(t.t_elect - t.t_call))
        .collect();
    let admission: Vec<u64> = timings
        .iter()
        .map(|t| to_cycles(t.t_reduce - t.t_elect))
        .collect();
    let local: Vec<u64> = timings
        .iter()
        .map(|t| to_cycles(t.local_admit_ns))
        .collect();
    let barrier_phase: Vec<u64> = timings
        .iter()
        .map(|t| to_cycles(t.t_done - t.t_reduce))
        .collect();
    let total: Vec<u64> = timings
        .iter()
        .map(|t| to_cycles(t.t_done - t.t_call))
        .collect();
    GaCosts {
        n,
        join: Summary::of(&join),
        election: Summary::of(&election),
        admission: Summary::of(&admission),
        local: Summary::of(&local),
        barrier_phase: Summary::of(&barrier_phase),
        total: Summary::of(&total),
    }
}

/// Run the size sweep.
pub fn run(scale: Scale, seed: u64) -> Vec<GaCosts> {
    group_sizes(scale)
        .into_iter()
        .map(|n| measure(n, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_grow_with_group_size() {
        let small = measure(4, 9);
        let big = measure(32, 9);
        assert!(big.election.mean > small.election.mean);
        assert!(big.admission.mean > small.admission.mean);
        assert!(big.barrier_phase.mean > small.barrier_phase.mean);
        assert!(big.total.mean > small.total.mean);
    }

    #[test]
    fn local_admission_is_constant_in_group_size() {
        // Figure 10c's "Local Change Constraints" line is flat: it is the
        // hard floor under distributed admission.
        let small = measure(4, 9);
        let big = measure(32, 9);
        let ratio = big.local.mean / small.local.mean;
        assert!(
            (0.8..1.25).contains(&ratio),
            "local admission should not scale with n (ratio {ratio})"
        );
        assert!(big.local.mean < big.admission.mean);
    }

    #[test]
    fn growth_is_roughly_linear() {
        let a = measure(8, 9);
        let b = measure(32, 9);
        // 4x the members => roughly 2..6x the admission step (linear with
        // a constant term).
        let ratio = b.admission.mean / a.admission.mean;
        assert!(
            (1.5..8.0).contains(&ratio),
            "expected near-linear growth, ratio {ratio}"
        );
    }
}
