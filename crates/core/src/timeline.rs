//! Execution timelines: record who ran where, render it as ASCII.
//!
//! The paper verifies its scheduler with an oscilloscope; the simulator
//! can do one better and draw the whole machine. A [`Timeline`] collects
//! context-switch events per CPU and renders a Gantt-style chart — handy
//! for eyeballing gang lock-step, slice boundaries, and interference:
//!
//! ```text
//! cpu 1 |AAAA....AAAA....AAAA....|
//! cpu 2 |BBBB....BBBB....BBBB....|
//! ```

use nautix_des::Nanos;
use nautix_hw::CpuId;
use nautix_kernel::ThreadId;
use std::collections::BTreeMap;

/// One execution span of a thread on a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Where it ran.
    pub cpu: CpuId,
    /// Which thread ran (`None` = the idle thread).
    pub tid: Option<ThreadId>,
    /// Start, wall-clock ns.
    pub start_ns: Nanos,
    /// End, wall-clock ns.
    pub end_ns: Nanos,
}

/// A bounded recorder of per-CPU execution spans.
#[derive(Debug)]
pub struct Timeline {
    spans: Vec<Span>,
    open: Vec<Option<(Option<ThreadId>, Nanos)>>,
    cap: usize,
}

impl Timeline {
    /// A recorder for `n_cpus` CPUs holding at most `cap` spans.
    pub fn new(n_cpus: usize, cap: usize) -> Self {
        Timeline {
            spans: Vec::new(),
            open: vec![None; n_cpus],
            cap,
        }
    }

    /// Record that `cpu` switched to `to` (None = idle) at `at_ns`,
    /// closing whatever ran before.
    pub fn switch(&mut self, cpu: CpuId, to: Option<ThreadId>, at_ns: Nanos) {
        if let Some((tid, start)) = self.open[cpu].take() {
            if at_ns > start && self.spans.len() < self.cap {
                self.spans.push(Span {
                    cpu,
                    tid,
                    start_ns: start,
                    end_ns: at_ns,
                });
            }
        }
        self.open[cpu] = Some((to, at_ns));
    }

    /// Close all open spans at `at_ns` (end of the observation).
    pub fn finish(&mut self, at_ns: Nanos) {
        for cpu in 0..self.open.len() {
            if let Some((tid, start)) = self.open[cpu].take() {
                if at_ns > start && self.spans.len() < self.cap {
                    self.spans.push(Span {
                        cpu,
                        tid,
                        start_ns: start,
                        end_ns: at_ns,
                    });
                }
            }
        }
    }

    /// The recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Render the window `[from_ns, to_ns)` as `cols` columns of ASCII,
    /// one row per CPU that has any span in the window. Threads get stable
    /// symbols in first-seen order; idle is `.`, and a column where more
    /// than one thread ran is shown as the one occupying its start.
    pub fn render(&self, from_ns: Nanos, to_ns: Nanos, cols: usize) -> String {
        assert!(to_ns > from_ns && cols > 0);
        const SYMBOLS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
        let mut symbol_of: BTreeMap<ThreadId, char> = BTreeMap::new();
        let mut order: Vec<ThreadId> = Vec::new();
        for s in &self.spans {
            if let Some(t) = s.tid {
                symbol_of.entry(t).or_insert_with(|| {
                    let c = SYMBOLS[order.len() % SYMBOLS.len()] as char;
                    order.push(t);
                    c
                });
            }
        }
        let width = to_ns - from_ns;
        let mut rows: BTreeMap<CpuId, Vec<char>> = BTreeMap::new();
        for s in &self.spans {
            if s.end_ns <= from_ns || s.start_ns >= to_ns {
                continue;
            }
            let row = rows.entry(s.cpu).or_insert_with(|| vec!['.'; cols]);
            let a = s.start_ns.max(from_ns) - from_ns;
            let b = s.end_ns.min(to_ns) - from_ns;
            let c0 = (a as u128 * cols as u128 / width as u128) as usize;
            let c1 = ((b as u128 * cols as u128).div_ceil(width as u128) as usize).min(cols);
            let ch = s.tid.map(|t| symbol_of[&t]).unwrap_or('.');
            for cell in row.iter_mut().take(c1).skip(c0) {
                if *cell == '.' {
                    *cell = ch;
                }
            }
        }
        let mut out = String::new();
        for (cpu, row) in &rows {
            out.push_str(&format!("cpu {cpu:>3} |"));
            out.extend(row.iter());
            out.push_str("|\n");
        }
        if !order.is_empty() {
            out.push_str("legend:");
            for t in &order {
                out.push_str(&format!(" {}=tid{}", symbol_of[t], t));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_close_on_switch_and_finish() {
        let mut t = Timeline::new(2, 100);
        t.switch(0, Some(5), 0);
        t.switch(0, None, 100);
        t.switch(0, Some(6), 150);
        t.switch(1, Some(7), 50);
        t.finish(200);
        assert_eq!(
            t.spans(),
            &[
                Span {
                    cpu: 0,
                    tid: Some(5),
                    start_ns: 0,
                    end_ns: 100
                },
                Span {
                    cpu: 0,
                    tid: None,
                    start_ns: 100,
                    end_ns: 150
                },
                Span {
                    cpu: 0,
                    tid: Some(6),
                    start_ns: 150,
                    end_ns: 200
                },
                Span {
                    cpu: 1,
                    tid: Some(7),
                    start_ns: 50,
                    end_ns: 200
                },
            ]
        );
    }

    #[test]
    fn render_shows_alternating_execution() {
        let mut t = Timeline::new(1, 100);
        // 50% duty cycle: thread 3 runs the first half of each period.
        for k in 0..4u64 {
            t.switch(0, Some(3), k * 100);
            t.switch(0, None, k * 100 + 50);
        }
        t.finish(400);
        let s = t.render(0, 400, 40);
        assert!(
            s.contains("cpu   0 |AAAAA.....AAAAA.....AAAAA.....AAAAA.....|"),
            "got:\n{s}"
        );
        assert!(s.contains("legend: A=tid3"));
    }

    #[test]
    fn render_gang_lock_step_rows_match() {
        let mut t = Timeline::new(3, 1000);
        for cpu in 0..3 {
            for k in 0..3u64 {
                t.switch(cpu, Some(10 + cpu), k * 100);
                t.switch(cpu, None, k * 100 + 30);
            }
        }
        t.finish(300);
        let s = t.render(0, 300, 30);
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with("cpu")).collect();
        assert_eq!(rows.len(), 3);
        // Same shape on each CPU, different symbols.
        let shape = |r: &str| {
            r.chars()
                .map(|c| if c == '.' { '.' } else { 'x' })
                .collect::<String>()
        };
        assert_eq!(shape(rows[0]), shape(rows[1]));
        assert_eq!(shape(rows[1]), shape(rows[2]));
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = Timeline::new(1, 2);
        for k in 0..10u64 {
            t.switch(0, Some(1), k * 10);
        }
        t.finish(100);
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let mut t = Timeline::new(1, 10);
        t.switch(0, Some(1), 50);
        t.switch(0, Some(2), 50); // immediately replaced
        t.finish(60);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].tid, Some(2));
    }
}
