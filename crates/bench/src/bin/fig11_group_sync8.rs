//! Figure 11: cross-CPU scheduler synchronization, 8-thread group.

use nautix_bench::{banner, f, groupsync, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 11: 8-thread group dispatch spread (cycles, phase correction off)");
    let s = groupsync::fig11(scale, 21);
    println!("invocations: {}", s.spreads.len());
    println!("spread: {}", s.summary);
    write_csv(
        &out_dir().join("fig11_group_sync8.csv"),
        &["invocation", "spread_cycles"],
        s.spreads
            .iter()
            .enumerate()
            .map(|(i, &v)| vec![i as u64, v]),
    );
    println!(
        "paper: differences within a few 1000s of cycles; measured mean {} max {}",
        f(s.summary.mean),
        s.summary.max
    );
    println!("wrote {:?}", out_dir().join("fig11_group_sync8.csv"));
}
