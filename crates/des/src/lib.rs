//! Deterministic discrete-event simulation (DES) engine.
//!
//! This crate is the foundation the whole reproduction stands on: a
//! simulation clock measured in machine cycles, a cancellable event queue
//! with a deterministic tie-break order, a small deterministic PRNG wrapper,
//! and summary-statistics helpers used by the evaluation harnesses.
//!
//! Everything above this layer (the hardware model, the kernel, the
//! scheduler) is written as ordinary Rust executed *during* the simulation;
//! the engine only decides *when* things happen. Determinism is a design
//! requirement, not an accident: the paper's gang-scheduling argument
//! (HPDC'18, §4.1) rests on per-CPU schedulers being "completely
//! deterministic by design", and our tests assert that two runs with the
//! same seed produce bit-identical traces.

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wheel;

pub use event::{EventId, EventQueue, QueueKind};
pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{Cycles, Freq, Nanos};
