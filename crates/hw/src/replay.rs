//! Replay-codec fragments for hardware configuration types.
//!
//! The bench layer's scenario record/replay format serializes a full
//! `MachineConfig`; the field encodings for the hardware-owned pieces —
//! [`Cost`], [`FaultPattern`], [`FaultPlan`], [`SmiConfig`],
//! [`TimerMode`], [`Platform`] — live here, next to the types they
//! describe, so adding a field to a type and forgetting its codec arm is
//! a compile error in this file rather than a silent drift in `bench`.
//!
//! Codec rules (shared with the scenario format): encodings are canonical
//! (one spelling per value), colon-separated within a fragment,
//! semicolon-separated across [`FaultPlan`] fields, and decoding is
//! strict — wrong arity, unknown tags, or malformed numbers are hard
//! errors, never default-fills.

use crate::apic::TimerMode;
use crate::cost::Cost;
use crate::fault::{FaultPattern, FaultPlan};
use crate::machine::Platform;
use crate::smi::{SmiConfig, SmiPattern};

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{what}: `{s}` is not a valid number"))
}

impl Cost {
    /// Canonical `base:jitter` encoding.
    pub fn encode(&self) -> String {
        format!("{}:{}", self.base, self.jitter)
    }

    /// Strict inverse of [`Cost::encode`].
    pub fn decode(s: &str) -> Result<Cost, String> {
        let (base, jitter) = s
            .split_once(':')
            .ok_or_else(|| format!("cost: expected `base:jitter`, got `{s}`"))?;
        Ok(Cost {
            base: num(base, "cost base")?,
            jitter: num(jitter, "cost jitter")?,
        })
    }
}

impl FaultPattern {
    /// `off` | `periodic:<interval>` | `poisson:<mean>`.
    pub fn encode(&self) -> String {
        match *self {
            FaultPattern::Disabled => "off".into(),
            FaultPattern::Periodic { interval } => format!("periodic:{interval}"),
            FaultPattern::Poisson { mean_interval } => format!("poisson:{mean_interval}"),
        }
    }

    /// Strict inverse of [`FaultPattern::encode`].
    pub fn decode(s: &str) -> Result<FaultPattern, String> {
        match s.split_once(':') {
            None if s == "off" => Ok(FaultPattern::Disabled),
            Some(("periodic", v)) => Ok(FaultPattern::Periodic {
                interval: num(v, "periodic interval")?,
            }),
            Some(("poisson", v)) => Ok(FaultPattern::Poisson {
                mean_interval: num(v, "poisson mean")?,
            }),
            _ => Err(format!(
                "fault pattern: expected `off`, `periodic:<n>` or `poisson:<n>`, got `{s}`"
            )),
        }
    }
}

impl SmiConfig {
    /// `off` | `periodic:<interval>:<base>:<jitter>` |
    /// `poisson:<mean>:<base>:<jitter>` (duration folded in, since a
    /// disabled injector has no meaningful duration).
    pub fn encode(&self) -> String {
        match self.pattern {
            SmiPattern::Disabled => "off".into(),
            SmiPattern::Periodic { interval } => {
                format!(
                    "periodic:{interval}:{}:{}",
                    self.duration.base, self.duration.jitter
                )
            }
            SmiPattern::Poisson { mean_interval } => {
                format!(
                    "poisson:{mean_interval}:{}:{}",
                    self.duration.base, self.duration.jitter
                )
            }
        }
    }

    /// Strict inverse of [`SmiConfig::encode`].
    pub fn decode(s: &str) -> Result<SmiConfig, String> {
        if s == "off" {
            return Ok(SmiConfig::disabled());
        }
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 4 {
            return Err(format!(
                "smi: expected `off` or `<tag>:<n>:<base>:<jitter>`, got `{s}`"
            ));
        }
        let n: u64 = num(parts[1], "smi interval")?;
        let pattern = match parts[0] {
            "periodic" => SmiPattern::Periodic { interval: n },
            "poisson" => SmiPattern::Poisson { mean_interval: n },
            tag => return Err(format!("smi: unknown pattern tag `{tag}`")),
        };
        Ok(SmiConfig {
            pattern,
            duration: Cost {
                base: num(parts[2], "smi duration base")?,
                jitter: num(parts[3], "smi duration jitter")?,
            },
        })
    }
}

impl TimerMode {
    /// `oneshot:<tick_cycles>` | `tsc_deadline`.
    pub fn encode(&self) -> String {
        match *self {
            TimerMode::OneShot { tick_cycles } => format!("oneshot:{tick_cycles}"),
            TimerMode::TscDeadline => "tsc_deadline".into(),
        }
    }

    /// Strict inverse of [`TimerMode::encode`].
    pub fn decode(s: &str) -> Result<TimerMode, String> {
        match s.split_once(':') {
            None if s == "tsc_deadline" => Ok(TimerMode::TscDeadline),
            Some(("oneshot", v)) => Ok(TimerMode::OneShot {
                tick_cycles: num(v, "oneshot tick")?,
            }),
            _ => Err(format!(
                "timer mode: expected `oneshot:<tick>` or `tsc_deadline`, got `{s}`"
            )),
        }
    }
}

impl Platform {
    /// `phi` | `r415`.
    pub fn encode(&self) -> &'static str {
        match self {
            Platform::Phi => "phi",
            Platform::R415 => "r415",
        }
    }

    /// Strict inverse of [`Platform::encode`].
    pub fn decode(s: &str) -> Result<Platform, String> {
        match s {
            "phi" => Ok(Platform::Phi),
            "r415" => Ok(Platform::R415),
            _ => Err(format!("platform: expected `phi` or `r415`, got `{s}`")),
        }
    }
}

/// Field count of the enabled [`FaultPlan`] encoding. Bump alongside any
/// struct change; the decoder rejects any other arity.
const FAULT_PLAN_FIELDS: usize = 12;

impl FaultPlan {
    /// `off` for the inert plan, otherwise all twelve fields in struct
    /// order, semicolon-separated.
    pub fn encode(&self) -> String {
        if *self == FaultPlan::disabled() {
            return "off".into();
        }
        [
            self.kick_drop_ppm.to_string(),
            self.kick_delay_ppm.to_string(),
            self.kick_delay_extra.encode(),
            self.timer_overshoot_ppm.to_string(),
            self.timer_overshoot_extra.encode(),
            self.freq_dip.encode(),
            self.freq_dip_duration.encode(),
            self.freq_dip_loss_pct.to_string(),
            self.spurious_irq.encode(),
            self.spurious_irq_line.to_string(),
            self.cpu_stall.encode(),
            self.cpu_stall_duration.encode(),
        ]
        .join(";")
    }

    /// Strict inverse of [`FaultPlan::encode`]: wrong field count (a
    /// truncated plan) or any malformed field is an error.
    pub fn decode(s: &str) -> Result<FaultPlan, String> {
        if s == "off" {
            return Ok(FaultPlan::disabled());
        }
        let parts: Vec<&str> = s.split(';').collect();
        if parts.len() != FAULT_PLAN_FIELDS {
            return Err(format!(
                "fault plan: expected `off` or {FAULT_PLAN_FIELDS} `;`-separated fields, got {} in `{s}`",
                parts.len()
            ));
        }
        Ok(FaultPlan {
            kick_drop_ppm: num(parts[0], "kick_drop_ppm")?,
            kick_delay_ppm: num(parts[1], "kick_delay_ppm")?,
            kick_delay_extra: Cost::decode(parts[2])?,
            timer_overshoot_ppm: num(parts[3], "timer_overshoot_ppm")?,
            timer_overshoot_extra: Cost::decode(parts[4])?,
            freq_dip: FaultPattern::decode(parts[5])?,
            freq_dip_duration: Cost::decode(parts[6])?,
            freq_dip_loss_pct: num(parts[7], "freq_dip_loss_pct")?,
            spurious_irq: FaultPattern::decode(parts[8])?,
            spurious_irq_line: num(parts[9], "spurious_irq_line")?,
            cpu_stall: FaultPattern::decode(parts[10])?,
            cpu_stall_duration: Cost::decode(parts[11])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_des::Freq;

    #[test]
    fn cost_and_pattern_round_trip() {
        for c in [Cost::fixed(0), Cost::new(1500, 400)] {
            assert_eq!(Cost::decode(&c.encode()).unwrap(), c);
        }
        for p in [
            FaultPattern::Disabled,
            FaultPattern::Periodic { interval: 9 },
            FaultPattern::Poisson { mean_interval: 77 },
        ] {
            assert_eq!(FaultPattern::decode(&p.encode()).unwrap(), p);
        }
        assert!(Cost::decode("12").is_err());
        assert!(Cost::decode("a:b").is_err());
        assert!(FaultPattern::decode("sometimes:4").is_err());
        assert!(FaultPattern::decode("periodic").is_err());
    }

    #[test]
    fn smi_and_timer_mode_round_trip() {
        for c in [
            SmiConfig::disabled(),
            SmiConfig::noisy(Freq::phi(), 33_000, 150),
            SmiConfig {
                pattern: SmiPattern::Periodic { interval: 500 },
                duration: Cost::new(10, 3),
            },
        ] {
            assert_eq!(SmiConfig::decode(&c.encode()).unwrap(), c);
        }
        for m in [
            TimerMode::OneShot { tick_cycles: 26 },
            TimerMode::TscDeadline,
        ] {
            assert_eq!(TimerMode::decode(&m.encode()).unwrap(), m);
        }
        assert!(SmiConfig::decode("periodic:5").is_err());
        assert!(SmiConfig::decode("storm:1:2:3").is_err());
        assert!(TimerMode::decode("oneshot").is_err());
    }

    #[test]
    fn fault_plan_round_trips_and_rejects_truncation() {
        let plans = [
            FaultPlan::disabled(),
            FaultPlan::noisy(Freq::phi(), 1.0),
            FaultPlan {
                kick_drop_ppm: 5_000,
                ..FaultPlan::disabled()
            },
        ];
        for p in plans {
            assert_eq!(FaultPlan::decode(&p.encode()).unwrap(), p);
        }
        assert_eq!(FaultPlan::disabled().encode(), "off");
        let full = FaultPlan::noisy(Freq::phi(), 0.5).encode();
        let truncated = full.rsplit_once(';').unwrap().0;
        let e = FaultPlan::decode(truncated).unwrap_err();
        assert!(e.contains("12"), "truncation must name the arity: {e}");
        assert!(FaultPlan::decode(&format!("{full};0")).is_err());
    }

    #[test]
    fn platform_round_trips() {
        for p in [Platform::Phi, Platform::R415] {
            assert_eq!(Platform::decode(p.encode()).unwrap(), p);
        }
        assert!(Platform::decode("phi3").is_err());
    }
}
