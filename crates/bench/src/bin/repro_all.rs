//! Run every figure reproduction and every ablation in sequence,
//! writing all CSVs under `results/` and printing a compact
//! paper-vs-measured summary at the end. Pass `--paper` for the full
//! paper-scale sweeps (minutes); the default quick scale finishes fast.
//!
//! Two extra modes:
//!
//! * `repro_all --replay <file>` re-runs one recorded trial from a
//!   `.replay` scenario file (see `nautix_bench::scenario`) and prints
//!   its full stats snapshot and event count, then exits.
//! * `NAUTIX_STATS_STREAM=<path>` streams live cumulative stats frames
//!   to `<path>` while the sweeps run; watch them with
//!   `nautix-top <path>`.

use nautix_bench::throttle::Granularity;
use nautix_bench::{
    ablations, banner, barrier_removal, f, fig03, fig04, fig05, fig10, groupsync, missrate,
    out_dir, set_stats_stream, throttle, write_csv, BenchReport, Scale, Scenario,
};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;
use nautix_stats::{HubOptions, StatsHub};

/// `--replay <file>`: re-run one recorded trial and print its snapshot.
/// Exits 0 on a clean replay, 2 on any read/parse/run error (an armed
/// oracle flagging the replayed trial panics, as it did when recorded —
/// that is the expected way to reproduce a flagged anomaly).
fn run_replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("replay: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let sc = Scenario::from_replay_string(&text).unwrap_or_else(|e| {
        eprintln!("replay: {path}: {e}");
        std::process::exit(2);
    });
    println!("replaying `{}` from {path}", sc.name);
    match sc.run_fresh() {
        Ok(out) => {
            print!("{}", out.snapshot.to_text());
            println!("headline: {}", out.snapshot.headline());
            println!("events: {}", out.events);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("replay: {e}");
            std::process::exit(2);
        }
    }
}

/// Start the live-stats hub when the harness config carries a stream
/// path (`NAUTIX_STATS_STREAM`) and install its sender as the process
/// stats stream.
fn start_stats_stream(hc: &HarnessConfig) -> Option<StatsHub> {
    let path = hc.stats_stream.clone()?;
    // Oracle tallies are process-global (nodes flush on drop), so they are
    // overlaid on published frames rather than summed from trial deltas.
    #[cfg(feature = "trace")]
    let sampler: Option<nautix_stats::Sampler> =
        Some(Box::new(|s: &mut nautix_stats::StatsSnapshot| {
            let (suites, o) = nautix_rt::oracle::global_stats();
            s.oracle_suites = suites;
            s.oracle_records = o.records;
            s.oracle_checks = o.edf_checks
                + o.miss_checks
                + o.task_checks
                + o.timer_checks
                + o.fire_order_checks
                + o.cache_checks;
            s.oracle_env_misses = o.environment_misses;
            s.oracle_divergences = o.divergences;
        }));
    #[cfg(not(feature = "trace"))]
    let sampler: Option<nautix_stats::Sampler> = None;
    let opts = HubOptions {
        stream_path: Some(path.clone()),
        sampler,
        ..HubOptions::default()
    };
    let hub = StatsHub::start(opts);
    set_stats_stream(Some(hub.tx()));
    println!(
        "streaming live stats to {path:?} (watch with `nautix-top {}`)\n",
        path.display()
    );
    Some(hub)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        match args.get(i + 1) {
            Some(path) => run_replay(path),
            None => {
                eprintln!("usage: repro_all --replay <file>");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_args();
    let hc = HarnessConfig::from_env();
    let hub = start_stats_stream(&hc);
    println!(
        "scale: {scale:?} (pass --paper for the full configuration); \
         {} worker threads (set NAUTIX_THREADS to override); \
         {} event queue (set NAUTIX_QUEUE=heap|wheel to override)\n",
        hc.threads,
        nautix_hw::QueueKind::from_env().label()
    );
    #[cfg(feature = "trace")]
    if hc.oracles {
        println!(
            "NAUTIX_ORACLES=1: online invariant oracles armed on every node \
             (EDF dispatch, admission soundness, RT isolation, tickless \
             one-shot); any violation aborts the run\n"
        );
    }
    let mut summary: Vec<(String, String, String)> = Vec::new();
    let mut report = BenchReport::new();
    let t0 = std::time::Instant::now();

    banner("Figure 3");
    let r3 = fig03::run(scale, 42);
    write_csv(
        &out_dir().join("fig03_timesync.csv"),
        &["offset_cycles", "count"],
        r3.bins.iter().map(|b| vec![b.edge, b.count]),
    );
    summary.push((
        "Fig 3: TSC sync envelope".into(),
        "all CPUs within 1000 cycles".into(),
        format!("max {} cycles, {} over 1000", r3.summary.max, r3.over_1000),
    ));

    banner("Figure 4");
    let r4 = fig04::run(scale, 3);
    write_csv(
        &out_dir().join("fig04_scope.csv"),
        &[
            "trace",
            "pulses",
            "width_mean",
            "width_std",
            "period_mean",
            "period_std",
            "duty",
        ],
        [
            ("thread", &r4.thread),
            ("scheduler", &r4.scheduler),
            ("interrupt", &r4.interrupt),
        ]
        .iter()
        .map(|(n, a)| {
            vec![
                n.to_string(),
                a.pulses.to_string(),
                f(a.high_widths.mean),
                f(a.high_widths.std_dev),
                f(a.periods.mean),
                f(a.periods.std_dev),
                f(a.duty_cycle),
            ]
        }),
    );
    summary.push((
        "Fig 4: thread trace sharpness".into(),
        "thread sharp, scheduler/IRQ fuzzy; duty slightly >50%".into(),
        format!(
            "thread period jitter {} cyc, IRQ width jitter {} cyc, duty {}",
            f(r4.thread.periods.std_dev),
            f(r4.interrupt.high_widths.std_dev),
            f(r4.thread.duty_cycle)
        ),
    ));

    banner("Figure 5");
    let r5 = fig05::run(scale, 17);
    write_csv(
        &out_dir().join("fig05_overheads.csv"),
        &["platform", "component", "mean", "std", "min", "max"],
        [&r5.phi, &r5.r415].iter().flat_map(|p| {
            [
                ("IRQ", p.breakdown.irq),
                ("Other", p.breakdown.other),
                ("Resched", p.breakdown.resched),
                ("Switch", p.breakdown.switch),
            ]
            .map(|(name, su)| {
                vec![
                    format!("{:?}", p.platform),
                    name.to_string(),
                    f(su.mean),
                    f(su.std_dev),
                    su.min.to_string(),
                    su.max.to_string(),
                ]
            })
        }),
    );
    summary.push((
        "Fig 5: Phi overhead".into(),
        "~6000 cycles, pass about half".into(),
        format!(
            "{} cycles, pass {}",
            f(r5.phi.mean_total()),
            f(r5.phi.breakdown.resched.mean / r5.phi.mean_total())
        ),
    ));

    for (figa, figb, platform, edge) in [
        ("Fig 6", "Fig 8", Platform::Phi, "10 µs"),
        ("Fig 7", "Fig 9", Platform::R415, "4 µs"),
    ] {
        banner(&format!("{figa} / {figb}"));
        let (pts, stats) = missrate::sweep_with_stats(&hc, platform, scale, 5);
        report.add(
            if platform == Platform::Phi {
                "fig06_08_missrate_phi"
            } else {
                "fig07_09_missrate_r415"
            },
            stats,
        );
        let name = format!(
            "fig{}_missrate_{}.csv",
            if platform == Platform::Phi {
                "06"
            } else {
                "07"
            },
            if platform == Platform::Phi {
                "phi"
            } else {
                "r415"
            }
        );
        write_csv(
            &out_dir().join(&name),
            &[
                "period_us",
                "slice_pct",
                "miss_rate",
                "miss_mean_ns",
                "miss_std_ns",
            ],
            pts.iter().map(|p| {
                vec![
                    p.period_us.to_string(),
                    p.slice_pct.to_string(),
                    f(p.miss_rate),
                    f(p.miss_mean_ns),
                    f(p.miss_std_ns),
                ]
            }),
        );
        let feasible_zero = pts
            .iter()
            .filter(|p| p.period_us >= 100 && p.slice_pct <= 70)
            .all(|p| p.miss_rate == 0.0);
        // The edge period: the smallest period in each platform's sweep.
        let edge_period = if platform == Platform::Phi { 10 } else { 4 };
        let edge_missy = pts
            .iter()
            .filter(|p| p.period_us == edge_period && p.slice_pct >= 50)
            .all(|p| p.miss_rate > 0.5);
        summary.push((
            format!("{figa}: feasibility edge ({platform:?})"),
            format!("zero misses when feasible; edge near {edge}"),
            format!(
                "coarse feasible zero-miss: {feasible_zero}; \
                 {edge_period}µs fat slices missy: {edge_missy}"
            ),
        ));
        let worst_miss_time = pts.iter().map(|p| p.miss_mean_ns).fold(0.0f64, f64::max);
        summary.push((
            format!("{figb}: miss magnitudes ({platform:?})"),
            "small (µs-scale) even when infeasible".into(),
            format!("worst mean lateness {} µs", f(worst_miss_time / 1000.0)),
        ));
    }

    banner("Figure 10");
    let r10 = fig10::run(scale, 9);
    write_csv(
        &out_dir().join("fig10_group_admission.csv"),
        &["n", "step", "min_cycles", "avg_cycles", "max_cycles"],
        r10.iter().flat_map(|r| {
            [
                ("join", r.join),
                ("election", r.election),
                ("admission", r.admission),
                ("local_admission", r.local),
                ("barrier_phase", r.barrier_phase),
                ("total", r.total),
            ]
            .map(|(step, su)| {
                vec![
                    r.n.to_string(),
                    step.to_string(),
                    su.min.to_string(),
                    f(su.mean),
                    su.max.to_string(),
                ]
            })
        }),
    );
    let last = r10.last().unwrap();
    summary.push((
        "Fig 10: group admission growth".into(),
        "linear in n; ~8M cycles at 255".into(),
        format!(
            "total mean {:.2}M cycles at n={}",
            last.total.mean / 1e6,
            last.n
        ),
    ));

    banner("Figure 11");
    let r11 = groupsync::fig11(scale, 21);
    write_csv(
        &out_dir().join("fig11_group_sync8.csv"),
        &["invocation", "spread_cycles"],
        r11.spreads
            .iter()
            .enumerate()
            .map(|(i, &v)| vec![i as u64, v]),
    );
    summary.push((
        "Fig 11: 8-thread sync".into(),
        "within a few 1000s of cycles".into(),
        format!("mean {} max {}", f(r11.summary.mean), r11.summary.max),
    ));

    banner("Figure 12");
    let (r12, stats12) = groupsync::fig12_with_stats(&hc, scale, 21);
    report.add("fig12_group_sync_scale", stats12);
    write_csv(
        &out_dir().join("fig12_group_sync_scale.csv"),
        &["n", "invocation", "spread_cycles"],
        r12.iter().flat_map(|s| {
            s.spreads
                .iter()
                .enumerate()
                .map(|(i, &v)| vec![s.n as u64, i as u64, v])
                .collect::<Vec<_>>()
        }),
    );
    let big = r12.last().unwrap();
    let small = r12.first().unwrap();
    summary.push((
        "Fig 12: sync vs group size".into(),
        "bias grows with n; variation does not".into(),
        format!(
            "bias {} -> {} cycles; std {} -> {}",
            f(small.summary.mean),
            f(big.summary.mean),
            f(small.summary.std_dev),
            f(big.summary.std_dev)
        ),
    ));

    banner("Figure 13");
    let (r13, stats13) = throttle::run_with_stats(&hc, Granularity::Coarse, scale, 3);
    report.add("fig13_throttle_coarse", stats13);
    let (_, cv13) = throttle::control_quality(&r13);
    banner("Figure 14");
    let (r14, stats14) = throttle::run_with_stats(&hc, Granularity::Fine, scale, 3);
    report.add("fig14_throttle_fine", stats14);
    let (_, cv14) = throttle::control_quality(&r14);
    for (name, pts) in [
        ("fig13_throttle_coarse.csv", &r13),
        ("fig14_throttle_fine.csv", &r14),
    ] {
        write_csv(
            &out_dir().join(name),
            &[
                "period_ns",
                "slice_ns",
                "utilization",
                "time_ns",
                "admitted",
            ],
            pts.iter().map(|p| {
                vec![
                    p.period_ns.to_string(),
                    p.slice_ns.to_string(),
                    f(p.utilization),
                    p.time_ns.to_string(),
                    p.admitted.to_string(),
                ]
            }),
        );
    }
    summary.push((
        "Fig 13/14: throttling".into(),
        "commensurate; fine grain varies more".into(),
        format!("time x util cv: coarse {} fine {}", f(cv13), f(cv14)),
    ));

    banner("Figure 15");
    let r15 = barrier_removal::run(Granularity::Coarse, scale, 7);
    banner("Figure 16");
    let r16 = barrier_removal::run(Granularity::Fine, scale, 7);
    for (name, r) in [
        ("fig15_barrier_coarse.csv", &r15),
        ("fig16_barrier_fine.csv", &r16),
    ] {
        write_csv(
            &out_dir().join(name),
            &[
                "period_ns",
                "slice_ns",
                "with_barrier_ns",
                "without_barrier_ns",
                "speedup",
                "violations",
            ],
            r.points.iter().map(|p| {
                vec![
                    p.period_ns.to_string(),
                    p.slice_ns.to_string(),
                    p.with_barrier_ns.to_string(),
                    p.without_barrier_ns.to_string(),
                    f(p.speedup()),
                    p.violations.to_string(),
                ]
            }),
        );
    }
    let mean_speedup = |r: &barrier_removal::Removal| {
        r.points.iter().map(|p| p.speedup()).sum::<f64>() / r.points.len().max(1) as f64
    };
    summary.push((
        "Fig 15/16: barrier removal".into(),
        "small win coarse; 20-300% fine; fine RT beats aperiodic".into(),
        format!(
            "mean speedup coarse {} fine {}; fine beats aperiodic: {}",
            f(mean_speedup(&r15)),
            f(mean_speedup(&r16)),
            r16.points
                .iter()
                .any(|p| p.without_barrier_ns < r16.aperiodic_ns)
        ),
    ));

    banner("Isolation");
    let iso_rt = nautix_bench::isolation::measure(true, 8, 40, 131);
    let iso_be = nautix_bench::isolation::measure(false, 8, 40, 131);
    summary.push((
        "Isolation: time-shared gangs (§1)".into(),
        "RT gang unaffected by co-resident gang".into(),
        format!(
            "interference: hard-rt {}x (misses {}), best-effort {}x",
            f(iso_rt.interference),
            iso_rt.misses,
            f(iso_be.interference)
        ),
    ));

    banner("Ablations");
    let (el, stats_el) = ablations::eager_vs_lazy_with_stats(&hc, 31);
    report.add("abl_eager_vs_lazy", stats_el);
    let (_, e_hot, l_hot) = el[el.len() - 1];
    summary.push((
        "Ablation: eager vs lazy under SMI".into(),
        "eager absorbs missing time".into(),
        format!("miss rates: eager {} lazy {}", f(e_hot), f(l_hot)),
    ));
    let (knob, stats_knob) = ablations::util_limit_knob_with_stats(&hc, 31);
    report.add("abl_util_limit", stats_knob);
    summary.push((
        "Ablation: utilization-limit knob".into(),
        "lower limit, fewer SMI-induced misses".into(),
        format!(
            "99% -> {}; 70% -> {}",
            f(knob[0].1),
            f(knob.last().unwrap().1)
        ),
    ));

    println!("\n==== paper vs measured ====");
    for (what, paper, measured) in &summary {
        println!("{what}\n  paper:    {paper}\n  measured: {measured}");
    }
    let (trials, wall, events) = report.totals();
    println!(
        "\nharness: {} trials on {} threads, {:.2}s wall in instrumented sections, \
         {} simulated events ({:.0} events/s)",
        trials,
        hc.threads,
        wall,
        events,
        if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        }
    );
    #[cfg(feature = "trace")]
    if hc.oracles {
        let (suites, o) = nautix_rt::oracle::global_stats();
        println!(
            "\noracles: CLEAN over {} node lifetimes — {} records consumed; \
             checks: {} EDF dispatch, {} timer one-shot, {} fire-order, \
             {} inline task, {} admitted-miss ({} environment-attributed, \
             {} policy divergences)",
            suites,
            o.records,
            o.edf_checks,
            o.timer_checks,
            o.fire_order_checks,
            o.task_checks,
            o.miss_checks,
            o.environment_misses,
            o.divergences,
        );
        if o.fault_records.iter().any(|&n| n > 0) {
            for lane in nautix_trace::FaultLane::all() {
                println!(
                    "  fault lane {:>14}: {} injected, {} misses attributed",
                    lane.name(),
                    o.fault_records[lane.idx()],
                    o.env_miss_by_lane[lane.idx()],
                );
            }
        }
    }
    let degrade = nautix_rt::degrade_global_stats();
    if degrade.total() > 0 {
        println!(
            "\ndegradation: {} sporadic demotions, {} periodic widenings, \
             {} periodic demotions",
            degrade.sporadic_demotions, degrade.periodic_widenings, degrade.periodic_demotions,
        );
    }
    let admission = nautix_rt::admission_global_stats();
    if admission.total() > 0 {
        println!(
            "\nadmission engine: {} sim-memo hits, {} misses, {} rollbacks",
            admission.sim_hits, admission.sim_misses, admission.rollbacks,
        );
    }
    if let Some(hub) = hub {
        // Drop the installed sender so the collector can drain and stop.
        set_stats_stream(None);
        let live = hub.finish();
        println!(
            "\nlive stats: {} trials streamed over {} frames; final {}",
            live.total.trials,
            live.series.len(),
            live.total.headline()
        );
    }
    let bench_path = std::path::Path::new("BENCH_repro.json");
    report.write(bench_path);
    println!("wrote {bench_path:?}");
    println!(
        "\nall CSVs under {:?}; elapsed {:.1}s",
        out_dir(),
        t0.elapsed().as_secs_f64()
    );
}
