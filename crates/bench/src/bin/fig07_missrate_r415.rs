//! Figure 7: local scheduler deadline miss rate on the R415.

use nautix_bench::{banner, f, missrate, out_dir, write_csv, BenchReport, Scale};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 7: miss rate vs period/slice (R415)");
    let (pts, stats) =
        missrate::sweep_with_stats(&HarnessConfig::from_env(), Platform::R415, scale, 5);
    println!("period_us,slice_pct,miss_rate,jobs");
    for p in &pts {
        println!(
            "{},{},{},{}",
            p.period_us,
            p.slice_pct,
            f(p.miss_rate),
            p.jobs
        );
    }
    write_csv(
        &out_dir().join("fig07_missrate_r415.csv"),
        &["period_us", "slice_pct", "miss_rate", "jobs"],
        pts.iter().map(|p| {
            vec![
                p.period_us.to_string(),
                p.slice_pct.to_string(),
                f(p.miss_rate),
                p.jobs.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig07_missrate_r415.csv"));
    println!(
        "{} trials on {} threads: {:.2}s wall, {:.2}s cpu, {:.0} events/s",
        stats.trials,
        stats.threads,
        stats.wall_secs,
        stats.cpu_secs,
        stats.events_per_sec()
    );
    let mut report = BenchReport::new();
    report.add("fig07_missrate_r415", stats);
    report.write(&out_dir().join("BENCH_fig07_missrate_r415.json"));
}
