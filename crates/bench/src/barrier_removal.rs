//! Figures 15 and 16: the benefit of removing barriers under
//! gang-scheduled hard real-time execution.
//!
//! Each point runs the BSP benchmark twice under identical (τ, σ)
//! constraints — once with `optional_barrier()`, once without — plus a
//! non-real-time (aperiodic, 100% utilization, barriers-required)
//! reference. At coarse granularity the benefit is small (Amdahl); at fine
//! granularity removal wins by 20–300% and the real-time runs *beat* the
//! aperiodic reference.

use crate::common::Scale;
use crate::throttle::Granularity;
use nautix_bsp::{run_bsp, BspMode, BspParams};
use nautix_des::Nanos;
use nautix_hw::MachineConfig;
use nautix_rt::{NodeConfig, SchedConfig};

/// One (τ, σ) comparison point.
#[derive(Debug, Clone, Copy)]
pub struct RemovalPoint {
    /// Period τ, ns.
    pub period_ns: Nanos,
    /// Slice σ, ns.
    pub slice_ns: Nanos,
    /// Execution time with barriers, ns.
    pub with_barrier_ns: Nanos,
    /// Execution time without barriers, ns.
    pub without_barrier_ns: Nanos,
    /// Synchronization violations observed without barriers (should stay
    /// zero when lock-step holds).
    pub violations: u64,
}

impl RemovalPoint {
    /// Speedup of barrier removal (>1 means removal wins).
    pub fn speedup(&self) -> f64 {
        self.with_barrier_ns as f64 / self.without_barrier_ns.max(1) as f64
    }
}

/// The experiment output.
#[derive(Debug, Clone)]
pub struct Removal {
    /// Scatter points.
    pub points: Vec<RemovalPoint>,
    /// The aperiodic (non-RT, with barriers) reference time, ns.
    pub aperiodic_ns: Nanos,
}

fn node_cfg(p: usize, seed: u64) -> NodeConfig {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(p + 1).with_seed(seed);
    cfg.sched = SchedConfig::throughput();
    cfg
}

fn params(g: Granularity, p: usize, scale: Scale) -> BspParams {
    let iters = match (g, scale) {
        (Granularity::Coarse, Scale::Quick) => 6,
        (Granularity::Coarse, Scale::Paper) => 12,
        (Granularity::Fine, Scale::Quick) => 60,
        (Granularity::Fine, Scale::Paper) => 200,
    };
    match g {
        Granularity::Coarse => BspParams::coarse(p, iters),
        Granularity::Fine => BspParams::fine(p, iters),
    }
}

/// Measure one comparison point.
pub fn measure(
    g: Granularity,
    p: usize,
    period_ns: Nanos,
    slice_ns: Nanos,
    scale: Scale,
    seed: u64,
) -> RemovalPoint {
    let base = params(g, p, scale).with_mode(BspMode::RtGroup {
        period: period_ns,
        slice: slice_ns,
    });
    let with = run_bsp(node_cfg(p, seed), base.with_barrier(true));
    let without = run_bsp(node_cfg(p, seed), base.with_barrier(false));
    RemovalPoint {
        period_ns,
        slice_ns,
        with_barrier_ns: with.max_ns,
        without_barrier_ns: without.max_ns,
        violations: without.violations(),
    }
}

/// Run the full comparison for one granularity.
pub fn run(g: Granularity, scale: Scale, seed: u64) -> Removal {
    let p = crate::throttle::worker_count(scale);
    let (periods, slice_pcts) = match scale {
        Scale::Quick => (vec![500_000u64, 1_000_000], vec![30u64, 60, 90]),
        Scale::Paper => (
            (1..=10).map(|i| 200_000 * i as u64).collect::<Vec<_>>(),
            (1..=9).map(|i| 10 * i as u64).collect::<Vec<_>>(),
        ),
    };
    let mut points = Vec::new();
    for &period in &periods {
        for &pct in &slice_pcts {
            let slice = (period * pct / 100).max(1000);
            if slice * 100 >= period * 99 {
                continue;
            }
            points.push(measure(g, p, period, slice, scale, seed));
        }
    }
    let aperiodic = run_bsp(node_cfg(p, seed), params(g, p, scale).with_barrier(true));
    Removal {
        points,
        aperiodic_ns: aperiodic.max_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_wins_at_fine_granularity() {
        let pt = measure(Granularity::Fine, 8, 500_000, 400_000, Scale::Quick, 7);
        assert!(
            pt.speedup() > 1.05,
            "fine-grain barrier removal should win (speedup {})",
            pt.speedup()
        );
        assert_eq!(pt.violations, 0, "lock-step must hold without barriers");
    }

    #[test]
    fn removal_benefit_shrinks_at_coarse_granularity() {
        let fine = measure(Granularity::Fine, 4, 500_000, 400_000, Scale::Quick, 7);
        let coarse = measure(Granularity::Coarse, 4, 500_000, 400_000, Scale::Quick, 7);
        assert!(
            fine.speedup() > coarse.speedup(),
            "Amdahl: fine {} must beat coarse {}",
            fine.speedup(),
            coarse.speedup()
        );
        // Coarse still should not lose from removal.
        assert!(coarse.speedup() > 0.97);
    }

    #[test]
    fn fine_rt_without_barriers_can_beat_aperiodic_with_barriers() {
        // Figure 16: "the hard real-time cases, with barriers removed, can
        // not just match [the aperiodic] performance, but considerably
        // exceed it" — at high utilization.
        let r = run(Granularity::Fine, Scale::Quick, 7);
        let best = r.points.iter().map(|p| p.without_barrier_ns).min().unwrap();
        assert!(
            best < r.aperiodic_ns,
            "best barrier-free RT time {best} should beat the aperiodic {}",
            r.aperiodic_ns
        );
    }
}
