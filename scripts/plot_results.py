#!/usr/bin/env python3
"""Plot the reproduction's CSV series in the style of the paper's figures.

Usage:
    cargo run --release -p nautix-bench --bin repro_all -- --paper
    python3 scripts/plot_results.py [results_dir] [out_dir]

Requires matplotlib. Each plot mirrors one figure of the paper; missing
CSVs are skipped with a note.
"""

import csv
import os
import sys


def rows(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def main():
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    results = sys.argv[1] if len(sys.argv) > 1 else "results"
    out = sys.argv[2] if len(sys.argv) > 2 else "results/plots"
    os.makedirs(out, exist_ok=True)

    def save(fig, name):
        path = os.path.join(out, name)
        fig.tight_layout()
        fig.savefig(path, dpi=150)
        plt.close(fig)
        print(f"wrote {path}")

    def have(name):
        p = os.path.join(results, name)
        if not os.path.exists(p):
            print(f"skip: {name} not found (run repro_all first)")
            return None
        return p

    # Figure 3: TSC offset histogram.
    if p := have("fig03_timesync.csv"):
        r = rows(p)
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.bar(
            [int(x["offset_cycles"]) for x in r],
            [int(x["count"]) for x in r],
            width=45,
        )
        ax.set_xlabel("offset from CPU 0 (cycles)")
        ax.set_ylabel("CPUs")
        ax.set_title("Fig 3: cross-CPU TSC synchronization")
        save(fig, "fig03.png")

    # Figures 6/7: miss-rate curves per period.
    for name, title in [
        ("fig06_missrate_phi.csv", "Fig 6: miss rate (Phi)"),
        ("fig07_missrate_r415.csv", "Fig 7: miss rate (R415)"),
    ]:
        if p := have(name):
            r = rows(p)
            fig, ax = plt.subplots(figsize=(6, 4))
            periods = sorted({int(x["period_us"]) for x in r}, reverse=True)
            for per in periods:
                pts = [(int(x["slice_pct"]), float(x["miss_rate"])) for x in r if int(x["period_us"]) == per]
                pts.sort()
                ax.plot([a for a, _ in pts], [100 * b for _, b in pts], marker=".", label=f"{per} µs")
            ax.set_xlabel("slice (% of period)")
            ax.set_ylabel("miss rate (%)")
            ax.set_title(title)
            ax.legend(fontsize=7)
            save(fig, name.replace(".csv", ".png"))

    # Figure 10: group admission cost growth.
    if p := have("fig10_group_admission.csv"):
        r = rows(p)
        fig, ax = plt.subplots(figsize=(6, 4))
        for step in ["join", "election", "admission", "local_admission", "barrier_phase", "total"]:
            pts = [(int(x["n"]), float(x["avg_cycles"])) for x in r if x["step"] == step]
            pts.sort()
            ax.plot([a for a, _ in pts], [b for _, b in pts], marker="o", label=step)
        ax.set_xlabel("group size (threads)")
        ax.set_ylabel("cycles (avg)")
        ax.set_yscale("log")
        ax.set_title("Fig 10: group admission control costs")
        ax.legend(fontsize=7)
        save(fig, "fig10.png")

    # Figures 11/12: dispatch spread.
    if p := have("fig11_group_sync8.csv"):
        r = rows(p)
        fig, ax = plt.subplots(figsize=(6, 3))
        ax.plot(
            [int(x["invocation"]) for x in r],
            [int(x["spread_cycles"]) for x in r],
            ",",
        )
        ax.set_xlabel("scheduler invocation index")
        ax.set_ylabel("max difference (cycles)")
        ax.set_title("Fig 11: 8-thread group synchronization")
        save(fig, "fig11.png")
    if p := have("fig12_group_sync_scale.csv"):
        r = rows(p)
        fig, ax = plt.subplots(figsize=(6, 3))
        for n in sorted({int(x["n"]) for x in r}):
            pts = [(int(x["invocation"]), int(x["spread_cycles"])) for x in r if int(x["n"]) == n]
            ax.plot([a for a, _ in pts], [b for _, b in pts], ",", label=f"{n} threads")
        ax.set_xlabel("scheduler invocation index")
        ax.set_ylabel("max difference (cycles)")
        ax.set_title("Fig 12: synchronization vs group size")
        ax.legend(fontsize=7, markerscale=20)
        save(fig, "fig12.png")

    # Figures 13/14: throttling scatter.
    for name, title in [
        ("fig13_throttle_coarse.csv", "Fig 13: throttling (coarse)"),
        ("fig14_throttle_fine.csv", "Fig 14: throttling (fine)"),
    ]:
        if p := have(name):
            r = [x for x in rows(p) if x["admitted"] == "true"]
            fig, ax = plt.subplots(figsize=(6, 4))
            ax.plot(
                [float(x["utilization"]) for x in r],
                [int(x["time_ns"]) / 1e9 for x in r],
                ".",
                markersize=3,
            )
            ax.set_xlabel("utilization (slice/period)")
            ax.set_ylabel("execution time (s)")
            ax.set_title(title)
            save(fig, name.replace(".csv", ".png"))

    # Figures 15/16: barrier removal scatter.
    for name, title in [
        ("fig15_barrier_coarse.csv", "Fig 15: barrier removal (coarse)"),
        ("fig16_barrier_fine.csv", "Fig 16: barrier removal (fine)"),
    ]:
        if p := have(name):
            r = rows(p)
            xs = [int(x["without_barrier_ns"]) for x in r]
            ys = [int(x["with_barrier_ns"]) for x in r]
            fig, ax = plt.subplots(figsize=(4.5, 4.5))
            ax.plot(xs, ys, ".", markersize=4)
            lim = [0, max(xs + ys) * 1.05]
            ax.plot(lim, lim, "k-", linewidth=0.8)
            ax.set_xlabel("time with barrier removal (ns)")
            ax.set_ylabel("time without barrier removal (ns)")
            ax.set_title(title + "\n(points above the line: removal wins)")
            save(fig, name.replace(".csv", ".png"))


if __name__ == "__main__":
    main()
