//! Cancellable, deterministically ordered event queue.
//!
//! [`EventQueue`] is a thin facade over two interchangeable backends
//! selected by [`QueueKind`]:
//!
//! * [`HeapQueue`] — an index-tracked binary min-heap keyed on
//!   `(time, sequence)`. O(log n) schedule/cancel/pop. This is the
//!   *reference* backend: simple enough to audit by eye, and kept alive
//!   as the differential oracle for the wheel.
//! * [`WheelQueue`] — a hierarchical timing
//!   wheel (Linux-kernel style) with O(1) schedule and cancel and an
//!   amortized-O(1) cascade on pop. The default for simulations; see
//!   `crate::wheel` for the layout and the ordering proof.
//!
//! Both backends observe identical semantics, bit for bit: two events
//! scheduled for the same instant fire in insertion order, cancellation is
//! *true removal* (no tombstones; `peek_time`/`is_empty` are pure `&self`
//! reads), and the [`EventId`]s handed out for an identical call sequence
//! are identical because both share the same LIFO slot free-list scheme.
//! The differential property test `tests/wheel_vs_heap.rs` churns both
//! backends through random schedule/cancel/advance/pop traffic and asserts
//! the streams match, ids included.
//!
//! Slots are reused through a free list; an [`EventId`] packs the slot index
//! with a per-slot generation so a stale id (already fired or already
//! cancelled) can never alias a later event in the same slot.

use crate::time::Cycles;
use crate::wheel::WheelQueue;

/// Identifier of a scheduled event, usable to cancel it later.
///
/// Packs a slot index (high 32 bits) and that slot's generation at schedule
/// time (low 32 bits). Ids are unique across the life of the queue up to
/// 2^32 reuses of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw packed value. Exposed for trace output only.
    pub fn raw(&self) -> u64 {
        self.0
    }

    pub(crate) fn new(slot: u32, gen: u32) -> Self {
        EventId((slot as u64) << 32 | gen as u64)
    }

    pub(crate) fn slot(&self) -> u32 {
        (self.0 >> 32) as u32
    }

    pub(crate) fn gen(&self) -> u32 {
        self.0 as u32
    }
}

/// Which future-event-list implementation an [`EventQueue`] runs on.
///
/// The two are observably identical (same pop order, same ids, same
/// panics); they differ only in cost shape. `Heap` is the reference,
/// `Wheel` the production default. The `NAUTIX_QUEUE` environment variable
/// (`heap` / `wheel`) selects the kind for harness-built machines — the
/// escape hatch CI uses to run every differential smoke under both.
///
/// **Known tradeoff (tracked):** the wheel wins every microbenchmark
/// 2–3x at realistic backlogs, but on *tiny* standing backlogs (a
/// handful of pending events, the Figure 6 single-probe workload) its
/// per-advance constant factor — slot scanning between sparse events —
/// can fall below the heap end-to-end; 0.76x heap was measured on the
/// fig6-only sweep. `event_queue_bench` flags any end-to-end run where
/// wheel throughput drops under 0.9x heap and records the measurement as
/// an advisory note in `BENCH_wheel.json` so the case stays visible.
/// Workloads with more than a few pending events per instant are faster
/// on the wheel, which is why it remains the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// Index-tracked binary min-heap (reference backend).
    Heap,
    /// Hierarchical timing wheel (production backend).
    Wheel,
}

impl QueueKind {
    /// Read `NAUTIX_QUEUE` (`heap` / `wheel`); defaults to `Wheel`.
    pub fn from_env() -> Self {
        match std::env::var("NAUTIX_QUEUE").as_deref() {
            Ok("heap") => QueueKind::Heap,
            Ok("wheel") => QueueKind::Wheel,
            Ok(other) => panic!("NAUTIX_QUEUE must be `heap` or `wheel`, got `{other}`"),
            Err(_) => QueueKind::Wheel,
        }
    }

    /// Lowercase name, for banners and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Wheel => "wheel",
        }
    }
}

/// Per-event bookkeeping. `payload` is `Some` exactly while the event is
/// pending; `pos` is its current index in `heap` during that window.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    pos: usize,
    payload: Option<E>,
}

/// POD heap entry: ordering key plus the owning slot. Payloads stay in the
/// slot table so sift swaps move 24 bytes regardless of `E`.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: Cycles,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (Cycles, u64) {
        (self.time, self.seq)
    }
}

/// The reference future-event list: an index-tracked binary min-heap.
///
/// Cancellation is *true removal*: every scheduled event owns a slot that
/// records its current heap position, kept up to date through sift swaps, so
/// `cancel` excises the entry in O(log n) with no tombstones left behind.
/// Compared with the earlier lazy scheme (a `cancelled: HashSet` consulted
/// on every pop and peek) this keeps the heap at its live size under
/// re-programming storms, makes `peek_time`/`is_empty` pure `&self` reads,
/// and removes a hash lookup from the hot pop path.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: Cycles,
    popped: u64,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        HeapQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: 0,
            popped: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event (or
    /// the last [`advance_to`](Self::advance_to) target, whichever is later).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Return the queue to its power-on state — empty, clock at zero,
    /// sequence counter restarted — while keeping the backing allocations
    /// (`Vec::clear` preserves capacity, so pooled trials stay
    /// allocation-free). A cleared queue is indistinguishable from a fresh
    /// one (pending ids, slot generations, and tie-break order all
    /// restart), which is what trial pooling relies on for byte-identical
    /// reruns.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.next_seq = 0;
        self.now = 0;
        self.popped = 0;
    }

    /// Slot-table capacity currently reserved (diagnostics for the pooled
    /// allocation-free guarantee).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics if `at` is in the past: the simulation layers above never
    /// schedule retroactive events, so this is always a logic error worth
    /// failing loudly on.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        let slot = match self.free.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                debug_assert!(slot.payload.is_none());
                slot.payload = Some(payload);
                s
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event slot overflow");
                self.slots.push(Slot {
                    gen: 0,
                    pos: 0,
                    payload: Some(payload),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len();
        self.heap.push(HeapEntry {
            time: at,
            seq,
            slot,
        });
        self.slots[slot as usize].pos = pos;
        self.sift_up(pos);
        EventId::new(slot, self.slots[slot as usize].gen)
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event, removing it from the queue
    /// outright. Returns `true` if the event was pending (and is now gone);
    /// `false` if it had already fired or been cancelled — stale ids are
    /// harmless because the slot generation no longer matches.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let s = id.slot() as usize;
        if s >= self.slots.len() {
            return false;
        }
        if self.slots[s].gen != id.gen() || self.slots[s].payload.is_none() {
            return false;
        }
        let pos = self.slots[s].pos;
        self.remove_at(pos);
        self.retire_slot(s);
        true
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, EventId, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap[0];
        self.remove_at(0);
        let s = entry.slot as usize;
        let id = EventId::new(entry.slot, self.slots[s].gen);
        let payload = self.retire_slot(s).expect("heap entry without payload");
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, id, payload))
    }

    /// Drain *every* event at the next pending instant, in insertion
    /// order, into `sink`. Equivalent to popping while `peek_time` equals
    /// the head timestamp; returns the number drained (0 when empty).
    pub fn pop_batch(&mut self, mut sink: impl FnMut(Cycles, EventId, E)) -> usize {
        let Some((t, id, payload)) = self.pop() else {
            return 0;
        };
        sink(t, id, payload);
        let mut n = 1;
        while self.peek_time() == Some(t) {
            let (_, id, payload) = self.pop().expect("peeked event vanished");
            sink(t, id, payload);
            n += 1;
        }
        n
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.first().map(|e| e.time)
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advance the clock to `t` without popping an event. Used by simulation
    /// layers that interleave out-of-heap event sources (per-CPU timer
    /// slots) with the queue. Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: Cycles) {
        assert!(
            t >= self.now,
            "clock moved backwards: to={} now={}",
            t,
            self.now
        );
        self.now = t;
    }

    /// Record `n` events processed by an out-of-heap event source, so
    /// whole-simulation throughput accounting stays honest.
    pub fn note_external_events(&mut self, n: u64) {
        self.popped += n;
    }

    /// Un-count `n` events: the inverse of
    /// [`note_external_events`](Self::note_external_events), used by batch
    /// consumers that drain events eagerly and account for them only when
    /// actually consumed (a drained event can still be cancelled before its
    /// handler runs).
    pub fn forget_events(&mut self, n: u64) {
        debug_assert!(self.popped >= n, "forgetting more events than popped");
        self.popped -= n;
    }

    /// Number of pending events. With true-removal cancellation this is the
    /// live count — there are no tombstones to exclude.
    pub fn backlog(&self) -> usize {
        self.heap.len()
    }

    /// Bump the slot's generation, free it, and take its payload.
    fn retire_slot(&mut self, s: usize) -> Option<E> {
        let slot = &mut self.slots[s];
        slot.gen = slot.gen.wrapping_add(1);
        let payload = slot.payload.take();
        self.free.push(s as u32);
        payload
    }

    /// Remove the heap entry at `pos`, restoring the heap property.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos != last {
            self.heap.swap(pos, last);
            self.slots[self.heap[pos].slot as usize].pos = pos;
        }
        self.heap.pop();
        if pos < self.heap.len() {
            // The transplanted entry may violate the heap property in
            // either direction relative to its new neighborhood.
            let moved = self.sift_down(pos);
            if !moved {
                self.sift_up(pos);
            }
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[pos].key() >= self.heap[parent].key() {
                break;
            }
            self.heap.swap(pos, parent);
            self.slots[self.heap[pos].slot as usize].pos = pos;
            self.slots[self.heap[parent].slot as usize].pos = parent;
            pos = parent;
        }
    }

    /// Returns whether the entry moved.
    fn sift_down(&mut self, mut pos: usize) -> bool {
        let start = pos;
        let n = self.heap.len();
        loop {
            let l = 2 * pos + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && self.heap[r].key() < self.heap[l].key() {
                r
            } else {
                l
            };
            if self.heap[child].key() >= self.heap[pos].key() {
                break;
            }
            self.heap.swap(pos, child);
            self.slots[self.heap[pos].slot as usize].pos = pos;
            self.slots[self.heap[child].slot as usize].pos = child;
            pos = child;
        }
        pos != start
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        for (i, e) in self.heap.iter().enumerate() {
            let slot = &self.slots[e.slot as usize];
            assert_eq!(slot.pos, i, "slot {} position out of sync", e.slot);
            assert!(slot.payload.is_some(), "heap entry without payload");
            if i > 0 {
                let parent = &self.heap[(i - 1) / 2];
                assert!(parent.key() <= e.key(), "heap property violated at {i}");
            }
        }
        let pending = self.heap.len();
        let free = self.free.len();
        assert_eq!(pending + free, self.slots.len(), "slot leak");
    }
}

/// The backend behind an [`EventQueue`].
#[derive(Debug)]
enum Imp<E> {
    Heap(HeapQueue<E>),
    Wheel(WheelQueue<E>),
}

/// A deterministic future-event list.
///
/// `E` is the event payload type chosen by the simulation layer (the
/// hardware model uses a fixed enum of machine events). The backend is
/// chosen at construction via [`QueueKind`]; every method dispatches over
/// a two-variant enum, which the branch predictor resolves for free.
#[derive(Debug)]
pub struct EventQueue<E> {
    imp: Imp<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! delegate {
    ($self:ident, $q:ident => $body:expr) => {
        match &$self.imp {
            Imp::Heap($q) => $body,
            Imp::Wheel($q) => $body,
        }
    };
    (mut $self:ident, $q:ident => $body:expr) => {
        match &mut $self.imp {
            Imp::Heap($q) => $body,
            Imp::Wheel($q) => $body,
        }
    };
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero on the *reference* heap backend.
    /// Simulation layers pass an explicit [`QueueKind`] via
    /// [`with_kind`](Self::with_kind); bare `new()` keeps its historical
    /// meaning for direct users and differential baselines.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// An empty queue on the chosen backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            imp: match kind {
                QueueKind::Heap => Imp::Heap(HeapQueue::new()),
                QueueKind::Wheel => Imp::Wheel(WheelQueue::new()),
            },
        }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.imp {
            Imp::Heap(_) => QueueKind::Heap,
            Imp::Wheel(_) => QueueKind::Wheel,
        }
    }

    /// Clear back to the power-on state *as `kind`*: when the kind matches
    /// the current backend this is [`clear`](Self::clear) (allocations
    /// kept); a kind switch rebuilds the backend. Machine reset uses this
    /// so a pooled node honors a changed configuration.
    pub fn reset(&mut self, kind: QueueKind) {
        if self.kind() == kind {
            self.clear();
        } else {
            *self = Self::with_kind(kind);
        }
    }

    /// Current simulation time: the timestamp of the last popped event (or
    /// the last [`advance_to`](Self::advance_to) target, whichever is later).
    pub fn now(&self) -> Cycles {
        delegate!(self, q => q.now())
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        delegate!(self, q => q.events_processed())
    }

    /// Return the queue to its power-on state, keeping backing allocations;
    /// see [`HeapQueue::clear`].
    pub fn clear(&mut self) {
        delegate!(mut self, q => q.clear())
    }

    /// Backing-store capacity currently reserved (diagnostics for the
    /// pooled allocation-free guarantee).
    pub fn capacity(&self) -> usize {
        delegate!(self, q => q.capacity())
    }

    /// Schedule `payload` at absolute time `at`. Panics if `at` is in the
    /// past.
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventId {
        delegate!(mut self, q => q.schedule(at, payload))
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) -> EventId {
        delegate!(mut self, q => q.schedule_in(delay, payload))
    }

    /// Cancel a previously scheduled event; see [`HeapQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        delegate!(mut self, q => q.cancel(id))
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, EventId, E)> {
        delegate!(mut self, q => q.pop())
    }

    /// Drain every event at the next pending instant, in insertion order,
    /// into `sink`; returns the number drained (0 when empty). On the
    /// wheel this unlinks one whole level-0 slot list — the per-event
    /// queue traffic the batch dispatch above amortizes away.
    pub fn pop_batch(&mut self, sink: impl FnMut(Cycles, EventId, E)) -> usize {
        delegate!(mut self, q => q.pop_batch(sink))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        delegate!(self, q => q.peek_time())
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        delegate!(self, q => q.is_empty())
    }

    /// Advance the clock to `t` without popping an event. Panics if `t` is
    /// in the past; must not advance past a pending event.
    pub fn advance_to(&mut self, t: Cycles) {
        delegate!(mut self, q => q.advance_to(t))
    }

    /// Record `n` events processed by an out-of-queue event source.
    pub fn note_external_events(&mut self, n: u64) {
        delegate!(mut self, q => q.note_external_events(n))
    }

    /// Un-count `n` events; see [`HeapQueue::forget_events`].
    pub fn forget_events(&mut self, n: u64) {
        delegate!(mut self, q => q.forget_events(n))
    }

    /// Number of pending events (no tombstones on either backend).
    pub fn backlog(&self) -> usize {
        delegate!(self, q => q.backlog())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a behavioral check against both backends.
    fn both(f: impl Fn(EventQueue<&'static str>)) {
        f(EventQueue::with_kind(QueueKind::Heap));
        f(EventQueue::with_kind(QueueKind::Wheel));
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.schedule(30, "c");
            q.schedule(10, "a");
            q.schedule(20, "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        both(|mut q| {
            q.schedule(5, "1");
            q.schedule(5, "2");
            q.schedule(5, "3");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
            assert_eq!(order, vec!["1", "2", "3"]);
        });
    }

    #[test]
    fn clock_advances_with_pops() {
        both(|mut q| {
            q.schedule(7, "a");
            q.schedule(9, "b");
            assert_eq!(q.now(), 0);
            q.pop();
            assert_eq!(q.now(), 7);
            q.pop();
            assert_eq!(q.now(), 9);
        });
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        both(|mut q| {
            let a = q.schedule(1, "a");
            q.schedule(2, "b");
            assert!(q.cancel(a));
            let (_, _, p) = q.pop().unwrap();
            assert_eq!(p, "b");
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        both(|mut q| {
            let a = q.schedule(1, "first");
            q.pop();
            // The id was consumed; cancelling it must report dead and not
            // poison a future event reusing the same slot.
            assert!(!q.cancel(a));
            let b = q.schedule(2, "live");
            assert_ne!(a, b);
            assert!(!q.cancel(a));
            assert_eq!(q.pop().unwrap().2, "live");
        });
    }

    #[test]
    fn double_cancel_reports_dead() {
        both(|mut q| {
            let a = q.schedule(1, "a");
            assert!(q.cancel(a));
            assert!(!q.cancel(a));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn stale_id_does_not_alias_slot_reuse() {
        both(|mut q| {
            let a = q.schedule(1, "a");
            assert!(q.cancel(a));
            // The slot is reused for a different event; the stale id must
            // not be able to cancel it.
            let b = q.schedule(2, "b");
            assert!(!q.cancel(a));
            assert_eq!(q.peek_time(), Some(2));
            assert!(q.cancel(b));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn cancel_removes_immediately() {
        both(|mut q| {
            let ids: Vec<_> = (0..10).map(|t| q.schedule(t, "x")).collect();
            assert_eq!(q.backlog(), 10);
            for id in &ids {
                q.cancel(*id);
            }
            // True removal: no tombstones linger in either backend.
            assert_eq!(q.backlog(), 0);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn peek_skips_cancelled_head() {
        both(|mut q| {
            let a = q.schedule(1, "a");
            q.schedule(5, "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(5));
        });
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    #[should_panic]
    fn wheel_scheduling_in_the_past_panics() {
        let mut q = EventQueue::with_kind(QueueKind::Wheel);
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        both(|mut q| {
            q.schedule(100, "first");
            q.pop();
            q.schedule_in(50, "second");
            let (t, _, _) = q.pop().unwrap();
            assert_eq!(t, 150);
        });
    }

    #[test]
    fn events_processed_counts_live_only() {
        both(|mut q| {
            let a = q.schedule(1, "a");
            q.schedule(2, "b");
            q.cancel(a);
            while q.pop().is_some() {}
            assert_eq!(q.events_processed(), 1);
        });
    }

    #[test]
    fn advance_to_moves_clock_without_pop() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q = EventQueue::<()>::with_kind(kind);
            q.advance_to(500);
            assert_eq!(q.now(), 500);
            assert_eq!(q.events_processed(), 0);
            q.note_external_events(3);
            assert_eq!(q.events_processed(), 3);
            q.forget_events(2);
            assert_eq!(q.events_processed(), 1);
        }
    }

    #[test]
    #[should_panic]
    fn advance_to_rejects_the_past() {
        let mut q = EventQueue::<()>::new();
        q.schedule(10, ());
        q.pop();
        q.advance_to(5);
    }

    #[test]
    #[should_panic]
    fn wheel_advance_to_rejects_the_past() {
        let mut q = EventQueue::<()>::with_kind(QueueKind::Wheel);
        q.schedule(10, ());
        q.pop();
        q.advance_to(5);
    }

    #[test]
    fn pop_batch_drains_one_instant() {
        both(|mut q| {
            q.schedule(5, "a");
            q.schedule(5, "b");
            q.schedule(9, "c");
            q.schedule(5, "d");
            let mut got = Vec::new();
            let n = q.pop_batch(|t, _, p| got.push((t, p)));
            assert_eq!(n, 3);
            assert_eq!(got, vec![(5, "a"), (5, "b"), (5, "d")]);
            assert_eq!(q.now(), 5);
            assert_eq!(q.peek_time(), Some(9));
            got.clear();
            assert_eq!(q.pop_batch(|t, _, p| got.push((t, p))), 1);
            assert_eq!(got, vec![(9, "c")]);
            assert_eq!(q.pop_batch(|_, _, _| {}), 0);
            assert_eq!(q.events_processed(), 4);
        });
    }

    #[test]
    fn pop_batch_allows_reschedule_at_same_instant() {
        both(|mut q| {
            q.schedule(5, "a");
            let n = q.pop_batch(|_, _, _| {});
            assert_eq!(n, 1);
            // A handler may schedule more work at the instant just drained;
            // it forms the next batch, after everything already drained.
            q.schedule(5, "late");
            let mut got = Vec::new();
            assert_eq!(q.pop_batch(|t, _, p| got.push((t, p))), 1);
            assert_eq!(got, vec![(5, "late")]);
        });
    }

    #[test]
    fn clear_retains_backing_capacity() {
        for kind in [QueueKind::Heap, QueueKind::Wheel] {
            let mut q = EventQueue::with_kind(kind);
            let ids: Vec<_> = (0..10_000u64).map(|t| q.schedule(t, t)).collect();
            for id in ids.iter().step_by(3) {
                q.cancel(*id);
            }
            let cap = q.capacity();
            assert!(cap >= 10_000);
            q.clear();
            // The power-on state keeps the slot storage: pooled trials
            // (Node::reset) must not re-allocate queue memory.
            assert_eq!(q.capacity(), cap, "{kind:?} clear dropped capacity");
            assert!(q.is_empty());
            assert_eq!(q.now(), 0);
            assert_eq!(q.events_processed(), 0);
            // And a cleared queue restarts id assignment from scratch.
            let fresh = EventQueue::with_kind(kind).schedule(7, 0u64);
            assert_eq!(q.schedule(7, 0u64), fresh);
        }
    }

    #[test]
    fn reset_switches_backend_kind() {
        let mut q = EventQueue::<u32>::with_kind(QueueKind::Wheel);
        q.schedule(3, 1);
        q.reset(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
        assert!(q.is_empty());
        q.reset(QueueKind::Heap);
        assert_eq!(q.kind(), QueueKind::Heap);
    }

    #[test]
    fn interleaved_schedule_cancel_pop_keeps_heap_consistent() {
        // Deterministic stress: a mix of schedules, targeted cancels, and
        // pops, with the internal invariants checked after every step.
        let mut q = HeapQueue::new();
        let mut live: Vec<EventId> = Vec::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for step in 0..2000u64 {
            match next(4) {
                0 | 1 => {
                    let at = q.now() + next(100);
                    live.push(q.schedule(at, step));
                }
                2 => {
                    if !live.is_empty() {
                        let i = next(live.len() as u64) as usize;
                        let id = live.swap_remove(i);
                        q.cancel(id);
                    }
                }
                _ => {
                    if let Some((_, id, _)) = q.pop() {
                        live.retain(|x| *x != id);
                    }
                }
            }
            q.assert_invariants();
        }
        // Drain; everything left must pop in nondecreasing time order.
        let mut last = q.now();
        while let Some((t, _, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            q.assert_invariants();
        }
        assert!(q.is_empty());
        assert_eq!(q.backlog(), 0);
    }
}
