//! Admission-engine microbenchmark.
//!
//! Times the widening-churn workload (the hot path created by period
//! widening and group re-throttling) under the incremental admission
//! engine with the memoized hyperperiod simulation, against the
//! fresh-recompute reference. Writes `results/admission.csv` plus
//! `BENCH_admission.json`; pass `--paper` for the full sweep.

use nautix_bench::admission_bench::{run, AdmissionPoint};
use nautix_bench::{banner, f, out_dir, write_csv, Scale};

fn json(points: &[AdmissionPoint], overall: f64) -> String {
    let mut s = String::from("{\n  \"bench\": \"admission\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"tasks\": {}, \"iters\": {}, \"fresh_secs\": {}, \
             \"incr_secs\": {}, \"speedup\": {}, \"hits\": {}, \"misses\": {}, \
             \"fresh_sims\": {}}}{}\n",
            p.tasks,
            p.iters,
            f(p.fresh_secs),
            f(p.incr_secs),
            f(p.speedup),
            p.hits,
            p.misses,
            p.fresh_sims,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"overall_speedup\": {}\n}}\n",
        f(overall)
    ));
    s
}

fn main() {
    let scale = Scale::from_args();
    banner("Admission engine: incremental + memoized sim vs fresh recompute");
    println!("scale: {scale:?}; widening-churn workload, one CPU ledger\n");
    let points = run(scale);

    println!("tasks  iters  fresh_s      incr_s       speedup  hits   misses");
    for p in &points {
        println!(
            "{:>5}  {:>5}  {:>11}  {:>11}  {:>7}  {:>5}  {:>6}",
            p.tasks,
            p.iters,
            f(p.fresh_secs),
            f(p.incr_secs),
            f(p.speedup),
            p.hits,
            p.misses
        );
    }
    let fresh_total: f64 = points.iter().map(|p| p.fresh_secs).sum();
    let incr_total: f64 = points.iter().map(|p| p.incr_secs).sum();
    let overall = fresh_total / incr_total.max(1e-12);
    println!("\noverall speedup: {}x", f(overall));

    write_csv(
        &out_dir().join("admission.csv"),
        &[
            "tasks",
            "iters",
            "fresh_secs",
            "incr_secs",
            "speedup",
            "hits",
            "misses",
            "fresh_sims",
        ],
        points.iter().map(|p| {
            vec![
                p.tasks.to_string(),
                p.iters.to_string(),
                f(p.fresh_secs),
                f(p.incr_secs),
                f(p.speedup),
                p.hits.to_string(),
                p.misses.to_string(),
                p.fresh_sims.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("admission.csv"));

    let bench_path = std::path::Path::new("BENCH_admission.json");
    std::fs::write(bench_path, json(&points, overall)).expect("write BENCH_admission.json");
    println!("wrote {bench_path:?}");
}
