//! The cyclic executive running on a live node: the statically compiled
//! table executes under a single periodic constraint and every placement
//! runs in its frame.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, FnProgram, SysCall, SysResult};
use nautix_rt::{compile_cyclic, CyclicExecutive, CyclicTask, Node, NodeConfig};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn executive_runs_its_table_on_a_node() {
    let set = [
        CyclicTask {
            period: 200_000,
            wcet: 30_000,
        },
        CyclicTask {
            period: 400_000,
            wcet: 60_000,
        },
    ];
    let schedule = compile_cyclic(&set).unwrap();
    schedule.verify().unwrap();
    let hosting = schedule.hosting_constraints(10_000);
    let frame = schedule.frame;
    let major_cycles = 10;
    let expected_placements: usize = schedule
        .frames
        .iter()
        .map(|f| f.placements.len())
        .sum::<usize>()
        * major_cycles;

    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(51);
    let mut node = Node::new(cfg);
    let freq = node.freq();

    // A wrapper admits the hosting constraint, then hands over to the
    // executive program.
    let executed = Rc::new(RefCell::new(Vec::new()));
    let executed2 = executed.clone();
    let mut exec = Some(CyclicExecutive::new(schedule, freq, major_cycles));
    let mut inner: Option<CyclicExecutive> = None;
    let prog = FnProgram::new(move |cx, n| {
        if n == 0 {
            return Action::Call(SysCall::ChangeConstraints(hosting));
        }
        if n == 1 {
            assert_eq!(cx.result, SysResult::Admission(Ok(())));
            inner = exec.take();
        }
        let e = inner.as_mut().expect("executive installed");
        let action = nautix_kernel::Program::resume(e, cx);
        if matches!(action, Action::Exit) {
            *executed2.borrow_mut() = e.executed.clone();
        }
        action
    });
    let tid = node.spawn_on(1, "cyclic", Box::new(prog)).unwrap();
    node.run_until_quiescent();

    let executed = executed.borrow();
    assert_eq!(
        executed.len(),
        expected_placements,
        "every placement of every major cycle must run"
    );
    let st = node.thread_state(tid);
    assert_eq!(st.stats.missed, 0, "the hosting constraint must hold");
    assert!(st.stats.arrivals >= (major_cycles as u64 * 2) - 1);
    let _ = frame;
}

#[test]
fn executive_frame_budget_is_respected() {
    // A table whose peak frame load is well under the frame: the hosting
    // slice equals peak + margin, so each frame's work must fit in one
    // arrival's slice — otherwise placements would spill across frames
    // and deadline accounting would show forfeits/misses.
    let set = [CyclicTask {
        period: 1_000_000,
        wcet: 200_000,
    }];
    let schedule = compile_cyclic(&set).unwrap();
    assert!(schedule.peak_frame_load() <= schedule.frame);
    let c = schedule.hosting_constraints(20_000);
    assert!(c.utilization_ppm() < 1_000_000);
}
