//! Figures 6–9: deadline miss rates and miss times vs. period and slice.
//!
//! Admission control is disabled so infeasible constraints can be mapped
//! (§5.3): "for too small of a period or slice, or too large of a slice
//! within a period, misses will be virtually guaranteed ... once the period
//! and slice are feasible given the scheduler overhead, we expect a zero
//! miss rate." The feasibility edge lands near a 10 µs period on the Phi
//! (Figure 6) and near 4 µs on the R415 (Figure 7); miss *times* in the
//! infeasible region stay small (Figures 8 and 9).

use crate::common::Scale;
use crate::harness::{run_trials_pooled, HarnessStats, NodePool};
use crate::scenario::Scenario;
use nautix_des::Nanos;
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

/// One (period, slice) sample of the sweep.
///
/// `PartialEq` is derived so determinism tests can compare whole sweeps
/// (serial vs. parallel) for exact equality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissPoint {
    /// Period τ in µs.
    pub period_us: u64,
    /// Slice as % of period.
    pub slice_pct: u64,
    /// Fraction of jobs completing after their deadline.
    pub miss_rate: f64,
    /// Mean lateness of missing jobs, ns.
    pub miss_mean_ns: f64,
    /// Standard deviation of lateness, ns.
    pub miss_std_ns: f64,
    /// Jobs observed.
    pub jobs: u64,
    /// Simulated machine events this trial processed (throughput metric).
    pub events: u64,
}

/// The sweep grid for a platform.
pub fn periods_us(platform: Platform) -> Vec<u64> {
    match platform {
        Platform::Phi => vec![1000, 100, 50, 40, 30, 20, 10],
        Platform::R415 => vec![1000, 100, 50, 40, 30, 20, 10, 4],
    }
}

/// Slice percentages for the sweep.
pub fn slice_pcts(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => (10..=90).step_by(20).collect(),
        Scale::Paper => (10..=90).step_by(5).collect(),
    }
}

/// Measure one (period, slice) point on a fresh node.
pub fn measure_point(
    platform: Platform,
    period_ns: Nanos,
    slice_ns: Nanos,
    jobs: u64,
    seed: u64,
) -> MissPoint {
    measure_point_pooled(
        &mut NodePool::new(),
        platform,
        period_ns,
        slice_ns,
        jobs,
        seed,
    )
}

/// Measure one (period, slice) point, reusing `pool`'s node arenas.
///
/// The trial itself is described by [`Scenario::missrate`] and executed
/// through [`Scenario::run_recorded`], so every sweep point is
/// automatically streamable to the stats hub and replayable from its
/// scenario text if an armed oracle flags it.
pub fn measure_point_pooled(
    pool: &mut NodePool,
    platform: Platform,
    period_ns: Nanos,
    slice_ns: Nanos,
    jobs: u64,
    seed: u64,
) -> MissPoint {
    let sc = Scenario::missrate(platform, period_ns, slice_ns, jobs, seed);
    let out = sc
        .run_recorded(pool)
        .expect("missrate scenario is runnable");
    MissPoint {
        period_us: period_ns / 1000,
        slice_pct: slice_ns * 100 / period_ns,
        miss_rate: out.miss_rate,
        miss_mean_ns: out.miss_mean_ns,
        miss_std_ns: out.miss_std_ns,
        jobs: out.jobs,
        events: out.events,
    }
}

/// The (period_ns, slice_ns, jobs) trial grid for a platform.
pub fn trial_grid(platform: Platform, scale: Scale) -> Vec<(Nanos, Nanos, u64)> {
    let jobs = match scale {
        Scale::Quick => 60,
        Scale::Paper => 300,
    };
    let mut grid = Vec::new();
    for period_us in periods_us(platform) {
        for pct in slice_pcts(scale) {
            let period_ns = period_us * 1000;
            let slice_ns = (period_ns * pct / 100).max(50);
            grid.push((period_ns, slice_ns, jobs));
        }
    }
    grid
}

/// Run the full sweep for a platform (Figures 6+8 or 7+9), with trials
/// fanned across worker threads. Each grid point is an independent
/// simulation seeded only by `(grid point, seed)`, so the result vector is
/// identical at any thread count.
pub fn sweep_with_stats(
    hc: &HarnessConfig,
    platform: Platform,
    scale: Scale,
    seed: u64,
) -> (Vec<MissPoint>, HarnessStats) {
    let set = run_trials_pooled(
        hc,
        trial_grid(platform, scale),
        |pool, &(period_ns, slice_ns, jobs)| {
            let p = measure_point_pooled(pool, platform, period_ns, slice_ns, jobs, seed);
            (p, p.events)
        },
    );
    (set.results, set.stats)
}

/// [`sweep_with_stats`] without the instrumentation, configured from the
/// environment.
pub fn sweep(platform: Platform, scale: Scale, seed: u64) -> Vec<MissPoint> {
    sweep_with_stats(&HarnessConfig::from_env(), platform, scale, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_periods_never_miss_on_phi() {
        // 1 ms period, 50% slice: trivially feasible.
        let p = measure_point(Platform::Phi, 1_000_000, 500_000, 50, 5);
        assert!(p.jobs >= 40);
        assert_eq!(p.miss_rate, 0.0, "feasible point must not miss");
    }

    #[test]
    fn ten_us_with_fat_slice_always_misses_on_phi() {
        // Figure 6: at τ = 10 µs the overhead (~2 interrupts x ~4.6 µs)
        // leaves no room for a 70% slice.
        let p = measure_point(Platform::Phi, 10_000, 7_000, 100, 5);
        assert!(
            p.miss_rate > 0.9,
            "expected ~100% misses at the infeasible point, got {}",
            p.miss_rate
        );
        // Figure 8: miss times stay small (a few µs).
        assert!(
            p.miss_mean_ns < 20_000.0,
            "miss times {} ns should be small",
            p.miss_mean_ns
        );
    }

    #[test]
    fn r415_sustains_4us_with_thin_slice() {
        // Figure 7: the R415's edge of feasibility is ~4 µs.
        let p = measure_point(Platform::R415, 4_000, 400, 100, 5);
        assert!(
            p.miss_rate < 0.1,
            "R415 at 4 µs / 10% should be near the feasible edge, got {}",
            p.miss_rate
        );
    }

    #[test]
    fn phi_cannot_sustain_4us_at_all() {
        let p = measure_point(Platform::Phi, 4_000, 1_200, 100, 5);
        assert!(
            p.miss_rate > 0.5,
            "the Phi's edge is ~10 µs; 4 µs must fail (rate {})",
            p.miss_rate
        );
    }

    #[test]
    fn feasibility_edge_moves_with_slice_share() {
        // At 20 µs on the Phi: a thin slice fits, a fat one does not.
        let thin = measure_point(Platform::Phi, 20_000, 2_000, 100, 5);
        let fat = measure_point(Platform::Phi, 20_000, 16_000, 100, 5);
        assert!(thin.miss_rate < fat.miss_rate);
        assert!(fat.miss_rate > 0.9);
    }
}
