//! Interrupt-thread steering (§3.5, second mechanism): device interrupt
//! processing moved into a schedulable thread.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{Node, NodeConfig};

fn node(cpus: usize) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(cpus).with_seed(41);
    Node::new(cfg)
}

#[test]
fn interrupt_thread_services_each_irq() {
    let mut node = node(3);
    let served = std::rc::Rc::new(std::cell::Cell::new(0u32));
    let served2 = served.clone();
    // The interrupt thread: wait for irq 2, process for 50 µs, repeat.
    let prog = FnProgram::new(move |_cx, n| {
        if n >= 20 {
            return Action::Exit;
        }
        if n % 2 == 0 {
            Action::Call(SysCall::WaitIrq(2))
        } else {
            served2.set(served2.get() + 1);
            Action::Compute(65_000)
        }
    });
    node.spawn_on(1, "irq-thread", Box::new(prog)).unwrap();
    node.run_for_ns(1_000_000); // let it block first
    for _ in 0..10 {
        node.raise_device_irq(2);
        node.run_for_ns(500_000);
    }
    node.run_until_quiescent();
    assert_eq!(served.get(), 10, "every interrupt must reach the thread");
    assert_eq!(node.device_irqs_handled[0], 10, "acks counted on CPU 0");
}

#[test]
fn unclaimed_irqs_fall_back_to_inline_handler() {
    let mut node = node(2);
    for _ in 0..5 {
        node.raise_device_irq(7); // nobody waits on line 7
        node.run_for_ns(100_000);
    }
    node.run_until_quiescent();
    assert_eq!(node.device_irqs_handled[0], 5);
}

#[test]
fn interrupt_thread_work_is_governed_by_the_scheduler() {
    // The interrupt thread shares CPU 1 with a hard real-time thread. The
    // RT thread must not miss, no matter how hot the device runs — the
    // whole point of moving interrupt work into thread context.
    let mut node = node(3);
    let rt = FnProgram::new(|_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(500_000, 200_000).build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    let rt_tid = node.spawn_on(1, "rt", Box::new(rt)).unwrap();
    let irq_thread = FnProgram::new(move |_cx, n| {
        if n % 2 == 0 {
            Action::Call(SysCall::WaitIrq(3))
        } else {
            Action::Compute(130_000) // 100 µs of deferred processing
        }
    });
    node.spawn_on(1, "irq-thread", Box::new(irq_thread))
        .unwrap();
    node.run_for_ns(1_000_000);
    for _ in 0..100 {
        node.raise_device_irq(3);
        node.run_for_ns(200_000);
    }
    node.run_for_ns(10_000_000);
    let st = node.thread_state(rt_tid);
    assert!(st.stats.arrivals > 40);
    assert_eq!(
        st.stats.missed, 0,
        "interrupt-thread load must not break the RT guarantee"
    );
}
