//! A fork-join data-parallel run-time on the hard real-time substrate.
//!
//! §8 of the paper: "We are currently working on adding real-time and
//! barrier removal support to Nautilus-internal implementations of OpenMP
//! and NESL run-times." This crate is that layer in miniature — the shapes
//! an OpenMP program compiles into, executed by a persistent worker team:
//!
//! * [`plan`] — parallel loops (static and dynamic schedules, uniform and
//!   imbalanced cost profiles), sum reductions, serial sections;
//! * [`team`] — worker teams, either best-effort or admitted as a hard
//!   real-time gang through group admission control.
//!
//! See `examples/parallel_runtime.rs` for the tour.

pub mod plan;
pub mod team;

pub use plan::{CostProfile, LoopSchedule, Plan, Region};
pub use team::{run_plan, PlanResult, TeamConfig, TeamMode};

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_hw::MachineConfig;
    use nautix_rt::{NodeConfig, SchedConfig};

    fn cfg(cpus: usize) -> NodeConfig {
        let mut c = NodeConfig::phi();
        c.machine = MachineConfig::phi().with_cpus(cpus).with_seed(61);
        c.sched = SchedConfig::throughput();
        c
    }

    fn team(workers: usize) -> TeamConfig {
        TeamConfig {
            workers,
            mode: TeamMode::BestEffort,
        }
    }

    #[test]
    fn static_uniform_loop_scales() {
        let plan =
            Plan::new().parallel_for(1024, CostProfile::Uniform(10_000), LoopSchedule::Static);
        let r1 = run_plan(cfg(2), team(1), plan.clone());
        let r4 = run_plan(cfg(5), team(4), plan);
        let speedup = r1.total_ns as f64 / r4.total_ns as f64;
        assert!(
            (3.0..4.5).contains(&speedup),
            "4 workers should give ~4x ({speedup})"
        );
        assert!(r4.efficiency() > 0.8, "efficiency {}", r4.efficiency());
    }

    #[test]
    fn dynamic_beats_static_on_triangular_load() {
        // Linear cost growth: the static schedule hands the expensive tail
        // to the last worker; dynamic chunking spreads it.
        let profile = CostProfile::Linear {
            base: 1_000,
            step: 60,
        };
        let static_plan = Plan::new().parallel_for(512, profile, LoopSchedule::Static);
        let dynamic_plan =
            Plan::new().parallel_for(512, profile, LoopSchedule::Dynamic { chunk: 8 });
        let rs = run_plan(cfg(5), team(4), static_plan);
        let rd = run_plan(cfg(5), team(4), dynamic_plan);
        assert!(
            rd.total_ns < rs.total_ns,
            "dynamic ({}) must beat static ({}) under imbalance",
            rd.total_ns,
            rs.total_ns
        );
        // Note: `imbalance()` over executed cycles can't see this —
        // stragglers' peers burn the same cycles *spinning* at the barrier.
        // The honest signal is parallel efficiency.
        assert!(
            rd.efficiency() > rs.efficiency(),
            "dynamic should be more efficient ({} vs {})",
            rd.efficiency(),
            rs.efficiency()
        );
    }

    #[test]
    fn reduction_result_is_exact() {
        let items = 1000u64;
        let plan = Plan::new().reduce_sum(items, 1_000);
        let r = run_plan(cfg(5), team(4), plan);
        assert_eq!(r.reductions, vec![items * (items - 1) / 2]);
    }

    #[test]
    fn serial_sections_limit_speedup() {
        // Equal serial and parallel compute: Amdahl caps speedup below 2.
        let par = 4_000_000u64;
        let plan = Plan::new().serial(par).parallel_for(
            256,
            CostProfile::Uniform(par / 256),
            LoopSchedule::Static,
        );
        let r = run_plan(cfg(9), team(8), plan);
        assert!(
            r.speedup() < 2.0,
            "Amdahl: speedup {} must stay under 2",
            r.speedup()
        );
        assert!(r.speedup() > 1.2, "but parallelism still helps");
    }

    #[test]
    fn real_time_team_is_admitted_and_completes() {
        let plan = Plan::new()
            .parallel_for(256, CostProfile::Uniform(20_000), LoopSchedule::Static)
            .reduce_sum(256, 5_000);
        let r = run_plan(
            cfg(5),
            TeamConfig {
                workers: 4,
                mode: TeamMode::RealTime {
                    period: 1_000_000,
                    slice: 800_000,
                },
            },
            plan,
        );
        assert!(r.admitted);
        assert_eq!(r.reductions, vec![256 * 255 / 2]);
        assert!(r.total_ns > 0);
    }

    #[test]
    fn throttled_team_runs_proportionally_slower() {
        let plan =
            Plan::new().parallel_for(2048, CostProfile::Uniform(10_000), LoopSchedule::Static);
        let fast = run_plan(
            cfg(5),
            TeamConfig {
                workers: 4,
                mode: TeamMode::RealTime {
                    period: 1_000_000,
                    slice: 800_000,
                },
            },
            plan.clone(),
        );
        let slow = run_plan(
            cfg(5),
            TeamConfig {
                workers: 4,
                mode: TeamMode::RealTime {
                    period: 1_000_000,
                    slice: 200_000,
                },
            },
            plan,
        );
        let ratio = slow.total_ns as f64 / fast.total_ns as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "4x less CPU should be ~4x slower ({ratio})"
        );
    }

    #[test]
    fn infeasible_team_constraints_fail() {
        let plan = Plan::new().serial(1000);
        let r = run_plan(
            cfg(3),
            TeamConfig {
                workers: 2,
                mode: TeamMode::RealTime {
                    period: 100_000,
                    slice: 99_900,
                },
            },
            plan,
        );
        assert!(!r.admitted);
    }
}
