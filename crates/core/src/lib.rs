//! The paper's primary contribution: a hard real-time scheduler for
//! parallel run-time systems on shared-memory x64 nodes.
//!
//! * [`admission`] — utilization-limit/reservation admission control with
//!   EDF, RM, and hyperperiod-simulation policies (§3.2),
//! * [`local`] — the eager-EDF local scheduler, one per hardware thread
//!   (§3.3, §3.6),
//! * [`timesync`] — boot-time cross-CPU cycle-counter calibration (§3.4),
//! * [`node`] — the global scheduler: the event loop binding local
//!   schedulers, the kernel substrate, interrupt steering, work stealing,
//!   kick IPIs, lightweight tasks, and group admission control
//!   (Algorithm 1 of §4.3 with the phase correction of §4.4),
//! * [`stats`] — the measurements the evaluation (§5) reports,
//! * [`cyclic`] — the §8 future-work direction implemented: compiling
//!   task sets into statically verified cyclic executives.

pub mod admission;
pub mod config;
pub mod cyclic;
pub mod local;
pub mod node;
#[cfg(feature = "trace")]
pub mod oracle;
pub mod pool;
pub mod request;
pub mod stats;
pub mod timeline;
pub mod timesync;

pub use admission::{
    admission_global_stats, AdmissionEngine, AdmissionPolicy, CpuLoad, DegradePolicy,
    LayerConfigError, LayerSpec, LayerTable, SchedConfig, SchedMode, SimCache, SimProbe,
    StealPolicy, MAX_LAYERS, PPM,
};
pub use config::{
    env_admission_engine, parse_admission_engine, parse_fault_intensity, parse_layers,
    parse_switch, parse_threads, FaultIntensity, HarnessConfig,
};
pub use cyclic::{
    compile as compile_cyclic, CyclicError, CyclicExecutive, CyclicSchedule, CyclicTask,
};
pub use local::{
    degrade_global_stats, Decision, InvokeReason, JobOutcome, LocalScheduler, SchedThread,
};
pub use node::{GaTiming, Node, NodeBuilder, NodeConfig};
pub use pool::NodePool;
pub use request::{AdmissionOutcome, AdmissionRequest, AdmissionTarget};
pub use stats::{
    dispatch_spreads, AdmissionStats, CpuSchedStats, DegradeStats, DispatchLog, OverheadBreakdown,
    OverheadSample, ThreadRtStats,
};
pub use timeline::{Span, Timeline};
pub use timesync::{calibrate, wall_cycles, TimeSync};

// Re-export the scheduling ABI so users can stay within this crate.
pub use nautix_kernel::{AdmissionError, ConstraintError, Constraints, ConstraintsBuilder};
