//! Experiment: time-sharing with performance isolation (§1's claim).
//!
//! Two 40%-utilization gangs share the same CPUs. Under hard real-time
//! scheduling, gang A's execution time is unchanged by gang B's presence;
//! under best-effort scheduling, co-running reshapes both.

use nautix_bench::{banner, f, isolation, out_dir, write_csv};

fn main() {
    banner("Experiment: performance isolation under time-sharing");
    let workers = 8;
    let iters = 60;
    let rt = isolation::measure(true, workers, iters, 131);
    let be = isolation::measure(false, workers, iters, 131);
    println!("scheduling,alone_ns,shared_ns,interference,misses");
    println!(
        "hard_rt,{},{},{},{}",
        rt.alone_ns,
        rt.shared_ns,
        f(rt.interference),
        rt.misses
    );
    println!(
        "best_effort,{},{},{},{}",
        be.alone_ns,
        be.shared_ns,
        f(be.interference),
        be.misses
    );
    println!(
        "\na 40% hard real-time gang is slowed {}x by a co-resident 40% gang; \
         the best-effort version is slowed {}x",
        f(rt.interference),
        f(be.interference)
    );
    write_csv(
        &out_dir().join("exp_isolation.csv"),
        &[
            "scheduling",
            "alone_ns",
            "shared_ns",
            "interference",
            "misses",
        ],
        vec![
            vec![
                "hard_rt".to_string(),
                rt.alone_ns.to_string(),
                rt.shared_ns.to_string(),
                f(rt.interference),
                rt.misses.to_string(),
            ],
            vec![
                "best_effort".to_string(),
                be.alone_ns.to_string(),
                be.shared_ns.to_string(),
                f(be.interference),
                be.misses.to_string(),
            ],
        ],
    );
    println!("wrote {:?}", out_dir().join("exp_isolation.csv"));
}
