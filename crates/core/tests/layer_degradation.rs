//! Degradation stays inside the victim's layer.
//!
//! The PR-4 degradation ladder (widen the period, then demote to
//! aperiodic) interacts with layered bandwidth control in exactly one
//! sanctioned way: a faulting periodic thread stays in the RT layer
//! while it is widened (its class never changes) and lands in the
//! *aperiodic* layer when demoted. It never passes through the sporadic
//! class, so it can never be charged against the batch layer's budget —
//! and a batch-layer thread co-resident with a chronically faulting RT
//! probe keeps its full bandwidth guarantee throughout the churn.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall, ThreadId};
use nautix_rt::{DegradePolicy, LayerSpec, LayerTable, Node, NodeConfig};
use proptest::prelude::*;

const HORIZON_NS: u64 = 400_000_000;
const REPLENISH_NS: u64 = 10_000_000;

/// rt 60%, batch 20%, bg 20%.
fn layers() -> LayerTable {
    LayerTable::three_way(
        LayerSpec {
            guarantee_ppm: 600_000,
            burst_ppm: 0,
        },
        LayerSpec {
            guarantee_ppm: 200_000,
            burst_ppm: 0,
        },
        LayerSpec {
            guarantee_ppm: 200_000,
            burst_ppm: 0,
        },
        REPLENISH_NS,
    )
    .unwrap()
}

fn node(seed: u64, degrade: DegradePolicy) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(seed);
    // Admission off so the deliberately infeasible probe gets mapped at
    // all — degradation is the mechanism under test, not the gate.
    cfg.sched.admission_enabled = false;
    cfg.sched.degrade = degrade;
    cfg.sched.layers = layers();
    Node::new(cfg)
}

/// A periodic probe whose every job needs more service than one full
/// replenish window of its layer can supply before the deadline: period
/// equal to the replenish window, slice 9.5 ms against a 6 ms-per-window
/// RT bucket (admission is off, so the overcommit maps). Each job drains
/// the window, waits out the throttle, and completes past its deadline —
/// no job can ever meet, so the consecutive-miss counter climbs straight
/// through any threshold: the canonical "faulting RT thread". Widening
/// lowers the per-period demand until the 60% service rate covers a
/// whole job inside its (stretched) deadline, at which point the probe
/// stabilizes.
fn spawn_faulting_probe(node: &mut Node) -> ThreadId {
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(10_000_000, 9_500_000)
                    .phase(10_000_000)
                    .build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    node.spawn_on(1, "faulty", Box::new(prog)).unwrap()
}

/// An always-runnable batch-layer thread: one enormous sporadic burst
/// whose deadline never arrives inside the horizon, so it stays in the
/// sporadic class (and therefore the batch layer) for the whole run.
fn spawn_batch_worker(node: &mut Node) -> ThreadId {
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::sporadic(2_000_000_000, 4_000_000_000).build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    node.spawn_on(1, "batch", Box::new(prog)).unwrap()
}

/// Wall-time share `tid` received, from the execution timeline.
fn share_of(node: &mut Node, tid: ThreadId) -> f64 {
    let ns: u64 = node
        .take_timeline()
        .unwrap()
        .spans()
        .iter()
        .filter(|s| s.tid == Some(tid))
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    ns as f64 / HORIZON_NS as f64
}

/// The batch worker's guaranteed share, minus replenish-quantization
/// slack (one scheduling pass of overdraft per window plus phase skew).
const BATCH_FLOOR: f64 = 0.2 - 0.03;

#[test]
fn widening_probe_never_steals_batch_bandwidth() {
    // max_widen high enough that the probe widens for the whole horizon
    // without ever being demoted: it must stay periodic (RT layer) and
    // the batch worker must keep its full 20%.
    let mut n = node(
        41,
        DegradePolicy {
            enabled: true,
            miss_threshold: 2,
            widen_pct: 25,
            max_widen: 1_000,
        },
    );
    n.record_timeline(1 << 22);
    let batch = spawn_batch_worker(&mut n);
    let probe = spawn_faulting_probe(&mut n);
    n.run_for_ns(HORIZON_NS);

    let d = n.degrade_stats();
    assert!(d.periodic_widenings > 0, "the probe must actually widen");
    assert_eq!(d.periodic_demotions, 0, "max_widen must never be reached");
    assert!(
        matches!(
            n.thread_state(probe).constraints,
            Constraints::Periodic { .. }
        ),
        "a widened probe stays periodic (RT layer)"
    );
    let share = share_of(&mut n, batch);
    assert!(
        share >= BATCH_FLOOR,
        "widening churn ate the batch guarantee: share {share:.4} < {BATCH_FLOOR}"
    );
}

#[test]
fn demoted_probe_lands_in_the_aperiodic_layer_not_batch() {
    // max_widen 0: the first threshold crossing demotes outright. The
    // probe must end aperiodic (background layer) — and the batch
    // worker's guarantee still holds while the demoted probe competes
    // from the background bucket.
    let mut n = node(
        43,
        DegradePolicy {
            enabled: true,
            miss_threshold: 2,
            widen_pct: 25,
            max_widen: 0,
        },
    );
    n.record_timeline(1 << 22);
    let batch = spawn_batch_worker(&mut n);
    let probe = spawn_faulting_probe(&mut n);
    n.run_for_ns(HORIZON_NS);

    let d = n.degrade_stats();
    assert!(d.periodic_demotions > 0, "the probe must be demoted");
    assert!(
        matches!(
            n.thread_state(probe).constraints,
            Constraints::Aperiodic { .. }
        ),
        "a demoted probe is aperiodic (background layer)"
    );
    let share = share_of(&mut n, batch);
    assert!(
        share >= BATCH_FLOOR,
        "demotion churn ate the batch guarantee: share {share:.4} < {BATCH_FLOOR}"
    );
}

proptest! {
    /// Any degradation policy, any seed: the ladder only ever leaves the
    /// faulting thread periodic (widened) or aperiodic (demoted) — never
    /// sporadic, so never mapped into the batch layer — and the batch
    /// worker keeps its guarantee through the whole churn.
    #[test]
    fn degradation_ladder_respects_layer_boundaries(
        seed in 0u64..u64::MAX,
        miss_threshold in 1u32..4,
        widen_pct in prop::sample::select(vec![10u32, 25, 50]),
        max_widen in 0u32..4,
    ) {
        let mut n = node(
            seed,
            DegradePolicy {
                enabled: true,
                miss_threshold,
                widen_pct,
                max_widen,
            },
        );
        n.record_timeline(1 << 22);
        let batch = spawn_batch_worker(&mut n);
        let probe = spawn_faulting_probe(&mut n);
        n.run_for_ns(HORIZON_NS);

        let d = n.degrade_stats();
        prop_assert!(
            d.periodic_widenings + d.periodic_demotions > 0,
            "vacuous case: the probe never degraded"
        );
        let end = n.thread_state(probe).constraints;
        prop_assert!(
            !matches!(end, Constraints::Sporadic { .. }),
            "degradation must never produce a sporadic (batch-layer) class"
        );
        let table = layers();
        prop_assert!(
            table.layer_of(&end) != table.map_sporadic(),
            "the degraded probe ended in the batch layer"
        );
        let share = share_of(&mut n, batch);
        prop_assert!(
            share >= BATCH_FLOOR,
            "degradation churn ate the batch guarantee: share {share:.4}"
        );
    }
}
