//! Regression tests for the fault-injection determinism contract.
//!
//! 1. A fault-laden workload is a pure function of its grid point and
//!    seed: worker-thread count and node pooling (arena reuse through
//!    `Node::reset`) must never leak into results, even with every
//!    injection lane firing and degradation responding.
//! 2. A disabled `FaultPlan` is free: the machine draws nothing from the
//!    deterministic RNG and schedules nothing for it, so the paper-scale
//!    reproduction's total simulated-event count stays byte-identical to
//!    the seed value recorded in `BENCH_repro.json`.

use nautix_bench::harness::NodePool;
use nautix_bench::throttle::Granularity;
use nautix_bench::{ablations, fault_sweep, groupsync, missrate, throttle, Scale};
use nautix_hw::Platform;
use nautix_rt::HarnessConfig;

#[test]
fn fault_laden_sweep_is_identical_across_thread_counts() {
    let (serial, s1) =
        fault_sweep::sweep_with_stats(&HarnessConfig::with_threads(1), Scale::Quick, 77);
    let (parallel, s4) =
        fault_sweep::sweep_with_stats(&HarnessConfig::with_threads(4), Scale::Quick, 77);
    assert_eq!(s1.threads, 1);
    assert_eq!(s4.threads, 4);
    assert_eq!(serial, parallel, "thread count changed fault-sweep results");
    assert_eq!(s1.events, s4.events, "simulated event counts must match");
    // The sweep genuinely injected: this is not a vacuous comparison.
    assert!(serial.iter().any(|p| p.faults.total() > 0));
}

#[test]
fn fault_laden_pooled_node_matches_fresh_construction() {
    // Warm the pool on a different grid point first, so what's under test
    // is `Node::reset` replaying fault-lane arming on a dirty node.
    let mut pool = NodePool::new();
    let _ = fault_sweep::measure_point_pooled(&mut pool, 1.0, 1_000_000, 30, 40, 3);

    for &(intensity, period_ns, slice_pct) in &[
        (0.0, 1_000_000u64, 30u64),
        (0.5, 100_000, 60),
        (1.0, 30_000, 60),
    ] {
        let fresh = fault_sweep::measure_point(intensity, period_ns, slice_pct, 80, 77);
        let pooled =
            fault_sweep::measure_point_pooled(&mut pool, intensity, period_ns, slice_pct, 80, 77);
        assert_eq!(
            fresh, pooled,
            "reset node diverged from fresh node at \
             ({intensity}, {period_ns}, {slice_pct})"
        );
    }
}

/// The seed event count of the full paper-scale reproduction (the
/// `events` total in `BENCH_repro.json`): the sum over its instrumented
/// sections, reconstructed here with the same scales and seeds
/// `repro_all` uses. Every node in these sections carries the default —
/// disabled — `FaultPlan`, so the count proves disabled lanes perturb
/// nothing: no RNG draw, no scheduled event, no drift.
const SEED_EVENT_COUNT: u64 = 45_472_710;

#[test]
fn disabled_fault_plan_reproduces_the_seed_event_count() {
    let hc = HarnessConfig::with_threads(4);
    let mut events = 0u64;
    events += missrate::sweep_with_stats(&hc, Platform::Phi, Scale::Paper, 5)
        .1
        .events;
    events += missrate::sweep_with_stats(&hc, Platform::R415, Scale::Paper, 5)
        .1
        .events;
    events += groupsync::fig12_with_stats(&hc, Scale::Paper, 21).1.events;
    events += throttle::run_with_stats(&hc, Granularity::Coarse, Scale::Paper, 3)
        .1
        .events;
    events += throttle::run_with_stats(&hc, Granularity::Fine, Scale::Paper, 3)
        .1
        .events;
    events += ablations::eager_vs_lazy_with_stats(&hc, 31).1.events;
    events += ablations::util_limit_knob_with_stats(&hc, 31).1.events;
    assert_eq!(
        events, SEED_EVENT_COUNT,
        "disabled fault lanes changed the paper-scale event count"
    );
}
