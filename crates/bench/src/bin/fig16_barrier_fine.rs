//! Figure 16: benefit of barrier removal, finest granularity.

use nautix_bench::barrier_removal;
use nautix_bench::throttle::Granularity;
use nautix_bench::{banner, f, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 16: barrier removal, finest granularity");
    let r = barrier_removal::run(Granularity::Fine, scale, 7);
    println!("period_ns,slice_ns,with_barrier_ns,without_barrier_ns,speedup,violations");
    for p in &r.points {
        println!(
            "{},{},{},{},{},{}",
            p.period_ns,
            p.slice_ns,
            p.with_barrier_ns,
            p.without_barrier_ns,
            f(p.speedup()),
            p.violations
        );
    }
    println!(
        "aperiodic (non-RT, with barriers) reference: {} ns",
        r.aperiodic_ns
    );
    let best = r.points.iter().map(|p| p.speedup()).fold(0.0f64, f64::max);
    let beats_aperiodic = r
        .points
        .iter()
        .filter(|p| p.without_barrier_ns < r.aperiodic_ns)
        .count();
    println!(
        "best speedup {}x; {} of {} barrier-free points beat the 100%-utilization aperiodic run",
        f(best),
        beats_aperiodic,
        r.points.len()
    );
    write_csv(
        &out_dir().join("fig16_barrier_fine.csv"),
        &[
            "period_ns",
            "slice_ns",
            "with_barrier_ns",
            "without_barrier_ns",
            "speedup",
            "violations",
        ],
        r.points.iter().map(|p| {
            vec![
                p.period_ns.to_string(),
                p.slice_ns.to_string(),
                p.with_barrier_ns.to_string(),
                p.without_barrier_ns.to_string(),
                f(p.speedup()),
                p.violations.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig16_barrier_fine.csv"));
}
