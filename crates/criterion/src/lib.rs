//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository has no network access, so the
//! real criterion cannot be vendored. This crate keeps the workspace's
//! `cargo bench` targets compiling and running: each `bench_function`
//! closure is warmed up, timed over `sample_size` samples, and the mean,
//! minimum, and maximum time per iteration are printed. There is no
//! statistical analysis, HTML report, or regression detection — the
//! numbers are order-of-magnitude honest and that is all.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// stand-in measures each batch individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{name:<44} {:>12.1} ns/iter (min {:.1}, max {:.1}, {} samples)",
            mean.as_nanos() as f64,
            min.as_nanos() as f64,
            max.as_nanos() as f64,
            n
        );
        self
    }
}

/// Times the closures a benchmark hands it.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup.
        std::hint::black_box(routine());
        for _ in 0..self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Group benchmark functions, optionally with a configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warmup + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(3);
        let mut setups = 0u32;
        let mut routines = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| {
                    routines += 1;
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
        assert_eq!(routines, 4);
    }
}
