//! Thread programs: how simulated threads express work to the kernel.
//!
//! A [`Program`] is a resumable state machine. Whenever its thread is
//! dispatched (or a previous action finishes), the node calls
//! [`Program::resume`] and obtains the next [`Action`]: compute for some
//! cycles, invoke a kernel service ([`SysCall`]), or exit. This mirrors how
//! a real thread alternates between user computation and kernel entries;
//! the discrete-event machinery charges each part its modeled cost.
//!
//! Results of service calls (clock readings, admission outcomes, group
//! handles, reduction values) are delivered through [`ResumeCx::result`] on
//! the next resume — the analogue of a return value materializing in `rax`
//! when the call instruction retires.

use crate::constraints::{AdmissionError, Constraints};
use crate::ids::GroupId;
use nautix_des::{Cycles, Nanos};
use nautix_hw::CpuId;

/// Identifier of a thread in the node's thread table.
pub type ThreadId = usize;

/// What a resumed program does next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Execute on the CPU for this many cycles (preemptible).
    Compute(Cycles),
    /// Enter the kernel for a service call.
    Call(SysCall),
    /// Terminate the thread.
    Exit,
}

/// Kernel services available to programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysCall {
    /// Give up the CPU voluntarily; stay runnable.
    Yield,
    /// Declare this period's work done: the current real-time job
    /// completes early and the thread waits for its next arrival. (For a
    /// non-real-time thread this degenerates to a yield.) This is how a
    /// cyclic executive parks between frames.
    WaitNextPeriod,
    /// Block until at least `ns` from now.
    SleepNs(Nanos),
    /// Read this CPU's estimate of the shared wall clock; result is
    /// [`SysResult::Clock`].
    ReadClock,
    /// `nk_sched_thread_change_constraints`: individual admission control
    /// (§3.2). Result is [`SysResult::Admission`].
    ChangeConstraints(Constraints),
    /// `nk_group_sched_change_constraints`: group admission control,
    /// Algorithm 1 (§4.3). Result is [`SysResult::Admission`].
    GroupChangeConstraints {
        /// The group whose members all make this call.
        group: GroupId,
        /// The common constraints requested for every member.
        constraints: Constraints,
    },
    /// Batched group admission: members rendezvous at one barrier and the
    /// completer admits (or rejects) the entire team in a single ledger
    /// transaction with all-or-nothing rollback, replacing Algorithm 1's
    /// election + per-member local admission + error reduction. Result is
    /// [`SysResult::Admission`] for every member.
    GroupAdmitTeam {
        /// The group whose members all make this call.
        group: GroupId,
        /// The common constraints requested for every member.
        constraints: Constraints,
    },
    /// Create a named thread group; result is [`SysResult::Group`].
    GroupCreate {
        /// Human-readable group name (groups are named, §4.2).
        name: &'static str,
    },
    /// Join a group.
    GroupJoin(GroupId),
    /// Leave a group.
    GroupLeave(GroupId),
    /// Read the group's current member count; result is
    /// [`SysResult::Value`]. Used to settle membership before group
    /// admission control.
    GroupSize(GroupId),
    /// Block on the group barrier until all members arrive.
    GroupBarrier(GroupId),
    /// Group leader election; result is [`SysResult::Value`] carrying the
    /// elected leader's thread id.
    GroupElect(GroupId),
    /// Max-reduction of `value` over all members; result is
    /// [`SysResult::Value`]. (The paper reduces over admission error
    /// codes.)
    GroupReduceMax {
        /// Group to reduce across.
        group: GroupId,
        /// This member's contribution.
        value: u64,
    },
    /// Broadcast from the leader: members receive the leader's `value` as
    /// [`SysResult::Value`].
    GroupBroadcast {
        /// Group to broadcast within.
        group: GroupId,
        /// This member's value; only the leader's is delivered.
        value: u64,
    },
    /// Block until device interrupt `irq` next fires on this node. The
    /// second §3.5 steering mechanism: instead of running a handler at
    /// interrupt level, the interrupt is "steered toward a specific
    /// interrupt thread" which processes it in thread context — where the
    /// scheduler (and admission control) govern its CPU use.
    WaitIrq(u8),
    /// Enqueue a lightweight task (§3.1). `size` tags known-duration tasks
    /// that the scheduler may run inline; unsized tasks go to the
    /// task-exec thread.
    TaskSpawn {
        /// Declared size in cycles, if known.
        size: Option<Cycles>,
        /// Actual work the task performs, in cycles.
        work: Cycles,
    },
    /// Drive a GPIO pin (external verification, §5.2).
    GpioSet {
        /// Pin number 0..8.
        pin: u8,
        /// Level to drive.
        high: bool,
    },
}

/// Result of the previous service call, delivered on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysResult {
    /// No call was made, or the call returns nothing.
    None,
    /// Wall-clock reading in nanoseconds.
    Clock(Nanos),
    /// Outcome of individual or group admission control.
    Admission(Result<(), AdmissionError>),
    /// A created group's handle, or why creation failed.
    Group(Result<GroupId, GroupError>),
    /// A scalar result (election winner, reduction, broadcast).
    Value(u64),
}

/// Errors from group-management calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// No such group.
    NotFound,
    /// The calling thread is not a member.
    NotMember,
    /// The group's member table is full.
    Full,
    /// The operation conflicts with a concurrent group operation.
    Busy,
}

/// Context passed to [`Program::resume`].
#[derive(Debug)]
pub struct ResumeCx {
    /// The resumed thread.
    pub tid: ThreadId,
    /// The CPU the thread is running on.
    pub cpu: CpuId,
    /// This CPU's estimate of the shared wall clock, in nanoseconds. Free
    /// to read here (the node snapshots it); use [`SysCall::ReadClock`]
    /// when the program should pay for an explicit clock read.
    pub now_ns: Nanos,
    /// Result of the last service call.
    pub result: SysResult,
}

/// A resumable thread body.
pub trait Program {
    /// Produce the next action. Called when the thread is first
    /// dispatched, and again whenever the previous action completes.
    fn resume(&mut self, cx: &mut ResumeCx) -> Action;

    /// Debug label for traces.
    fn name(&self) -> &str {
        "program"
    }
}

/// A program assembled from a fixed script of actions, then exit.
/// Convenient for tests and microbenchmarks.
pub struct Script {
    actions: std::collections::VecDeque<Action>,
}

impl Script {
    /// A program that performs `actions` in order, then exits.
    pub fn new(actions: Vec<Action>) -> Self {
        Script {
            actions: actions.into(),
        }
    }
}

impl Program for Script {
    fn resume(&mut self, _cx: &mut ResumeCx) -> Action {
        self.actions.pop_front().unwrap_or(Action::Exit)
    }

    fn name(&self) -> &str {
        "script"
    }
}

/// A program driven by a closure; the closure sees the resume context and
/// a monotonically increasing call counter.
pub struct FnProgram<F: FnMut(&mut ResumeCx, u64) -> Action> {
    f: F,
    calls: u64,
}

impl<F: FnMut(&mut ResumeCx, u64) -> Action> FnProgram<F> {
    /// Wrap a closure as a program.
    pub fn new(f: F) -> Self {
        FnProgram { f, calls: 0 }
    }
}

impl<F: FnMut(&mut ResumeCx, u64) -> Action> Program for FnProgram<F> {
    fn resume(&mut self, cx: &mut ResumeCx) -> Action {
        let n = self.calls;
        self.calls += 1;
        (self.f)(cx, n)
    }

    fn name(&self) -> &str {
        "fn"
    }
}

/// The idle loop: computes in short bursts forever. The node substitutes
/// richer behavior (work stealing) around it.
pub struct IdleLoop {
    burst: Cycles,
}

impl IdleLoop {
    /// An idle loop with the given spin burst length.
    pub fn new(burst: Cycles) -> Self {
        IdleLoop { burst }
    }
}

impl Program for IdleLoop {
    fn resume(&mut self, _cx: &mut ResumeCx) -> Action {
        Action::Compute(self.burst)
    }

    fn name(&self) -> &str {
        "idle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx() -> ResumeCx {
        ResumeCx {
            tid: 0,
            cpu: 0,
            now_ns: 0,
            result: SysResult::None,
        }
    }

    #[test]
    fn script_plays_in_order_then_exits() {
        let mut p = Script::new(vec![
            Action::Compute(10),
            Action::Call(SysCall::Yield),
            Action::Compute(20),
        ]);
        let mut c = cx();
        assert_eq!(p.resume(&mut c), Action::Compute(10));
        assert_eq!(p.resume(&mut c), Action::Call(SysCall::Yield));
        assert_eq!(p.resume(&mut c), Action::Compute(20));
        assert_eq!(p.resume(&mut c), Action::Exit);
        assert_eq!(p.resume(&mut c), Action::Exit);
    }

    #[test]
    fn fn_program_sees_call_counter() {
        let mut p = FnProgram::new(|_cx, n| {
            if n < 3 {
                Action::Compute(n + 1)
            } else {
                Action::Exit
            }
        });
        let mut c = cx();
        assert_eq!(p.resume(&mut c), Action::Compute(1));
        assert_eq!(p.resume(&mut c), Action::Compute(2));
        assert_eq!(p.resume(&mut c), Action::Compute(3));
        assert_eq!(p.resume(&mut c), Action::Exit);
    }

    #[test]
    fn idle_never_exits() {
        let mut p = IdleLoop::new(1000);
        let mut c = cx();
        for _ in 0..10 {
            assert_eq!(p.resume(&mut c), Action::Compute(1000));
        }
        assert_eq!(p.name(), "idle");
    }
}
