//! The package → LLC → core topology tree.
//!
//! The paper's testbeds are modeled flat: every kick IPI and every steal
//! costs the same no matter which two CPUs are involved. Real manycore
//! parts are not flat — an IPI that crosses a package boundary traverses
//! the interconnect, and migrating a thread across LLC domains drags its
//! working set through memory. This module makes that structure a
//! first-class dimension of [`MachineConfig`](crate::MachineConfig):
//!
//! * [`Topology`] is the configured *shape* — how many packages, how many
//!   last-level-cache (LLC) domains per package. The default,
//!   [`Topology::flat`], is a single package with a single LLC and is
//!   defined to be **byte-identical** to the pre-topology model: every
//!   pair of CPUs is at [`Distance::SameLlc`], so every distance-aware
//!   cost resolves to the same `Cost` (and the same RNG draws) as before.
//! * [`TopoMap`] is the shape resolved against a concrete CPU count:
//!   CPUs are assigned to domains in contiguous index blocks (CPU ids
//!   within one LLC are adjacent, LLCs within one package are adjacent),
//!   exactly how firmware enumerates hardware threads on the modeled
//!   parts.
//! * [`Distance`] classifies a (source, destination) CPU pair into the
//!   three hop classes the cost model distinguishes.
//!
//! The `NAUTIX_TOPOLOGY` environment knob (`flat` or `<packages>x<llcs>`,
//! e.g. `2x4`) selects the shape for harness-built machines; unknown
//! values are a hard error, never a silent default.

use crate::machine::CpuId;

/// Hop-distance class between two CPUs, coarsest first. The cost model
/// keys distance-dependent costs (kick-IPI latency, steal probes and
/// migration) on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Distance {
    /// Same last-level-cache domain: the line is already shared.
    SameLlc,
    /// Same package, different LLC: on-die interconnect hop.
    SamePackage,
    /// Different packages: cross-socket (or cross-die) traffic.
    CrossPackage,
}

impl Distance {
    /// Dense index for per-distance counters (`SameLlc` = 0).
    pub fn index(self) -> usize {
        match self {
            Distance::SameLlc => 0,
            Distance::SamePackage => 1,
            Distance::CrossPackage => 2,
        }
    }

    /// Label for CSV columns and banners.
    pub fn label(self) -> &'static str {
        match self {
            Distance::SameLlc => "same_llc",
            Distance::SamePackage => "same_package",
            Distance::CrossPackage => "cross_package",
        }
    }
}

/// The configured topology shape: packages × LLC domains per package.
/// CPU counts are *not* part of the shape — the same `2x4` shape resolves
/// against 256, 512, or 1024 CPUs via [`TopoMap::new`], which is what lets
/// one `MachineConfig` knob follow `with_cpus` overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    packages: u32,
    llcs_per_package: u32,
}

impl Topology {
    /// A single package with a single machine-wide LLC — the pre-topology
    /// model, and the default. Every distance is [`Distance::SameLlc`].
    pub const fn flat() -> Self {
        Topology {
            packages: 1,
            llcs_per_package: 1,
        }
    }

    /// A `packages × llcs_per_package` tree.
    pub fn tree(packages: u32, llcs_per_package: u32) -> Self {
        assert!(packages >= 1, "topology needs at least one package");
        assert!(llcs_per_package >= 1, "topology needs at least one LLC");
        Topology {
            packages,
            llcs_per_package,
        }
    }

    /// Parse a topology spec: `flat` (or `1x1`) and `<packages>x<llcs>`.
    pub fn parse(s: &str) -> Result<Topology, String> {
        let t = s.trim().to_ascii_lowercase();
        if t == "flat" {
            return Ok(Topology::flat());
        }
        let parse_part = |p: &str, what: &str| -> Result<u32, String> {
            p.parse::<u32>()
                .ok()
                .filter(|&v| v >= 1)
                .ok_or_else(|| format!("bad {what} `{p}` in topology `{s}`"))
        };
        match t.split_once('x') {
            Some((p, l)) => Ok(Topology {
                packages: parse_part(p, "package count")?,
                llcs_per_package: parse_part(l, "LLC count")?,
            }),
            None => Err(format!(
                "topology must be `flat` or `<packages>x<llcs>` (e.g. `2x4`), got `{s}`"
            )),
        }
    }

    /// Read `NAUTIX_TOPOLOGY`; defaults to flat when unset. Malformed
    /// values are a hard error — a typo must never silently run flat.
    pub fn from_env() -> Self {
        match std::env::var("NAUTIX_TOPOLOGY") {
            Ok(v) => Self::parse(&v).unwrap_or_else(|e| panic!("NAUTIX_TOPOLOGY: {e}")),
            Err(_) => Topology::flat(),
        }
    }

    /// Package count.
    pub fn packages(&self) -> u32 {
        self.packages
    }

    /// LLC domains per package.
    pub fn llcs_per_package(&self) -> u32 {
        self.llcs_per_package
    }

    /// Total LLC domains.
    pub fn domains(&self) -> u32 {
        self.packages * self.llcs_per_package
    }

    /// Whether this is the flat (single-domain) shape.
    pub fn is_flat(&self) -> bool {
        self.domains() == 1
    }

    /// Label for banners and CSV columns: `flat` or `<p>x<l>`.
    pub fn label(&self) -> String {
        if self.is_flat() {
            "flat".to_string()
        } else {
            format!("{}x{}", self.packages, self.llcs_per_package)
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::flat()
    }
}

/// A [`Topology`] resolved against a concrete CPU count: contiguous-block
/// CPU → LLC → package assignment plus distance math. `Copy` on purpose —
/// three words, read on every kick and steal probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoMap {
    shape: Topology,
    n_cpus: usize,
    cpus_per_llc: usize,
    cpus_per_package: usize,
}

impl TopoMap {
    /// Resolve `shape` over `n_cpus` hardware threads. CPU counts that do
    /// not divide evenly leave the trailing domains short (never empty in
    /// the middle): `llc_of(cpu) = cpu / ceil(n / domains)`.
    pub fn new(shape: Topology, n_cpus: usize) -> Self {
        assert!(n_cpus >= 1);
        let domains = shape.domains() as usize;
        let cpus_per_llc = n_cpus.div_ceil(domains);
        TopoMap {
            shape,
            n_cpus,
            cpus_per_llc,
            cpus_per_package: cpus_per_llc * shape.llcs_per_package as usize,
        }
    }

    /// The configured shape.
    pub fn shape(&self) -> Topology {
        self.shape
    }

    /// CPUs in the machine.
    pub fn n_cpus(&self) -> usize {
        self.n_cpus
    }

    /// LLC domain of `cpu`.
    pub fn llc_of(&self, cpu: CpuId) -> usize {
        cpu / self.cpus_per_llc
    }

    /// Package of `cpu`.
    pub fn package_of(&self, cpu: CpuId) -> usize {
        cpu / self.cpus_per_package
    }

    /// Hop-distance class between two CPUs.
    pub fn distance(&self, a: CpuId, b: CpuId) -> Distance {
        if self.llc_of(a) == self.llc_of(b) {
            Distance::SameLlc
        } else if self.package_of(a) == self.package_of(b) {
            Distance::SamePackage
        } else {
            Distance::CrossPackage
        }
    }

    /// Half-open CPU range of `cpu`'s LLC domain, clamped to the machine.
    pub fn llc_range(&self, cpu: CpuId) -> (usize, usize) {
        let lo = self.llc_of(cpu) * self.cpus_per_llc;
        (lo, (lo + self.cpus_per_llc).min(self.n_cpus))
    }

    /// Half-open CPU range of `cpu`'s package, clamped to the machine.
    pub fn package_range(&self, cpu: CpuId) -> (usize, usize) {
        let lo = self.package_of(cpu) * self.cpus_per_package;
        (lo, (lo + self.cpus_per_package).min(self.n_cpus))
    }

    /// The widening victim-probe domains for a thief on `cpu`: its LLC,
    /// then its package (if wider), then the whole machine (if wider).
    /// Flat topology yields exactly one stage — the whole machine — which
    /// is what keeps the LLC-first stealer byte-identical to the original
    /// machine-wide power-of-two-choices picker there.
    pub fn steal_stages(&self, cpu: CpuId) -> StealStages {
        let mut stages = [(0usize, 0usize); 3];
        let mut len = 0;
        for r in [
            self.llc_range(cpu),
            self.package_range(cpu),
            (0, self.n_cpus),
        ] {
            if len == 0 || stages[len - 1] != r {
                stages[len] = r;
                len += 1;
            }
        }
        StealStages {
            stages,
            len,
            next: 0,
        }
    }
}

/// Iterator over a thief's widening probe domains (at most three
/// `(lo, hi)` ranges, no allocation). See [`TopoMap::steal_stages`].
#[derive(Debug, Clone, Copy)]
pub struct StealStages {
    stages: [(usize, usize); 3],
    len: usize,
    next: usize,
}

impl Iterator for StealStages {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.next < self.len {
            let s = self.stages[self.next];
            self.next += 1;
            Some(s)
        } else {
            None
        }
    }
}

/// One power-of-two-choices victim draw restricted to the domain
/// `[lo, hi)`, which must contain the thief and at least one other CPU.
/// `draw(k)` must return a uniform sample in `[0, k]` (the machine's
/// deterministic RNG, or a test's [`DetRng`](nautix_des::DetRng)).
///
/// The thief's own index is shifted out of the image — every *other* CPU
/// in the domain has equal probability from a single draw, no rejection
/// sampling. With `lo = 0, hi = n` this is exactly the machine-wide
/// picker the flat model has always used, draw-for-draw.
pub fn shifted_victim(lo: usize, hi: usize, cpu: CpuId, draw: impl FnOnce(u64) -> u64) -> CpuId {
    debug_assert!(hi - lo >= 2, "domain [{lo}, {hi}) has no victim");
    debug_assert!((lo..hi).contains(&cpu), "thief {cpu} outside [{lo}, {hi})");
    let v = lo + draw((hi - lo - 2) as u64) as usize;
    if v >= cpu {
        v + 1
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_des::DetRng;

    #[test]
    fn flat_is_one_domain() {
        let t = Topology::flat();
        assert!(t.is_flat());
        assert_eq!(t.domains(), 1);
        assert_eq!(t.label(), "flat");
        let m = TopoMap::new(t, 256);
        assert_eq!(m.distance(0, 255), Distance::SameLlc);
        assert_eq!(m.llc_range(17), (0, 256));
        assert_eq!(m.package_range(17), (0, 256));
        assert_eq!(m.steal_stages(17).collect::<Vec<_>>(), vec![(0, 256)]);
    }

    #[test]
    fn tree_assigns_contiguous_blocks() {
        // 2 packages × 4 LLCs over 1024 CPUs: 128 CPUs per LLC, 512 per
        // package.
        let m = TopoMap::new(Topology::tree(2, 4), 1024);
        assert_eq!(m.llc_of(0), 0);
        assert_eq!(m.llc_of(127), 0);
        assert_eq!(m.llc_of(128), 1);
        assert_eq!(m.package_of(511), 0);
        assert_eq!(m.package_of(512), 1);
        assert_eq!(m.distance(0, 100), Distance::SameLlc);
        assert_eq!(m.distance(0, 200), Distance::SamePackage);
        assert_eq!(m.distance(0, 600), Distance::CrossPackage);
        assert_eq!(m.llc_range(130), (128, 256));
        assert_eq!(m.package_range(130), (0, 512));
        assert_eq!(
            m.steal_stages(130).collect::<Vec<_>>(),
            vec![(128, 256), (0, 512), (0, 1024)]
        );
    }

    #[test]
    fn distance_is_symmetric() {
        let m = TopoMap::new(Topology::tree(2, 2), 64);
        for a in 0..64 {
            for b in 0..64 {
                assert_eq!(m.distance(a, b), m.distance(b, a));
            }
        }
    }

    #[test]
    fn uneven_counts_clamp_trailing_domains() {
        // 6 CPUs over 2x2: ceil(6/4) = 2 per LLC, last LLC short.
        let m = TopoMap::new(Topology::tree(2, 2), 6);
        assert_eq!(m.llc_range(5), (4, 6));
        assert_eq!(m.package_range(5), (4, 6));
        // The machine stage still widens past the short package.
        assert_eq!(m.steal_stages(5).collect::<Vec<_>>(), vec![(4, 6), (0, 6)]);
    }

    #[test]
    fn parse_accepts_flat_and_grids_only() {
        assert_eq!(Topology::parse("flat").unwrap(), Topology::flat());
        assert_eq!(Topology::parse("1x1").unwrap(), Topology::tree(1, 1));
        assert!(Topology::parse("1x1").unwrap().is_flat());
        assert_eq!(Topology::parse(" 2x4 ").unwrap(), Topology::tree(2, 4));
        assert_eq!(Topology::parse("2x4").unwrap().label(), "2x4");
        assert!(Topology::parse("").is_err());
        assert!(Topology::parse("2x0").is_err());
        assert!(Topology::parse("0x4").is_err());
        assert!(Topology::parse("2x").is_err());
        assert!(Topology::parse("fast").is_err());
        assert!(Topology::parse("2x4x8").is_err());
    }

    #[test]
    fn shifted_victim_never_picks_self_and_is_uniform_in_domain() {
        let mut rng = DetRng::seed_from(9);
        let mut seen = [0u32; 8];
        for _ in 0..4000 {
            let v = shifted_victim(4, 12, 7, |k| rng.uniform(0, k));
            assert!((4..12).contains(&v));
            assert_ne!(v, 7);
            seen[v - 4] += 1;
        }
        assert_eq!(seen[3], 0); // the thief
        for (i, &c) in seen.iter().enumerate() {
            if i != 3 {
                assert!(c > 350, "cpu {} drawn only {} times", i + 4, c);
            }
        }
    }

    #[test]
    fn shifted_victim_matches_the_flat_picker_exactly() {
        // The original flat picker: v = uniform(0, n-2); v >= cpu → v+1.
        for seed in 0..32 {
            for cpu in 0..6 {
                let n = 6;
                let mut a = DetRng::seed_from(seed);
                let mut b = DetRng::seed_from(seed);
                let old = {
                    let v = a.uniform(0, (n - 2) as u64) as usize;
                    if v >= cpu {
                        v + 1
                    } else {
                        v
                    }
                };
                let new = shifted_victim(0, n, cpu, |k| b.uniform(0, k));
                assert_eq!(old, new);
            }
        }
    }
}
