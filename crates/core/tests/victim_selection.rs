//! Victim-selection coverage for the topology-aware work stealer.
//!
//! Three layers of assurance:
//!
//! * the *pure* staged picker (`steal_stages` + `shifted_victim`) is
//!   pinned against a seeded `DetRng`: the exact LLC-first probe order is
//!   golden-valued, and under a flat topology the staged picker is proven
//!   equal — draw for draw — to the original machine-wide
//!   power-of-two-choices picker;
//! * a property sweep over seeds, thief positions, and tree shapes checks
//!   the staged picker never probes outside its stage's domain and never
//!   probes the thief itself;
//! * whole-node runs confirm the `LlcFirst` policy keeps steals inside
//!   the thief's LLC when local backlog exists, that the per-distance
//!   steal counters are conserved, and that a flat-topology node behaves
//!   identically under `LlcFirst` and `Uniform` (they are the same
//!   algorithm there).

use nautix_des::DetRng;
use nautix_hw::{shifted_victim, MachineConfig, TopoMap, Topology};
use nautix_kernel::{Action, Script};
use nautix_rt::{Node, NodeConfig, StealPolicy};

/// The original flat victim picker, verbatim from the pre-topology
/// scheduler: one uniform draw over `0..n-2`, own index shifted out.
fn legacy_pick(rng: &mut DetRng, cpu: usize, n: usize) -> usize {
    let v = rng.uniform(0, (n - 2) as u64) as usize;
    if v >= cpu {
        v + 1
    } else {
        v
    }
}

/// One staged probe pass: for each widening stage with at least one
/// victim, draw the two power-of-two-choices probes the scheduler would
/// draw. Returns `(lo, hi, v1, v2)` per stage.
fn staged_probes(
    topo: &TopoMap,
    cpu: usize,
    rng: &mut DetRng,
) -> Vec<(usize, usize, usize, usize)> {
    let mut out = Vec::new();
    for (lo, hi) in topo.steal_stages(cpu) {
        if hi - lo < 2 {
            continue;
        }
        let v1 = shifted_victim(lo, hi, cpu, |k| rng.uniform(0, k));
        let v2 = shifted_victim(lo, hi, cpu, |k| rng.uniform(0, k));
        out.push((lo, hi, v1, v2));
    }
    out
}

#[test]
fn flat_staged_picker_equals_legacy_picker_exactly() {
    // Under flat topology `steal_stages` is one machine-wide stage and
    // `shifted_victim` must replay the legacy picker draw for draw.
    for n in [2usize, 3, 5, 8, 64, 256] {
        let topo = TopoMap::new(Topology::flat(), n);
        for cpu in 0..n.min(8) {
            let stages: Vec<_> = topo.steal_stages(cpu).collect();
            assert_eq!(stages, vec![(0, n)], "flat must be one machine stage");
            for seed in 0..64u64 {
                let mut a = DetRng::seed_from(seed);
                let mut b = DetRng::seed_from(seed);
                for _ in 0..16 {
                    let legacy = legacy_pick(&mut a, cpu, n);
                    let staged = shifted_victim(0, n, cpu, |k| b.uniform(0, k));
                    assert_eq!(legacy, staged, "seed {seed} cpu {cpu} n {n}");
                }
            }
        }
    }
}

#[test]
fn llc_first_probe_order_is_pinned() {
    // 2 packages x 2 LLCs over 8 CPUs: LLCs are [0,2), [2,4), [4,6),
    // [6,8); packages [0,4) and [4,8). Thief on CPU 1 probes its LLC
    // (only CPU 0 available), then the package, then the machine. The
    // exact victims from DetRng seed 42 are golden-valued: any change to
    // draw order, stage order, or the shift rule breaks this test.
    let topo = TopoMap::new(Topology::tree(2, 2), 8);
    let mut rng = DetRng::seed_from(42);
    let probes = staged_probes(&topo, 1, &mut rng);
    assert_eq!(probes.len(), 3);
    // Stage domains widen LLC -> package -> machine.
    assert_eq!(probes[0].0..probes[0].1, 0..2);
    assert_eq!(probes[1].0..probes[1].1, 0..4);
    assert_eq!(probes[2].0..probes[2].1, 0..8);
    // Golden probe picks (verified properties: in-domain, never CPU 1).
    assert_eq!(
        probes,
        golden_probes(),
        "LLC-first probe order diverged from the pinned DetRng(42) sequence"
    );
    for &(lo, hi, v1, v2) in &probes {
        for v in [v1, v2] {
            assert!((lo..hi).contains(&v));
            assert_ne!(v, 1);
        }
    }
}

/// The pinned DetRng(42) probe sequence for `llc_first_probe_order_is_pinned`.
fn golden_probes() -> Vec<(usize, usize, usize, usize)> {
    vec![(0, 2, 0, 0), (0, 4, 3, 3), (0, 8, 6, 5)]
}

#[test]
fn staged_probes_stay_in_domain_across_seeds_and_shapes() {
    let shapes = [
        Topology::flat(),
        Topology::tree(1, 2),
        Topology::tree(2, 2),
        Topology::tree(2, 4),
        Topology::tree(4, 2),
    ];
    for shape in shapes {
        for n in [4usize, 6, 16, 64, 100] {
            let topo = TopoMap::new(shape, n);
            for seed in 0..32u64 {
                let mut rng = DetRng::seed_from(seed ^ 0xD15E);
                for cpu in [0, 1, n / 2, n - 1] {
                    for (lo, hi, v1, v2) in staged_probes(&topo, cpu, &mut rng) {
                        assert!(lo <= cpu && cpu < hi, "thief outside its own stage");
                        for v in [v1, v2] {
                            assert!(
                                (lo..hi).contains(&v),
                                "probe {v} outside stage [{lo},{hi}) \
                                 (shape {:?}, n {n}, cpu {cpu}, seed {seed})",
                                shape
                            );
                            assert_ne!(v, cpu, "thief probed itself");
                        }
                    }
                    // The final stage is always the whole machine.
                    let last = topo.steal_stages(cpu).last().unwrap();
                    assert_eq!(last, (0, n));
                }
            }
        }
    }
}

/// A node with backlog piled on one CPU, run to quiescence; returns the
/// total events processed and the per-distance steal counters summed over
/// all CPUs.
fn run_steal_storm(machine: MachineConfig, policy: StealPolicy) -> (u64, u64, [u64; 3]) {
    let mut cfg = NodeConfig::for_machine(machine);
    cfg.sched.steal = policy;
    let mut node = Node::new(cfg);
    for i in 0..12 {
        node.spawn_unbound(
            1,
            &format!("w{i}"),
            Box::new(Script::new(vec![Action::Compute(50_000_000)])),
        )
        .unwrap();
    }
    node.run_until_quiescent();
    let n = node.machine.n_cpus();
    let mut steals = 0;
    let mut by_dist = [0u64; 3];
    for c in 0..n {
        let st = &node.scheduler(c).stats;
        steals += st.steals;
        for (i, d) in st.steals_by_distance.iter().enumerate() {
            by_dist[i] += d;
        }
    }
    (node.machine.events_processed(), steals, by_dist)
}

#[test]
fn llc_first_steals_locally_when_local_backlog_exists() {
    // Tree topology, backlog on CPU 1: with LlcFirst the thieves in CPU
    // 1's LLC grab the work through same-LLC steals; distance counters
    // must conserve the total.
    let machine = MachineConfig::phi()
        .with_cpus(8)
        .with_seed(3)
        .with_topology(Topology::tree(2, 2));
    let (_, steals, by_dist) = run_steal_storm(machine, StealPolicy::LlcFirst);
    assert!(steals > 0, "no steals happened at all");
    assert_eq!(
        by_dist.iter().sum::<u64>(),
        steals,
        "distance counters must sum to total steals"
    );
    assert!(
        by_dist[0] > 0,
        "LlcFirst produced no same-LLC steals despite same-LLC backlog"
    );
}

#[test]
fn uniform_policy_also_conserves_distance_counters() {
    let machine = MachineConfig::phi()
        .with_cpus(8)
        .with_seed(3)
        .with_topology(Topology::tree(2, 2));
    let (_, steals, by_dist) = run_steal_storm(machine, StealPolicy::Uniform);
    assert!(steals > 0);
    assert_eq!(by_dist.iter().sum::<u64>(), steals);
}

#[test]
fn flat_node_is_identical_under_both_policies() {
    // On a flat machine LlcFirst and Uniform are the same algorithm, so
    // two runs must be byte-identical: same event count, same steal
    // totals, and every steal classified same-LLC.
    let machine = || MachineConfig::phi().with_cpus(8).with_seed(3);
    let (ev_a, steals_a, dist_a) = run_steal_storm(machine(), StealPolicy::LlcFirst);
    let (ev_b, steals_b, dist_b) = run_steal_storm(machine(), StealPolicy::Uniform);
    assert_eq!(ev_a, ev_b, "flat LlcFirst diverged from Uniform");
    assert_eq!(steals_a, steals_b);
    assert_eq!(dist_a, dist_b);
    assert!(steals_a > 0);
    assert_eq!(dist_a[1] + dist_a[2], 0, "flat machine saw a non-local hop");
}
