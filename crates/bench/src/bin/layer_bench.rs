//! Layered bandwidth-control sweep: RT probe + background hog at every
//! (RT utilization, background guarantee) grid cell, layered vs
//! unlayered (see `nautix_bench::layers`). Writes `results/layers.csv`
//! and `BENCH_layers.json`; pass `--paper` for the long-horizon sweep.

use nautix_bench::{banner, f, layers, out_dir, write_csv, BenchReport, Scale};
use nautix_rt::HarnessConfig;

fn main() {
    let scale = Scale::from_args();
    banner("Layered scheduling: per-layer bandwidth control vs plain EDF");
    let hc = HarnessConfig::from_env();
    let (points, stats) = layers::sweep(&hc, scale, 23);

    println!(
        "rt_pct,bg_guarantee_ppm,bg_share_layered,bg_share_unlayered,\
         rt_miss_layered,rt_miss_unlayered,throttles,replenishes"
    );
    for p in &points {
        println!(
            "{},{},{},{},{},{},{},{}",
            p.rt_pct,
            p.bg_guarantee_ppm,
            f(p.bg_share_layered),
            f(p.bg_share_unlayered),
            f(p.rt_miss_layered),
            f(p.rt_miss_unlayered),
            p.throttles,
            p.replenishes
        );
    }
    write_csv(
        &out_dir().join("layers.csv"),
        &[
            "rt_pct",
            "bg_guarantee_ppm",
            "bg_share_layered",
            "bg_share_unlayered",
            "rt_miss_layered",
            "rt_miss_unlayered",
            "throttles",
            "replenishes",
        ],
        points.iter().map(|p| {
            vec![
                p.rt_pct.to_string(),
                p.bg_guarantee_ppm.to_string(),
                f(p.bg_share_layered),
                f(p.bg_share_unlayered),
                f(p.rt_miss_layered),
                f(p.rt_miss_unlayered),
                p.throttles.to_string(),
                p.replenishes.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("layers.csv"));

    let mut report = BenchReport::new();
    println!(
        "layer_sweep: {} trials on {} threads, {:.2}s wall, {:.0} events/s",
        stats.trials,
        stats.threads,
        stats.wall_secs,
        stats.events_per_sec()
    );
    report.add("layer_sweep", stats);

    // The two headline claims, as advisory notes in the report.
    for p in &points {
        let cap = p.bg_guarantee_ppm as f64 / 1e6 + layers::SHARE_SLACK;
        let line = format!(
            "rt {}% bg {} ppm: hog share {} layered vs {} unlayered; probe miss {} vs {}; \
             {} throttles",
            p.rt_pct,
            p.bg_guarantee_ppm,
            f(p.bg_share_layered),
            f(p.bg_share_unlayered),
            f(p.rt_miss_layered),
            f(p.rt_miss_unlayered),
            p.throttles
        );
        println!("{line}");
        report.note(line);
        if p.bg_share_layered > cap {
            report.note(format!(
                "ADVISORY: background exceeded its guarantee at rt {}% bg {} ppm \
                 (share {}, cap {})",
                p.rt_pct,
                p.bg_guarantee_ppm,
                f(p.bg_share_layered),
                f(cap)
            ));
        }
        if p.rt_miss_layered != p.rt_miss_unlayered {
            report.note(format!(
                "ADVISORY: layering changed the RT miss rate at rt {}% bg {} ppm \
                 ({} vs {})",
                p.rt_pct,
                p.bg_guarantee_ppm,
                f(p.rt_miss_layered),
                f(p.rt_miss_unlayered)
            ));
        }
    }
    report.write(std::path::Path::new("BENCH_layers.json"));
    println!("wrote BENCH_layers.json");
}
