//! Oracle regression: a deliberately broken scheduler must be caught.
//!
//! The EDF oracle's value is only demonstrated by a scheduler that
//! actually violates EDF. `LocalScheduler::set_sabotage_fifo` (test hook,
//! `trace` feature only) replaces eager EDF selection with FIFO-by-tid —
//! the classic wrong answer — and the oracle, rebuilding the runnable-RT
//! set independently from queue-transition records, must flag the first
//! dispatch that skips an earlier deadline. The same workload with the
//! sabotage off must run clean, proving the detection isn't noise.

#![cfg(feature = "trace")]

use nautix::kernel::FnProgram;
use nautix::prelude::*;
use nautix::rt::oracle::OracleConfig;

/// Two periodic threads on CPU 1: `slow` (created first, so lower tid)
/// has a 1 ms period; `fast` a 200 µs period. Whenever both jobs are
/// runnable, EDF must pick `fast`; FIFO-by-tid picks `slow`.
fn run_competing_periodics(sabotage: bool) -> (Vec<(&'static str, String)>, u64) {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(77);
    let sched = cfg.sched;
    let machine = cfg.machine.clone();
    let mut node = Node::new(cfg);
    let suite = node.enable_oracles_with(
        OracleConfig::for_node(node.freq(), &sched, &CostModel::phi(), &machine).collecting(),
    );
    node.set_sabotage_fifo(1, sabotage);

    let spawn_periodic = |node: &mut Node, name: &'static str, period: Nanos, slice: Nanos| {
        let prog = FnProgram::new(move |_cx, n| {
            if n == 0 {
                Action::Call(SysCall::ChangeConstraints(
                    Constraints::periodic(period, slice).build(),
                ))
            } else {
                Action::Compute(1_000_000)
            }
        });
        node.spawn_on(1, name, Box::new(prog)).unwrap()
    };
    spawn_periodic(&mut node, "slow", 1_000_000, 100_000);
    spawn_periodic(&mut node, "fast", 200_000, 20_000);
    node.run_for_ns(10_000_000);

    let suite = suite.borrow();
    let violations = suite
        .violations()
        .iter()
        .map(|v| (v.oracle, v.message.clone()))
        .collect();
    (violations, suite.stats().edf_checks)
}

/// An RT probe plus an always-runnable aperiodic hog on CPU 1 under the
/// canonical three-layer table (background guaranteed 10%). With
/// `set_sabotage_layer` the bucket refill grants four windows' worth of
/// tokens, so the hog overdraws its layer while the honest consumption
/// tally keeps counting — the next replenish record then reports more
/// wall time than the cap admits and the layer oracle must flag it.
fn run_layered_hog(sabotage: bool) -> (Vec<(&'static str, String)>, u64) {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(91);
    cfg.sched.layers = nautix::rt::LayerTable::three_way(
        nautix::rt::LayerSpec {
            guarantee_ppm: 750_000,
            burst_ppm: 0,
        },
        nautix::rt::LayerSpec {
            guarantee_ppm: 100_000,
            burst_ppm: 0,
        },
        nautix::rt::LayerSpec {
            guarantee_ppm: 100_000,
            burst_ppm: 0,
        },
        10_000_000,
    )
    .unwrap();
    let sched = cfg.sched;
    let machine = cfg.machine.clone();
    let mut node = Node::new(cfg);
    let suite = node.enable_oracles_with(
        OracleConfig::for_node(node.freq(), &sched, &CostModel::phi(), &machine).collecting(),
    );
    node.set_sabotage_layer(1, sabotage);

    let probe = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 300_000).build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    node.spawn_on(1, "probe", Box::new(probe)).unwrap();
    let hog = FnProgram::new(move |_cx, _n| Action::Compute(100_000));
    node.spawn_on(1, "hog", Box::new(hog)).unwrap();
    node.run_for_ns(100_000_000);

    let suite = suite.borrow();
    let violations = suite
        .violations()
        .iter()
        .map(|v| (v.oracle, v.message.clone()))
        .collect();
    (violations, suite.stats().layer_checks)
}

#[test]
fn over_replenish_sabotage_is_caught_by_the_layer_oracle() {
    let (violations, checks) = run_layered_hog(true);
    assert!(checks > 0, "oracle saw no layer records — wiring broken");
    assert!(
        violations
            .iter()
            .any(|(oracle, m)| *oracle == "layer" && m.contains("consumed")),
        "over-generous bucket refill went undetected: {violations:?}"
    );
}

#[test]
fn the_same_layered_workload_unsabotaged_runs_clean() {
    let (violations, checks) = run_layered_hog(false);
    assert!(checks > 0, "oracle saw no layer records — wiring broken");
    assert!(
        violations.is_empty(),
        "clean layered run flagged spuriously: {violations:?}"
    );
}

#[test]
fn fifo_sabotage_is_caught_by_the_edf_oracle() {
    let (violations, checks) = run_competing_periodics(true);
    assert!(checks > 0, "oracle saw no dispatches — wiring broken");
    assert!(
        violations.iter().any(|(oracle, _)| *oracle == "edf"),
        "FIFO dispatch over an earlier deadline went undetected: {violations:?}"
    );
}

#[test]
fn the_same_workload_unsabotaged_runs_clean() {
    let (violations, checks) = run_competing_periodics(false);
    assert!(checks > 0, "oracle saw no dispatches — wiring broken");
    assert!(
        violations.is_empty(),
        "clean EDF run flagged spuriously: {violations:?}"
    );
}
