//! Differential test (§8): the statically compiled cyclic executive and
//! the online eager-EDF engine, fed the *same admitted periodic set*,
//! must both complete one full hyperperiod with identical — i.e. zero —
//! miss counts. The schedulers differ in every run-time mechanic (timer
//! programming, preemption, dispatch order), so agreement here is
//! evidence that both implement the same feasibility contract, not that
//! they share code.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, Program, SysCall, SysResult};
use nautix_rt::{
    compile_cyclic, CyclicExecutive, CyclicSchedule, CyclicTask, Node, NodeConfig, SchedConfig, PPM,
};
use proptest::prelude::*;

fn node() -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(77);
    cfg.sched = SchedConfig::throughput();
    Node::new(cfg)
}

/// Run the set as independent EDF threads on CPU 1 for `horizon_ns`.
/// Returns (met, missed) summed over the set.
fn run_edf(set: &[CyclicTask], horizon_ns: u64) -> (u64, u64) {
    let mut node = node();
    let mut tids = Vec::new();
    for t in set {
        let (period, wcet) = (t.period, t.wcet);
        let prog = FnProgram::new(move |_cx, n| {
            if n == 0 {
                Action::Call(SysCall::ChangeConstraints(
                    Constraints::periodic(period, wcet).build(),
                ))
            } else {
                Action::Compute(1_000_000)
            }
        });
        tids.push(node.spawn_on(1, "edf", Box::new(prog)).unwrap());
    }
    node.run_for_ns(horizon_ns);
    let met = tids.iter().map(|&t| node.thread_state(t).stats.met).sum();
    let missed = tids
        .iter()
        .map(|&t| node.thread_state(t).stats.missed)
        .sum();
    (met, missed)
}

/// Run the same set as a compiled cyclic executive hosted under a single
/// periodic constraint. Returns (met, missed) for the hosting thread.
fn run_cyclic(schedule: CyclicSchedule, major_cycles: usize) -> (u64, u64) {
    let mut node = node();
    let hosting = schedule.hosting_constraints(2_000);
    let mut exec = Some(CyclicExecutive::new(schedule, node.freq(), major_cycles));
    let mut inner: Option<CyclicExecutive> = None;
    let prog = FnProgram::new(move |cx, n| {
        if n == 0 {
            return Action::Call(SysCall::ChangeConstraints(hosting));
        }
        if n == 1 {
            assert_eq!(cx.result, SysResult::Admission(Ok(())));
            inner = exec.take();
        }
        inner.as_mut().unwrap().resume(cx)
    });
    let tid = node.spawn_on(1, "cyclic", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    let st = node.thread_state(tid);
    (st.stats.met, st.stats.missed)
}

fn arb_admitted_set() -> impl Strategy<Value = Vec<CyclicTask>> {
    // Harmonic-friendly periods keep hyperperiods within 2 ms; per-task
    // utilization <=19% keeps 3-task sets comfortably feasible under real
    // interrupt/dispatch overhead on both engines.
    let menu = prop::sample::select(vec![
        100_000u64, 200_000, 250_000, 400_000, 500_000, 1_000_000,
    ]);
    prop::collection::vec((menu, 3u64..20), 1..4).prop_map(|v| {
        v.into_iter()
            .map(|(period, pct)| CyclicTask {
                period,
                wcet: (period * pct / 100).max(1_000),
            })
            .collect()
    })
}

/// Deterministic anchor: the §8 ablation's reference set must agree
/// regardless of what the generator produces.
#[test]
fn reference_set_agrees_on_zero_misses() {
    let set = [
        CyclicTask {
            period: 100_000,
            wcet: 15_000,
        },
        CyclicTask {
            period: 200_000,
            wcet: 40_000,
        },
        CyclicTask {
            period: 400_000,
            wcet: 30_000,
        },
    ];
    let schedule = compile_cyclic(&set).unwrap();
    schedule.verify().unwrap();
    let hyper = schedule.hyperperiod;
    let (cyc_met, cyc_missed) = run_cyclic(schedule, 2);
    let (edf_met, edf_missed) = run_edf(&set, 2 * hyper + hyper / 2);
    assert!(edf_met > 0 && cyc_met > 0);
    assert_eq!((edf_missed, cyc_missed), (0, 0));
}

proptest! {
    /// One hyperperiod, both engines, same admitted set: zero misses on
    /// each side, and both demonstrably did work.
    #[test]
    fn cyclic_executive_and_edf_agree_on_zero_misses(set in arb_admitted_set()) {
        let util: u64 = set.iter().map(|t| t.wcet * PPM / t.period).sum();
        if let Ok(schedule) = compile_cyclic(&set) {
            schedule.verify().unwrap();
            let hosting = schedule.hosting_constraints(2_000);
            // Skip sets whose hosting constraint would not itself admit
            // (peak frame load too close to the frame for the margin).
            if hosting.utilization_ppm() <= SchedConfig::throughput().periodic_budget_ppm() {
                let hyper = schedule.hyperperiod;
                let (cyc_met, cyc_missed) = run_cyclic(schedule, 2);
                // EDF gets two hyperperiods plus settle time so every
                // thread sees at least as many releases.
                let (edf_met, edf_missed) = run_edf(&set, 2 * hyper + hyper / 2);
                prop_assert!(edf_met > 0, "EDF ran no jobs (util {} ppm)", util);
                prop_assert!(cyc_met > 0, "executive ran no frames (util {} ppm)", util);
                prop_assert_eq!(
                    (edf_missed, cyc_missed),
                    (0, 0),
                    "engines disagree or miss on an admitted set: edf={} cyclic={} (util {} ppm, hyperperiod {} ns)",
                    edf_missed, cyc_missed, util, hyper
                );
            }
        }
    }
}
