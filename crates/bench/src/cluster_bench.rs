//! Cluster-scale admission throughput experiment.
//!
//! Sweeps the synthetic multi-tenant stream over every placement
//! strategy at growing tenant counts and reports, per cell: admission
//! decisions per second (the service's headline throughput metric),
//! packing quality against the fluid oracle, and the hyperperiod-sim
//! memo hit rate under churn. All cells share one stream seed, so every
//! strategy faces the *identical* arrival/departure sequence and the
//! comparison is apples to apples.
//!
//! The binary (`cluster_bench`) prints the table and writes
//! `results/cluster.csv` plus `BENCH_cluster.json`; `--paper` scales the
//! sweep to a 16-shard fleet and one million tenant gangs per strategy.

use crate::harness::{run_trials, stream_delta, HarnessStats};
use crate::Scale;
use nautix_cluster::{ClusterConfig, Fleet, PlacementStrategy};
use nautix_rt::HarnessConfig;
use std::cell::RefCell;

/// One (strategy, tenant-count) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPoint {
    /// Strategy codec name (`first_fit`, `best_fit`, `po2`, `rt_gang`).
    pub strategy: &'static str,
    /// Fleet width in shards (nodes).
    pub shards: usize,
    /// CPUs per shard.
    pub cpus: usize,
    /// Tenant arrivals processed.
    pub tenants: u64,
    /// Placement decisions taken (one per arrival).
    pub decisions: u64,
    /// Tenants admitted.
    pub placed: u64,
    /// Tenants rejected.
    pub rejected: u64,
    /// Reservations released before the run ended.
    pub departures: u64,
    /// Shard admission transactions attempted.
    pub probes: u64,
    /// Summed admitted demand, parts-per-million of one CPU.
    pub placed_util_ppm: u64,
    /// The fluid oracle's admitted demand from the identical stream.
    pub oracle_util_ppm: u64,
    /// `placed_util_ppm / oracle_util_ppm` — 1.0 is a perfect packing.
    pub quality: f64,
    /// Hyperperiod-simulation memo hit rate over the run's churn.
    pub sim_hit_rate: f64,
    /// Wall-clock seconds for this cell (shard boot included).
    pub wall_secs: f64,
    /// `decisions / wall_secs`.
    pub decisions_per_sec: f64,
}

/// The sweep grid for a scale: `(shards, cpus, tenant_counts)`.
pub fn grid(scale: Scale) -> (usize, usize, Vec<u64>) {
    match scale {
        Scale::Quick => (4, 8, vec![1_000, 4_000]),
        Scale::Paper => (16, 8, vec![50_000, 250_000, 1_000_000]),
    }
}

/// Run an explicit list of `(strategy, tenants)` cells on a
/// `shards`-by-`cpus` fleet, fanned across `hc.threads` workers. Every
/// cell derives from the same `seed`, so results are a pure function of
/// `(shards, cpus, cells, seed)` — thread count and worker fleet reuse
/// cannot change them. Wall-time fields are measured, not simulated, and
/// are excluded from any determinism comparison.
pub fn run_cells(
    hc: &HarnessConfig,
    shards: usize,
    cpus: usize,
    cells: Vec<(PlacementStrategy, u64)>,
    seed: u64,
) -> (Vec<ClusterPoint>, HarnessStats) {
    let set = run_trials(hc, cells, |&(strategy, tenants)| {
        let cfg = ClusterConfig::new(shards, cpus, tenants, strategy).with_seed(seed);
        // Per-worker fleet: shard nodes are rebuilt (reset) per cell, so
        // pooled arenas are reused without leaking state between cells.
        thread_local! {
            static FLEET: RefCell<Fleet> = RefCell::new(Fleet::new());
        }
        let out = FLEET.with(|f| nautix_cluster::run(&cfg, &mut f.borrow_mut()));
        stream_delta(&out.snapshot);
        let point = ClusterPoint {
            strategy: strategy.name(),
            shards,
            cpus,
            tenants,
            decisions: out.decisions,
            placed: out.placed,
            rejected: out.rejected,
            departures: out.departures,
            probes: out.probes,
            placed_util_ppm: out.placed_util_ppm,
            oracle_util_ppm: out.oracle_util_ppm,
            quality: out.quality(),
            sim_hit_rate: out.sim_hit_rate(),
            wall_secs: 0.0,
            decisions_per_sec: 0.0,
        };
        (point, out.events)
    });
    let mut points = set.results;
    for (point, &wall) in points.iter_mut().zip(&set.stats.trial_wall_secs) {
        point.wall_secs = wall;
        point.decisions_per_sec = if wall > 0.0 {
            point.decisions as f64 / wall
        } else {
            0.0
        };
    }
    (points, set.stats)
}

/// The full sweep for a scale: every strategy crossed with the scale's
/// tenant counts.
pub fn run_with_stats(
    hc: &HarnessConfig,
    scale: Scale,
    seed: u64,
) -> (Vec<ClusterPoint>, HarnessStats) {
    let (shards, cpus, tenant_counts) = grid(scale);
    let cells: Vec<(PlacementStrategy, u64)> = PlacementStrategy::ALL
        .iter()
        .flat_map(|&s| tenant_counts.iter().map(move |&t| (s, t)))
        .collect();
    run_cells(hc, shards, cpus, cells, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_wall(points: &[ClusterPoint]) -> Vec<ClusterPoint> {
        points
            .iter()
            .map(|p| ClusterPoint {
                wall_secs: 0.0,
                decisions_per_sec: 0.0,
                ..p.clone()
            })
            .collect()
    }

    #[test]
    fn sweep_is_thread_count_invariant_and_accounts_cleanly() {
        let cells = vec![
            (PlacementStrategy::FirstFit, 300),
            (PlacementStrategy::BestFit, 300),
            (PlacementStrategy::PowerOfTwo, 300),
        ];
        let (serial, _) = run_cells(&HarnessConfig::with_threads(1), 3, 4, cells.clone(), 77);
        let (fanned, _) = run_cells(&HarnessConfig::with_threads(3), 3, 4, cells, 77);
        assert_eq!(strip_wall(&serial), strip_wall(&fanned));
        for p in &serial {
            assert_eq!(p.decisions, p.tenants);
            assert_eq!(p.placed + p.rejected, p.decisions);
            assert!(p.placed > 0, "{}: nothing placed", p.strategy);
            assert!(p.quality > 0.0 && p.quality <= 1.0, "{}", p.quality);
        }
        // Identical stream: every strategy saw the same offered demand,
        // so oracle admissions agree across strategies too.
        assert!(serial
            .windows(2)
            .all(|w| { w[0].oracle_util_ppm == w[1].oracle_util_ppm }));
    }
}
