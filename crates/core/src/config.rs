//! Typed harness configuration.
//!
//! Experiment binaries, the parallel trial harness, and node construction
//! used to read `NAUTIX_THREADS` / `NAUTIX_ORACLES` directly from the
//! environment at scattered points. [`HarnessConfig`] replaces those with
//! one typed value: construct it explicitly in tests (so behavior is a
//! function of arguments, not ambient process state), or call
//! [`HarnessConfig::from_env`] exactly once at a binary's entry point —
//! the environment variables survive only as the compat shim inside that
//! constructor.
//!
//! Every knob parses **strictly**: a malformed value is a hard error at
//! the entry point, never a silent fall-through to the default. A typo'd
//! `NAUTIX_TOPOLOGY=2×4` must kill the run, not quietly benchmark the
//! flat machine.

use crate::admission::{AdmissionEngine, LayerTable};
use nautix_hw::{FaultPlan, QueueKind, Topology};
use std::path::PathBuf;

/// The `NAUTIX_ADMISSION` escape hatch: `fresh` forces every node built
/// afterwards onto the fresh-recompute admission engine (the reference the
/// incremental engine is differentially tested against); `incremental`
/// forces the default explicitly; unset means "no override". Any other
/// value is a hard error. Like [`HarnessConfig::from_env`], this reads the
/// environment on every call so test-scoped overrides are observed.
///
/// Compat shim over [`HarnessConfig::from_env`]'s `admission` field; prefer
/// threading a constructed config through explicitly.
pub fn env_admission_engine() -> Option<AdmissionEngine> {
    env_admission()
}

/// The raw `NAUTIX_ADMISSION` read behind [`HarnessConfig::from_env`].
fn env_admission() -> Option<AdmissionEngine> {
    match std::env::var("NAUTIX_ADMISSION") {
        Ok(v) => {
            Some(parse_admission_engine(&v).unwrap_or_else(|e| panic!("NAUTIX_ADMISSION: {e}")))
        }
        Err(_) => None,
    }
}

/// A set-but-empty path variable is almost certainly a broken shell
/// expansion; die loudly instead of writing into the current directory.
fn env_path(var: &str) -> Option<PathBuf> {
    let v = std::env::var_os(var)?;
    assert!(!v.is_empty(), "{var}: set but empty");
    Some(PathBuf::from(v))
}

/// Strict parser behind [`env_admission_engine`].
pub fn parse_admission_engine(s: &str) -> Result<AdmissionEngine, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "fresh" => Ok(AdmissionEngine::Fresh),
        "incremental" => Ok(AdmissionEngine::Incremental),
        other => Err(format!("must be `fresh` or `incremental`, got `{other}`")),
    }
}

/// Strict worker-count parser behind `NAUTIX_THREADS`.
pub fn parse_threads(s: &str) -> Result<usize, String> {
    s.trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("must be an integer >= 1, got `{s}`"))
}

/// Strict boolean parser behind `NAUTIX_ORACLES`.
pub fn parse_switch(s: &str) -> Result<bool, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Ok(true),
        "0" | "false" | "no" | "off" | "" => Ok(false),
        other => Err(format!(
            "must be one of 1/true/yes/on/0/false/no/off, got `{other}`"
        )),
    }
}

/// Strict layer-table parser behind `NAUTIX_LAYERS`: the canonical
/// [`LayerTable`] text form,
/// `<g0>:<b0>[,<g1>:<b1>...];<replenish_ns>;<mp>,<ms>,<ma>` (ppm
/// guarantees/bursts, a wall-ns replenish window, and the
/// periodic/sporadic/aperiodic class→layer map). Validation failures
/// (guarantees summing past 1_000_000, dangling map indices, a zero
/// window) are errors, same as syntax.
pub fn parse_layers(s: &str) -> Result<LayerTable, String> {
    LayerTable::decode(s.trim())
}

/// Strict intensity parser behind `NAUTIX_FAULTS` (`0` disables).
pub fn parse_fault_intensity(s: &str) -> Result<FaultIntensity, String> {
    s.trim()
        .parse::<f64>()
        .ok()
        .filter(|x| x.is_finite() && *x >= 0.0)
        .map(FaultIntensity)
        .ok_or_else(|| format!("must be a finite float >= 0, got `{s}`"))
}

/// Fault-injection intensity, the scalar knob of
/// [`FaultPlan::noisy`]. `0.0` means no injection; the conversion to a
/// concrete [`FaultPlan`] is deferred until a platform frequency is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultIntensity(pub f64);

impl FaultIntensity {
    /// No fault injection.
    pub const OFF: FaultIntensity = FaultIntensity(0.0);

    /// Whether any injection is requested.
    pub fn enabled(self) -> bool {
        self.0 > 0.0
    }

    /// The concrete plan for a machine running at `freq`.
    pub fn plan(self, freq: nautix_des::Freq) -> FaultPlan {
        FaultPlan::noisy(freq, self.0)
    }
}

/// How a harness run is configured: worker threads for parallel trials,
/// whether every constructed node arms the online invariant oracles, the
/// fault-injection intensity for experiments that opt in, the machine
/// defaults (event-queue backend, topology shape) the run's nodes get
/// unless a bench pins them explicitly, and the observability hooks
/// (admission-engine override, replay-emission directory, stats-stream
/// path) that used to be scattered raw `std::env` reads.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Host worker threads for the parallel trial harness.
    pub threads: usize,
    /// Arm the online invariant oracles on every node (panic on the first
    /// invariant violation).
    pub oracles: bool,
    /// Fault-injection intensity for experiments that opt in. The paper
    /// reproduction never applies this implicitly — an enabled intensity
    /// changes results only where a harness passes it into a machine.
    pub faults: FaultIntensity,
    /// Event-queue backend for machines this run builds (`NAUTIX_QUEUE`).
    pub queue: QueueKind,
    /// Topology shape for machines this run builds (`NAUTIX_TOPOLOGY`).
    pub topology: Topology,
    /// Admission-engine override applied to every node this run builds
    /// (`NAUTIX_ADMISSION`); `None` keeps each node's configured engine.
    pub admission: Option<AdmissionEngine>,
    /// Layer-table override applied to every node this run builds
    /// (`NAUTIX_LAYERS`); `None` keeps each node's configured table.
    pub layers: Option<LayerTable>,
    /// Where armed-oracle anomalies emit `.replay` files
    /// (`NAUTIX_REPLAY_DIR`); `None` disables emission.
    pub replay_dir: Option<PathBuf>,
    /// Where the live stats hub publishes frames (`NAUTIX_STATS_STREAM`);
    /// `None` disables streaming.
    pub stats_stream: Option<PathBuf>,
}

impl HarnessConfig {
    /// Serial, oracle-free, fault-free, flat wheel-backed machines: the
    /// explicit-configuration baseline for tests, independent of the
    /// process environment.
    pub fn serial() -> Self {
        HarnessConfig {
            threads: 1,
            oracles: false,
            faults: FaultIntensity::OFF,
            queue: QueueKind::Wheel,
            topology: Topology::flat(),
            admission: None,
            layers: None,
            replay_dir: None,
            stats_stream: None,
        }
    }

    /// A config with `threads` workers and everything else off.
    pub fn with_threads(threads: usize) -> Self {
        HarnessConfig {
            threads: threads.max(1),
            ..HarnessConfig::serial()
        }
    }

    /// The single environment entry point:
    ///
    /// * `NAUTIX_THREADS` — worker count (≥ 1); defaults to the host's
    ///   available parallelism,
    /// * `NAUTIX_ORACLES` — `1`/`true`/`yes`/`on` arms the oracles,
    /// * `NAUTIX_FAULTS` — fault intensity as a float (`0` disables),
    /// * `NAUTIX_QUEUE` — `heap` / `wheel` event-queue backend,
    /// * `NAUTIX_TOPOLOGY` — `flat` or `<packages>x<llcs>` (e.g. `2x4`),
    /// * `NAUTIX_ADMISSION` — `fresh` / `incremental` engine override,
    /// * `NAUTIX_LAYERS` — layer-table override in the canonical
    ///   `<g:b>[,...];<replenish_ns>;<mp>,<ms>,<ma>` form,
    /// * `NAUTIX_REPLAY_DIR` — directory for anomaly `.replay` emission,
    /// * `NAUTIX_STATS_STREAM` — file path for live stats frames.
    ///
    /// A set-but-malformed value for any knob is a **hard error** — the
    /// run dies at the entry point instead of silently benchmarking the
    /// default. Reads the environment on every call (no caching), so
    /// tests that scope an override around a run observe it; everything
    /// downstream of a binary's entry point should take the constructed
    /// value instead of calling this again.
    pub fn from_env() -> Self {
        let threads = match std::env::var("NAUTIX_THREADS") {
            Ok(v) => parse_threads(&v).unwrap_or_else(|e| panic!("NAUTIX_THREADS: {e}")),
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        let oracles = match std::env::var("NAUTIX_ORACLES") {
            Ok(v) => parse_switch(&v).unwrap_or_else(|e| panic!("NAUTIX_ORACLES: {e}")),
            Err(_) => false,
        };
        let faults = match std::env::var("NAUTIX_FAULTS") {
            Ok(v) => parse_fault_intensity(&v).unwrap_or_else(|e| panic!("NAUTIX_FAULTS: {e}")),
            Err(_) => FaultIntensity::OFF,
        };
        let layers = match std::env::var("NAUTIX_LAYERS") {
            Ok(v) => Some(parse_layers(&v).unwrap_or_else(|e| panic!("NAUTIX_LAYERS: {e}"))),
            Err(_) => None,
        };
        HarnessConfig {
            threads,
            oracles,
            faults,
            // Both already hard-error on malformed values.
            queue: QueueKind::from_env(),
            topology: Topology::from_env(),
            admission: env_admission(),
            layers,
            replay_dir: env_path("NAUTIX_REPLAY_DIR"),
            stats_stream: env_path("NAUTIX_STATS_STREAM"),
        }
    }
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_des::Freq;

    #[test]
    fn serial_baseline_is_inert() {
        let c = HarnessConfig::serial();
        assert_eq!(c.threads, 1);
        assert!(!c.oracles);
        assert!(!c.faults.enabled());
        assert_eq!(c.queue, QueueKind::Wheel);
        assert!(c.topology.is_flat());
        assert_eq!(c.admission, None);
        assert_eq!(c.layers, None);
        assert_eq!(c.replay_dir, None);
        assert_eq!(c.stats_stream, None);
        assert_eq!(c.faults.plan(Freq::phi()), FaultPlan::disabled());
        assert_eq!(HarnessConfig::default(), c);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(HarnessConfig::with_threads(0).threads, 1);
        assert_eq!(HarnessConfig::with_threads(7).threads, 7);
    }

    // The strict parsers are tested pure — no process-global env mutation,
    // which would race against other tests in the same binary.

    #[test]
    fn admission_engine_parses_known_values_only() {
        assert_eq!(parse_admission_engine("fresh"), Ok(AdmissionEngine::Fresh));
        assert_eq!(
            parse_admission_engine("Incremental"),
            Ok(AdmissionEngine::Incremental)
        );
        assert!(parse_admission_engine("bogus").is_err());
        assert!(parse_admission_engine("").is_err());
    }

    #[test]
    fn threads_parser_rejects_junk_and_zero() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 16 "), Ok(16));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("four").is_err());
        assert!(parse_threads("-2").is_err());
    }

    #[test]
    fn switch_parser_rejects_junk() {
        assert_eq!(parse_switch("1"), Ok(true));
        assert_eq!(parse_switch("On"), Ok(true));
        assert_eq!(parse_switch("0"), Ok(false));
        assert_eq!(parse_switch("off"), Ok(false));
        assert!(parse_switch("enable").is_err());
        assert!(parse_switch("2").is_err());
    }

    #[test]
    fn fault_parser_rejects_junk_and_negatives() {
        assert_eq!(parse_fault_intensity("0"), Ok(FaultIntensity::OFF));
        assert_eq!(parse_fault_intensity("0.5"), Ok(FaultIntensity(0.5)));
        assert!(parse_fault_intensity("-1").is_err());
        assert!(parse_fault_intensity("NaN").is_err());
        assert!(parse_fault_intensity("lots").is_err());
    }

    #[test]
    fn layers_parser_is_strict() {
        assert_eq!(
            parse_layers(" 1000000:0;10000000;0,0,0 "),
            Ok(LayerTable::default())
        );
        let t = parse_layers("600000:50000,250000:0,100000:0;10000000;0,1,2").unwrap();
        assert_eq!(t.count(), 3);
        assert_eq!(t.map_aperiodic(), 2);
        // Syntax and validation failures are both hard errors.
        assert!(parse_layers("").is_err());
        assert!(parse_layers("1000000:0").is_err());
        assert!(parse_layers("600000:0,400001:0;10000000;0,1,1").is_err());
        assert!(parse_layers("500000:0;10000000;0,0,3").is_err());
        assert!(parse_layers("500000:0;0;0,0,0").is_err());
    }

    #[test]
    fn intensity_converts_to_noisy_plan() {
        let i = FaultIntensity(0.5);
        assert!(i.enabled());
        assert_eq!(i.plan(Freq::phi()), FaultPlan::noisy(Freq::phi(), 0.5));
    }
}
