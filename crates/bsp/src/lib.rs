//! The bulk-synchronous parallel (BSP) microbenchmark of §6.
//!
//! "We developed a bulk-synchronous parallel microbenchmark for shared
//! memory that allows fine grain control over computation, communication,
//! and synchronization. The benchmark emulates iterative computation on a
//! discrete domain, modeled as a vector of doubles."
//!
//! Parameters (§6.1): `P` CPUs (one thread each), `NE` elements local to
//! each CPU, `NC` computations per element per iteration, `NW` remote
//! writes per iteration (ring pattern: CPU *i* writes into CPU
//! *(i+1) mod P*'s elements), and `N` iterations. The barrier at the end
//! of each iteration is *optional*: under gang-scheduled hard real-time
//! constraints the lock-step execution can replace it (§6.4).
//!
//! Beyond timing, the benchmark *checks* the synchronization it relies on:
//! every remote write carries its iteration number, and every reader
//! verifies its halo data is neither stale (writer behind) nor overwritten
//! early (writer ahead). With barriers, violations are zero by
//! construction; without barriers they measure how well the schedule's
//! lock-step substitutes for synchronization.

pub mod workload;

pub use workload::{collect_bsp, run_bsp, spawn_bsp, BspHandles, BspMode, BspParams, BspResult};
