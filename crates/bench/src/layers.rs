//! Layered bandwidth-control sweep (`layer_bench`).
//!
//! The experiment behind `results/layers.csv`: an RT probe and an
//! always-runnable background hog share one CPU, once under the default
//! (unlayered) table and once under the canonical three-layer table with
//! the background guaranteed `bg_guarantee_ppm`. Two claims are measured
//! at every sweep cell:
//!
//! 1. **Containment** — the hog's share of wall time under layering
//!    never exceeds its guarantee (plus replenish-quantization slack),
//!    no matter how much slack the RT point leaves on the table.
//! 2. **RT indifference** — the probe's miss rate is identical with and
//!    without layering: layers only take time from lower layers, never
//!    from the guaranteed RT work.
//!
//! Shares are computed from the execution timeline (per-thread wall-time
//! spans), so the measurement is independent of the stats plumbing it is
//! meant to check.

use nautix_des::Nanos;
use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{HarnessConfig, LayerSpec, LayerTable, Node, NodeConfig};

use crate::common::Scale;
use crate::harness::{run_trials, HarnessStats};

/// One sweep cell: an (RT utilization, background guarantee) pair
/// measured layered and unlayered.
#[derive(Debug, Clone)]
pub struct LayerPoint {
    /// RT probe slice as a percentage of its 1 ms period.
    pub rt_pct: u64,
    /// Background layer guarantee, ppm of the CPU.
    pub bg_guarantee_ppm: u32,
    /// Hog share of wall time under the three-layer table.
    pub bg_share_layered: f64,
    /// Hog share of wall time under the default table (all the slack).
    pub bg_share_unlayered: f64,
    /// Probe miss rate under the three-layer table.
    pub rt_miss_layered: f64,
    /// Probe miss rate under the default table.
    pub rt_miss_unlayered: f64,
    /// Throttle events the layered run recorded.
    pub throttles: u64,
    /// Replenish events the layered run recorded.
    pub replenishes: u64,
}

struct TrialRun {
    bg_share: f64,
    rt_miss: f64,
    throttles: u64,
    replenishes: u64,
    events: u64,
}

/// The replenish window used throughout the sweep.
pub const REPLENISH_NS: Nanos = 10_000_000;

fn run_cell(layers: LayerTable, rt_pct: u64, horizon_ns: Nanos, seed: u64) -> TrialRun {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(seed);
    cfg.sched.layers = layers;
    let mut node = Node::new(cfg);
    node.record_timeline(1 << 22);

    let period = 1_000_000;
    let slice = period * rt_pct / 100;
    let probe = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(period, slice).phase(period).build(),
            ))
        } else {
            Action::Compute(100_000)
        }
    });
    let probe_tid = node.spawn_on(1, "probe", Box::new(probe)).unwrap();
    let hog = FnProgram::new(move |_cx, _n| Action::Compute(100_000));
    let hog_tid = node.spawn_on(1, "hog", Box::new(hog)).unwrap();
    node.run_for_ns(horizon_ns);

    let hog_ns: u64 = node
        .take_timeline()
        .unwrap()
        .spans()
        .iter()
        .filter(|s| s.tid == Some(hog_tid))
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    let snap = node.stats_snapshot();
    TrialRun {
        bg_share: hog_ns as f64 / horizon_ns as f64,
        rt_miss: node.thread_state(probe_tid).stats.miss_rate(),
        throttles: snap.layer_throttles,
        replenishes: snap.layer_replenishes,
        events: node.machine.events_processed(),
    }
}

/// Measure one sweep cell (layered and unlayered runs share the seed and
/// workload). Returns the point and the total simulated events.
pub fn measure(
    rt_pct: u64,
    bg_guarantee_ppm: u32,
    horizon_ns: Nanos,
    seed: u64,
) -> (LayerPoint, u64) {
    // RT gets the whole non-background residual: the sweep's claim is
    // about containing the hog, not about starving the probe, so the RT
    // layer must never be the binding constraint. Batch is unused by
    // this workload and sits at a zero guarantee (a boundary the config
    // layer explicitly allows).
    let table = LayerTable::three_way(
        LayerSpec {
            guarantee_ppm: 1_000_000 - bg_guarantee_ppm,
            burst_ppm: 0,
        },
        LayerSpec {
            guarantee_ppm: 0,
            burst_ppm: 0,
        },
        LayerSpec {
            guarantee_ppm: bg_guarantee_ppm,
            burst_ppm: 0,
        },
        REPLENISH_NS,
    )
    .expect("sweep layer table is valid");
    let layered = run_cell(table, rt_pct, horizon_ns, seed);
    let base = run_cell(LayerTable::default(), rt_pct, horizon_ns, seed);
    let point = LayerPoint {
        rt_pct,
        bg_guarantee_ppm,
        bg_share_layered: layered.bg_share,
        bg_share_unlayered: base.bg_share,
        rt_miss_layered: layered.rt_miss,
        rt_miss_unlayered: base.rt_miss,
        throttles: layered.throttles,
        replenishes: layered.replenishes,
    };
    (point, layered.events + base.events)
}

/// The full sweep grid for `scale`, fanned over the harness.
pub fn sweep(hc: &HarnessConfig, scale: Scale, seed: u64) -> (Vec<LayerPoint>, HarnessStats) {
    let horizon_ns = match scale {
        Scale::Quick => 100_000_000,
        Scale::Paper => 1_000_000_000,
    };
    let cells: Vec<(u64, u32)> = [30u64, 50, 70]
        .iter()
        .flat_map(|&rt| [50_000u32, 100_000, 200_000].iter().map(move |&g| (rt, g)))
        .collect();
    let set = run_trials(hc, cells, |&(rt_pct, g)| {
        measure(rt_pct, g, horizon_ns, seed)
    });
    (set.results, set.stats)
}

/// Replenish-quantization slack on the measured share: a throttled layer
/// can overdraw each window by roughly one scheduling pass, and the
/// probe's own phase shifts where windows land. Three points of share is
/// comfortably above what the quick horizon quantizes to.
pub const SHARE_SLACK: f64 = 0.03;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<LayerPoint> {
        sweep(&HarnessConfig::serial(), Scale::Quick, 23).0
    }

    #[test]
    fn background_never_exceeds_its_guarantee() {
        for p in quick() {
            let cap = p.bg_guarantee_ppm as f64 / 1e6 + SHARE_SLACK;
            assert!(
                p.bg_share_layered <= cap,
                "rt {}%, bg {} ppm: hog took {:.4} of the CPU, cap {:.4}",
                p.rt_pct,
                p.bg_guarantee_ppm,
                p.bg_share_layered,
                cap
            );
            assert!(p.throttles > 0, "hog demand must exhaust its bucket");
            assert!(p.replenishes > 0, "windows must roll over the horizon");
        }
    }

    #[test]
    fn rt_miss_rate_matches_the_unlayered_run() {
        for p in quick() {
            assert_eq!(
                p.rt_miss_layered, p.rt_miss_unlayered,
                "rt {}%, bg {} ppm: layering changed the probe's misses",
                p.rt_pct, p.bg_guarantee_ppm
            );
        }
    }

    #[test]
    fn unlayered_hog_soaks_up_the_slack() {
        // The containment claim is only interesting if the hog *would*
        // have taken more: unlayered it must exceed every guarantee in
        // the grid at the low-RT points.
        for p in quick().iter().filter(|p| p.rt_pct <= 50) {
            assert!(
                p.bg_share_unlayered > p.bg_guarantee_ppm as f64 / 1e6 + SHARE_SLACK,
                "rt {}%, bg {} ppm: unlayered hog share {:.4} never exceeded the guarantee — \
                 the cell is vacuous",
                p.rt_pct,
                p.bg_guarantee_ppm,
                p.bg_share_unlayered
            );
        }
    }
}
