//! Named thread groups (§4.2).
//!
//! "We have added a thread group programming interface to Nautilus for
//! group admission control and other purposes. Threads can create, join,
//! leave, and destroy named groups. A group can also have state associated
//! with it, for example the timing constraints that all members of a group
//! wish to share."
//!
//! The registry is fixed-capacity like the rest of the kernel state. Each
//! group owns its coordination primitives (barrier, election, reduction,
//! broadcast — see [`crate::coord`]) plus a leader lock and an attached
//! constraints slot, which is exactly the state Algorithm 1 manipulates.

use crate::coord::Collective;
use nautix_kernel::{Constraints, GroupError, GroupId, SimBarrier, ThreadId};

/// Maximum simultaneous groups.
pub const MAX_GROUPS: usize = 64;
/// Maximum members per group (a fully populated Phi: 256).
pub const MAX_GROUP_MEMBERS: usize = 512;

/// One named group.
pub struct Group {
    /// The group's name.
    pub name: &'static str,
    /// Members in join order.
    members: Vec<ThreadId>,
    /// The group barrier.
    pub barrier: SimBarrier,
    /// Leader election collective.
    pub election: Collective,
    /// Max-reduction collective.
    pub reduction: Collective,
    /// Broadcast collective.
    pub broadcast: Collective,
    /// The leader lock of Algorithm 1.
    locked_by: Option<ThreadId>,
    /// Constraints attached by the leader for the current group admission.
    pub attached: Option<Constraints>,
}

impl Group {
    fn new(name: &'static str) -> Self {
        Group {
            name,
            members: Vec::new(),
            barrier: SimBarrier::new(1),
            election: Collective::new(1),
            reduction: Collective::new(1),
            broadcast: Collective::new(1),
            locked_by: None,
            attached: None,
        }
    }

    /// Members in join order.
    pub fn members(&self) -> &[ThreadId] {
        &self.members
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `tid` is a member.
    pub fn is_member(&self, tid: ThreadId) -> bool {
        self.members.contains(&tid)
    }

    /// Try to take the group lock (leader-only in Algorithm 1; re-entrant
    /// for the holder).
    pub fn lock(&mut self, tid: ThreadId) -> Result<(), GroupError> {
        match self.locked_by {
            None => {
                self.locked_by = Some(tid);
                Ok(())
            }
            Some(holder) if holder == tid => Ok(()),
            Some(_) => Err(GroupError::Busy),
        }
    }

    /// Release the group lock.
    pub fn unlock(&mut self, tid: ThreadId) -> Result<(), GroupError> {
        match self.locked_by {
            Some(holder) if holder == tid => {
                self.locked_by = None;
                Ok(())
            }
            _ => Err(GroupError::Busy),
        }
    }

    /// The current lock holder.
    pub fn lock_holder(&self) -> Option<ThreadId> {
        self.locked_by
    }

    fn resize_collectives(&mut self) {
        let n = self.members.len().max(1);
        self.barrier.set_parties(n);
        self.election.set_parties(n);
        self.reduction.set_parties(n);
        self.broadcast.set_parties(n);
    }
}

/// The node-wide group registry.
pub struct GroupRegistry {
    groups: Vec<Option<Group>>,
    created: u64,
}

impl Default for GroupRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl GroupRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GroupRegistry {
            groups: (0..MAX_GROUPS).map(|_| None).collect(),
            created: 0,
        }
    }

    /// Create a named group; the creator does not implicitly join.
    pub fn create(&mut self, name: &'static str) -> Result<GroupId, GroupError> {
        let Some(slot) = self.groups.iter().position(|g| g.is_none()) else {
            return Err(GroupError::Full);
        };
        self.groups[slot] = Some(Group::new(name));
        self.created += 1;
        Ok(GroupId(slot as u32))
    }

    /// Look up a group by name.
    pub fn find(&self, name: &str) -> Option<GroupId> {
        self.groups.iter().enumerate().find_map(|(i, g)| {
            g.as_ref()
                .filter(|g| g.name == name)
                .map(|_| GroupId(i as u32))
        })
    }

    /// Borrow a group.
    pub fn get(&self, gid: GroupId) -> Result<&Group, GroupError> {
        self.groups
            .get(gid.0 as usize)
            .and_then(|g| g.as_ref())
            .ok_or(GroupError::NotFound)
    }

    /// Mutably borrow a group.
    pub fn get_mut(&mut self, gid: GroupId) -> Result<&mut Group, GroupError> {
        self.groups
            .get_mut(gid.0 as usize)
            .and_then(|g| g.as_mut())
            .ok_or(GroupError::NotFound)
    }

    /// Join `tid` to the group.
    pub fn join(&mut self, gid: GroupId, tid: ThreadId) -> Result<(), GroupError> {
        let g = self.get_mut(gid)?;
        if g.members.contains(&tid) {
            return Ok(());
        }
        if g.members.len() >= MAX_GROUP_MEMBERS {
            return Err(GroupError::Full);
        }
        g.members.push(tid);
        g.resize_collectives();
        Ok(())
    }

    /// Remove `tid` from the group.
    pub fn leave(&mut self, gid: GroupId, tid: ThreadId) -> Result<(), GroupError> {
        let g = self.get_mut(gid)?;
        let Some(idx) = g.members.iter().position(|&m| m == tid) else {
            return Err(GroupError::NotMember);
        };
        g.members.remove(idx);
        if g.members.is_empty() {
            // keep collectives consistent for a possible re-join
            g.resize_collectives();
        } else {
            g.resize_collectives();
        }
        Ok(())
    }

    /// Destroy an empty group.
    pub fn destroy(&mut self, gid: GroupId) -> Result<(), GroupError> {
        let g = self.get(gid)?;
        if !g.is_empty() {
            return Err(GroupError::Busy);
        }
        self.groups[gid.0 as usize] = None;
        Ok(())
    }

    /// Groups created over the registry lifetime.
    pub fn created(&self) -> u64 {
        self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_find_destroy() {
        let mut r = GroupRegistry::new();
        let g = r.create("bsp").unwrap();
        assert_eq!(r.find("bsp"), Some(g));
        assert_eq!(r.find("nope"), None);
        r.destroy(g).unwrap();
        assert_eq!(r.find("bsp"), None);
        assert!(matches!(r.get(g), Err(GroupError::NotFound)));
    }

    #[test]
    fn join_leave_updates_membership_and_parties() {
        let mut r = GroupRegistry::new();
        let g = r.create("g").unwrap();
        r.join(g, 1).unwrap();
        r.join(g, 2).unwrap();
        r.join(g, 3).unwrap();
        assert_eq!(r.get(g).unwrap().members(), &[1, 2, 3]);
        assert_eq!(r.get(g).unwrap().barrier.parties(), 3);
        r.leave(g, 2).unwrap();
        assert_eq!(r.get(g).unwrap().members(), &[1, 3]);
        assert_eq!(r.get(g).unwrap().barrier.parties(), 2);
    }

    #[test]
    fn duplicate_join_is_idempotent() {
        let mut r = GroupRegistry::new();
        let g = r.create("g").unwrap();
        r.join(g, 1).unwrap();
        r.join(g, 1).unwrap();
        assert_eq!(r.get(g).unwrap().len(), 1);
    }

    #[test]
    fn leave_requires_membership() {
        let mut r = GroupRegistry::new();
        let g = r.create("g").unwrap();
        assert!(matches!(r.leave(g, 9), Err(GroupError::NotMember)));
    }

    #[test]
    fn destroy_requires_empty() {
        let mut r = GroupRegistry::new();
        let g = r.create("g").unwrap();
        r.join(g, 1).unwrap();
        assert!(matches!(r.destroy(g), Err(GroupError::Busy)));
        r.leave(g, 1).unwrap();
        assert!(r.destroy(g).is_ok());
    }

    #[test]
    fn lock_is_exclusive_and_reentrant() {
        let mut r = GroupRegistry::new();
        let g = r.create("g").unwrap();
        let grp = r.get_mut(g).unwrap();
        grp.lock(1).unwrap();
        grp.lock(1).unwrap(); // re-entrant for the holder
        assert!(matches!(grp.lock(2), Err(GroupError::Busy)));
        assert!(matches!(grp.unlock(2), Err(GroupError::Busy)));
        grp.unlock(1).unwrap();
        grp.lock(2).unwrap();
        assert_eq!(grp.lock_holder(), Some(2));
    }

    #[test]
    fn registry_capacity_is_bounded() {
        let mut r = GroupRegistry::new();
        for _ in 0..MAX_GROUPS {
            r.create("x").unwrap();
        }
        assert!(matches!(r.create("overflow"), Err(GroupError::Full)));
    }

    #[test]
    fn slots_are_reused_after_destroy() {
        let mut r = GroupRegistry::new();
        let a = r.create("a").unwrap();
        r.destroy(a).unwrap();
        let b = r.create("b").unwrap();
        assert_eq!(a, b);
    }
}
