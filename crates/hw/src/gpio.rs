//! GPIO (parallel port) output and "oscilloscope" capture.
//!
//! §5.2: "A hard real-time scheduler, because it operates in sync with wall
//! clock time, must be verified by timing methods external to the machine."
//! The paper's authors soldered a parallel-port interface and watched it
//! with a Rigol DSO; a single `outb` toggles all 8 pins.
//!
//! Here the external observer is the simulator itself: every write is
//! recorded against *true machine time* (not any CPU's TSC), so the capture
//! is exactly as external as the scope was. [`scope`] turns a capture into
//! the statistics Figure 4 shows visually: per-pin edges, pulse widths,
//! periods, and the "fuzz" (jitter) of each trace.

use nautix_des::{Cycles, Summary};

/// One recorded GPIO sample: the port state immediately after a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpioSample {
    /// True machine time of the write.
    pub time: Cycles,
    /// All 8 pins after the write.
    pub pins: u8,
}

/// The 8-pin output port plus its capture buffer.
#[derive(Debug)]
pub struct Gpio {
    pins: u8,
    trace: Vec<GpioSample>,
    capturing: bool,
}

impl Default for Gpio {
    fn default() -> Self {
        Self::new()
    }
}

impl Gpio {
    /// A port with all pins low and capture disabled.
    pub fn new() -> Self {
        Gpio {
            pins: 0,
            trace: Vec::new(),
            capturing: false,
        }
    }

    /// Start recording writes.
    pub fn start_capture(&mut self) {
        self.capturing = true;
    }

    /// Stop recording writes.
    pub fn stop_capture(&mut self) {
        self.capturing = false;
    }

    /// Write the pins selected by `mask` to the corresponding bits of
    /// `value`, like an `outb` through a mask register.
    pub fn write(&mut self, now: Cycles, mask: u8, value: u8) {
        self.pins = (self.pins & !mask) | (value & mask);
        if self.capturing {
            self.trace.push(GpioSample {
                time: now,
                pins: self.pins,
            });
        }
    }

    /// Set or clear a single pin.
    pub fn set_pin(&mut self, now: Cycles, pin: u8, high: bool) {
        assert!(pin < 8);
        self.write(now, 1 << pin, if high { 1 << pin } else { 0 });
    }

    /// Current port state.
    pub fn pins(&self) -> u8 {
        self.pins
    }

    /// Take the capture buffer, leaving it empty.
    pub fn take_trace(&mut self) -> Vec<GpioSample> {
        std::mem::take(&mut self.trace)
    }

    /// Number of captured samples.
    pub fn captured(&self) -> usize {
        self.trace.len()
    }
}

/// Scope-style analysis of a captured GPIO trace.
pub mod scope {
    use super::*;

    /// One logic edge on a pin.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Edge {
        /// Time of the transition.
        pub time: Cycles,
        /// True for a rising edge.
        pub rising: bool,
    }

    /// Extract the edges of one pin from a trace.
    pub fn edges(trace: &[GpioSample], pin: u8) -> Vec<Edge> {
        assert!(pin < 8);
        let bit = 1u8 << pin;
        let mut out = Vec::new();
        let mut last = false;
        let mut first = true;
        for s in trace {
            let level = s.pins & bit != 0;
            if first {
                first = false;
                last = level;
                continue;
            }
            if level != last {
                out.push(Edge {
                    time: s.time,
                    rising: level,
                });
                last = level;
            }
        }
        out
    }

    /// What the scope shows for one trace: where Figure 4 shows a sharp
    /// line, the jitter summary is tight; where it shows fuzz, it is wide.
    #[derive(Debug, Clone)]
    pub struct PinAnalysis {
        /// Durations of high pulses, in cycles.
        pub high_widths: Summary,
        /// Rising-edge-to-rising-edge periods, in cycles.
        pub periods: Summary,
        /// Duty cycle over the analyzed window, in `[0, 1]`.
        pub duty_cycle: f64,
        /// Number of complete pulses observed.
        pub pulses: u64,
    }

    /// Analyze one pin of a capture.
    pub fn analyze(trace: &[GpioSample], pin: u8) -> PinAnalysis {
        let es = edges(trace, pin);
        let mut highs = Vec::new();
        let mut periods = Vec::new();
        let mut last_rise: Option<Cycles> = None;
        let mut high_total: u64 = 0;
        let mut span_start: Option<Cycles> = None;
        let mut span_end: Option<Cycles> = None;
        let mut i = 0;
        while i < es.len() {
            let e = es[i];
            span_start.get_or_insert(e.time);
            span_end = Some(e.time);
            if e.rising {
                if let Some(prev) = last_rise {
                    periods.push(e.time - prev);
                }
                last_rise = Some(e.time);
                // Find the matching falling edge.
                if let Some(fall) = es[i + 1..].iter().find(|x| !x.rising) {
                    let w = fall.time - e.time;
                    highs.push(w);
                    high_total += w;
                }
            }
            i += 1;
        }
        let window = match (span_start, span_end) {
            (Some(a), Some(b)) if b > a => (b - a) as f64,
            _ => 0.0,
        };
        PinAnalysis {
            high_widths: Summary::of(&highs),
            periods: Summary::of(&periods),
            duty_cycle: if window > 0.0 {
                high_total as f64 / window
            } else {
                0.0
            },
            pulses: highs.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::scope::*;
    use super::*;

    fn square_wave(gpio: &mut Gpio, pin: u8, period: u64, high: u64, cycles: u64) {
        // Establish the initial low level so the first rise is a real edge.
        gpio.set_pin(0, pin, false);
        let mut t = period;
        for _ in 0..cycles {
            gpio.set_pin(t, pin, true);
            gpio.set_pin(t + high, pin, false);
            t += period;
        }
    }

    #[test]
    fn writes_respect_mask() {
        let mut g = Gpio::new();
        g.write(0, 0b0000_1111, 0b1010_1010);
        assert_eq!(g.pins(), 0b0000_1010);
        g.write(1, 0b1111_0000, 0b0101_0101);
        assert_eq!(g.pins(), 0b0101_1010);
    }

    #[test]
    fn capture_only_when_enabled() {
        let mut g = Gpio::new();
        g.set_pin(0, 0, true);
        assert_eq!(g.captured(), 0);
        g.start_capture();
        g.set_pin(1, 0, false);
        g.set_pin(2, 0, true);
        assert_eq!(g.captured(), 2);
        g.stop_capture();
        g.set_pin(3, 0, false);
        assert_eq!(g.captured(), 2);
    }

    #[test]
    fn edge_extraction_ignores_redundant_writes() {
        let mut g = Gpio::new();
        g.start_capture();
        g.set_pin(0, 3, false); // establishes initial level
        g.set_pin(10, 3, true);
        g.set_pin(11, 3, true); // redundant, no edge
        g.set_pin(20, 3, false);
        let t = g.take_trace();
        let es = edges(&t, 3);
        assert_eq!(es.len(), 2);
        assert!(es[0].rising && es[0].time == 10);
        assert!(!es[1].rising && es[1].time == 20);
    }

    #[test]
    fn perfect_square_wave_has_zero_jitter_and_right_duty() {
        let mut g = Gpio::new();
        g.start_capture();
        // 100 µs period, 50 µs high at 1.3 GHz, like Figure 4's thread.
        square_wave(&mut g, 0, 130_000, 65_000, 50);
        let t = g.take_trace();
        let a = analyze(&t, 0);
        assert_eq!(a.pulses, 50);
        assert_eq!(a.periods.std_dev, 0.0);
        assert_eq!(a.high_widths.mean, 65_000.0);
        assert!((a.duty_cycle - 0.5).abs() < 0.02);
    }

    #[test]
    fn jittery_wave_shows_fuzz() {
        let mut g = Gpio::new();
        g.start_capture();
        let mut t = 0u64;
        for i in 0..50u64 {
            let j = (i * 37) % 1000; // deterministic pseudo-jitter
            g.set_pin(t + j, 1, true);
            g.set_pin(t + j + 65_000, 1, false);
            t += 130_000;
        }
        let trace = g.take_trace();
        let a = analyze(&trace, 1);
        assert!(a.periods.std_dev > 0.0, "expected fuzz on the trace");
    }

    #[test]
    fn analysis_of_empty_trace_is_benign() {
        let a = analyze(&[], 0);
        assert_eq!(a.pulses, 0);
        assert_eq!(a.duty_cycle, 0.0);
    }
}
