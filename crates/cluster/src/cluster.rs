//! The cluster admission engine: a sharded fleet of nodes behind one
//! typed placement API.
//!
//! Each *shard* is a full [`Node`](nautix_rt::Node) — real per-CPU admission ledgers, the
//! memoized hyperperiod-simulation engine, phase-corrected team admission
//! — booted once per run from a [`NodePool`] and then mutated in place.
//! Tenants arrive from a [`TenantStream`]; for each one the engine asks
//! the configured [`PlacementPolicy`] for a shard order and submits one
//! all-or-nothing team admission per candidate through
//! [`Node::admit`](nautix_rt::Node::admit) with [`AdmissionRequest::team`], stopping at the first
//! shard whose ledgers accept. A tenant departs after its virtual
//! residency by re-admitting its gang with aperiodic constraints (which
//! cannot fail, §4.3), releasing the reservation.
//!
//! The whole run is a pure function of [`ClusterConfig`]: the stream, the
//! per-shard machine seeds, and the power-of-two sampler all derive from
//! `cfg.seed` via [`DetRng`] forks, shards are tried in the policy's
//! deterministic order, and nothing reads ambient state — so a run is
//! byte-identical at any harness thread count and under pooled-fleet
//! reuse (the determinism tests pin both).
//!
//! What this engine deliberately does *not* do is step the shards' event
//! loops: the cluster benchmark measures *admission* throughput —
//! decisions per second against live ledgers under churn — not dispatch
//! behavior, which the node-level scenarios already cover at depth.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::policy::{ClusterView, PlacementPolicy, PlacementStrategy, ShardView};
use crate::tenant::{TenantRequest, TenantStream};
use nautix_des::{DetRng, Nanos};
use nautix_hw::{MachineConfig, Platform, QueueKind, Topology};
use nautix_kernel::{AdmissionError, Constraints, IdleLoop, ThreadId};
use nautix_rt::{AdmissionPolicy, AdmissionRequest, NodeConfig, NodePool, SchedConfig};
use nautix_stats::StatsSnapshot;

/// Everything a cluster run depends on. A run is a pure function of this
/// value: same config, same [`ClusterOutcome`], bit for bit.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards (independent nodes).
    pub shards: usize,
    /// Reservation slots per CPU: the bound on co-resident gang members
    /// sharing one CPU.
    pub slots_per_cpu: usize,
    /// Tenant arrivals to process.
    pub tenants: u64,
    /// The placement strategy under test.
    pub strategy: PlacementStrategy,
    /// Per-shard machine template (`seed` is re-derived per shard).
    pub machine: MachineConfig,
    /// Per-shard scheduler configuration (identical on every shard).
    pub sched: SchedConfig,
    /// Mean tenant inter-arrival gap, virtual ns.
    pub mean_gap_ns: Nanos,
    /// Mean tenant residency, virtual ns.
    pub mean_hold_ns: Nanos,
    /// Root seed for the stream, the shard machines, and the po2 sampler.
    pub seed: u64,
    /// Record one [`PlacementOutcome`] per tenant (the differential tests
    /// replay them; benches leave this off to stay allocation-light).
    pub record_placements: bool,
}

impl ClusterConfig {
    /// A cluster of Phi-derived shards with `cpus` CPUs each, the event
    /// queue and topology pinned (never read from the environment — a
    /// cluster run must be a pure function of this value), and the
    /// overhead-aware admission policy the paper's prototype used.
    pub fn new(shards: usize, cpus: usize, tenants: u64, strategy: PlacementStrategy) -> Self {
        assert!(shards >= 1 && cpus >= 1);
        let mut machine = MachineConfig::for_platform(Platform::Phi);
        machine.n_cpus = cpus;
        machine.queue = QueueKind::Wheel;
        machine.topology = Topology::flat();
        let sched = SchedConfig {
            policy: AdmissionPolicy::HyperperiodSim {
                overhead_ns: 2_000,
                window_cap_ns: 200_000_000,
            },
            ..SchedConfig::default()
        };
        ClusterConfig {
            shards,
            slots_per_cpu: 8,
            tenants,
            strategy,
            machine,
            sched,
            // Offered load scales with shard count so rejection pressure
            // stays interesting at any fleet size: see `cluster_bench`.
            mean_gap_ns: 400_000,
            mean_hold_ns: 200_000_000,
            seed: 0xC1_05_7E_12,
            record_placements: false,
        }
    }

    /// Override the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Largest admissible gang: one member per CPU of one shard.
    pub fn max_gang(&self) -> usize {
        self.machine.n_cpus
    }
}

/// The per-tenant decision, recorded when
/// [`ClusterConfig::record_placements`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// The gang was admitted on `shard` after `probes` shard attempts.
    Placed {
        /// Accepting shard.
        shard: usize,
        /// Shard admissions attempted for this tenant (including the
        /// accepting one).
        probes: u64,
    },
    /// Every candidate shard rejected the gang (or the policy offered
    /// none).
    Rejected {
        /// Shard admissions attempted for this tenant.
        probes: u64,
        /// The last ledger verdict, or [`AdmissionError::CapacityExceeded`]
        /// when no shard could even seat the gang.
        error: AdmissionError,
    },
}

impl PlacementOutcome {
    /// The accepting shard, if placed.
    pub fn shard(&self) -> Option<usize> {
        match *self {
            PlacementOutcome::Placed { shard, .. } => Some(shard),
            PlacementOutcome::Rejected { .. } => None,
        }
    }
}

/// Everything one cluster run reports.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Placement decisions taken (= tenants processed).
    pub decisions: u64,
    /// Tenants admitted.
    pub placed: u64,
    /// Tenants rejected.
    pub rejected: u64,
    /// Shard admissions attempted across all decisions.
    pub probes: u64,
    /// Tenants whose residency expired (reservation released).
    pub departures: u64,
    /// Summed demand (gang × per-member ppm) of placed tenants.
    pub placed_util_ppm: u64,
    /// Summed demand of all arrivals.
    pub offered_util_ppm: u64,
    /// Tenants the fluid oracle (one cluster-wide utilization bucket, no
    /// fragmentation, no overheads) admits from the identical stream.
    pub oracle_placed: u64,
    /// Summed demand of oracle-admitted tenants.
    pub oracle_util_ppm: u64,
    /// Machine events processed across shards (boot + calibration only:
    /// the engine measures admission, it does not step the shards).
    pub events: u64,
    /// The merged per-shard counter snapshot (`trials` = 1), with the
    /// `cluster_*` fields filled in.
    pub snapshot: StatsSnapshot,
    /// Canonical digest of the final cluster state: per shard, per CPU
    /// `[ledger ppm, periodic count]`, then per shard `[free slots,
    /// resident gangs]`, then `[placed, rejected, departures]`. Equal
    /// fingerprints ⇔ identical placements (the determinism and
    /// differential tests compare these). Probe counts are deliberately
    /// excluded: they measure the *policy's search*, not the state it
    /// reached, and a scripted replay reproduces the state in one probe
    /// per tenant.
    pub fingerprint: Vec<u64>,
    /// Per-tenant outcomes (empty unless
    /// [`ClusterConfig::record_placements`]).
    pub placements: Vec<PlacementOutcome>,
}

impl ClusterOutcome {
    /// Packing quality: placed demand relative to the fluid oracle's.
    /// 1.0 means the policy lost nothing to fragmentation or probe order.
    pub fn quality(&self) -> f64 {
        if self.oracle_util_ppm == 0 {
            1.0
        } else {
            self.placed_util_ppm as f64 / self.oracle_util_ppm as f64
        }
    }

    /// Hyperperiod-simulation memo hit rate over the run's churn.
    pub fn sim_hit_rate(&self) -> f64 {
        let total = self.snapshot.sim_hits + self.snapshot.sim_misses;
        if total == 0 {
            0.0
        } else {
            self.snapshot.sim_hits as f64 / total as f64
        }
    }
}

/// A reusable fleet of shard pools: the cluster analogue of [`NodePool`].
/// Reusing a fleet across runs re-boots every shard through
/// [`NodePool::node`] (reset-in-place), which is defined to be
/// byte-identical to fresh construction.
#[derive(Default)]
pub struct Fleet {
    pools: Vec<NodePool>,
}

impl Fleet {
    /// An empty fleet; shards are constructed on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn pools(&mut self, shards: usize) -> &mut [NodePool] {
        if self.pools.len() < shards {
            self.pools.resize_with(shards, NodePool::new);
        }
        &mut self.pools[..shards]
    }
}

/// Book-keeping the engine holds per shard alongside the node.
struct ShardState {
    /// Free reservation-slot threads per CPU (LIFO).
    free: Vec<Vec<ThreadId>>,
    /// Resident gang count.
    resident: usize,
}

impl ShardState {
    fn free_slots(&self) -> usize {
        self.free.iter().map(Vec::len).sum()
    }
}

/// The fluid oracle: one cluster-wide utilization bucket with neither
/// fragmentation nor admission overheads. It sees the identical arrival /
/// departure sequence and upper-bounds what any placement policy could
/// pack, so `placed_util / oracle_util` isolates policy quality from
/// stream luck.
struct FluidOracle {
    capacity_ppm: u64,
    used_ppm: u64,
    placed: u64,
    placed_util_ppm: u64,
    departures: BinaryHeap<Reverse<(Nanos, u64)>>,
    holding: Vec<u64>,
}

impl FluidOracle {
    fn new(capacity_ppm: u64) -> Self {
        FluidOracle {
            capacity_ppm,
            used_ppm: 0,
            placed: 0,
            placed_util_ppm: 0,
            departures: BinaryHeap::new(),
            holding: Vec::new(),
        }
    }

    fn offer(&mut self, now_ns: Nanos, req: &TenantRequest) {
        while let Some(&Reverse((t, id))) = self.departures.peek() {
            if t > now_ns {
                break;
            }
            self.departures.pop();
            self.used_ppm -= self.holding[id as usize];
        }
        let demand = req.util_ppm();
        if self.used_ppm + demand <= self.capacity_ppm {
            self.used_ppm += demand;
            self.placed += 1;
            self.placed_util_ppm += demand;
            let id = self.holding.len() as u64;
            self.holding.push(demand);
            self.departures
                .push(Reverse((now_ns.saturating_add(req.hold_ns), id)));
        }
    }
}

/// Run the configured strategy on a reusable fleet. Every shard is
/// re-booted (reset-in-place) first, so back-to-back runs on one fleet
/// are independent and byte-identical to [`run_fresh`].
pub fn run(cfg: &ClusterConfig, fleet: &mut Fleet) -> ClusterOutcome {
    let mut seeds = DetRng::seed_from(cfg.seed);
    let mut policy = cfg.strategy.build(seeds.fork(4).uniform(0, u64::MAX));
    run_with_policy(cfg, fleet, policy.as_mut())
}

/// Run on a throwaway fleet (fresh node construction per shard).
pub fn run_fresh(cfg: &ClusterConfig) -> ClusterOutcome {
    run(cfg, &mut Fleet::new())
}

/// Run an explicit policy instance (the differential tests drive
/// [`ScriptedPolicy`](crate::ScriptedPolicy) through this). The policy
/// seed derivation of [`run`] is bypassed; everything else is identical.
pub fn run_with_policy(
    cfg: &ClusterConfig,
    fleet: &mut Fleet,
    policy: &mut dyn PlacementPolicy,
) -> ClusterOutcome {
    assert!(cfg.shards >= 1 && cfg.slots_per_cpu >= 1);
    let n_cpus = cfg.machine.n_cpus;
    let mut seeds = DetRng::seed_from(cfg.seed);
    let mut stream = TenantStream::new(
        seeds.fork(1).uniform(0, u64::MAX),
        cfg.mean_gap_ns,
        cfg.mean_hold_ns,
        cfg.max_gang(),
    );
    let mut shard_seeds = seeds.fork(2);

    // Boot the shards: reset-in-place on a reused fleet, fresh otherwise.
    let pools = fleet.pools(cfg.shards);
    let mut states: Vec<ShardState> = Vec::with_capacity(cfg.shards);
    for (s, pool) in pools.iter_mut().enumerate() {
        let mut node_cfg = NodeConfig::for_machine(
            cfg.machine
                .clone()
                .with_seed(shard_seeds.fork(s as u64).uniform(0, u64::MAX)),
        );
        node_cfg.sched = cfg.sched;
        // Slot threads plus idle threads plus headroom; the default
        // MAX_THREADS table would dwarf a small shard.
        node_cfg.max_threads = n_cpus * (cfg.slots_per_cpu + 1) + 8;
        let node = pool.node(node_cfg);
        // Reset preserves the simulation memo for cross-trial reuse; a
        // cluster run must not see a previous run's verdicts.
        node.clear_sim_cache();
        let mut free = vec![Vec::with_capacity(cfg.slots_per_cpu); n_cpus];
        for (cpu, slots) in free.iter_mut().enumerate() {
            for _ in 0..cfg.slots_per_cpu {
                let tid = node
                    .spawn_on(cpu, "slot", Box::new(IdleLoop::new(1)))
                    .expect("spawn reservation slot");
                slots.push(tid);
            }
        }
        states.push(ShardState { free, resident: 0 });
    }

    let shard_capacity_ppm = n_cpus as u64 * cfg.sched.periodic_budget_ppm();
    let mut oracle = FluidOracle::new(cfg.shards as u64 * shard_capacity_ppm);

    let mut out = ClusterOutcome {
        decisions: 0,
        placed: 0,
        rejected: 0,
        probes: 0,
        departures: 0,
        placed_util_ppm: 0,
        offered_util_ppm: 0,
        oracle_placed: 0,
        oracle_util_ppm: 0,
        events: 0,
        snapshot: StatsSnapshot::default(),
        fingerprint: Vec::new(),
        placements: Vec::new(),
    };

    // (depart_ns, tenant id) min-heap plus the seats to release.
    let mut departures: BinaryHeap<Reverse<(Nanos, u64)>> = BinaryHeap::new();
    // A resident tenant's home shard plus its occupied (cpu, thread) seats.
    type Residency = (usize, Vec<(usize, ThreadId)>);
    let mut resident: Vec<Option<Residency>> = Vec::new();
    let mut view = ClusterView {
        shards: Vec::with_capacity(cfg.shards),
    };
    let mut candidates: Vec<usize> = Vec::with_capacity(cfg.shards);

    for _ in 0..cfg.tenants {
        let (now_ns, req) = stream.next_request();

        // Release every tenant whose residency expired by `now_ns`.
        while let Some(&Reverse((t, id))) = departures.peek() {
            if t > now_ns {
                break;
            }
            departures.pop();
            let (shard, seats) = resident[id as usize].take().expect("resident tenant");
            let node = pools[shard].current().expect("booted shard");
            let tids: Vec<ThreadId> = seats.iter().map(|&(_, t)| t).collect();
            node.admit(AdmissionRequest::team(tids).constraints(Constraints::default_aperiodic()))
                .into_result()
                .expect("aperiodic release cannot fail");
            for (cpu, t) in seats {
                states[shard].free[cpu].push(t);
            }
            states[shard].resident -= 1;
            out.departures += 1;
        }

        out.offered_util_ppm += req.util_ppm();
        oracle.offer(now_ns, &req);

        // Rebuild the policy's view from the live ledgers.
        view.shards.clear();
        for (s, pool) in pools.iter_mut().enumerate() {
            let node = pool.current().expect("booted shard");
            let util_ppm = (0..n_cpus)
                .map(|cpu| node.scheduler(cpu).load.periodic_util_ppm())
                .sum();
            view.shards.push(ShardView {
                shard: s,
                util_ppm,
                capacity_ppm: shard_capacity_ppm,
                free_slots: states[s].free_slots(),
                resident_gangs: states[s].resident,
            });
        }

        candidates.clear();
        policy.candidates(&req, &view, &mut candidates);
        out.decisions += 1;

        let mut placed_at = None;
        let mut probes = 0u64;
        let mut last_error = AdmissionError::CapacityExceeded;
        for &shard in &candidates {
            assert!(shard < cfg.shards, "policy offered unknown shard {shard}");
            probes += 1;
            // Seat the gang: one slot on each of `gang` distinct CPUs,
            // least-loaded CPUs first (ties to the lower index).
            let node = pools[shard].current().expect("booted shard");
            let mut cpus: Vec<usize> = (0..n_cpus)
                .filter(|&cpu| !states[shard].free[cpu].is_empty())
                .collect();
            if cpus.len() < req.gang {
                last_error = AdmissionError::CapacityExceeded;
                continue;
            }
            cpus.sort_by_key(|&cpu| (node.scheduler(cpu).load.periodic_util_ppm(), cpu));
            cpus.truncate(req.gang);
            let members: Vec<ThreadId> = cpus
                .iter()
                .map(|&cpu| states[shard].free[cpu].pop().expect("free slot"))
                .collect();
            let outcome =
                node.admit(AdmissionRequest::team(members.clone()).constraints(req.constraints));
            if outcome.is_admitted() {
                departures.push(Reverse((now_ns.saturating_add(req.hold_ns), req.id)));
                debug_assert_eq!(resident.len() as u64, req.id);
                resident.push(Some((shard, cpus.into_iter().zip(members).collect())));
                states[shard].resident += 1;
                placed_at = Some(shard);
                break;
            }
            last_error = outcome.error().expect("rejected outcome has an error");
            // Undo the seating: each chosen CPU took exactly one pop.
            for (cpu, m) in cpus.into_iter().zip(members) {
                states[shard].free[cpu].push(m);
            }
        }

        out.probes += probes;
        match placed_at {
            Some(shard) => {
                out.placed += 1;
                out.placed_util_ppm += req.util_ppm();
                if cfg.record_placements {
                    out.placements
                        .push(PlacementOutcome::Placed { shard, probes });
                }
            }
            None => {
                out.rejected += 1;
                resident.push(None);
                if cfg.record_placements {
                    out.placements.push(PlacementOutcome::Rejected {
                        probes,
                        error: last_error,
                    });
                }
            }
        }
    }

    out.oracle_placed = oracle.placed;
    out.oracle_util_ppm = oracle.placed_util_ppm;

    // Fold the shard snapshots and fingerprint the final cluster state.
    for (s, pool) in pools.iter_mut().enumerate() {
        let node = pool.current().expect("booted shard");
        out.snapshot.merge(&node.stats_snapshot());
        for cpu in 0..n_cpus {
            let load = &node.scheduler(cpu).load;
            out.fingerprint.push(load.periodic_util_ppm());
            out.fingerprint.push(load.periodic_count() as u64);
        }
        out.fingerprint.push(states[s].free_slots() as u64);
        out.fingerprint.push(states[s].resident as u64);
    }
    out.fingerprint
        .extend([out.placed, out.rejected, out.departures]);
    out.events = out.snapshot.events;
    out.snapshot.trials = 1;
    out.snapshot.cluster_decisions = out.decisions;
    out.snapshot.cluster_placed = out.placed;
    out.snapshot.cluster_rejected = out.rejected;
    out.snapshot.cluster_probes = out.probes;
    out.snapshot.cluster_departures = out.departures;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ScriptedPolicy;

    fn quick(strategy: PlacementStrategy) -> ClusterConfig {
        ClusterConfig::new(4, 8, 400, strategy)
    }

    #[test]
    fn fresh_runs_are_byte_identical() {
        for strategy in PlacementStrategy::ALL {
            let cfg = quick(strategy);
            let a = run_fresh(&cfg);
            let b = run_fresh(&cfg);
            assert_eq!(a.fingerprint, b.fingerprint, "{}", strategy.name());
            assert_eq!(a.snapshot, b.snapshot, "{}", strategy.name());
        }
    }

    #[test]
    fn pooled_fleet_reuse_matches_fresh() {
        let mut fleet = Fleet::new();
        for strategy in PlacementStrategy::ALL {
            let cfg = quick(strategy);
            let pooled = run(&cfg, &mut fleet);
            let fresh = run_fresh(&cfg);
            assert_eq!(pooled.fingerprint, fresh.fingerprint, "{}", strategy.name());
            assert_eq!(pooled.snapshot, fresh.snapshot, "{}", strategy.name());
        }
    }

    #[test]
    fn accounting_identities_hold() {
        let mut cfg = quick(PlacementStrategy::BestFit);
        cfg.record_placements = true;
        let out = run_fresh(&cfg);
        assert_eq!(out.decisions, cfg.tenants);
        assert_eq!(out.placed + out.rejected, out.decisions);
        assert_eq!(out.placements.len() as u64, out.decisions);
        let placed = out
            .placements
            .iter()
            .filter(|p| p.shard().is_some())
            .count();
        assert_eq!(placed as u64, out.placed);
        assert!(out.placed > 0, "quick config must admit someone");
        assert!(out.rejected > 0, "quick config must overload the fleet");
        assert!(out.probes >= out.placed, "every placement costs a probe");
        assert!(out.placed_util_ppm <= out.oracle_util_ppm);
        assert!(out.quality() > 0.0 && out.quality() <= 1.0);
        assert!(out.sim_hit_rate() > 0.0, "churn must hit the sim memo");
    }

    #[test]
    fn rt_gang_is_one_gang_per_shard() {
        let cfg = quick(PlacementStrategy::RtGang);
        let out = run_fresh(&cfg);
        // Final state: at most one resident gang per shard.
        let per_shard = 2 * cfg.machine.n_cpus + 2;
        for s in 0..cfg.shards {
            let resident = out.fingerprint[s * per_shard + per_shard - 1];
            assert!(resident <= 1, "shard {s} holds {resident} gangs");
        }
    }

    #[test]
    fn scripted_replay_reproduces_cluster_state() {
        let mut cfg = quick(PlacementStrategy::PowerOfTwo);
        cfg.record_placements = true;
        let first = run_fresh(&cfg);
        let script: Vec<Option<usize>> = first
            .placements
            .iter()
            .map(PlacementOutcome::shard)
            .collect();
        let mut replay = ScriptedPolicy::new(script);
        let second = run_with_policy(&cfg, &mut Fleet::new(), &mut replay);
        assert_eq!(second.placed, first.placed);
        assert_eq!(second.rejected, first.rejected);
        assert_eq!(second.fingerprint, first.fingerprint);
    }
}
