//! Hierarchical timing wheel: the production future-event list.
//!
//! The tickless design the paper argues for (one-shot timers re-armed on
//! every scheduler exit, §3.3) makes the simulator's event queue the
//! hottest structure in the whole reproduction: tens of millions of
//! schedule/cancel/pop operations per trial, most of them timer-shaped
//! (short relative delays, heavy re-programming). Real tickless kernels
//! answer that shape with a hierarchical timing wheel — O(1) insert and
//! cancel against the O(log n) of a binary heap — and this module is that
//! structure, specialized to the determinism contract of
//! [`EventQueue`](crate::event::EventQueue).
//!
//! # Layout
//!
//! Four levels of 256 slots, 8 bits of the absolute timestamp per level:
//! level `L` slot `s` holds every pending event whose time `t` satisfies
//! `(t >> 8L) & 255 == s` *and* whose higher bits match the current clock
//! (so level 0 spans 256 cycles at 1-cycle resolution, level 3 spans 2^32
//! cycles at 2^24-cycle resolution). Events beyond the 2^32-cycle horizon
//! wait in an overflow list and are redistributed when the clock crosses a
//! 2^32 boundary. An event is placed on the *lowest* level whose span
//! covers it — equivalently, at level `⌈highest differing bit of
//! `t ^ now`⌉ / 8` — and each slot is an intrusive doubly-linked list
//! (u32 node indices) with O(1) tail append and O(1) unlink. Per-level
//! occupancy bitmaps (4 × u64) make "first non-empty slot" four word
//! scans.
//!
//! # Cascades
//!
//! Advancing the clock from `old` to `t` cascades, for each level whose
//! digit of the clock changed, exactly the one slot that now contains `t`:
//! its events re-place onto lower levels (an event at time `t` lands
//! directly in level 0). Slots between the old and new digit need no
//! visit — the clock only ever advances to at most the earliest pending
//! time, so those slots are provably empty. Crossing a 2^32 boundary
//! additionally drains the overflow list (entries whose epoch arrived
//! re-place; the rest re-enter in order).
//!
//! # Why pops stay in insertion order
//!
//! The facade's contract is that same-instant events fire in insertion
//! order, matching the heap's `(time, sequence)` key bit for bit. The
//! wheel keeps that order *without* storing sequence numbers:
//!
//! * every insert appends at its slot's tail;
//! * cascades and overflow drains traverse head-to-tail and re-append,
//!   preserving relative order (they are stable);
//! * a level-0 slot receives cascaded events only while it is empty —
//!   fresh inserts into a slot's window can only happen *after* the clock
//!   advance that cascades that window down, because inserts target the
//!   lowest covering level and pops never leave live events behind the
//!   clock.
//!
//! So each slot list is always a subsequence of the global insertion
//! order, and draining the level-0 slot for instant `t` yields exactly
//! the heap's tie-break order. `tests/wheel_vs_heap.rs` checks this
//! differentially under random churn, [`EventId`]s included (both
//! backends share the same LIFO free-list slot allocation, so identical
//! call sequences mint identical ids).

use crate::event::EventId;
use crate::time::Cycles;

/// Bits of the timestamp consumed per level.
const BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels; the covered horizon is `2^(BITS * LEVELS)` cycles.
const LEVELS: usize = 4;
/// Bits covered by all levels together (the horizon; 2^32 cycles ≈ 3.3 s
/// of simulated time at the Phi's 1.3 GHz).
const HORIZON_BITS: u32 = BITS * LEVELS as u32;
/// Words per occupancy bitmap.
const WORDS: usize = SLOTS / 64;
/// Null link / "not in any list".
const NIL: u32 = u32::MAX;
/// List index of the beyond-horizon overflow list.
const OVERFLOW: u32 = (LEVELS * SLOTS) as u32;

/// One event node: list links, home list, timestamp, and the payload.
/// `payload` is `Some` exactly while the event is pending; free-listed
/// nodes keep their generation so stale [`EventId`]s can never alias.
#[derive(Debug)]
struct Node<E> {
    gen: u32,
    next: u32,
    prev: u32,
    /// `level * SLOTS + slot`, [`OVERFLOW`], or [`NIL`] when not pending.
    home: u32,
    time: Cycles,
    payload: Option<E>,
}

/// A hierarchical timing wheel with the exact observable semantics of
/// [`HeapQueue`](crate::event::HeapQueue). See the module docs for layout
/// and ordering; see [`EventQueue`](crate::event::EventQueue) for the
/// facade that selects between the two.
#[derive(Debug)]
pub struct WheelQueue<E> {
    nodes: Vec<Node<E>>,
    free: Vec<u32>,
    /// Head/tail of each slot list; index `LEVELS * SLOTS` is the
    /// overflow list. Allocated once and retained across [`clear`].
    ///
    /// [`clear`]: Self::clear
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// Per-level slot-occupancy bitmaps.
    occ: [[u64; WORDS]; LEVELS],
    /// Pending events (all levels + overflow).
    len: usize,
    /// Exact earliest pending timestamp; `None` when empty. Kept eagerly
    /// so `peek_time`/`is_empty` stay pure `&self` reads.
    cached_next: Option<Cycles>,
    /// Earliest timestamp in the overflow list; `None` when it is empty.
    overflow_min: Option<Cycles>,
    now: Cycles,
    popped: u64,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelQueue<E> {
    /// An empty wheel at time zero.
    pub fn new() -> Self {
        WheelQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; LEVELS * SLOTS + 1],
            tails: vec![NIL; LEVELS * SLOTS + 1],
            occ: [[0; WORDS]; LEVELS],
            len: 0,
            cached_next: None,
            overflow_min: None,
            now: 0,
            popped: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of events popped so far (cancelled events excluded).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Return to the power-on state, retaining the node storage and the
    /// (fixed-size) slot arrays so pooled trials stay allocation-free.
    /// Generations restart with the node table, so a cleared wheel mints
    /// the same [`EventId`]s as a fresh one.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.occ = [[0; WORDS]; LEVELS];
        self.len = 0;
        self.cached_next = None;
        self.overflow_min = None;
        self.now = 0;
        self.popped = 0;
    }

    /// Node-table capacity currently reserved (diagnostics for the pooled
    /// allocation-free guarantee).
    pub fn capacity(&self) -> usize {
        self.nodes.capacity()
    }

    /// Schedule `payload` at absolute time `at`. Panics if `at` is in the
    /// past (same contract, same message, as the heap backend).
    pub fn schedule(&mut self, at: Cycles, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        // Identical slot allocation discipline to the heap backend (LIFO
        // free list, then fresh growth): identical call sequences on the
        // two backends mint identical EventIds.
        let idx = match self.free.pop() {
            Some(i) => {
                let n = &mut self.nodes[i as usize];
                debug_assert!(n.payload.is_none());
                n.payload = Some(payload);
                n.time = at;
                i
            }
            None => {
                assert!(self.nodes.len() < u32::MAX as usize, "event slot overflow");
                self.nodes.push(Node {
                    gen: 0,
                    next: NIL,
                    prev: NIL,
                    home: NIL,
                    time: at,
                    payload: Some(payload),
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.link(idx);
        self.len += 1;
        if self.cached_next.is_none_or(|n| at < n) {
            self.cached_next = Some(at);
        }
        EventId::new(idx, self.nodes[idx as usize].gen)
    }

    /// Schedule `payload` after a relative delay.
    pub fn schedule_in(&mut self, delay: Cycles, payload: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation time overflow");
        self.schedule(at, payload)
    }

    /// Cancel a previously scheduled event: O(1) unlink from its slot
    /// list (the wheel's edge over the heap's O(log n) excision), plus a
    /// min recomputation only when the cancelled event was the earliest.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let s = id.slot() as usize;
        if s >= self.nodes.len() {
            return false;
        }
        if self.nodes[s].gen != id.gen() || self.nodes[s].payload.is_none() {
            return false;
        }
        let at = self.nodes[s].time;
        let was_overflow = self.nodes[s].home == OVERFLOW;
        self.unlink(s as u32);
        self.retire(s);
        self.len -= 1;
        if was_overflow && self.overflow_min == Some(at) {
            self.overflow_min = self.scan_overflow_min();
        }
        if self.cached_next == Some(at) {
            self.cached_next = self.recompute_next();
        }
        true
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, EventId, E)> {
        let t = self.cached_next?;
        self.advance_clock(t);
        let home = level0_home(t);
        let i = self.heads[home];
        debug_assert_ne!(i, NIL, "cached_next points at an empty slot");
        self.unlink(i);
        debug_assert_eq!(self.nodes[i as usize].time, t);
        let id = EventId::new(i, self.nodes[i as usize].gen);
        let payload = self
            .retire(i as usize)
            .expect("pending node without payload");
        self.len -= 1;
        self.popped += 1;
        if self.heads[home] == NIL {
            self.cached_next = self.recompute_next();
        }
        Some((t, id, payload))
    }

    /// Drain every event at the next pending instant into `sink`, in
    /// insertion order: one whole level-0 slot list, unlinked wholesale.
    /// Returns the number drained (0 when empty).
    pub fn pop_batch(&mut self, mut sink: impl FnMut(Cycles, EventId, E)) -> usize {
        let Some(t) = self.cached_next else {
            return 0;
        };
        self.advance_clock(t);
        let home = level0_home(t);
        let mut i = self.heads[home];
        debug_assert_ne!(i, NIL, "cached_next points at an empty slot");
        self.heads[home] = NIL;
        self.tails[home] = NIL;
        let slot = home; // level 0: home index == slot index
        self.occ[0][slot / 64] &= !(1u64 << (slot % 64));
        let mut n = 0;
        while i != NIL {
            let next = self.nodes[i as usize].next;
            debug_assert_eq!(self.nodes[i as usize].time, t);
            self.nodes[i as usize].home = NIL;
            let id = EventId::new(i, self.nodes[i as usize].gen);
            let payload = self
                .retire(i as usize)
                .expect("pending node without payload");
            sink(t, id, payload);
            n += 1;
            i = next;
        }
        self.len -= n;
        self.popped += n as u64;
        self.cached_next = self.recompute_next();
        n
    }

    /// Timestamp of the next event without popping it (exact, `&self`).
    pub fn peek_time(&self) -> Option<Cycles> {
        self.cached_next
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Advance the clock to `t` without popping an event, cascading any
    /// wheel slots the advance crosses. Panics if `t` is in the past; the
    /// caller must not advance past a pending event (same contract as the
    /// heap, where violating it trips the pop-order debug assertion).
    pub fn advance_to(&mut self, t: Cycles) {
        assert!(
            t >= self.now,
            "clock moved backwards: to={} now={}",
            t,
            self.now
        );
        self.advance_clock(t);
    }

    /// Record `n` events processed by an out-of-queue event source.
    pub fn note_external_events(&mut self, n: u64) {
        self.popped += n;
    }

    /// Un-count `n` events (batch consumers account at consume time).
    pub fn forget_events(&mut self, n: u64) {
        debug_assert!(self.popped >= n, "forgetting more events than popped");
        self.popped -= n;
    }

    /// Number of pending events (levels plus overflow; no tombstones).
    pub fn backlog(&self) -> usize {
        self.len
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The list an event at `at` belongs on, relative to the current
    /// clock: the lowest level whose span covers `at`, or overflow beyond
    /// the horizon. Computed from the highest bit where `at` differs from
    /// `now` — one xor and a leading-zeros count.
    fn home_of(&self, at: Cycles) -> u32 {
        let diff = at ^ self.now;
        if diff >> HORIZON_BITS != 0 {
            return OVERFLOW;
        }
        let lvl = (63 - (diff | 1).leading_zeros()) / BITS;
        let slot = ((at >> (BITS * lvl)) as usize) & (SLOTS - 1);
        lvl * SLOTS as u32 + slot as u32
    }

    /// Append node `i` at the tail of the list its timestamp belongs on.
    /// Tail append is what keeps every slot list in insertion order.
    fn link(&mut self, i: u32) {
        let at = self.nodes[i as usize].time;
        let home = self.home_of(at);
        let tail = self.tails[home as usize];
        {
            let n = &mut self.nodes[i as usize];
            n.home = home;
            n.prev = tail;
            n.next = NIL;
        }
        if tail == NIL {
            self.heads[home as usize] = i;
        } else {
            self.nodes[tail as usize].next = i;
        }
        self.tails[home as usize] = i;
        if home == OVERFLOW {
            if self.overflow_min.is_none_or(|m| at < m) {
                self.overflow_min = Some(at);
            }
        } else {
            let (lvl, slot) = (home as usize / SLOTS, home as usize % SLOTS);
            self.occ[lvl][slot / 64] |= 1u64 << (slot % 64);
        }
    }

    /// Unlink node `i` from its list in O(1), clearing the occupancy bit
    /// when the slot empties. Does not retire the node.
    fn unlink(&mut self, i: u32) {
        let (home, prev, next) = {
            let n = &self.nodes[i as usize];
            (n.home, n.prev, n.next)
        };
        debug_assert_ne!(home, NIL, "unlinking a node that is not pending");
        if prev == NIL {
            self.heads[home as usize] = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tails[home as usize] = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        self.nodes[i as usize].home = NIL;
        if home != OVERFLOW && self.heads[home as usize] == NIL {
            let (lvl, slot) = (home as usize / SLOTS, home as usize % SLOTS);
            self.occ[lvl][slot / 64] &= !(1u64 << (slot % 64));
        }
    }

    /// Bump the node's generation, free it, and take its payload —
    /// identical retirement discipline to the heap backend.
    fn retire(&mut self, i: usize) -> Option<E> {
        let n = &mut self.nodes[i];
        n.gen = n.gen.wrapping_add(1);
        let payload = n.payload.take();
        self.free.push(i as u32);
        payload
    }

    /// Move the clock to `t`, cascading crossed slots so that any event at
    /// `t` sits in level 0 afterwards. Caller guarantees `t >= now` and
    /// `t <=` every pending timestamp (debug-asserted in the cascades).
    fn advance_clock(&mut self, t: Cycles) {
        let old = self.now;
        if t == old {
            return;
        }
        self.now = t;
        if (t >> HORIZON_BITS) != (old >> HORIZON_BITS) && self.overflow_min.is_some() {
            self.drain_overflow();
        }
        // Top-down, so each cascaded event settles in one hop: by the time
        // level L's slot re-places, levels above it already agree with `t`.
        for lvl in (1..LEVELS).rev() {
            let shift = BITS * lvl as u32;
            if (t >> shift) != (old >> shift) {
                let slot = ((t >> shift) as usize) & (SLOTS - 1);
                self.cascade(lvl, slot);
            }
        }
    }

    /// Re-place every event in `(lvl, slot)` relative to the (already
    /// advanced) clock. Stable: traverses head-to-tail, appends at the
    /// destination tails, so relative insertion order is preserved.
    fn cascade(&mut self, lvl: usize, slot: usize) {
        let home = lvl * SLOTS + slot;
        let mut i = self.heads[home];
        if i == NIL {
            return;
        }
        self.heads[home] = NIL;
        self.tails[home] = NIL;
        self.occ[lvl][slot / 64] &= !(1u64 << (slot % 64));
        while i != NIL {
            let next = self.nodes[i as usize].next;
            debug_assert!(
                self.nodes[i as usize].time >= self.now,
                "clock advanced past a pending event"
            );
            self.link(i);
            i = next;
        }
    }

    /// On a horizon crossing, re-place every overflow entry: those whose
    /// epoch arrived land in the wheels, the rest re-enter the overflow
    /// list — in order either way (the traversal is stable).
    fn drain_overflow(&mut self) {
        let mut i = self.heads[OVERFLOW as usize];
        self.heads[OVERFLOW as usize] = NIL;
        self.tails[OVERFLOW as usize] = NIL;
        self.overflow_min = None;
        while i != NIL {
            let next = self.nodes[i as usize].next;
            debug_assert!(
                self.nodes[i as usize].time >= self.now,
                "clock advanced past an overflow event"
            );
            self.link(i);
            i = next;
        }
    }

    /// Exact earliest pending timestamp, recomputed from the bitmaps: the
    /// first occupied slot on the lowest non-empty level bounds the
    /// minimum (level spans nest, so lower levels always hold earlier
    /// events), and the true minimum is the smallest time in that slot's
    /// list. Falls back to the overflow minimum when the wheels are empty.
    fn recompute_next(&self) -> Option<Cycles> {
        for lvl in 0..LEVELS {
            for (w, &word) in self.occ[lvl].iter().enumerate() {
                if word != 0 {
                    let slot = w * 64 + word.trailing_zeros() as usize;
                    let mut i = self.heads[lvl * SLOTS + slot];
                    debug_assert_ne!(i, NIL, "occupancy bit set on an empty slot");
                    let mut best = self.nodes[i as usize].time;
                    i = self.nodes[i as usize].next;
                    while i != NIL {
                        let n = &self.nodes[i as usize];
                        if n.time < best {
                            best = n.time;
                        }
                        i = n.next;
                    }
                    return Some(best);
                }
            }
        }
        self.overflow_min
    }

    /// Minimum timestamp on the overflow list (cancel of the previous
    /// minimum pays this scan; overflow traffic is rare by construction).
    fn scan_overflow_min(&self) -> Option<Cycles> {
        let mut best: Option<Cycles> = None;
        let mut i = self.heads[OVERFLOW as usize];
        while i != NIL {
            let n = &self.nodes[i as usize];
            if best.is_none_or(|b| n.time < b) {
                best = Some(n.time);
            }
            i = n.next;
        }
        best
    }

    /// Exhaustive structural check, used by the unit and property tests.
    #[cfg(test)]
    pub(crate) fn assert_invariants(&self) {
        let mut seen = 0usize;
        let mut brute_min: Option<Cycles> = None;
        let mut overflow_brute: Option<Cycles> = None;
        for home in 0..(LEVELS * SLOTS + 1) {
            let mut i = self.heads[home];
            let mut prev = NIL;
            while i != NIL {
                let n = &self.nodes[i as usize];
                assert_eq!(n.home as usize, home, "node {i} home out of sync");
                assert_eq!(n.prev, prev, "node {i} prev link broken");
                assert!(n.payload.is_some(), "pending node {i} without payload");
                assert!(n.time >= self.now, "pending node {i} behind the clock");
                assert_eq!(
                    self.home_of(n.time) as usize,
                    home,
                    "node {i} (t={}) mis-placed at now={}",
                    n.time,
                    self.now
                );
                if brute_min.is_none_or(|b| n.time < b) {
                    brute_min = Some(n.time);
                }
                if home == OVERFLOW as usize && overflow_brute.is_none_or(|b| n.time < b) {
                    overflow_brute = Some(n.time);
                }
                seen += 1;
                prev = i;
                i = n.next;
            }
            assert_eq!(self.tails[home], prev, "tail of list {home} out of sync");
            if home < LEVELS * SLOTS {
                let (lvl, slot) = (home / SLOTS, home % SLOTS);
                let bit = self.occ[lvl][slot / 64] >> (slot % 64) & 1;
                assert_eq!(bit == 1, self.heads[home] != NIL, "occ bit wrong at {home}");
            }
        }
        assert_eq!(seen, self.len, "len out of sync with list contents");
        assert_eq!(self.cached_next, brute_min, "cached_next is not the min");
        assert_eq!(self.overflow_min, overflow_brute, "overflow_min stale");
        assert_eq!(
            seen + self.free.len(),
            self.nodes.len(),
            "node leak: pending + free != allocated"
        );
    }
}

/// List index of the level-0 slot for instant `t`.
#[inline]
fn level0_home(t: Cycles) -> usize {
    (t as usize) & (SLOTS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut WheelQueue<u64>) -> Vec<(Cycles, u64)> {
        let mut out = Vec::new();
        while let Some((t, _, p)) = q.pop() {
            out.push((t, p));
            q.assert_invariants();
        }
        out
    }

    #[test]
    fn pops_across_levels_in_time_order() {
        let mut q = WheelQueue::new();
        // One event per level span, plus overflow.
        for (i, t) in [3u64, 700, 70_000, 20_000_000, 1 << 33].iter().enumerate() {
            q.schedule(*t, i as u64);
            q.assert_invariants();
        }
        let got = drain(&mut q);
        assert_eq!(
            got,
            vec![(3, 0), (700, 1), (70_000, 2), (20_000_000, 3), (1 << 33, 4)]
        );
    }

    #[test]
    fn slot_rollover_boundaries_pop_in_order() {
        // Events straddling every level's rollover boundary: 255/256,
        // 65_535/65_536, 2^24-1 / 2^24, 2^32-1 / 2^32.
        let mut q = WheelQueue::new();
        let mut times = Vec::new();
        for shift in [8u32, 16, 24, 32] {
            let edge = 1u64 << shift;
            for t in [edge - 2, edge - 1, edge, edge + 1] {
                times.push(t);
            }
        }
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i as u64);
            q.assert_invariants();
        }
        let got = drain(&mut q);
        let mut want: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn same_instant_at_a_cascade_boundary_keeps_insertion_order() {
        let mut q = WheelQueue::new();
        // All at one instant that requires a level-2 cascade to reach.
        let t = (5 << 16) + 7;
        for p in 0..10u64 {
            q.schedule(t, p);
        }
        q.assert_invariants();
        let got = drain(&mut q);
        assert_eq!(got, (0..10).map(|p| (t, p)).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_beyond_horizon_waits_in_overflow_and_fires() {
        let mut q = WheelQueue::new();
        let far = (7u64 << 32) + 12_345; // several epochs out
        q.schedule(far, 1);
        q.schedule(10, 0);
        q.assert_invariants();
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((10, 0)));
        q.assert_invariants();
        // The pop of the overflow event jumps epochs and drains it.
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((far, 1)));
        q.assert_invariants();
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_entries_for_different_epochs_drain_separately() {
        let mut q = WheelQueue::new();
        let e1 = (1u64 << 32) + 5;
        let e2 = (2u64 << 32) + 9;
        let e3 = (2u64 << 32) + 9; // same instant as e2, later insertion
        q.schedule(e2, 2);
        q.schedule(e1, 1);
        q.schedule(e3, 3);
        q.assert_invariants();
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((e1, 1)));
        q.assert_invariants();
        // e2/e3 survived one drain (wrong epoch) in insertion order.
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((e2, 2)));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((e3, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn reinsert_after_advance_past_a_cascaded_slot() {
        let mut q = WheelQueue::new();
        q.schedule(70_000, 0); // level 2
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((70_000, 0)));
        // The clock sits mid-window of a slot that has already cascaded;
        // re-inserting into that window must land at level 0 and fire.
        q.schedule(70_001, 1);
        q.schedule(70_000, 2); // at == now exactly
        q.assert_invariants();
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((70_000, 2)));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((70_001, 1)));
    }

    #[test]
    fn cycles_near_max_schedule_and_fire() {
        let mut q = WheelQueue::new();
        q.schedule(Cycles::MAX, 2);
        q.schedule(Cycles::MAX - 1, 1);
        q.schedule(5, 0);
        q.assert_invariants();
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((5, 0)));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((Cycles::MAX - 1, 1)));
        q.assert_invariants();
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((Cycles::MAX, 2)));
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycles::MAX);
    }

    #[test]
    fn cancel_during_pending_cascade_state() {
        let mut q = WheelQueue::new();
        // Three same-instant events at a higher level; cancel the middle
        // one before the cascade, then pop across the boundary.
        let t = 1 << 20;
        let _a = q.schedule(t, 0);
        let b = q.schedule(t, 1);
        let _c = q.schedule(t, 2);
        assert!(q.cancel(b));
        q.assert_invariants();
        assert_eq!(q.pop().map(|(x, _, p)| (x, p)), Some((t, 0)));
        assert_eq!(q.pop().map(|(x, _, p)| (x, p)), Some((t, 2)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_overflow_min_rescans() {
        let mut q = WheelQueue::new();
        let a = q.schedule((1u64 << 32) + 10, 0);
        q.schedule((1u64 << 32) + 20, 1);
        assert_eq!(q.peek_time(), Some((1 << 32) + 10));
        assert!(q.cancel(a));
        q.assert_invariants();
        assert_eq!(q.peek_time(), Some((1 << 32) + 20));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some(((1 << 32) + 20, 1)));
    }

    #[test]
    fn advance_to_mid_window_then_pop() {
        let mut q = WheelQueue::new();
        q.schedule(100_000, 7);
        // Advance to just before the event: crosses level boundaries and
        // cascades its slot without consuming it.
        q.advance_to(99_999);
        q.assert_invariants();
        assert_eq!(q.peek_time(), Some(100_000));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((100_000, 7)));
    }

    #[test]
    fn deterministic_stress_against_ordering() {
        // Random churn with invariants checked at every step; the
        // cross-backend equivalence lives in tests/wheel_vs_heap.rs.
        let mut q: WheelQueue<u64> = WheelQueue::new();
        let mut live: Vec<EventId> = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for step in 0..3000u64 {
            match next(5) {
                0 | 1 => {
                    // Mixed magnitudes: level 0 through overflow.
                    let mag = [1u64 << 7, 1 << 12, 1 << 20, 1 << 28, 1 << 34][next(5) as usize];
                    let at = q.now() + next(mag);
                    live.push(q.schedule(at, step));
                }
                2 => {
                    if !live.is_empty() {
                        let i = next(live.len() as u64) as usize;
                        let id = live.swap_remove(i);
                        q.cancel(id);
                    }
                }
                3 => {
                    if let Some(t) = q.peek_time() {
                        if t > q.now() {
                            q.advance_to(q.now() + next(t - q.now()));
                        }
                    }
                }
                _ => {
                    if let Some((_, id, _)) = q.pop() {
                        live.retain(|x| *x != id);
                    }
                }
            }
            q.assert_invariants();
        }
        let mut last = q.now();
        while let Some((t, _, _)) = q.pop() {
            assert!(t >= last, "pop went back in time");
            last = t;
        }
        assert!(q.is_empty());
        assert_eq!(q.backlog(), 0);
    }
}
