//! Property-based tests of the kernel substrate's invariants.

use nautix_kernel::{BuddyAllocator, FixedHeap, RrQueue};
use proptest::prelude::*;
use std::collections::BinaryHeap;

proptest! {
    /// The fixed heap pops exactly the multiset it was given, in
    /// non-decreasing key order, agreeing with a reference heap.
    #[test]
    fn fixed_heap_matches_reference(keys in prop::collection::vec(0u64..1000, 1..64)) {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(64);
        let mut reference = BinaryHeap::new();
        for (i, &k) in keys.iter().enumerate() {
            h.push(k, i).unwrap();
            reference.push(std::cmp::Reverse(k));
        }
        let mut last = None;
        let mut popped = 0;
        while let Some((k, _)) = h.pop() {
            let std::cmp::Reverse(rk) = reference.pop().unwrap();
            prop_assert_eq!(k, rk, "key order must match the reference heap");
            if let Some(l) = last {
                prop_assert!(k >= l);
            }
            last = Some(k);
            popped += 1;
        }
        prop_assert_eq!(popped, keys.len());
        prop_assert!(h.is_empty());
    }

    /// Removing arbitrary values preserves the heap order of the rest.
    #[test]
    fn fixed_heap_remove_preserves_order(
        keys in prop::collection::vec(0u64..100, 1..32),
        removals in prop::collection::vec(0usize..32, 0..16),
    ) {
        let mut h: FixedHeap<u64, usize> = FixedHeap::new(32);
        for (i, &k) in keys.iter().enumerate() {
            h.push(k, i).unwrap();
        }
        let mut expect: Vec<(u64, usize)> = keys.iter().copied().zip(0..).collect();
        for &r in &removals {
            if h.remove(r) {
                expect.retain(|&(_, v)| v != r);
            }
        }
        let mut got: Vec<u64> = Vec::new();
        while let Some((k, _)) = h.pop() {
            got.push(k);
        }
        let mut want: Vec<u64> = expect.iter().map(|&(k, _)| k).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Round-robin queue: pops come out grouped by priority class, FIFO
    /// within a class, and nothing is lost.
    #[test]
    fn rr_queue_priority_fifo(entries in prop::collection::vec((0u64..4, 0usize..1000), 1..32)) {
        let mut q: RrQueue<usize> = RrQueue::new(32);
        for (i, &(p, _)) in entries.iter().enumerate() {
            q.push(p, i).unwrap();
        }
        let mut got = Vec::new();
        while let Some((p, v)) = q.pop() {
            got.push((p, v));
        }
        prop_assert_eq!(got.len(), entries.len());
        // Non-decreasing priority classes.
        prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        // FIFO within a class: indices increase.
        for class in 0..4 {
            let idx: Vec<usize> = got.iter().filter(|&&(p, _)| p == class).map(|&(_, v)| v).collect();
            prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Buddy allocator: live allocations never overlap, and freeing
    /// everything returns the arena to a single pristine block.
    #[test]
    fn buddy_no_overlap_and_full_coalesce(
        sizes in prop::collection::vec(1usize..5000, 1..40),
    ) {
        let mut b = BuddyAllocator::new(0, 4, 18); // 256 KiB arena
        let mut live: Vec<(usize, usize)> = Vec::new();
        for &sz in &sizes {
            if let Some(addr) = b.alloc(sz) {
                let len = sz.next_power_of_two().max(16);
                for &(a, l) in &live {
                    prop_assert!(addr + len <= a || a + l <= addr,
                        "allocations [{},{}) and [{},{}) overlap",
                        addr, addr + len, a, a + l);
                }
                live.push((addr, len));
            }
        }
        for (a, _) in live {
            b.free(a);
        }
        prop_assert!(b.is_pristine());
    }

    /// Buddy accounting: used() equals the sum of the block sizes of
    /// outstanding allocations, and never exceeds capacity.
    #[test]
    fn buddy_accounting_is_exact(
        ops in prop::collection::vec((1usize..3000, prop::bool::ANY), 1..60),
    ) {
        let mut b = BuddyAllocator::new(0, 4, 16);
        let mut live: Vec<(usize, usize)> = Vec::new();
        let mut expected_used = 0usize;
        for &(sz, free_one) in &ops {
            if free_one && !live.is_empty() {
                let (addr, len) = live.pop().unwrap();
                b.free(addr);
                expected_used -= len;
            } else if let Some(addr) = b.alloc(sz) {
                let len = sz.next_power_of_two().max(16);
                live.push((addr, len));
                expected_used += len;
            }
            prop_assert_eq!(b.used(), expected_used);
            prop_assert!(b.used() <= b.capacity());
        }
    }
}
