//! Administrative resource control (§6.3): throttle a parallel job up and
//! down by changing its gang's slice, and watch performance follow
//! proportionally — the "resource control with commensurate performance"
//! property of Figures 13 and 14.
//!
//! ```sh
//! cargo run --release --example throttling
//! ```

use nautix::bsp::{run_bsp, BspMode, BspParams};
use nautix::prelude::*;
use nautix::rt::SchedConfig;

fn main() {
    let workers = 8;
    let base = BspParams::coarse(workers, 10);
    println!("coarse BSP job on {workers} CPUs, throttled via slice/period:\n");
    println!(
        "{:>12} {:>14} {:>12}",
        "utilization", "exec time (ms)", "norm rate"
    );

    let mut reference: Option<f64> = None;
    for pct in [90u64, 70, 50, 30, 10] {
        let mut cfg = NodeConfig::phi();
        cfg.machine = MachineConfig::phi().with_cpus(workers + 1).with_seed(31);
        cfg.sched = SchedConfig::throughput();
        let r = run_bsp(
            cfg,
            base.with_mode(BspMode::RtGroup {
                period: 1_000_000,
                slice: pct * 10_000,
            }),
        );
        assert!(r.admitted);
        let t_ms = r.max_ns as f64 / 1e6;
        // Rate normalized so that perfect proportional control gives 1.0.
        let rate = 100.0 / (pct as f64 * t_ms);
        let norm = match reference {
            None => {
                reference = Some(rate);
                1.0
            }
            Some(r0) => rate / r0,
        };
        println!("{:>11}% {:>14.2} {:>12.3}", pct, t_ms, norm);
    }
    println!(
        "\na flat 'norm rate' column means the application's execution rate \
         tracks its CPU allocation — the administrator's throttle works."
    );
}
