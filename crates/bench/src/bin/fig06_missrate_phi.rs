//! Figure 6: local scheduler deadline miss rate on the Phi.

use nautix_bench::{banner, f, missrate, out_dir, write_csv, Scale};
use nautix_hw::Platform;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 6: miss rate vs period/slice (Phi)");
    let pts = missrate::sweep(Platform::Phi, scale, 5);
    println!("period_us,slice_pct,miss_rate,jobs");
    for p in &pts {
        println!("{},{},{},{}", p.period_us, p.slice_pct, f(p.miss_rate), p.jobs);
    }
    write_csv(
        &out_dir().join("fig06_missrate_phi.csv"),
        &["period_us", "slice_pct", "miss_rate", "jobs"],
        pts.iter().map(|p| {
            vec![
                p.period_us.to_string(),
                p.slice_pct.to_string(),
                f(p.miss_rate),
                p.jobs.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig06_missrate_phi.csv"));
}
