//! Differential properties of the cluster placement layer.
//!
//! Three guarantees, checked over randomized fleets, streams, and
//! strategies:
//!
//! 1. **Ledger feasibility** — whatever a policy does, every shard CPU's
//!    committed periodic utilization stays within the scheduler's
//!    periodic budget: the typed admission API is the only write path,
//!    and it cannot over-commit a ledger.
//! 2. **Serial re-application** — the final cluster state is a pure
//!    function of the accepted sequence: replaying the recorded
//!    shard-per-tenant script through [`ScriptedPolicy`] (no search, one
//!    probe per tenant) reproduces the fingerprint exactly.
//! 3. **Pinned quick-scale counts** — one fixed sweep cell's decision
//!    split is pinned, so a behavior drift in the stream, the policies,
//!    or the admission engine fails loudly here and in CI.

use nautix_cluster::{
    ClusterConfig, ClusterOutcome, Fleet, PlacementOutcome, PlacementStrategy, ScriptedPolicy,
};
use proptest::prelude::*;
use proptest::TestRng;

/// A small randomized cluster config: 1–4 shards, 2–6 CPUs, 50–400
/// tenants, any strategy, stream seed from `seed`.
fn arb_cfg(seed: u64) -> ClusterConfig {
    let mut rng = TestRng::seed_from(seed);
    let shards = 1 + rng.below(4) as usize;
    let cpus = 2 + rng.below(5) as usize;
    let tenants = 50 + rng.below(351);
    let strategy = PlacementStrategy::ALL[rng.below(4) as usize];
    let mut cfg = ClusterConfig::new(shards, cpus, tenants, strategy).with_seed(seed);
    cfg.record_placements = true;
    cfg
}

/// Per-CPU committed periodic utilization, decoded from the outcome
/// fingerprint (layout: per shard, per CPU `[util ppm, count]`, then per
/// shard `[free slots, resident]`, then the placed/rejected/departure
/// tail).
fn cpu_utils(cfg: &ClusterConfig, out: &ClusterOutcome) -> Vec<u64> {
    let n_cpus = cfg.machine.n_cpus;
    let stride = 2 * n_cpus + 2;
    assert_eq!(out.fingerprint.len(), cfg.shards * stride + 3);
    (0..cfg.shards)
        .flat_map(|s| (0..n_cpus).map(move |c| (s, c)))
        .map(|(s, c)| out.fingerprint[s * stride + 2 * c])
        .collect()
}

proptest! {
    #[test]
    fn no_policy_overcommits_a_ledger(seed in 0u64..u64::MAX) {
        let cfg = arb_cfg(seed);
        let out = nautix_cluster::run_fresh(&cfg);
        let budget = cfg.sched.periodic_budget_ppm();
        for (i, util) in cpu_utils(&cfg, &out).iter().enumerate() {
            prop_assert!(
                *util <= budget,
                "{}: CPU {} committed {} ppm over the {} ppm budget",
                cfg.strategy.name(), i, util, budget
            );
        }
        // The fluid oracle upper-bounds every real policy.
        prop_assert!(out.placed_util_ppm <= out.oracle_util_ppm);
        prop_assert!(out.placed <= out.decisions);
    }

    #[test]
    fn scripted_replay_of_accepted_sequence_reproduces_state(seed in 0u64..u64::MAX) {
        let cfg = arb_cfg(seed);
        let first = nautix_cluster::run_fresh(&cfg);
        let script: Vec<Option<usize>> =
            first.placements.iter().map(PlacementOutcome::shard).collect();
        prop_assert_eq!(script.len() as u64, cfg.tenants);
        let mut policy = ScriptedPolicy::new(script);
        let replay =
            nautix_cluster::run_with_policy(&cfg, &mut Fleet::new(), &mut policy);
        prop_assert_eq!(&replay.fingerprint, &first.fingerprint);
        prop_assert_eq!(replay.placed, first.placed);
        prop_assert_eq!(replay.rejected, first.rejected);
        prop_assert_eq!(replay.departures, first.departures);
        // The replay takes exactly one probe per placed tenant.
        prop_assert_eq!(replay.probes, replay.placed);
    }
}

/// The CI smoke cell: `cluster_bench`'s quick sweep opens with this exact
/// configuration, so the pin here and the workflow's grep agree by
/// construction. Regenerate both only for intentional behavior changes.
#[test]
fn quick_scale_decision_split_is_pinned() {
    let cfg = ClusterConfig::new(4, 8, 1_000, PlacementStrategy::FirstFit).with_seed(0xC1);
    let out = nautix_cluster::run_fresh(&cfg);
    assert_eq!(out.decisions, 1_000);
    assert_eq!(out.placed, 564);
    assert_eq!(out.rejected, 436);
    assert_eq!(
        out.snapshot.headline().rsplit_once(' ').unwrap().1,
        "cluster=1000/564/436"
    );
}
